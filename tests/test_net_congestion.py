"""Tests for congestion control, relay queues and multi-flow fairness.

Three layers, mirroring how the subsystem is built:

* Pure state machines (:class:`RenoController`, :class:`AdaptiveRto`,
  :class:`RelayQueueConfig`, :func:`jain_fairness_index`) driven with
  explicit time, no simulator.
* The ARQ sender driving a controller: Karn's rule, fast-recovery
  deflation, timeout window collapse, queue-overflow retransmission
  behaviour and max-retry abort with epoch reset.
* The committed 24-flow shared-relay scenario
  (``tests/data/net_multiflow_24flow.json``): goodput collapse under
  the fixed window versus stable, fair service under Reno -- the CI
  gates of the congestion PR.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.experiments import NetScenario
from repro.net.congestion import (
    AdaptiveRto,
    CC_KINDS,
    CwndTrajectory,
    FixedWindow,
    MAX_CWND_SAMPLES,
    RelayQueueConfig,
    RenoController,
    build_controller,
    jain_fairness_index,
)
from repro.net.scheduler import Scheduler
from repro.net.topology import AcousticNetTopology
from repro.net.traffic import convergecast_sources
from repro.net.transport import ArqConfig, ArqReceiver, ArqSender, Segment

FIXTURE = pathlib.Path(__file__).parent / "data" / "net_multiflow_24flow.json"


def _reno(max_window=16, timeout=3.0, **kwargs) -> RenoController:
    return RenoController(max_window=max_window, timeout_s=timeout, **kwargs)


# ----------------------------------------------------------------- AdaptiveRto
def test_adaptive_rto_first_sample_initializes_srtt_and_rttvar():
    rto = AdaptiveRto(initial_rto_s=3.0)
    assert rto.current_s() == pytest.approx(3.0)
    rto.on_sample(4.0)
    assert rto.srtt_s == pytest.approx(4.0)
    assert rto.rttvar_s == pytest.approx(2.0)
    # RTO = SRTT + max(granularity, 4 * RTTVAR) = 4 + 8.
    assert rto.current_s() == pytest.approx(12.0)


def test_adaptive_rto_smooths_with_standard_gains():
    rto = AdaptiveRto(initial_rto_s=3.0)
    rto.on_sample(4.0)
    rto.on_sample(2.0)
    # RTTVAR' = 0.75*2 + 0.25*|4-2|, SRTT' = 0.875*4 + 0.125*2.
    assert rto.rttvar_s == pytest.approx(2.0)
    assert rto.srtt_s == pytest.approx(3.75)
    assert rto.current_s() == pytest.approx(3.75 + 8.0)


def test_adaptive_rto_backoff_is_monotone_and_capped():
    rto = AdaptiveRto(initial_rto_s=2.0, max_rto_s=120.0)
    values = []
    for _ in range(8):
        values.append(rto.current_s())
        rto.on_timeout()
    # Sustained loss: each backoff at least matches the previous RTO.
    assert all(b >= a for a, b in zip(values, values[1:]))
    assert values[0] == pytest.approx(2.0)
    assert values[1] == pytest.approx(4.0)
    # Doubling is capped (here by max_rto_s long before max_backoff).
    assert values[-1] == pytest.approx(120.0)
    assert rto.current_s() <= 120.0


def test_adaptive_rto_sample_resets_backoff():
    rto = AdaptiveRto(initial_rto_s=2.0)
    rto.on_timeout()
    rto.on_timeout()
    assert rto.backoff == 4
    rto.on_sample(1.5)
    assert rto.backoff == 1
    assert rto.current_s() < 8.0


def test_adaptive_rto_clamps_to_floor_and_validates():
    rto = AdaptiveRto(initial_rto_s=3.0, min_rto_s=1.0)
    rto.on_sample(0.1)  # tiny acoustic RTT: floor must hold
    assert rto.current_s() == pytest.approx(1.0)
    rto.on_sample(-5.0)  # negative samples are ignored
    assert rto.current_s() == pytest.approx(1.0)
    with pytest.raises(ValueError):
        AdaptiveRto(initial_rto_s=0.0)
    with pytest.raises(ValueError):
        AdaptiveRto(initial_rto_s=1.0, min_rto_s=5.0, max_rto_s=2.0)


# ------------------------------------------------------------------ FixedWindow
def test_fixed_window_is_constant_and_hooks_are_noops():
    controller = FixedWindow(window_size=4, timeout_s=6.0)
    controller.on_ack(3, 1.0)
    controller.on_duplicate_ack(2.0)
    controller.on_fast_retransmit(3.0)
    controller.on_timeout(4.0)
    controller.on_rtt_sample(2.5, 5.0)
    assert controller.window() == 4
    assert controller.rto_s() == pytest.approx(6.0)
    assert controller.trajectory is None
    assert controller.state == "fixed"
    with pytest.raises(ValueError):
        FixedWindow(window_size=0, timeout_s=1.0)
    with pytest.raises(ValueError):
        FixedWindow(window_size=1, timeout_s=0.0)


def test_build_controller_catalog():
    config = ArqConfig(window_size=8, timeout_s=3.0)
    assert isinstance(build_controller("fixed", config), FixedWindow)
    reno = build_controller("reno", config)
    assert isinstance(reno, RenoController)
    assert reno.max_window == 8
    with pytest.raises(ValueError):
        build_controller("vegas", config)
    assert set(CC_KINDS) == {"fixed", "reno"}


# ------------------------------------------------------------------------ Reno
def test_reno_slow_start_doubles_per_window():
    reno = _reno(max_window=32)
    assert reno.state == "slow-start"
    assert reno.window() == 1
    reno.on_ack(1, 1.0)
    assert reno.window() == 2
    reno.on_ack(2, 2.0)
    assert reno.window() == 4
    reno.on_ack(4, 3.0)
    assert reno.window() == 8  # exponential growth per acked window


def test_reno_congestion_avoidance_grows_linearly():
    reno = _reno(max_window=32, initial_cwnd=8.0, initial_ssthresh=8.0)
    assert reno.state == "congestion-avoidance"
    # One full window of ACKs grows cwnd by ~1 segment.
    reno.on_ack(8, 1.0)
    assert reno.cwnd == pytest.approx(9.0)
    reno.on_ack(9, 2.0)
    assert reno.cwnd == pytest.approx(10.0)


def test_reno_window_is_capped_by_max_window():
    reno = _reno(max_window=4)
    for now in range(10):
        reno.on_ack(4, float(now))
    assert reno.window() == 4
    assert reno.cwnd == 4.0  # clamped, not just floored by window()


def test_reno_fast_recovery_inflates_and_deflates():
    reno = _reno(max_window=64, initial_cwnd=16.0, initial_ssthresh=8.0)
    reno.on_fast_retransmit(1.0)
    assert reno.state == "fast-recovery"
    assert reno.ssthresh == pytest.approx(8.0)
    assert reno.cwnd == pytest.approx(11.0)  # ssthresh + 3
    reno.on_duplicate_ack(1.1)
    reno.on_duplicate_ack(1.2)
    assert reno.cwnd == pytest.approx(13.0)  # inflation per dup ACK
    reno.on_ack(5, 2.0)  # new data acked: deflate
    assert not reno.in_fast_recovery
    assert reno.cwnd == pytest.approx(8.0)
    assert reno.state == "congestion-avoidance"


def test_reno_duplicate_acks_outside_recovery_do_nothing():
    reno = _reno(max_window=16, initial_cwnd=4.0)
    reno.on_duplicate_ack(1.0)
    assert reno.cwnd == pytest.approx(4.0)


def test_reno_timeout_collapses_to_one_and_backs_off():
    reno = _reno(max_window=32, initial_cwnd=20.0, initial_ssthresh=32.0)
    rto_before = reno.rto_s()
    reno.on_timeout(5.0)
    assert reno.cwnd == 1.0
    assert reno.window() == 1
    assert reno.ssthresh == pytest.approx(10.0)
    assert reno.state == "slow-start"
    assert reno.rto_s() >= 2.0 * rto_before - 1e-9
    # ssthresh never collapses below 2 segments.
    reno.on_timeout(6.0)
    assert reno.ssthresh == pytest.approx(2.0)


def test_reno_trajectory_records_and_truncates():
    reno = _reno(max_window=8)
    for now in range(5):
        reno.on_ack(1, float(now))
    times, cwnds = reno.trajectory.as_arrays()
    assert len(reno.trajectory) == 6  # initial sample + 5 ACKs
    assert times[0] == 0.0 and cwnds[0] == 1.0
    assert not reno.trajectory.truncated
    trajectory = CwndTrajectory()
    for i in range(MAX_CWND_SAMPLES + 10):
        trajectory.record(float(i), 1.0)
    assert len(trajectory) == MAX_CWND_SAMPLES
    assert trajectory.truncated


def test_reno_validates_arguments():
    with pytest.raises(ValueError):
        RenoController(max_window=0, timeout_s=3.0)
    with pytest.raises(ValueError):
        RenoController(max_window=4, timeout_s=3.0, initial_cwnd=0.5)


# ------------------------------------------------------------------ relay queue
def test_relay_queue_tail_drop():
    queue = RelayQueueConfig(capacity_packets=3)
    rng = np.random.default_rng(0)
    assert queue.admit(0, rng)
    assert queue.admit(2, rng)
    assert not queue.admit(3, rng)
    assert not queue.admit(10, rng)


def test_relay_queue_red_regions():
    queue = RelayQueueConfig(
        capacity_packets=10, red_min_fraction=0.5,
        red_max_fraction=0.9, red_max_p=1.0,
    )
    rng = np.random.default_rng(0)
    # Below the min threshold: always admitted, no RNG consumed.
    state = rng.bit_generator.state
    assert queue.admit(4, rng)
    assert rng.bit_generator.state == state
    # At or above the max threshold: always dropped.
    assert not queue.admit(9, rng)
    # In the ramp: probabilistic (with red_max_p=1.0 the drop probability
    # at fill=0.8 is 0.75, so both outcomes appear over a few draws).
    outcomes = {queue.admit(8, rng) for _ in range(64)}
    assert outcomes == {True, False}


def test_relay_queue_validation():
    with pytest.raises(ValueError):
        RelayQueueConfig(capacity_packets=0)
    with pytest.raises(ValueError):
        RelayQueueConfig(capacity_packets=4, red_min_fraction=0.9,
                         red_max_fraction=0.5)
    with pytest.raises(ValueError):
        RelayQueueConfig(capacity_packets=4, red_min_fraction=0.1,
                         red_max_fraction=1.5)
    with pytest.raises(ValueError):
        RelayQueueConfig(capacity_packets=4, red_min_fraction=0.1,
                         red_max_p=0.0)


# ------------------------------------------------------------------------ jain
def test_jain_fairness_index_extremes():
    assert jain_fairness_index([1.0, 1.0, 1.0, 1.0]) == pytest.approx(1.0)
    assert jain_fairness_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
    assert np.isnan(jain_fairness_index([]))
    assert np.isnan(jain_fairness_index([0.0, 0.0]))
    # Scale invariance.
    assert jain_fairness_index([1, 2, 3]) == pytest.approx(
        jain_fairness_index([10, 20, 30])
    )


# -------------------------------------------------------- sender + controller
def _gbn(window=8, timeout=3.0, retries=4) -> ArqConfig:
    return ArqConfig(window_size=window, seq_modulus=2 * window,
                     timeout_s=timeout, max_retries=retries, mode="go-back-n")


def test_sender_defaults_to_fixed_window_controller():
    sender = ArqSender("f", _gbn(window=8))
    assert isinstance(sender.controller, FixedWindow)
    assert sender.effective_window == 8


def test_effective_window_is_min_of_config_and_controller():
    reno = _reno(max_window=8)
    sender = ArqSender("f", _gbn(window=8), controller=reno)
    sender.offer_many(range(8))
    assert sender.effective_window == 1  # initial cwnd
    assert len(sender.window_transmissions(0.0)) == 1


def test_sender_grows_window_as_acks_arrive():
    config = _gbn(window=8)
    sender = ArqSender("f", config, controller=_reno(max_window=8))
    receiver = ArqReceiver("f", config)
    sender.offer_many(range(20))
    now, batches = 0.0, []
    while not sender.done:
        segments = sender.window_transmissions(now)
        batches.append(len(segments))
        for segment in segments:
            _, ack = receiver.on_data(segment)
            sender.on_ack(ack, now + 0.5)
        now += 1.0
    assert sender.done
    assert receiver.delivered == list(range(20))
    # Slow start: each lossless round roughly doubles the burst until the
    # window cap, so early batches are strictly increasing.
    assert batches[0] == 1
    assert max(batches) == 8


def test_karn_rule_excludes_retransmitted_segments():
    samples = []

    class Probe(RenoController):
        def on_rtt_sample(self, rtt_s, now_s):
            samples.append(rtt_s)
            super().on_rtt_sample(rtt_s, now_s)

    config = _gbn(window=4, timeout=2.0)
    sender = ArqSender("f", config, controller=Probe(max_window=4, timeout_s=2.0))
    receiver = ArqReceiver("f", config)
    sender.offer_many(range(2))
    seg0 = sender.window_transmissions(0.0)[0]
    resent = sender.on_timeout(2.0)  # seg0 lost: retransmit it
    assert [s.seq for s in resent] == [0]
    _, ack = receiver.on_data(resent[0])
    sender.on_ack(ack, 3.0)
    # The acked segment was retransmitted: its ambiguous RTT is never
    # sampled (Karn's rule).
    assert samples == []
    del seg0
    # The next segment goes through cleanly and does get sampled.
    seg1 = sender.window_transmissions(3.0)[0]
    _, ack = receiver.on_data(seg1)
    sender.on_ack(ack, 4.5)
    assert samples == [pytest.approx(1.5)]


def test_timeout_with_reno_resends_one_not_the_window():
    # Queue-overflow regime: the whole window is outstanding and lost.
    # The fixed controller re-floods all of it; Reno collapses to one
    # segment, which is exactly the retransmission storm the congestion
    # PR is about.
    config = _gbn(window=8, timeout=2.0)
    fixed = ArqSender("f", config)
    fixed.offer_many(range(8))
    fixed.window_transmissions(0.0)
    assert len(fixed.on_timeout(2.0)) == 8  # legacy full-window resend

    reno = ArqSender("f", config, controller=_reno(max_window=8, timeout=2.0))
    receiver = ArqReceiver("f", config)
    reno.offer_many(range(12))
    for now in (0.0, 1.0):  # two lossless rounds grow cwnd to 4
        for segment in reno.window_transmissions(now):
            _, ack = receiver.on_data(segment)
            reno.on_ack(ack, now + 0.5)
    burst = reno.window_transmissions(2.0)  # all lost
    assert len(burst) >= 4
    assert len(reno.on_timeout(10.0)) == 1  # collapse: only the base


def test_rto_backoff_spaces_out_retries_until_abort():
    config = _gbn(window=1, timeout=2.0, retries=3)
    sender = ArqSender("f", config, controller=_reno(max_window=1, timeout=2.0))
    sender.offer(0)
    sender.window_transmissions(0.0)
    deadlines = []
    now = 0.0
    while not sender.failed:
        now = sender.next_timeout_s()
        assert sender.on_timeout(now) or sender.failed
        if not sender.failed:
            deadlines.append(sender.next_timeout_s() - now)
    # Exponential backoff: every retry waits at least as long as the
    # previous one (monotone RTO under sustained loss).
    assert len(deadlines) == 3
    assert all(b >= a for a, b in zip(deadlines, deadlines[1:]))
    assert deadlines[-1] >= 2.0 * deadlines[0] - 1e-9
    # Max retries exhausted: the flow aborts and goes quiet.
    assert sender.failed and not sender.done
    assert sender.window_transmissions(now) == []
    assert sender.next_timeout_s() is None


# -------------------------------------------------------------- scheduler keys
def test_scheduler_key_orders_same_time_events():
    scheduler = Scheduler()
    fired = []
    scheduler.at(1.0, lambda: fired.append("z"), key=("n9", "n0"))
    scheduler.at(1.0, lambda: fired.append("a"), key=("n1", "n0"))
    scheduler.at(1.0, lambda: fired.append("default"))  # key=() sorts first
    scheduler.run()
    assert fired == ["default", "a", "z"]


def test_scheduler_key_makes_flow_timers_order_independent():
    def run(order):
        scheduler = Scheduler()
        fired = []
        for name in order:
            scheduler.at(
                2.0, lambda name=name: fired.append(name), key=(name, "n0")
            )
        scheduler.run()
        return fired

    assert run(["n3", "n1", "n2"]) == run(["n1", "n2", "n3"]) == ["n1", "n2", "n3"]


# ------------------------------------------------------------ scenario plumbing
def test_convergecast_sources_picks_farthest_nodes():
    topology = AcousticNetTopology.grid(1, 5, spacing_m=10.0)
    assert convergecast_sources(topology, 2, "n0") == ("n3", "n4")
    assert convergecast_sources(topology, 4, "n0") == ("n1", "n2", "n3", "n4")
    with pytest.raises(ValueError):
        convergecast_sources(topology, 5, "n0")
    with pytest.raises(ValueError):
        convergecast_sources(topology, 0, "n0")
    with pytest.raises(ValueError):
        convergecast_sources(topology, 1, "n99")


def test_net_scenario_validates_congestion_fields():
    with pytest.raises(ValueError):
        NetScenario(cc="vegas")
    with pytest.raises(ValueError):
        NetScenario(num_flows=0)
    with pytest.raises(ValueError):
        NetScenario(num_nodes=9, num_flows=9)
    with pytest.raises(ValueError):
        NetScenario(num_flows=4, traffic="sos")
    with pytest.raises(ValueError):
        NetScenario(num_flows=4, arq="none")
    with pytest.raises(ValueError):
        NetScenario(queue_capacity=0)
    described = NetScenario(num_flows=4, cc="reno").describe()
    assert "cc reno" in described and "4 flows" in described


def test_fixed_cc_report_schema_is_unchanged():
    # The compat contract: a legacy fixed-window run must not grow new
    # report keys (golden signatures compare to_dict() exactly).
    result = NetScenario(num_nodes=9, duration_s=60.0, seed=3).run()
    data = result.to_dict()
    for key in ("queue_drops", "jain_fairness_index", "flows",
                "aggregate_goodput_bps"):
        assert key not in data


def test_multiflow_run_reports_per_flow_counters():
    scenario = NetScenario(
        num_nodes=9, num_flows=4, cc="reno", queue_capacity=4,
        rate_msgs_per_s=0.02, duration_s=120.0, timeout_s=3.0, seed=5,
    )
    result = scenario.run()
    data = result.to_dict()
    assert data["offered"] > 0
    assert set(data) >= {"queue_drops", "jain_fairness_index",
                         "aggregate_goodput_bps", "flows"}
    flows = data["flows"]
    assert len(flows) >= 4
    sources = {row["source"] for row in flows.values()}
    assert len(sources) == 4  # one convergecast source per requested flow
    for row in flows.values():
        assert row["destination"] == "n0"
        assert row["offered"] >= row["delivered"] >= 0
        assert row["retransmissions"] >= 0
    # Delivered payloads reconcile between aggregate and per-flow views.
    assert sum(row["delivered"] for row in flows.values()) == data["delivered"]
    summary = result.describe()
    assert "jain" in summary and "queue drops" in summary


def test_aborted_epoch_restarts_and_pools_into_pair_fairness():
    # Drive a scenario harsh enough that some flow aborts, then check
    # that the pair keeps flowing under a fresh epoch and that fairness
    # pools the epochs per (source, destination) pair.
    scenario = NetScenario(
        num_nodes=9, num_flows=4, cc="reno", queue_capacity=2,
        rate_msgs_per_s=0.05, duration_s=300.0, timeout_s=2.0,
        max_retries=2, seed=7,
    )
    result = scenario.run()
    metrics = result.metrics
    assert result.aborted_flows > 0
    assert metrics.num_flows > 4  # aborted pairs re-opened as new epochs
    pair_bits = metrics.pair_delivered_bits()
    assert pair_bits.size <= 4
    assert metrics.jain_fairness() == pytest.approx(
        jain_fairness_index(pair_bits), nan_ok=True
    )


# ------------------------------------------------------- committed 24-flow gate
@pytest.fixture(scope="module")
def multiflow_fixture():
    data = json.loads(FIXTURE.read_text())
    scenario = NetScenario.from_dict(data["scenario"])
    results = {
        cc: scenario.replace(cc=cc).run() for cc in ("fixed", "reno")
    }
    return data["gates"], results


def test_committed_24flow_scenario_gates(multiflow_fixture):
    gates, results = multiflow_fixture
    fixed, reno = results["fixed"], results["reno"]
    jain_fixed = fixed.metrics.jain_fairness()
    jain_reno = reno.metrics.jain_fairness()
    # The headline CI gate: Reno keeps the 24 contending flows fair.
    assert jain_reno >= gates["jain_reno_min"]
    # The collapse: fixed-window service is captured by near flows ...
    assert jain_fixed <= gates["jain_fixed_max"]
    # ... and its tight constant timeout retransmits into multi-second
    # congested RTTs, a storm Reno's adaptive RTO avoids.
    ratio = fixed.total_retransmissions / max(1, reno.total_retransmissions)
    assert ratio >= gates["retransmission_ratio_min"]
    if gates["reno_pdr_at_least_fixed"]:
        assert (reno.metrics.packet_delivery_ratio
                >= fixed.metrics.packet_delivery_ratio)
    if gates["reno_goodput_at_least_fixed_at_common_horizon"]:
        # Goodput compared over a common horizon: the drain phases differ
        # (Reno's backed-off timers run longer), so each run's own
        # duration would dilute the slower one.
        horizon = max(fixed.duration_s, reno.duration_s)
        goodput = {
            cc: float(np.sum(results[cc].metrics.flow_delivered_bits())) / horizon
            for cc in results
        }
        assert goodput["reno"] >= goodput["fixed"]


def test_committed_24flow_scenario_is_deterministic(multiflow_fixture):
    _, results = multiflow_fixture
    rerun = NetScenario.from_dict(
        json.loads(FIXTURE.read_text())["scenario"]
    ).replace(cc="reno").run()
    assert rerun.to_dict() == results["reno"].to_dict()
