"""Tests for the multi-hop network simulator."""

import time

import numpy as np
import pytest

from repro.net.links import CalibratedLink, LinkCalibration, PhysicalLink
from repro.net.metrics import DeliveryRecord, NetworkMetrics
from repro.net.packet import BROADCAST
from repro.net.routing import (
    FloodingRouting,
    GreedyForwarding,
    StaticShortestPathRouting,
)
from repro.net.simulator import NetworkSimulator
from repro.net.topology import AcousticNetTopology
from repro.net.traffic import CBRTraffic, PoissonTraffic, SosBroadcastTraffic
from repro.net.transport import ArqConfig


def _lossless_link() -> CalibratedLink:
    return CalibratedLink(LinkCalibration(
        site_name="lake", distances_m=(1.0, 40.0),
        packet_error_rate=(0.0, 0.0), bitrate_bps=(1000.0, 1000.0),
    ))


def _line(num=4, spacing=8.0, comm_range=10.0):
    return AcousticNetTopology.line(num, spacing_m=spacing, comm_range_m=comm_range)


# ----------------------------------------------------------------- basic runs
def test_raw_unicast_multi_hop_delivery():
    simulator = NetworkSimulator(
        _line(4), StaticShortestPathRouting(), _lossless_link(), seed=1
    )
    simulator.send_message("n0", "n3", time_s=0.0)
    result = simulator.run()
    assert result.metrics.delivered == 1
    assert result.metrics.packet_delivery_ratio == 1.0
    record = result.metrics.records[0]
    assert record.hop_count == 3
    assert record.latency_s > 3 * 0.4  # at least three airtimes
    assert result.metrics.transmissions == 3
    assert result.routing_name == "shortest-path"
    assert result.link_name == "calibrated"


def test_greedy_multi_hop_agrees_with_shortest_path_on_a_line():
    for routing in (GreedyForwarding("distance"), StaticShortestPathRouting()):
        simulator = NetworkSimulator(_line(5), routing, _lossless_link(), seed=2)
        simulator.send_message("n0", "n4")
        result = simulator.run()
        assert result.metrics.packet_delivery_ratio == 1.0
        assert result.metrics.records[0].hop_count == 4


def test_flooding_broadcast_reaches_everyone_and_suppresses_duplicates():
    # Diagonal neighbours are audible (range 9 > 8.49 m), so carrier sense
    # can defer contending relays and the flood covers the grid.
    topology = AcousticNetTopology.grid(3, 3, spacing_m=6.0, comm_range_m=9.0)
    simulator = NetworkSimulator(
        topology, FloodingRouting(), _lossless_link(), seed=3
    )
    simulator.send_message("n0", BROADCAST)
    result = simulator.run()
    # One record per other node, all reached.
    assert result.metrics.offered == 8
    assert result.metrics.packet_delivery_ratio == 1.0
    assert result.metrics.duplicates_suppressed > 0
    assert result.metrics.max_hop_count >= 2


def test_hidden_terminals_defeat_carrier_sense():
    # At range 7 the centre node's only neighbours are mutually *hidden*
    # pairs (8.49 m apart): they cannot hear each other, their relayed
    # copies collide at the centre deterministically, and the flood falls
    # short -- the imperfect-carrier-sense effect the paper measures.
    topology = AcousticNetTopology.grid(3, 3, spacing_m=6.0, comm_range_m=7.0)
    simulator = NetworkSimulator(
        topology, FloodingRouting(), _lossless_link(), seed=3
    )
    simulator.send_message("n0", BROADCAST)
    result = simulator.run()
    assert result.metrics.collisions > 0
    assert result.metrics.packet_delivery_ratio < 1.0


def test_ttl_expiry_drops_instead_of_looping():
    simulator = NetworkSimulator(
        _line(5), StaticShortestPathRouting(), _lossless_link(), ttl=2, seed=4
    )
    simulator.send_message("n0", "n4")  # needs 4 hops, budget is 2
    result = simulator.run()
    assert result.metrics.delivered == 0
    assert result.metrics.ttl_drops == 1


def test_greedy_void_is_counted_not_hung():
    topology = AcousticNetTopology(comm_range_m=6.0)
    topology.add_node("src", 0.0, 0.0)
    topology.add_node("back", -5.0, 0.0)
    topology.add_node("dst", 20.0, 0.0)
    simulator = NetworkSimulator(
        topology, GreedyForwarding("distance"), _lossless_link(), seed=5
    )
    simulator.send_message("src", "dst")
    result = simulator.run()
    assert result.metrics.delivered == 0
    assert result.metrics.routing_voids == 1


# ------------------------------------------------------------------ transport
def test_arq_flow_delivers_across_hops():
    simulator = NetworkSimulator(
        _line(4), StaticShortestPathRouting(), _lossless_link(),
        arq=ArqConfig(window_size=3, seq_modulus=8, timeout_s=6.0), seed=6,
    )
    for index in range(5):
        simulator.send_message("n0", "n3", time_s=float(index))
    result = simulator.run()
    assert result.metrics.packet_delivery_ratio == 1.0
    assert result.metrics.offered == 5
    stats = list(result.sender_stats.values())
    assert len(stats) == 1
    assert stats[0].offered == 5
    assert stats[0].data_transmissions >= 5


def test_arq_recovers_lossy_links_that_raw_does_not():
    lossy = CalibratedLink(LinkCalibration(
        site_name="lake", distances_m=(1.0, 40.0),
        packet_error_rate=(0.35, 0.35), bitrate_bps=(1000.0, 1000.0),
    ))

    def run(arq):
        simulator = NetworkSimulator(
            _line(3), StaticShortestPathRouting(), lossy, arq=arq,
            collisions=False, seed=7,
        )
        for index in range(12):
            simulator.send_message("n0", "n2", time_s=12.0 * index)
        return simulator.run()

    raw = run(None)
    reliable = run(ArqConfig(window_size=2, seq_modulus=8, timeout_s=4.0,
                             max_retries=6))
    assert reliable.metrics.packet_delivery_ratio > raw.metrics.packet_delivery_ratio
    assert reliable.total_retransmissions > 0


def test_collision_then_retry_sequencing():
    # Two sources fire at the same instant at a common receiver: the first
    # receptions overlap and collide, then the ARQ timers (with jitter)
    # desynchronize the retries and both messages get through.
    topology = AcousticNetTopology(comm_range_m=10.0)
    topology.add_node("a", 0.0, 0.0)
    topology.add_node("b", 8.0, 0.0)
    topology.add_node("dst", 4.0, 3.0)
    simulator = NetworkSimulator(
        topology, GreedyForwarding("distance"), _lossless_link(),
        arq=ArqConfig(window_size=2, seq_modulus=8, timeout_s=3.0,
                      max_retries=8), seed=11,
    )
    simulator.send_message("a", "dst", time_s=0.0)
    simulator.send_message("b", "dst", time_s=0.0)
    result = simulator.run()
    assert result.metrics.collisions > 0           # the first attempts clashed
    assert result.metrics.packet_delivery_ratio == 1.0  # retries resolved it
    assert result.total_retransmissions > 0


def test_aborted_flows_are_reported():
    dead = CalibratedLink(LinkCalibration(
        site_name="lake", distances_m=(1.0, 40.0),
        packet_error_rate=(1.0, 1.0), bitrate_bps=(1000.0, 1000.0),
    ))
    simulator = NetworkSimulator(
        _line(2), StaticShortestPathRouting(), dead,
        arq=ArqConfig(window_size=2, seq_modulus=8, timeout_s=1.0,
                      max_retries=1), seed=8,
    )
    simulator.send_message("n0", "n1")
    result = simulator.run()
    assert result.metrics.delivered == 0
    assert result.aborted_flows == 1
    assert "aborted" in result.describe()
    assert result.to_dict()["aborted_flows"] == 1


def test_collisions_can_be_disabled():
    topology = AcousticNetTopology(comm_range_m=10.0)
    topology.add_node("a", 0.0, 0.0)
    topology.add_node("b", 8.0, 0.0)
    topology.add_node("dst", 4.0, 3.0)
    simulator = NetworkSimulator(
        topology, GreedyForwarding("distance"), _lossless_link(),
        collisions=False, seed=12,
    )
    simulator.send_message("a", "dst", time_s=0.0)
    simulator.send_message("b", "dst", time_s=0.0)
    result = simulator.run()
    assert result.metrics.collisions == 0
    assert result.metrics.packet_delivery_ratio == 1.0


# ------------------------------------------------------------- reproducibility
def test_same_seed_replays_identically():
    def run():
        simulator = NetworkSimulator(
            _line(5), GreedyForwarding("distance"), CalibratedLink(),
            arq=ArqConfig(), seed=42,
        )
        traffic = PoissonTraffic(0.05, 120.0, destination="n4")
        return simulator.run(traffic=traffic)

    first, second = run(), run()
    assert first.to_dict() == second.to_dict()
    assert first.num_events == second.num_events


def test_different_seeds_differ():
    def run(seed):
        simulator = NetworkSimulator(
            _line(5), GreedyForwarding("distance"), CalibratedLink(),
            arq=ArqConfig(), seed=seed,
        )
        return simulator.run(traffic=PoissonTraffic(0.05, 120.0, destination="n4"))

    assert run(1).to_dict() != run(2).to_dict()


def test_simulator_is_one_shot():
    simulator = NetworkSimulator(_line(3), FloodingRouting(), _lossless_link(), seed=1)
    simulator.run()
    with pytest.raises(RuntimeError):
        simulator.run()
    with pytest.raises(ValueError):
        NetworkSimulator(
            AcousticNetTopology.line(1, 5.0), FloodingRouting(), _lossless_link()
        )


def test_unknown_addresses_rejected():
    simulator = NetworkSimulator(_line(3), FloodingRouting(), _lossless_link(), seed=1)
    with pytest.raises(ValueError):
        simulator.send_message("ghost", "n0")
    with pytest.raises(ValueError):
        simulator.send_message("n0", "ghost")


# -------------------------------------------------------------------- traffic
def test_traffic_generators_drive_the_simulator():
    topology = _line(3)
    rng = np.random.default_rng(0)
    poisson = PoissonTraffic(0.1, 60.0, destination="n2").messages(topology, rng)
    assert poisson and all(m.destination == "n2" for m in poisson)
    assert all(0.0 <= m.time_s < 60.0 for m in poisson)
    assert poisson == sorted(poisson, key=lambda m: (m.time_s, m.source))

    cbr = CBRTraffic(10.0, 60.0, destination="n2").messages(topology, rng)
    assert len(cbr) == 12  # 2 sources x 6 messages
    sos = SosBroadcastTraffic("n0", times_s=(0.0, 30.0)).messages(topology, rng)
    assert [m.destination for m in sos] == [BROADCAST, BROADCAST]
    with pytest.raises(ValueError):
        SosBroadcastTraffic("ghost").messages(topology, rng)


def test_mobility_steps_change_the_topology_during_the_run():
    topology = AcousticNetTopology(comm_range_m=12.0)
    topology.add_node("n0", 0.0, 0.0, velocity_m_s=(0.5, 0.0, 0.0))
    topology.add_node("n1", 8.0, 0.0)
    before = topology.position("n0").x_m
    simulator = NetworkSimulator(
        topology, GreedyForwarding("distance"), _lossless_link(),
        mobility_interval_s=5.0, seed=9,
    )
    simulator.send_message("n0", "n1", time_s=0.0)
    simulator.send_message("n0", "n1", time_s=20.0)
    simulator.run()
    assert topology.position("n0").x_m != before


# -------------------------------------------------------------------- metrics
def test_metrics_empty_and_aggregates():
    metrics = NetworkMetrics()
    assert np.isnan(metrics.packet_delivery_ratio)
    assert np.isnan(metrics.mean_latency_s)
    assert metrics.max_hop_count == 0
    metrics.add(DeliveryRecord(0, "a", "b", 0.0, delivered_s=2.0, hop_count=2))
    metrics.add(DeliveryRecord(1, "a", "b", 1.0))  # lost
    assert metrics.packet_delivery_ratio == pytest.approx(0.5)
    assert metrics.mean_latency_s == pytest.approx(2.0)
    assert metrics.mean_hop_count == pytest.approx(2.0)
    assert metrics.goodput_bps(10.0, size_bits=16) == pytest.approx(1.6)
    metrics.tx_airtime_s = 2.0
    metrics.rx_airtime_s = 1.0
    assert metrics.energy_proxy_j == pytest.approx(2.8 * 2.0 + 1.3 * 1.0)
    data = metrics.to_dict()
    assert data["offered"] == 2 and data["delivered"] == 1


# ------------------------------------------------- acceptance: speed + fidelity
def test_fifty_node_greedy_scenario_is_fast():
    topology = AcousticNetTopology.grid(5, 10, spacing_m=8.0, comm_range_m=12.0)
    simulator = NetworkSimulator(
        topology, GreedyForwarding("distance"), CalibratedLink(),
        arq=ArqConfig(timeout_s=6.0), seed=7,
    )
    start = time.perf_counter()
    result = simulator.run(
        traffic=PoissonTraffic(0.01, 300.0, destination="n0")
    )
    elapsed = time.perf_counter() - start
    assert elapsed < 10.0  # acceptance bound; typically well under 1 s
    assert result.num_nodes == 50
    assert result.metrics.offered > 20
    assert result.metrics.max_hop_count >= 3
    assert np.isfinite(result.metrics.packet_delivery_ratio)
    assert np.isfinite(result.metrics.mean_latency_s)
    assert np.isfinite(result.metrics.mean_hop_count)


def test_calibrated_link_agrees_with_physical_link():
    # The same 5-node chain, the same CBR workload: the fast table model
    # must agree with the full PHY on delivery outcomes within statistical
    # tolerance -- this is what "calibrated" means.
    def run(link_model, seed):
        simulator = NetworkSimulator(
            _line(5, spacing=10.0, comm_range=12.0),
            StaticShortestPathRouting(), link_model,
            arq=ArqConfig(window_size=2, seq_modulus=8, timeout_s=8.0,
                          max_retries=4),
            seed=seed,
        )
        traffic = CBRTraffic(30.0, 120.0, sources=("n1",), destination="n4")
        return simulator.run(traffic=traffic)

    calibrated = run(CalibratedLink(), 21)
    physical = run(PhysicalLink(site="lake", seed=22), 21)
    pdr_gap = abs(
        calibrated.metrics.packet_delivery_ratio
        - physical.metrics.packet_delivery_ratio
    )
    assert pdr_gap <= 0.5
    # Both models route over the same chain: identical hop counts.
    if calibrated.metrics.delivered and physical.metrics.delivered:
        assert calibrated.metrics.max_hop_count == physical.metrics.max_hop_count
