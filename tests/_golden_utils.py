"""Shared helpers for the golden-equivalence test suites.

The golden tests compare fast implementations against retained references
on *randomized* inputs, so a failure report is only actionable if it
names the seed (and input shape) that produced it.  These wrappers raise
``AssertionError`` messages that contain the offending seed, the measured
maximum deviation versus the allowed tolerance, and a ready-to-paste
reproduction snippet -- turning "assert_allclose failed somewhere in a
loop over 10 seeds" into a one-command repro.
"""

from __future__ import annotations

import numpy as np


def _failure_message(
    label: str,
    seed,
    max_deviation: float,
    tolerance: float,
    detail: str = "",
) -> str:
    lines = [
        f"golden mismatch in {label!r}",
        f"  offending seed : {seed}",
        f"  max deviation  : {max_deviation:.3e} (allowed {tolerance:.3e})",
    ]
    if detail:
        lines.append(f"  inputs         : {detail}")
    lines.append(
        "  repro          : rng = np.random.default_rng("
        f"{seed!r}); rerun {label!r} with it"
    )
    return "\n".join(lines)


def assert_allclose_seeded(
    actual,
    desired,
    seed,
    label: str,
    atol: float = 0.0,
    rtol: float = 0.0,
    detail: str = "",
) -> None:
    """``np.allclose`` with a seed-carrying failure message.

    ``atol``/``rtol`` follow numpy semantics (``|a - d| <= atol + rtol *
    |d|``), including the default ``equal_nan=False`` -- a NaN anywhere is
    a failure, exactly like the plain ``np.allclose`` asserts this helper
    replaced (matching NaNs passing would open a hole in the golden gates:
    a regression producing NaN in both paths must not read as equivalence).
    On failure the raised ``AssertionError`` names the seed, the measured
    maximum deviation and the tolerance it exceeded.
    """
    actual = np.asarray(actual)
    desired = np.asarray(desired)
    if actual.shape != desired.shape:
        raise AssertionError(
            _failure_message(label, seed, float("inf"), atol,
                             detail=f"shape {actual.shape} != {desired.shape}"
                             + (f"; {detail}" if detail else ""))
        )
    if not np.allclose(actual, desired, atol=atol, rtol=rtol):
        deviation = np.abs(np.asarray(actual, dtype=float)
                           - np.asarray(desired, dtype=float))
        allowed = atol + rtol * np.abs(desired)
        # Report the element that overshoots its own per-element budget the
        # most (with rtol, the largest deviation may be a different --
        # passing -- element), so the message never reads as in-tolerance.
        over = deviation - allowed
        index = int(np.argmax(over))
        raise AssertionError(
            _failure_message(label, seed, float(deviation.flat[index]),
                             float(np.ravel(allowed)[index] if np.ndim(allowed)
                                   else allowed),
                             detail=detail)
            + f"\n  over budget by : {float(over.flat[index]):.3e}"
        )


def assert_bit_identical_seeded(actual, desired, seed, label: str, detail: str = "") -> None:
    """Exact array equality with a seed-carrying failure message.

    For decision-level comparisons (decoded bits, survivor paths) where
    the contract is bit-identity, not closeness.  ``equal_nan=True``
    mirrors the ``np.testing.assert_array_equal`` calls this replaced,
    which treat matching NaNs as equal by design.
    """
    actual = np.asarray(actual)
    desired = np.asarray(desired)
    if actual.shape != desired.shape or not np.array_equal(actual, desired, equal_nan=True):
        mismatches = (
            int(np.count_nonzero(actual != desired))
            if actual.shape == desired.shape
            else -1
        )
        raise AssertionError(
            _failure_message(
                label, seed, float(mismatches), 0.0,
                detail=(f"{mismatches} mismatching elements"
                        if mismatches >= 0
                        else f"shape {actual.shape} != {desired.shape}")
                + (f"; {detail}" if detail else ""),
            )
        )
