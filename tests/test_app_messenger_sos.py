"""Tests for the messenger and SoS beacon applications."""

import numpy as np
import pytest

from repro.app.codec import MessageCodec
from repro.app.messenger import MessageDeliveryReport, Messenger
from repro.app.sos import SosBeaconService
from repro.link.session import LinkSession


@pytest.fixture
def messenger(quiet_channel):
    session = LinkSession(quiet_channel, seed=21)
    return Messenger(session, seed=21)


def test_send_single_message(messenger):
    report = messenger.send_message_ids([7])
    assert isinstance(report, MessageDeliveryReport)
    assert report.attempts >= 1
    assert len(report.requested) == 1
    if report.success:
        assert [m.message_id for m in report.delivered] == [7]


def test_send_two_messages(messenger):
    report = messenger.send_message_ids([1, 199])
    assert len(report.requested) == 2
    assert report.packet_result.num_payload_bits == 16


def test_send_text_lookup(messenger):
    report = messenger.send_text("OK?")
    assert report.requested[0].text == "OK?"
    with pytest.raises(ValueError):
        messenger.send_text("this text is not in the catalog")


def test_latency_estimate_positive_when_delivered(messenger):
    report = messenger.send_message_ids([12])
    if report.success:
        assert report.latency_estimate_s > 0


def test_messenger_requires_matching_payload_size(quiet_channel):
    from repro.core.config import OFDMConfig, ProtocolConfig

    session = LinkSession(
        quiet_channel,
        modem=__import__("repro.core.modem", fromlist=["AquaModem"]).AquaModem(
            protocol_config=ProtocolConfig(payload_bits=8)
        ),
        seed=1,
    )
    with pytest.raises(ValueError):
        Messenger(session)


def test_messenger_rejects_negative_retransmissions(quiet_channel):
    session = LinkSession(quiet_channel, seed=2)
    with pytest.raises(ValueError):
        Messenger(session, max_retransmissions=-1)


def test_sos_service_roundtrip(quiet_channel):
    service = SosBeaconService(quiet_channel, bit_rate_bps=20, seed=3)
    reception = service.broadcast(user_id=42)
    assert reception.bit_errors == 0
    assert reception.user_id == 42
    assert reception.mean_confidence_db > 3.0


def test_sos_service_duration_accounting(quiet_channel):
    service = SosBeaconService(quiet_channel, bit_rate_bps=10, seed=4)
    assert service.beacon_duration_s == pytest.approx(0.6)


def test_sos_broadcast_many(quiet_channel):
    service = SosBeaconService(quiet_channel, bit_rate_bps=20, seed=5)
    receptions = service.broadcast_many(user_id=9, repetitions=3)
    assert len(receptions) == 3
    assert all(r.user_id == 9 for r in receptions)
    with pytest.raises(ValueError):
        service.broadcast_many(user_id=9, repetitions=0)
