"""Tests for the correlation primitives behind preamble detection."""

import numpy as np
import pytest

from repro.dsp.correlation import (
    normalized_cross_correlation,
    normalized_sliding_correlation,
    sliding_correlation_curve,
    sliding_correlation_peak,
)


def _repeated_segments(segment, signs):
    return np.concatenate([s * segment for s in signs])


def test_cross_correlation_peaks_at_template_position():
    rng = np.random.default_rng(0)
    template = rng.standard_normal(500)
    received = np.concatenate([np.zeros(300), template, np.zeros(200)])
    corr = normalized_cross_correlation(received, template)
    assert np.argmax(corr) == 300
    assert corr[300] == pytest.approx(1.0, abs=1e-6)


def test_cross_correlation_bounded_by_one():
    rng = np.random.default_rng(1)
    template = rng.standard_normal(200)
    received = rng.standard_normal(2000)
    corr = normalized_cross_correlation(received, template)
    assert np.max(np.abs(corr)) <= 1.0 + 1e-9


def test_cross_correlation_rejects_short_input():
    with pytest.raises(ValueError):
        normalized_cross_correlation(np.zeros(10), np.zeros(20))


def test_sliding_correlation_is_one_for_clean_preamble():
    rng = np.random.default_rng(2)
    signs = np.array([-1, 1, 1, 1, 1, 1, -1, 1], dtype=float)
    segment = rng.standard_normal(100)
    window = _repeated_segments(segment, signs)
    metric = normalized_sliding_correlation(window, 100, signs)
    assert metric == pytest.approx(1.0, rel=1e-6)


def test_sliding_correlation_tracks_snr():
    rng = np.random.default_rng(3)
    signs = np.ones(8)
    segment = rng.standard_normal(200)
    window = _repeated_segments(segment, signs)
    noise = rng.standard_normal(window.size)
    # Equal-power noise: metric should be near SNR/(SNR+1) = 0.5.
    noisy = window + noise * np.std(window) / np.std(noise)
    metric = normalized_sliding_correlation(noisy, 200, signs)
    assert 0.3 < metric < 0.7


def test_sliding_correlation_low_for_impulsive_noise():
    signs = np.array([-1, 1, 1, 1, 1, 1, -1, 1], dtype=float)
    window = np.zeros(800)
    window[100] = 50.0  # a single spike ("bubble")
    metric = normalized_sliding_correlation(window, 100, signs)
    assert abs(metric) < 0.2


def test_sliding_correlation_rejects_short_window():
    with pytest.raises(ValueError):
        normalized_sliding_correlation(np.zeros(100), 100, np.ones(8))


def test_sliding_correlation_curve_and_peak_find_offset():
    rng = np.random.default_rng(4)
    signs = np.array([-1, 1, 1, 1, 1, 1, -1, 1], dtype=float)
    segment = rng.standard_normal(120)
    preamble = _repeated_segments(segment, signs)
    received = np.concatenate([rng.standard_normal(500) * 0.01, preamble,
                               rng.standard_normal(300) * 0.01])
    offset, metric = sliding_correlation_peak(received, 400, 600, 120, signs, step=4)
    assert abs(offset - 500) <= 4
    assert metric > 0.9
    offsets, values = sliding_correlation_curve(received, 400, 600, 120, signs, step=4)
    assert offsets.size == values.size > 0


def test_sliding_correlation_peak_empty_range():
    offset, metric = sliding_correlation_peak(np.zeros(100), 90, 10, 50, np.ones(8))
    assert offset == -1
    assert metric == 0.0
