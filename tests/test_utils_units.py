"""Tests for dB / unit conversion helpers."""

import numpy as np
import pytest

from repro.utils.units import (
    amplitude_ratio_to_db,
    db_to_amplitude_ratio,
    db_to_power_ratio,
    power_ratio_to_db,
    signal_power,
    signal_rms,
    snr_db,
)


def test_power_ratio_roundtrip():
    assert power_ratio_to_db(db_to_power_ratio(13.0)) == pytest.approx(13.0)


def test_amplitude_ratio_roundtrip():
    assert amplitude_ratio_to_db(db_to_amplitude_ratio(-7.5)) == pytest.approx(-7.5)


def test_db_to_power_ratio_known_values():
    assert db_to_power_ratio(10.0) == pytest.approx(10.0)
    assert db_to_power_ratio(0.0) == pytest.approx(1.0)
    assert db_to_power_ratio(-10.0) == pytest.approx(0.1)


def test_db_to_amplitude_ratio_known_values():
    assert db_to_amplitude_ratio(20.0) == pytest.approx(10.0)
    assert db_to_amplitude_ratio(6.0) == pytest.approx(1.995, rel=1e-3)


def test_power_and_amplitude_conventions_differ():
    # A factor of 10 in amplitude is 20 dB but a factor of 10 in power is 10 dB.
    assert amplitude_ratio_to_db(10.0) == pytest.approx(2 * power_ratio_to_db(10.0))


def test_power_ratio_to_db_handles_arrays():
    values = np.array([1.0, 10.0, 100.0])
    out = power_ratio_to_db(values)
    assert isinstance(out, np.ndarray)
    np.testing.assert_allclose(out, [0.0, 10.0, 20.0])


def test_power_ratio_to_db_clamps_zero():
    # Zero power should not produce -inf or raise.
    assert np.isfinite(power_ratio_to_db(0.0))


def test_signal_power_of_unit_sine():
    t = np.linspace(0, 1, 48000, endpoint=False)
    sine = np.sin(2 * np.pi * 100 * t)
    assert signal_power(sine) == pytest.approx(0.5, rel=1e-3)
    assert signal_rms(sine) == pytest.approx(np.sqrt(0.5), rel=1e-3)


def test_signal_power_empty_is_zero():
    assert signal_power(np.array([])) == 0.0


def test_snr_db_of_equal_power_signals_is_zero():
    rng = np.random.default_rng(0)
    a = rng.standard_normal(10000)
    b = rng.standard_normal(10000)
    assert snr_db(a, b) == pytest.approx(0.0, abs=0.2)


def test_snr_db_scales_with_amplitude():
    rng = np.random.default_rng(0)
    noise = rng.standard_normal(10000)
    signal = 10.0 * rng.standard_normal(10000)
    assert snr_db(signal, noise) == pytest.approx(20.0, abs=0.3)
