"""Tests for repro.faults: schedules, liveness, injection, resilience."""

import dataclasses
import json

import numpy as np
import pytest

from repro.experiments.net_scenario import NetScenario
from repro.faults import (
    FAULTS_FORMAT,
    FAULTS_VERSION,
    ChurnProcess,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    NeighborLivenessTracker,
    load_schedule,
)
from repro.net.links import CalibratedLink, LinkCalibration
from repro.net.routing import FloodingRouting, StaticShortestPathRouting
from repro.net.simulator import NetworkSimulator
from repro.net.topology import AcousticNetTopology
from repro.net.traffic import PoissonTraffic, SosBroadcastTraffic
from repro.net.transport import ArqConfig
from repro.trace.capture import TraceRecorder


def _lossless_link() -> CalibratedLink:
    return CalibratedLink(LinkCalibration(
        site_name="lake", distances_m=(1.0, 40.0),
        packet_error_rate=(0.0, 0.0), bitrate_bps=(1000.0, 1000.0),
    ))


def _grid(n=3, spacing=8.0, comm_range=12.0):
    topology = AcousticNetTopology(comm_range_m=comm_range)
    for index in range(n * n):
        topology.add_node(
            f"n{index}", (index % n) * spacing, (index // n) * spacing, 1.0
        )
    return topology


# ---------------------------------------------------------------- schedule
def test_schedule_round_trips_through_canonical_json(tmp_path):
    schedule = FaultSchedule(
        events=(
            FaultEvent("crash", 30.0, node="n3", duration_s=60.0),
            FaultEvent("link-degrade", 10.0, node="n0", peer="n1",
                       duration_s=40.0, snr_penalty_db=3.0),
            FaultEvent("noise-burst", 5.0, duration_s=20.0, per_inflation=0.3),
            FaultEvent("energy-deplete", 0.0, node="n2", energy_budget_j=5.0),
        ),
        churn=ChurnProcess(rate_per_node_per_s=0.01, mean_downtime_s=30.0,
                           end_s=200.0, seed=7, protect=("n0",)),
        repair=False, beacon_interval_s=5.0, miss_threshold=2, seed=11,
    )
    assert FaultSchedule.from_json(schedule.to_json()) == schedule
    data = schedule.to_dict()
    assert data["format"] == FAULTS_FORMAT
    assert data["version"] == FAULTS_VERSION
    path = tmp_path / "sched.json"
    schedule.save(path)
    assert load_schedule(path) == schedule


def test_schedule_rejects_foreign_and_wrong_version_documents():
    with pytest.raises(ValueError, match="not a repro.faults document"):
        FaultSchedule.from_dict({"format": "other", "version": 1})
    with pytest.raises(ValueError, match="unsupported fault-schedule version"):
        FaultSchedule.from_dict({"format": FAULTS_FORMAT, "version": 99})


def test_event_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultEvent("melt", 0.0)
    with pytest.raises(ValueError, match="need a node"):
        FaultEvent("crash", 0.0)
    with pytest.raises(ValueError, match="need a node and a peer"):
        FaultEvent("link-blackout", 0.0, node="n0", duration_s=5.0)
    with pytest.raises(ValueError, match="duration_s > 0"):
        FaultEvent("noise-burst", 0.0)
    with pytest.raises(ValueError, match="energy_budget_j > 0"):
        FaultEvent("energy-deplete", 0.0, node="n1")
    with pytest.raises(ValueError, match="per_inflation"):
        FaultEvent("noise-burst", 0.0, duration_s=1.0, per_inflation=1.5)


def test_event_inflation_semantics():
    blackout = FaultEvent("link-blackout", 0.0, node="a", peer="b", duration_s=1.0)
    assert blackout.inflation == 1.0
    direct = FaultEvent("link-degrade", 0.0, node="a", peer="b",
                        duration_s=1.0, per_inflation=0.25)
    assert direct.inflation == 0.25
    snr = FaultEvent("link-degrade", 0.0, node="a", peer="b",
                     duration_s=1.0, snr_penalty_db=3.0)
    assert snr.inflation == pytest.approx(1.0 - 10.0 ** -0.3)


def test_churn_expansion_is_seed_deterministic_and_respects_protection():
    churn = ChurnProcess(rate_per_node_per_s=0.02, mean_downtime_s=40.0,
                         end_s=500.0, seed=5, protect=("n0", "n3"))
    names = tuple(f"n{i}" for i in range(6))
    first = churn.expand(names)
    assert first == churn.expand(names)
    assert first  # dense enough to actually produce events
    assert all(event.kind == "crash" and event.duration_s > 0 for event in first)
    assert {event.node for event in first} <= set(names) - {"n0", "n3"}
    assert all(
        event.time_s <= later.time_s for event, later in zip(first, first[1:])
    )
    # A different seed reshuffles the draws.
    assert dataclasses.replace(churn, seed=6).expand(names) != first


def test_schedule_expand_merges_explicit_and_churn_events():
    schedule = FaultSchedule(
        events=(FaultEvent("crash", 1.0, node="n1", duration_s=2.0),),
        churn=ChurnProcess(rate_per_node_per_s=0.05, mean_downtime_s=10.0,
                           end_s=100.0, seed=1),
    )
    names = ("n0", "n1", "n2")
    expanded = schedule.expand(names)
    assert len(expanded) > 1
    assert FaultEvent("crash", 1.0, node="n1", duration_s=2.0) in expanded
    assert not schedule.is_empty
    assert FaultSchedule().is_empty
    assert schedule.with_repair(False).repair is False
    assert schedule.with_repair(False).events == schedule.events


# ---------------------------------------------------------------- liveness
def test_tracker_declares_dead_after_miss_threshold_and_rediscovers():
    tracker = NeighborLivenessTracker(("a", "b", "c"), 10.0, 3)
    assert tracker.detection_delay_s == 30.0
    # b goes silent at t=0; threshold crossed at t>=30.
    assert tracker.tick(10.0, {"b"}) == ([], [])
    assert tracker.tick(20.0, {"b"}) == ([], [])
    dead, alive = tracker.tick(30.0, {"b"})
    assert dead == ["b"] and alive == []
    assert tracker.suspected_dead == frozenset({"b"})
    # still down: no duplicate declaration
    assert tracker.tick(40.0, {"b"}) == ([], [])
    # b beacons again: rediscovered immediately
    dead, alive = tracker.tick(50.0, set())
    assert dead == [] and alive == ["b"]
    assert tracker.suspected_dead == frozenset()


def test_tracker_short_outage_below_threshold_is_never_declared():
    tracker = NeighborLivenessTracker(("a", "b"), 10.0, 3)
    tracker.tick(10.0, {"b"})
    tracker.tick(20.0, {"b"})
    assert tracker.tick(30.0, set()) == ([], [])  # recovered just in time
    assert tracker.suspected_dead == frozenset()


def test_tracker_validation():
    with pytest.raises(ValueError):
        NeighborLivenessTracker(("a",), 0.0, 3)
    with pytest.raises(ValueError):
        NeighborLivenessTracker(("a",), 10.0, 0)


# ----------------------------------------------------- empty-schedule no-op
def test_empty_schedule_is_byte_identical_to_no_faults():
    def run(faults):
        simulator = NetworkSimulator(
            _grid(3), StaticShortestPathRouting(), _lossless_link(), seed=5,
            arq=ArqConfig(mode="go-back-n"), faults=faults,
        )
        traffic = PoissonTraffic(rate_msgs_per_s=0.05, duration_s=200.0,
                                 sources=("n0",), destination="n8")
        return simulator.run(traffic=traffic, until_s=2000.0)

    base = run(None).metrics.to_dict()
    empty = run(FaultInjector(FaultSchedule())).metrics.to_dict()
    assert json.dumps(base, sort_keys=True) == json.dumps(empty, sort_keys=True)
    assert "resilience_enabled" not in json.dumps(base)
    assert "drop_reasons" not in base


def test_injector_rejects_unknown_node_names():
    schedule = FaultSchedule(
        events=(FaultEvent("crash", 1.0, node="ghost"),)
    )
    simulator = NetworkSimulator(
        _grid(3), StaticShortestPathRouting(), _lossless_link(), seed=1,
        faults=FaultInjector(schedule),
    )
    simulator.send_message("n0", "n8")
    with pytest.raises(ValueError, match="unknown node 'ghost'"):
        simulator.run()


# ------------------------------------------------------- crash and recovery
def _run_grid(schedule, seed=5, rate=0.08, duration=400.0):
    faults = FaultInjector(schedule) if schedule is not None else None
    simulator = NetworkSimulator(
        _grid(3), StaticShortestPathRouting(), _lossless_link(), seed=seed,
        arq=ArqConfig(mode="go-back-n"), faults=faults,
    )
    traffic = PoissonTraffic(rate_msgs_per_s=rate, duration_s=duration,
                             sources=("n0",), destination="n8")
    return simulator.run(traffic=traffic, until_s=4000.0)


def test_crash_recovery_repair_cycle_and_dominance():
    schedule = FaultSchedule(
        events=(FaultEvent("crash", 100.0, node="n4", duration_s=150.0),),
        beacon_interval_s=10.0, miss_threshold=3,
    )
    on = _run_grid(schedule).metrics
    off = _run_grid(schedule.with_repair(False)).metrics
    assert on.resilience_enabled and off.resilience_enabled
    assert on.node_crashes == off.node_crashes == 1
    assert on.node_recoveries == off.node_recoveries == 1
    # Repair observed the crash: exactly one eviction, detected one
    # detection-delay after the crash (first tick at/after crash+30).
    assert len(on.repair_times_s) == 1
    assert 30.0 <= on.mean_time_to_repair_s <= 40.0
    assert off.repair_times_s == []
    # Routing around the evicted relay strictly beats burning retries
    # into it for the whole outage.
    assert on.packet_delivery_ratio > off.packet_delivery_ratio
    assert on.to_dict()["repairs"] == 1
    assert "mean time-to-repair" in on.summary()


def test_same_seed_fault_runs_are_bit_identical():
    schedule = FaultSchedule(
        events=(FaultEvent("crash", 100.0, node="n4", duration_s=150.0),
                FaultEvent("noise-burst", 50.0, duration_s=60.0,
                           per_inflation=0.3)),
        seed=9,
    )
    first = _run_grid(schedule).metrics.to_dict()
    second = _run_grid(schedule).metrics.to_dict()
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


# ------------------------------------------------------------- link windows
def test_link_blackout_severs_the_pair_for_the_window():
    topology = AcousticNetTopology.line(3, spacing_m=8.0, comm_range_m=10.0)
    schedule = FaultSchedule(
        events=(FaultEvent("link-blackout", 0.0, node="n1", peer="n2",
                           duration_s=100.0),),
        repair=False,
    )
    simulator = NetworkSimulator(
        topology, StaticShortestPathRouting(), _lossless_link(), seed=1,
        faults=FaultInjector(schedule),
    )
    simulator.send_message("n0", "n2", time_s=1.0)    # inside the window
    simulator.send_message("n0", "n2", time_s=150.0)  # after it closes
    result = simulator.run(until_s=400.0)
    assert result.metrics.delivered == 1
    assert result.metrics.link_drops >= 1


def test_noise_burst_inflates_loss_from_the_injector_rng():
    def run(seed):
        schedule = FaultSchedule(
            events=(FaultEvent("noise-burst", 0.0, duration_s=500.0,
                               per_inflation=0.5),),
            repair=False, seed=seed,
        )
        topology = AcousticNetTopology.line(2, spacing_m=8.0, comm_range_m=10.0)
        simulator = NetworkSimulator(
            topology, StaticShortestPathRouting(), _lossless_link(), seed=1,
            faults=FaultInjector(schedule),
        )
        traffic = PoissonTraffic(rate_msgs_per_s=0.2, duration_s=400.0,
                                 sources=("n0",), destination="n1")
        return simulator.run(traffic=traffic, until_s=600.0).metrics

    metrics = run(3)
    assert 0.2 < metrics.packet_delivery_ratio < 0.8
    assert metrics.link_drops > 0
    # The draws come from the schedule seed, not the simulation seed.
    assert run(3).link_drops == metrics.link_drops
    assert run(4).link_drops != metrics.link_drops


def test_overlapping_windows_combine_independently():
    schedule = FaultSchedule(
        events=(FaultEvent("link-degrade", 0.0, node="a", peer="b",
                           duration_s=10.0, per_inflation=0.5),
                FaultEvent("noise-burst", 0.0, duration_s=10.0,
                           per_inflation=0.5)),
        repair=False,
    )
    injector = FaultInjector(schedule)
    topology = AcousticNetTopology(comm_range_m=10.0)
    topology.add_node("a", 0.0, 0.0, 1.0)
    topology.add_node("b", 5.0, 0.0, 1.0)
    simulator = NetworkSimulator(
        topology, StaticShortestPathRouting(), _lossless_link(), seed=1,
        faults=injector,
    )
    simulator.send_message("a", "b", time_s=1.0)
    # Stop inside the window so both window-start events have fired but
    # neither window-end has.
    simulator.run(until_s=5.0)
    # Both windows cover (a, b): 1 - (1-.5)(1-.5) = 0.75.
    assert injector._inflation("a", "b") == pytest.approx(0.75)
    # Only the burst covers an unrelated pair.
    assert injector._inflation("a", "z") == pytest.approx(0.5)


# --------------------------------------------------------- energy depletion
def test_energy_depletion_shuts_the_node_down_once():
    schedule = FaultSchedule(
        events=(FaultEvent("energy-deplete", 0.0, node="n1",
                           energy_budget_j=2.0),),
        repair=False,
    )
    topology = AcousticNetTopology.line(3, spacing_m=8.0, comm_range_m=10.0)
    simulator = NetworkSimulator(
        topology, StaticShortestPathRouting(), _lossless_link(), seed=1,
        faults=FaultInjector(schedule),
    )
    traffic = PoissonTraffic(rate_msgs_per_s=0.2, duration_s=400.0,
                             sources=("n0",), destination="n2")
    metrics = simulator.run(traffic=traffic, until_s=600.0).metrics
    assert metrics.node_crashes == 1
    assert metrics.node_recoveries == 0
    assert metrics.delivered < metrics.offered


# ------------------------------------------------------------ abort reasons
def test_flows_to_an_observed_dead_destination_abort_with_reason():
    schedule = FaultSchedule(
        events=(FaultEvent("crash", 50.0, node="n8"),),  # permanent
        beacon_interval_s=10.0, miss_threshold=2,
    )
    recorder = TraceRecorder()
    simulator = NetworkSimulator(
        _grid(3), StaticShortestPathRouting(), _lossless_link(), seed=5,
        arq=ArqConfig(mode="go-back-n"), observer=recorder,
        faults=FaultInjector(schedule),
    )
    traffic = PoissonTraffic(rate_msgs_per_s=0.1, duration_s=300.0,
                             sources=("n0",), destination="n8")
    metrics = simulator.run(traffic=traffic, until_s=2000.0).metrics
    assert metrics.abort_reasons.get("dest-dead", 0) >= 1
    # Messages offered after the death are refused up front and recorded
    # as dest-dead drops, not leaked as forever-pending payloads.
    assert metrics.drop_reasons.get("dest-dead", 0) >= 1
    abort_events = [e for e in recorder.events if e.event == "abort"]
    assert any(e.reason == "dest-dead" for e in abort_events)
    drop_events = [e for e in recorder.events if e.event == "drop"]
    assert any(e.reason == "dest-dead" for e in drop_events)


def test_destination_death_mid_flight_attributes_lost_segments_to_the_flow():
    # No repair: the sender burns its whole retry budget into the dead
    # destination; every in-flight payload must come back as that flow's
    # loss, not linger as pending.
    schedule = FaultSchedule(
        events=(FaultEvent("crash", 6.0, node="n2"),),
        repair=False,
    )
    topology = AcousticNetTopology.line(3, spacing_m=8.0, comm_range_m=10.0)
    simulator = NetworkSimulator(
        topology, StaticShortestPathRouting(), _lossless_link(), seed=2,
        arq=ArqConfig(mode="go-back-n"), flow_accounting=True,
        faults=FaultInjector(schedule),
    )
    for t in range(8):
        simulator.send_message("n0", "n2", time_s=float(t))
    metrics = simulator.run(until_s=3000.0).metrics
    flows = metrics.per_flow()
    assert flows, "flow accounting must be on"
    total_lost = sum(flow["lost"] for flow in flows.values())
    assert total_lost >= 1
    assert metrics.delivered + total_lost == metrics.offered
    # The retry-exhaustion abort is refined to dest-dead because the
    # destination is physically down when the budget runs out.
    assert metrics.abort_reasons.get("dest-dead", 0) >= 1
    reasons = dict(metrics.drop_reasons)
    assert sum(reasons.values()) == total_lost
    assert reasons.get("dest-dead", 0) >= 1


def test_relay_death_without_repair_aborts_with_plain_max_retry():
    # The relay dies but the destination is alive and static routing
    # still believes the route exists, so the abort stays max-retry.
    schedule = FaultSchedule(
        events=(FaultEvent("crash", 2.0, node="n1"),),
        repair=False,
    )
    topology = AcousticNetTopology.line(3, spacing_m=8.0, comm_range_m=10.0)
    simulator = NetworkSimulator(
        topology, StaticShortestPathRouting(), _lossless_link(), seed=2,
        arq=ArqConfig(mode="go-back-n"), faults=FaultInjector(schedule),
    )
    simulator.send_message("n0", "n2", time_s=5.0)
    metrics = simulator.run(until_s=3000.0).metrics
    assert metrics.delivered == 0
    assert metrics.abort_reasons == {"max-retry": 1}


# ------------------------------------------------------------- SOS re-flood
def test_sos_refloods_reach_a_recovered_node_only_with_repair():
    schedule = FaultSchedule(
        events=(FaultEvent("crash", 5.0, node="n8", duration_s=100.0),),
        beacon_interval_s=10.0, miss_threshold=2,
    )

    def run(repair):
        simulator = NetworkSimulator(
            _grid(3), FloodingRouting(), _lossless_link(), seed=2,
            faults=FaultInjector(schedule.with_repair(repair)),
        )
        return simulator.run(
            traffic=SosBroadcastTraffic("n0", times_s=(50.0,)), until_s=400.0
        ).metrics

    with_repair = run(True)
    without = run(False)
    # 8 potential receivers; n8 is down during the flood.  Only the
    # repair path re-floods after its recovery is rediscovered.
    assert with_repair.delivered == 8
    assert without.delivered == 7


# --------------------------------------------------------- committed fixture
def test_committed_churn_fixture_is_deterministic_and_repair_dominates():
    schedule = load_schedule("tests/data/faults_churn_24node.json")
    assert not schedule.is_empty
    base = NetScenario(
        num_nodes=24, topology="grid", routing="shortest-path",
        arq="go-back-n", traffic="poisson", rate_msgs_per_s=0.03,
        duration_s=300.0, destination="n23", seed=7,
    )
    on = base.with_faults(schedule).run().metrics
    again = base.with_faults(schedule).run().metrics
    assert (
        json.dumps(on.to_dict(), sort_keys=True)
        == json.dumps(again.to_dict(), sort_keys=True)
    )
    off = base.with_faults(schedule.with_repair(False)).run().metrics
    assert on.packet_delivery_ratio > off.packet_delivery_ratio
    assert on.node_crashes == off.node_crashes > 0
    assert len(on.repair_times_s) > 0
    assert off.repair_times_s == []


# ------------------------------------------------------------ scenario layer
def test_net_scenario_fault_round_trip_and_hash():
    schedule = FaultSchedule(
        events=(FaultEvent("crash", 30.0, node="n4", duration_s=60.0),)
    )
    scenario = NetScenario(num_nodes=9, routing="shortest-path", seed=3)
    with_faults = scenario.with_faults(schedule)
    assert with_faults.fault_schedule() == schedule
    assert NetScenario.from_dict(with_faults.to_dict()) == with_faults
    assert with_faults.scenario_hash() != scenario.scenario_hash()
    assert "faults" in with_faults.describe()
    assert scenario.fault_schedule() is None
    with pytest.raises(ValueError):
        NetScenario(faults_json="{}")
    metrics = with_faults.run().metrics
    assert metrics.node_crashes == 1
