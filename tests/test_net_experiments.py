"""Tests for NetScenario, the experiments wiring and the net CLI."""

import json

import pytest

from repro.cli import main
from repro.experiments import NetScenario, run_net_scenario
from repro.net.simulator import NetworkResult


def test_net_scenario_validation():
    with pytest.raises(ValueError):
        NetScenario(site="atlantis")
    with pytest.raises(ValueError):
        NetScenario(topology="ring")
    with pytest.raises(ValueError):
        NetScenario(routing="ospf")
    with pytest.raises(ValueError):
        NetScenario(link="fiber")
    with pytest.raises(ValueError):
        NetScenario(arq="tcp")
    with pytest.raises(ValueError):
        NetScenario(traffic="bursty")
    with pytest.raises(ValueError):
        NetScenario(num_nodes=1)
    with pytest.raises(ValueError):
        NetScenario(duration_s=0.0)
    with pytest.raises(ValueError):
        NetScenario(num_nodes=4, destination="n9")
    # Depth-greedy only moves packets shallower: ACKs cannot return.
    with pytest.raises(ValueError):
        NetScenario(routing="greedy-depth", arq="go-back-n")
    assert NetScenario(routing="greedy-depth", arq="none").routing == "greedy-depth"


def test_net_scenario_builders():
    scenario = NetScenario(num_nodes=6, topology="line", spacing_m=5.0,
                           comm_range_m=6.0)
    topology = scenario.build_topology()
    assert topology.num_nodes == 6
    assert topology.distance_m("n0", "n5") == pytest.approx(25.0)

    grid = NetScenario(num_nodes=7, topology="grid", spacing_m=4.0)
    assert grid.build_topology().num_nodes == 7

    random = NetScenario(num_nodes=10, topology="random", seed=3)
    assert random.build_topology().num_nodes == 10

    assert NetScenario(link="physical").build_link_model().name == "physical"
    assert NetScenario(link="calibrated").build_link_model().name == "calibrated"


def test_net_scenario_hash_dict_roundtrip_and_describe():
    scenario = NetScenario(num_nodes=12, routing="flooding", label="demo")
    rebuilt = NetScenario.from_dict(scenario.to_dict())
    assert rebuilt == scenario
    assert rebuilt.scenario_hash() == scenario.scenario_hash()
    assert scenario.replace(seed=9).scenario_hash() != scenario.scenario_hash()
    description = scenario.describe()
    assert "demo" in description and "flooding" in description


def test_net_scenario_runs_and_is_deterministic():
    scenario = NetScenario(
        num_nodes=9, routing="greedy", arq="selective-repeat",
        duration_s=60.0, rate_msgs_per_s=0.02, destination="n0", seed=13,
    )
    first = run_net_scenario(scenario)
    second = scenario.run()
    assert isinstance(first, NetworkResult)
    assert first.to_dict() == second.to_dict()
    assert first.metrics.offered > 0


def test_net_scenario_sos_traffic():
    result = NetScenario(
        num_nodes=6, routing="flooding", arq="none", traffic="sos",
        duration_s=61.0, comm_range_m=14.0, seed=2,
    ).run()
    # Three beacons (t=0/30/60) times five potential receivers.
    assert result.metrics.offered == 15
    assert result.metrics.packet_delivery_ratio > 0.5


def test_cli_net_prints_report(capsys):
    exit_code = main([
        "net", "--nodes", "6", "--topology", "line", "--spacing", "6",
        "--range", "8", "--routing", "shortest-path", "--duration", "40",
        "--rate", "0.05", "--destination", "n5", "--seed", "3",
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "PDR" in captured.out
    assert "hop count" in captured.out
    assert "shortest-path" in captured.out


def test_cli_net_writes_json(tmp_path, capsys):
    path = tmp_path / "net.json"
    exit_code = main([
        "net", "--nodes", "5", "--topology", "line", "--spacing", "6",
        "--range", "8", "--duration", "30", "--rate", "0.05",
        "--destination", "n0", "--seed", "1", "--json", str(path),
    ])
    capsys.readouterr()
    assert exit_code == 0
    data = json.loads(path.read_text())
    assert data["num_nodes"] == 5
    assert "packet_delivery_ratio" in data
    assert data["routing"] == "greedy"


def test_cli_net_rejects_bad_destination(capsys):
    exit_code = main([
        "net", "--nodes", "4", "--destination", "n99", "--seed", "1",
    ])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "error" in captured.err


def test_calibration_packets_per_point_requires_calibrated_link():
    with pytest.raises(ValueError, match="calibrated"):
        NetScenario(link="physical", calibration_packets_per_point=4)
    with pytest.raises(ValueError, match="at least 1"):
        NetScenario(calibration_packets_per_point=0)
