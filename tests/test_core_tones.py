"""Tests for single-tone device ID / ACK encoding."""

import numpy as np
import pytest

from repro.core.config import OFDMConfig
from repro.core.tones import ToneCodec


@pytest.fixture(scope="module")
def codec():
    return ToneCodec()


CONFIG = OFDMConfig()


def test_max_devices_matches_subcarrier_count(codec):
    assert codec.max_devices == 60


def test_ack_bin_is_at_one_kilohertz(codec):
    assert codec.ack_bin == CONFIG.first_data_bin
    assert CONFIG.bin_frequency_hz(codec.ack_bin) == pytest.approx(1000.0)


def test_id_roundtrip_all_values(codec):
    for device_id in range(0, 60, 7):
        symbol = codec.encode_id(device_id)
        result = codec.decode(symbol)
        assert result.value == device_id
        assert result.dominance > 0.95


def test_id_roundtrip_with_noise(codec, rng):
    symbol = codec.encode_id(37)
    noisy = symbol + 0.1 * rng.standard_normal(symbol.size)
    result = codec.decode(noisy)
    assert result.value == 37


def test_ack_roundtrip(codec):
    result = codec.decode(codec.encode_ack())
    assert result.is_ack
    assert result.value == 0


def test_id_zero_is_also_the_ack_bin(codec):
    """Device id 0 and ACK share the 1 kHz bin by construction."""
    result = codec.decode(codec.encode_id(0))
    assert result.is_ack


def test_encode_id_rejects_out_of_range(codec):
    with pytest.raises(ValueError):
        codec.encode_id(-1)
    with pytest.raises(ValueError):
        codec.encode_id(60)


def test_symbol_length(codec):
    assert codec.encode_id(5).size == CONFIG.extended_symbol_length


def test_dominance_degrades_with_heavy_noise(codec, rng):
    symbol = codec.encode_id(10)
    noisy = symbol + 2.0 * rng.standard_normal(symbol.size)
    result = codec.decode(noisy)
    assert result.dominance < 0.9
