"""Tests for the per-hop link models and the PHY calibration."""

import numpy as np
import pytest

from repro.net.links import (
    DEFAULT_LAKE_CALIBRATION,
    CalibratedLink,
    LinkCalibration,
    PhysicalLink,
    calibrate_from_phy,
)


def _table(per=(0.0, 0.5), bitrate=(1000.0, 500.0)) -> LinkCalibration:
    return LinkCalibration(
        site_name="lake", distances_m=(5.0, 15.0),
        packet_error_rate=per, bitrate_bps=bitrate,
    )


def test_calibration_validation():
    with pytest.raises(ValueError):
        LinkCalibration("lake", (), (), ())
    with pytest.raises(ValueError):
        LinkCalibration("lake", (5.0, 2.0), (0.0, 0.0), (1.0, 1.0))
    with pytest.raises(ValueError):
        LinkCalibration("lake", (2.0, 5.0), (0.0,), (1.0, 1.0))
    with pytest.raises(ValueError):
        LinkCalibration("lake", (2.0, 5.0), (0.0, 1.5), (1.0, 1.0))


def test_calibration_interpolates_and_clips():
    table = _table()
    assert table.per_at(5.0) == pytest.approx(0.0)
    assert table.per_at(10.0) == pytest.approx(0.25)
    assert table.per_at(100.0) == pytest.approx(0.5)  # clipped at the far end
    assert table.bitrate_at(10.0) == pytest.approx(750.0)
    with pytest.raises(ValueError):
        table.per_at(0.0)


def test_calibration_dict_roundtrip():
    table = _table()
    rebuilt = LinkCalibration.from_dict(table.to_dict())
    assert rebuilt == table


def test_calibrated_link_respects_the_table():
    rng = np.random.default_rng(0)
    sure = CalibratedLink(_table(per=(0.0, 0.0)))
    assert all(sure.deliver(10.0, rng).delivered for _ in range(50))
    never = CalibratedLink(_table(per=(1.0, 1.0)))
    assert not any(never.deliver(10.0, rng).delivered for _ in range(50))
    outcome = sure.deliver(10.0, rng)
    assert outcome.bitrate_bps == pytest.approx(750.0)
    assert outcome.packet_error_rate == pytest.approx(0.0)


def test_calibrated_link_airtime_grows_with_size_and_distance():
    link = CalibratedLink(_table())
    assert link.airtime_s(160, 5.0) > link.airtime_s(16, 5.0)
    # The far end of the table has half the bitrate: longer airtime.
    assert link.airtime_s(160, 15.0) > link.airtime_s(160, 5.0)


def test_default_calibration_is_plausible():
    table = DEFAULT_LAKE_CALIBRATION
    assert table.site_name == "lake"
    assert table.per_at(2.0) == pytest.approx(0.0)
    assert 0.0 < table.per_at(10.0) < 0.5
    # Band adaptation retreats to lower rates as the range grows.
    assert table.bitrate_at(25.0) < table.bitrate_at(2.0)


def test_calibrate_from_phy_smoke():
    table = calibrate_from_phy(
        site="bridge", distances_m=(5.0,), packets_per_point=2, seed=1
    )
    assert table.site_name == "bridge"
    assert len(table.distances_m) == 1
    assert 0.0 <= table.packet_error_rate[0] <= 1.0
    assert np.isfinite(table.bitrate_bps[0])
    with pytest.raises(ValueError):
        calibrate_from_phy(distances_m=(5.0,), packets_per_point=0)


def test_physical_link_delivers_and_caches_sessions():
    link = PhysicalLink(site="bridge", seed=3)
    rng = np.random.default_rng(4)
    outcome = link.deliver(5.0, rng)
    assert outcome.delivered in (True, False)
    assert np.isfinite(outcome.bitrate_bps)
    first = link._session_for(5.0)
    assert link._session_for(5.1) is first       # same 0.5 m quantum
    assert link._session_for(9.0) is not first   # different quantum


def test_calibrate_from_phy_progress_callback():
    from repro.net.links import calibrate_from_phy

    lines = []
    calibration = calibrate_from_phy(
        site="lake", distances_m=(2.0, 5.0), packets_per_point=1, seed=4,
        progress=lines.append,
    )
    assert len(calibration.distances_m) == 2
    assert len(lines) == 2
    assert "1/2" in lines[0] and "2/2" in lines[1]
    assert "eta" in lines[0]
