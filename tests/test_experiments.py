"""Tests for the declarative experiment API (repro.experiments)."""

import json

import numpy as np
import pytest

import repro.experiments.runner as runner_module
from repro.core.baselines import FIXED_FULL_BAND, FIXED_NARROW_BAND
from repro.environments.sites import BRIDGE, LAKE
from repro.experiments import (
    ExperimentRunner,
    ModemSpec,
    ResultSet,
    RunRecord,
    Scenario,
    Sweep,
    run_scenario,
)


# --------------------------------------------------------------- Scenario
def test_scenario_resolves_catalog_keys():
    scenario = Scenario(site="bridge", motion="slow", tx_device="pixel_4",
                        case="hard_case", scheme="fixed-3k")
    assert scenario.site is BRIDGE
    assert scenario.motion.name == "slow"
    assert scenario.tx_device.name == "Google Pixel 4"
    assert scenario.case.name == "hard polycarbonate case"
    assert scenario.scheme is FIXED_FULL_BAND
    assert scenario.scheme_key == "fixed-3k"


@pytest.mark.parametrize("field,value", [
    ("site", "atlantis"),
    ("motion", "warp"),
    ("tx_device", "nokia_3310"),
    ("case", "submarine"),
    ("scheme", "fixed-9k"),
])
def test_scenario_rejects_unknown_keys(field, value):
    with pytest.raises(ValueError, match="unknown"):
        Scenario(**{field: value})


def test_scenario_validates_numbers():
    with pytest.raises(ValueError):
        Scenario(distance_m=0.0)
    with pytest.raises(ValueError):
        Scenario(num_packets=0)
    with pytest.raises(ValueError, match="exceeds the usable range"):
        Scenario(site="bridge", distance_m=500.0)


def test_scenario_dict_roundtrip():
    scenario = Scenario(site="lake", distance_m=12.5, scheme="fixed-0.5k",
                        motion="fast", num_packets=7, seed=42, label="point A",
                        modem=ModemSpec(payload_bits=64, use_differential=False))
    rebuilt = Scenario.from_dict(scenario.to_dict())
    assert rebuilt == scenario
    assert rebuilt.scenario_hash() == scenario.scenario_hash()


def test_scenario_dict_roundtrip_with_custom_device_and_case():
    import dataclasses

    from repro.devices.case import SOFT_POUCH
    from repro.devices.models import GALAXY_S9

    custom_device = dataclasses.replace(GALAXY_S9, name="prototype", source_level_db=-2.0)
    custom_case = dataclasses.replace(SOFT_POUCH, name="diy pouch", attenuation_db=2.5)
    scenario = Scenario(tx_device=custom_device, case=custom_case, num_packets=3)
    rebuilt = Scenario.from_dict(scenario.to_dict())
    assert rebuilt == scenario
    assert rebuilt.tx_device.speaker_response == custom_device.speaker_response


def test_scenario_hash_distinguishes_parameters():
    base = Scenario()
    assert base.scenario_hash() != base.replace(distance_m=6.0).scenario_hash()
    assert base.scenario_hash() != base.replace(seed=1).scenario_hash()
    assert base.scenario_hash() != base.replace(scheme="fixed-3k").scenario_hash()
    # The hash is content-based, so an equal scenario hashes identically.
    assert base.scenario_hash() == Scenario().scenario_hash()


def test_scenario_matches_accepts_keys_and_objects():
    scenario = Scenario(site="lake", scheme="fixed-0.5k")
    assert scenario.matches(site="lake", scheme=FIXED_NARROW_BAND)
    assert scenario.matches(site=LAKE, scheme="fixed-0.5k")
    assert not scenario.matches(site="bridge")
    with pytest.raises(AttributeError):
        scenario.matches(depth_m=1.0)


def test_modem_spec_builds_configured_modem():
    spec = ModemSpec(payload_bits=64, use_differential=False,
                     subcarrier_spacing_hz=25.0)
    modem = spec.build()
    assert modem.protocol_config.payload_bits == 64
    assert modem.ofdm_config.subcarrier_spacing_hz == pytest.approx(25.0)


def test_run_scenario_matches_session_run(quiet_channel):
    # run_scenario must reproduce the canonical build_link_pair+LinkSession
    # wiring: same site/seed in two processes would yield the same stats.
    scenario = Scenario(site="bridge", distance_m=5.0, num_packets=2, seed=3)
    first = run_scenario(scenario)
    second = scenario.run()
    assert [r.coded_bitrate_bps for r in first.results] == \
        [r.coded_bitrate_bps for r in second.results]
    assert first.packet_error_rate == second.packet_error_rate


# ------------------------------------------------------------------ Sweep
def test_sweep_over_is_cartesian_product():
    sweep = Sweep(Scenario(num_packets=1)).over(
        distance_m=[5.0, 10.0], scheme=["adaptive", "fixed-3k"])
    scenarios = sweep.scenarios()
    assert len(sweep) == 4
    # First axis varies slowest.
    assert [s.distance_m for s in scenarios] == [5.0, 5.0, 10.0, 10.0]
    assert [s.scheme_key for s in scenarios] == ["adaptive", "fixed-3k"] * 2


def test_sweep_paired_axes_vary_together():
    sweep = Sweep(Scenario(num_packets=1)).paired(
        distance_m=[5.0, 10.0, 20.0], seed=[80, 81, 82])
    assert [(s.distance_m, s.seed) for s in sweep] == [
        (5.0, 80), (10.0, 81), (20.0, 82)]


def test_sweep_paired_accepts_one_shot_iterables():
    sweep = Sweep(Scenario(num_packets=1)).paired(
        distance_m=(5.0 + i for i in range(3)), seed=iter([80, 81, 82]))
    assert [(s.distance_m, s.seed) for s in sweep] == [
        (5.0, 80), (6.0, 81), (7.0, 82)]


def test_sweep_paired_rejects_length_mismatch():
    with pytest.raises(ValueError, match="equal lengths"):
        Sweep().paired(distance_m=[5.0, 10.0], seed=[80])


def test_sweep_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown scenario field"):
        Sweep().over(depth_m=[1.0])


def test_sweep_rejects_field_swept_twice():
    base = Sweep(Scenario(num_packets=1)).over(distance_m=[5.0, 10.0])
    with pytest.raises(ValueError, match="already swept"):
        base.paired(distance_m=[5.0, 10.0], seed=[1, 2])
    with pytest.raises(ValueError, match="already swept"):
        base.over(distance_m=[20.0])


def test_sweep_where_filters_and_seeded_assigns_seeds():
    sweep = (
        Sweep(Scenario(num_packets=1))
        .over(distance_m=[5.0, 10.0, 20.0])
        .where(lambda s: s.distance_m < 20.0)
        .seeded(100, step=10)
    )
    assert [(s.distance_m, s.seed) for s in sweep] == [(5.0, 100), (10.0, 110)]


def test_sweep_builders_are_immutable():
    base = Sweep(Scenario(num_packets=1))
    wider = base.over(distance_m=[5.0, 10.0])
    assert len(base) == 1
    assert len(wider) == 2


def test_sweep_resolves_string_axis_values():
    sweep = Sweep(Scenario(num_packets=1)).over(site=["bridge", "lake"])
    assert [s.site.name for s in sweep] == ["bridge", "lake"]


# ------------------------------------------------------- records / results
def _tiny_sweep(num_scenarios=8, packets=2):
    distances = [4.0 + i for i in range(num_scenarios // 2)]
    return (
        Sweep(Scenario(site="bridge", num_packets=packets))
        .over(distance_m=distances, scheme=["adaptive", "fixed-0.5k"])
        .seeded(50)
    )


def test_runner_parallel_matches_serial_bit_for_bit():
    # Acceptance criterion: >= 8 scenarios through 4 workers must produce
    # records identical to a serial run with the same seeds.
    scenarios = _tiny_sweep(8).scenarios()
    assert len(scenarios) == 8
    serial = ExperimentRunner(max_workers=1).run(scenarios)
    parallel = ExperimentRunner(max_workers=4).run(scenarios)
    assert serial == parallel
    assert serial.to_json() == parallel.to_json()
    # Records arrive in submission order.
    assert [r.scenario for r in parallel] == scenarios


def test_runner_resultset_json_roundtrip(tmp_path):
    results = ExperimentRunner(max_workers=1).run(_tiny_sweep(4))
    path = results.save(tmp_path / "results.json")
    loaded = ResultSet.load(path)
    assert loaded == results
    assert loaded.to_json() == results.to_json()


def test_runner_cache_hits_skip_execution(tmp_path, monkeypatch):
    cache = tmp_path / "cache"
    sweep = _tiny_sweep(4)
    first_runner = ExperimentRunner(max_workers=1, cache_dir=cache)
    first = first_runner.run(sweep)
    assert first_runner.last_cache_hits == 0
    assert len(list(cache.glob("*.json"))) == len(first)

    # With the cache warm, execution must never be reached.
    def _boom(scenario):
        raise AssertionError("cache miss: scenario was re-executed")

    monkeypatch.setattr(runner_module, "run_scenario", _boom)
    second_runner = ExperimentRunner(max_workers=1, cache_dir=cache)
    second = second_runner.run(sweep)
    assert second_runner.last_cache_hits == len(second)
    assert second == first


def test_runner_cache_ignores_corrupt_entries(tmp_path):
    cache = tmp_path / "cache"
    scenario = Scenario(site="bridge", num_packets=1, seed=9)
    runner = ExperimentRunner(max_workers=1, cache_dir=cache)
    first = runner.run([scenario])
    cache_file = next(cache.glob("*.json"))
    cache_file.write_text("not json at all{", encoding="utf-8")
    with pytest.raises(json.JSONDecodeError):
        json.loads(cache_file.read_text(encoding="utf-8"))
    second = runner.run([scenario])
    assert runner.last_cache_hits == 0
    assert second == first


def test_runner_cache_ignores_stale_schema(tmp_path):
    # A cache entry written by a different package version may carry unknown
    # scenario fields; it must be recomputed, not crash the run.
    cache = tmp_path / "cache"
    scenario = Scenario(site="bridge", num_packets=1, seed=9)
    runner = ExperimentRunner(max_workers=1, cache_dir=cache)
    first = runner.run([scenario])
    cache_file = next(cache.glob("*.json"))
    data = json.loads(cache_file.read_text(encoding="utf-8"))
    data[0]["scenario"]["future_field"] = 1
    cache_file.write_text(json.dumps(data), encoding="utf-8")
    second = runner.run([scenario])
    assert runner.last_cache_hits == 0
    assert second == first


def test_runner_progress_callback_counts():
    seen = []
    runner = ExperimentRunner(
        max_workers=1, progress=lambda done, total, record: seen.append((done, total)))
    results = runner.run(_tiny_sweep(4))
    assert len(seen) == len(results) == 4
    assert seen[-1] == (4, 4)
    assert [done for done, _ in seen] == [1, 2, 3, 4]


def test_runner_cache_is_invalidated_by_package_version(tmp_path, monkeypatch):
    import repro

    cache = tmp_path / "cache"
    scenario = Scenario(site="bridge", num_packets=1, seed=9)
    runner = ExperimentRunner(max_workers=1, cache_dir=cache)
    runner.run([scenario])
    runner.run([scenario])
    assert runner.last_cache_hits == 1
    # Entries written by a different package version must not be served:
    # stale simulation code would otherwise leak old numbers silently.
    monkeypatch.setattr(repro, "__version__", "0.0.0-test")
    runner.run([scenario])
    assert runner.last_cache_hits == 0


def test_runner_progress_counts_cache_hits(tmp_path):
    cache = tmp_path / "cache"
    sweep = _tiny_sweep(4)
    ExperimentRunner(max_workers=1, cache_dir=cache).run(sweep)
    seen = []
    runner = ExperimentRunner(
        max_workers=1, cache_dir=cache,
        progress=lambda done, total, record: seen.append((done, total)))
    runner.run(sweep)
    assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]


def test_runner_rejects_negative_workers():
    with pytest.raises(ValueError):
        ExperimentRunner(max_workers=-1)


def test_result_set_lookup_and_where():
    results = ExperimentRunner(max_workers=1).run(_tiny_sweep(4))
    adaptive = results.where(scheme="adaptive")
    assert len(adaptive) == 2
    record = results.lookup(distance_m=4.0, scheme="fixed-0.5k")
    assert record.scenario.distance_m == 4.0
    with pytest.raises(LookupError):
        results.lookup(scheme="adaptive")  # two matches
    with pytest.raises(LookupError):
        results.lookup(distance_m=999.0)  # zero matches


def test_result_set_table_and_metrics():
    results = ExperimentRunner(max_workers=1).run(_tiny_sweep(4))
    table = results.to_table()
    assert "scenario" in table and "per" in table
    assert len(table.splitlines()) == 2 + len(results)
    pers = results.metric("packet_error_rate")
    assert pers.shape == (4,)
    assert np.all((pers >= 0) & (pers <= 1))


def test_record_equality_ignores_timing():
    results = ExperimentRunner(max_workers=1).run([Scenario(site="bridge",
                                                            num_packets=1, seed=2)])
    record = results[0]
    clone = RunRecord.from_dict(record.to_dict())
    assert clone.elapsed_s == 0.0
    assert record.elapsed_s > 0.0
    assert clone == record


def test_record_derived_metrics():
    results = ExperimentRunner(max_workers=1).run(
        [Scenario(site="bridge", num_packets=3, seed=4)])
    record = results[0]
    assert record.num_packets == 3
    assert record.finite_bitrates_bps.size <= 3
    if record.finite_bitrates_bps.size:
        assert np.isfinite(record.median_bitrate_bps)
        start_hz, end_hz = record.median_band_edges_hz()
        assert start_hz <= end_hz
        percentiles = record.bitrate_percentiles((10, 50, 90))
        assert percentiles.shape == (3,)
        assert np.all(np.diff(percentiles) >= 0)


# ------------------------------------------------------------- streaming
def test_iter_run_streams_identically_to_blocking_run():
    # Satellite gate: incremental consumption -- serial and through the
    # process pool, with a consumer pause mid-stream -- must yield
    # byte-identical records in identical order to the blocking run().
    import time

    scenarios = _tiny_sweep(8).scenarios()
    blocking = ExperimentRunner(max_workers=1).run(scenarios)
    for workers in (1, 2):
        runner = ExperimentRunner(max_workers=workers)
        streamed = []
        for index, record in enumerate(runner.iter_run(scenarios)):
            if index == 2:
                time.sleep(0.05)  # consumer stalls; producer keeps going
            streamed.append(record)
        assert ResultSet(streamed) == blocking
        assert ResultSet(streamed).to_json() == blocking.to_json()
        assert [r.scenario for r in streamed] == scenarios


def test_iter_run_resolves_cache_before_consumption(tmp_path):
    cache = tmp_path / "cache"
    sweep = _tiny_sweep(4)
    first = ExperimentRunner(max_workers=1, cache_dir=cache).run(sweep)
    runner = ExperimentRunner(max_workers=1, cache_dir=cache)
    stream = runner.iter_run(sweep)
    # Hits are counted when iter_run is called, not when it is drained.
    assert runner.last_cache_hits == 4
    assert ResultSet(list(stream)) == first


def test_iter_run_emits_progress_lines():
    lines = []
    results = ExperimentRunner(max_workers=1).run(
        _tiny_sweep(4), progress=lines.append)
    assert len(lines) == len(results) == 4
    assert lines[0].startswith("sweep 1/4: ")
    assert lines[-1].startswith("sweep 4/4: ")
    assert all("eta" in line and "elapsed" in line for line in lines)


def test_run_columnar_matches_run():
    from repro.experiments import ColumnarResultSet

    scenarios = _tiny_sweep(4).scenarios()
    columnar = ExperimentRunner(max_workers=1).run_columnar(scenarios)
    reference = ExperimentRunner(max_workers=1).run(scenarios)
    assert isinstance(columnar, ColumnarResultSet)
    assert columnar == reference
    assert columnar.to_json() == reference.to_json()


# ------------------------------------------------------ cache corruption
def test_corrupt_cache_entry_warns_recomputes_and_rewrites(tmp_path):
    # Satellite gate: a truncated cache entry is a miss -- re-simulated
    # and rewritten -- announced by a reason-coded CacheMissWarning.
    import warnings

    from repro.experiments import CacheMissWarning

    cache = tmp_path / "cache"
    scenario = Scenario(site="bridge", num_packets=1, seed=9)
    runner = ExperimentRunner(max_workers=1, cache_dir=cache)
    first = runner.run([scenario])
    cache_file = next(cache.glob("*.json"))
    cache_file.write_text(cache_file.read_text(encoding="utf-8")[:25],
                          encoding="utf-8")
    with pytest.warns(CacheMissWarning) as caught:
        second = runner.run([scenario])
    assert runner.last_cache_hits == 0
    assert second == first
    warning = caught[0].message
    assert warning.reason == "json-decode"
    assert warning.path == cache_file
    assert "ignoring corrupt cache entry" in str(warning)
    # The rewritten entry must serve cleanly: no warning, one hit.
    with warnings.catch_warnings():
        warnings.simplefilter("error", CacheMissWarning)
        third = runner.run([scenario])
    assert runner.last_cache_hits == 1
    assert third == first


def test_stale_schema_cache_entry_carries_schema_reason(tmp_path):
    from repro.experiments import CacheMissWarning

    cache = tmp_path / "cache"
    scenario = Scenario(site="bridge", num_packets=1, seed=9)
    runner = ExperimentRunner(max_workers=1, cache_dir=cache)
    runner.run([scenario])
    cache_file = next(cache.glob("*.json"))
    data = json.loads(cache_file.read_text(encoding="utf-8"))
    data[0]["scenario"]["future_field"] = 1
    cache_file.write_text(json.dumps(data), encoding="utf-8")
    with pytest.warns(CacheMissWarning) as caught:
        runner.run([scenario])
    assert caught[0].message.reason == "schema"


def test_scenario_results_survive_pickling():
    """A pickled scenario (what pool workers receive) must simulate
    identically to the original -- catalog substitutions that relied on
    object identity used to break this for sites with currents."""
    import pickle

    from repro.experiments.scenario import run_scenario

    scenario = Scenario(site="lake", distance_m=5.0, num_packets=2, seed=1)
    direct = run_scenario(scenario).results
    pickled = run_scenario(pickle.loads(pickle.dumps(scenario))).results
    assert direct == pickled


def test_modem_spec_rejects_unknown_solver_eagerly():
    # The typo must fail at spec construction, not inside a pool worker
    # during the first decode of a multi-point sweep.
    with pytest.raises(ValueError, match="equalizer_solver"):
        ModemSpec(equalizer_solver="levinsen")
    with pytest.raises(ValueError, match="equalizer_solver"):
        Scenario(site="bridge", modem=ModemSpec(equalizer_solver="qr"))


def test_cross_process_determinism_matches_in_process_run():
    """Regression guard for the STATIC_MOTION pickling bug class.

    The same scenarios run (a) directly in this process and (b) through
    the runner's ProcessPool must yield identical RunRecords AND identical
    scenario hashes -- a catalog object that deserializes to a
    non-identical copy in the worker would silently change the physics or
    the cache key.  The grid deliberately crosses every axis that rides
    the pickle path: motion presets (the original bug), the fixed-band
    scheme objects, and the PR-5 use_fast_path / equalizer_solver flags.
    """
    import dataclasses

    from repro.experiments.runner import _execute_scenario

    scenarios = [
        Scenario(site="lake", distance_m=5.0, num_packets=2, seed=31,
                 motion="static"),
        Scenario(site="lake", distance_m=5.0, num_packets=2, seed=32,
                 motion="slow"),
        Scenario(site="bridge", distance_m=6.0, num_packets=2, seed=33,
                 scheme="fixed-0.5k", use_fast_path=False),
        Scenario(site="bridge", distance_m=6.0, num_packets=2, seed=34,
                 modem=dataclasses.replace(ModemSpec(),
                                           equalizer_solver="dense")),
    ]
    in_process = [_execute_scenario(s) for s in scenarios]
    pooled = ExperimentRunner(max_workers=2).run(scenarios)
    assert list(pooled.records) == in_process
    for record, scenario in zip(pooled.records, scenarios):
        assert record.scenario.scenario_hash() == scenario.scenario_hash()
    # The serialized form (what the JSON cache stores) must agree too.
    assert (ResultSet(in_process).to_json() == pooled.to_json())
