"""Tests for the microbenchmark harness and suites (:mod:`repro.perf`)."""

import json

import numpy as np
import pytest

from repro.perf import (
    Benchmark,
    BenchResult,
    available_suites,
    bench_json_path,
    build_suite,
    compare_results,
    format_comparison,
    format_results,
    load_results,
    run_suite,
    write_results,
)


# ---------------------------------------------------------------------- harness
def test_benchmark_runs_warmup_and_repeats():
    calls = []
    bench = Benchmark(name="counter", func=lambda: calls.append(1), repeats=4, warmup=2)
    result = bench.run(suite="demo")
    assert len(calls) == 6  # 2 warmup + 4 timed
    assert result.repeats == 4
    assert result.warmup == 2
    assert result.suite == "demo"
    assert all(t >= 0 for t in result.times_s)


def test_benchmark_run_overrides_repeat_counts():
    calls = []
    bench = Benchmark(name="counter", func=lambda: calls.append(1), repeats=5, warmup=3)
    result = bench.run(repeats=1, warmup=0)
    assert len(calls) == 1
    assert result.repeats == 1


def test_benchmark_validates_counts():
    bench = Benchmark(name="x", func=lambda: None)
    with pytest.raises(ValueError):
        bench.run(repeats=0)
    with pytest.raises(ValueError):
        bench.run(warmup=-1)


def test_bench_result_statistics():
    result = BenchResult(
        name="stats", suite="demo", times_s=(0.2, 0.1, 0.4), warmup=1,
        items_per_call=100.0, unit="bits",
    )
    assert result.mean_s == pytest.approx(0.7 / 3)
    assert result.median_s == pytest.approx(0.2)
    assert result.min_s == pytest.approx(0.1)
    assert result.max_s == pytest.approx(0.4)
    assert result.std_s == pytest.approx(np.std([0.2, 0.1, 0.4]))
    assert result.throughput_per_s == pytest.approx(100.0 / 0.2)


def test_bench_result_even_median():
    result = BenchResult(name="m", suite="s", times_s=(0.1, 0.2, 0.3, 0.4), warmup=0)
    assert result.median_s == pytest.approx(0.25)


def test_json_round_trip(tmp_path):
    bench = Benchmark(
        name="noop", func=lambda: None, items_per_call=42.0, unit="widgets",
        repeats=3, warmup=1, metadata={"size": 42},
    )
    results = [bench.run(suite="demo")]
    path = write_results("demo", results, directory=tmp_path, quick=True)
    assert path == bench_json_path("demo", tmp_path)
    assert path.name == "BENCH_demo.json"

    payload = json.loads(path.read_text())
    assert payload["suite"] == "demo"
    assert payload["quick"] is True
    assert payload["results"][0]["name"] == "noop"
    assert payload["results"][0]["unit"] == "widgets"
    assert payload["results"][0]["metadata"] == {"size": 42}

    suite, loaded = load_results(path)
    assert suite == "demo"
    assert len(loaded) == 1
    assert loaded[0].name == "noop"
    assert loaded[0].items_per_call == 42.0
    assert loaded[0].times_s == results[0].times_s
    assert loaded[0].median_s == pytest.approx(results[0].median_s)


def test_compare_results_percent_change():
    base = [BenchResult(name="a", suite="s", times_s=(0.2,), warmup=0),
            BenchResult(name="only_base", suite="s", times_s=(1.0,), warmup=0)]
    current = [BenchResult(name="a", suite="s", times_s=(0.1,), warmup=0),
               BenchResult(name="only_current", suite="s", times_s=(1.0,), warmup=0)]
    rows = compare_results(base, current)
    assert [row.name for row in rows] == ["a"]  # only overlapping names
    assert rows[0].percent_change == pytest.approx(-50.0)
    assert rows[0].speedup == pytest.approx(2.0)
    report = format_comparison(rows, "s")
    assert "a" in report and "-50.0%" in report
    assert format_comparison([], "s") == "no overlapping benchmarks to compare"


def test_format_results_lists_every_benchmark():
    results = [
        BenchResult(name="first", suite="s", times_s=(0.01,), warmup=0),
        BenchResult(name="second", suite="s", times_s=(0.02,), warmup=0,
                    items_per_call=10, unit="bits"),
    ]
    text = format_results(results)
    assert "first" in text and "second" in text and "bits/s" in text


# ----------------------------------------------------------------------- suites
def test_available_suites_cover_the_hot_paths():
    names = available_suites()
    for expected in ("fec", "ofdm", "preamble", "channel", "link"):
        assert expected in names


def test_build_suite_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown suite"):
        build_suite("nope")


def test_quick_mode_only_lowers_repeats():
    full = build_suite("fec", quick=False)
    quick = build_suite("fec", quick=True)
    assert [b.name for b in full] == [b.name for b in quick]
    for full_bench, quick_bench in zip(full, quick):
        assert quick_bench.repeats <= full_bench.repeats
        assert quick_bench.items_per_call == full_bench.items_per_call


def test_fec_suite_includes_reference_decoder():
    names = [b.name for b in build_suite("fec", quick=True)]
    assert "viterbi_decode_1024" in names
    assert "viterbi_decode_1024_reference" in names


def test_fec_suite_decodes_1024_coded_bits():
    suite = {b.name: b for b in build_suite("fec", quick=True)}
    assert suite["viterbi_decode_1024"].items_per_call == 1024
    assert suite["viterbi_decode_1024"].metadata["coded_bits"] == 1024


@pytest.mark.parametrize("name", ["fec", "ofdm", "preamble"])
def test_run_suite_produces_results(name):
    results = [
        bench.run(suite=name, repeats=1, warmup=0)
        for bench in build_suite(name, quick=True)
    ]
    assert results
    for result in results:
        assert result.suite == name
        assert result.repeats == 1
        assert result.median_s >= 0.0


def test_run_suite_end_to_end(tmp_path):
    results = run_suite("ofdm", quick=True)
    path = write_results("ofdm", results, directory=tmp_path, quick=True)
    suite, loaded = load_results(path)
    assert suite == "ofdm"
    assert [r.name for r in loaded] == [r.name for r in results]


def test_write_results_creates_missing_directory(tmp_path):
    target = tmp_path / "not" / "yet" / "there"
    results = [BenchResult(name="x", suite="demo", times_s=(0.01,), warmup=0)]
    path = write_results("demo", results, directory=target)
    assert path.exists()


def test_load_results_rejects_non_object_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ValueError, match="top level must be an object"):
        load_results(path)


def test_trellis_tables_are_frozen():
    from repro.fec import trellis_tables

    trellis = trellis_tables(7, (0o133, 0o171))
    with pytest.raises(ValueError):
        trellis.next_state[0, 0] = 1
    with pytest.raises(ValueError):
        trellis.outputs[0, 0, 0] = 1


# ------------------------------------------------------------------- perf gate
def test_gate_comparison_flags_only_regressions_beyond_threshold():
    from repro.perf import gate_comparison
    from repro.perf.harness import ComparisonRow

    rows = [
        ComparisonRow(name="faster", baseline_s=0.02, current_s=0.01),
        ComparisonRow(name="steady", baseline_s=0.01, current_s=0.0104),
        ComparisonRow(name="slower", baseline_s=0.01, current_s=0.02),
    ]
    flagged = gate_comparison(rows, fail_above_pct=10.0)
    assert [row.name for row in flagged] == ["slower"]
    assert gate_comparison(rows, fail_above_pct=1000.0) == []
    with pytest.raises(ValueError):
        gate_comparison(rows, fail_above_pct=-1.0)


def test_gate_comparison_ignores_zero_baselines():
    from repro.perf import gate_comparison
    from repro.perf.harness import ComparisonRow

    rows = [ComparisonRow(name="new", baseline_s=0.0, current_s=0.01)]
    assert gate_comparison(rows, fail_above_pct=0.0) == []


def test_preamble_suite_asserts_cached_waveform():
    # building the suite runs the no-per-call-allocation assertions
    benchmarks = build_suite("preamble", quick=True)
    names = {bench.name for bench in benchmarks}
    assert {"detect_preamble", "detect_preamble_reference"} <= names


def test_equalizer_suite_builds_and_runs_quickly():
    results = run_suite("equalizer", quick=True)
    names = {result.name for result in results}
    assert {"equalizer_fit_480", "equalizer_fit_480_dense_reference",
            "equalizer_fit_apply_many_8"} <= names


def test_channel_suite_includes_reference_path():
    benchmarks = build_suite("channel", quick=True)
    names = {bench.name for bench in benchmarks}
    assert {"channel_transmit_preamble", "channel_transmit_reference"} <= names


def test_link_suite_includes_batch_benchmark():
    benchmarks = build_suite("link", quick=True)
    names = {bench.name for bench in benchmarks}
    assert {"link_session_packet", "link_session_packets_batch"} <= names
