"""Tests for the time-domain MMSE equalizer."""

import numpy as np
import pytest
from scipy import signal as sp_signal

from repro.core.equalizer import MMSEEqualizer


def _training_signal(rng, length=2048, band=(1000, 4000), fs=48000):
    """A band-limited training waveform similar to an OFDM symbol."""
    noise = rng.standard_normal(length)
    taps = sp_signal.firwin(129, band, pass_zero=False, fs=fs)
    return sp_signal.lfilter(taps, 1.0, noise)


def test_identity_channel_yields_near_identity_equalizer(rng):
    x = _training_signal(rng)
    eq = MMSEEqualizer(num_taps=64, regularization=1e-4)
    eq.fit(x, x)
    y = eq.apply(x)
    error = np.mean((y[64:-64] - x[64:-64]) ** 2) / np.mean(x ** 2)
    assert error < 0.01


def test_equalizer_removes_known_isi(rng):
    x = _training_signal(rng)
    channel = np.zeros(40)
    channel[0] = 1.0
    channel[17] = 0.6
    channel[33] = -0.3
    y = sp_signal.lfilter(channel, 1.0, x)
    eq = MMSEEqualizer(num_taps=160, regularization=1e-4)
    eq.fit(y, x)
    recovered = eq.apply(y)
    before = np.mean((y - x) ** 2) / np.mean(x ** 2)
    after = np.mean((recovered[200:-200] - x[200:-200]) ** 2) / np.mean(x ** 2)
    assert after < before / 10
    assert after < 0.05


def test_equalizer_generalizes_to_unseen_data(rng):
    """Fit on a training symbol, apply to different data over the same channel."""
    train = _training_signal(rng)
    data = _training_signal(rng)
    channel = np.array([1.0, 0.0, 0.45, 0.0, -0.2])
    eq = MMSEEqualizer(num_taps=96, regularization=1e-4)
    eq.fit(sp_signal.lfilter(channel, 1.0, train), train)
    recovered = eq.apply(sp_signal.lfilter(channel, 1.0, data))
    error = np.mean((recovered[100:-100] - data[100:-100]) ** 2) / np.mean(data ** 2)
    assert error < 0.05


def test_equalizer_handles_noise_gracefully(rng):
    x = _training_signal(rng)
    channel = np.array([1.0, 0.5])
    y = sp_signal.lfilter(channel, 1.0, x) + 0.05 * rng.standard_normal(x.size)
    eq = MMSEEqualizer(num_taps=64, regularization=1e-3)
    eq.fit(y, x)
    recovered = eq.apply(y)
    error = np.mean((recovered[100:-100] - x[100:-100]) ** 2) / np.mean(x ** 2)
    assert error < 0.1


def test_apply_before_fit_raises():
    with pytest.raises(RuntimeError):
        MMSEEqualizer().apply(np.zeros(100))


def test_fit_validations(rng):
    eq = MMSEEqualizer(num_taps=64)
    with pytest.raises(ValueError):
        eq.fit(np.zeros(100), np.zeros(200))
    with pytest.raises(ValueError):
        eq.fit(np.zeros(10), np.zeros(10))


def test_constructor_validations():
    with pytest.raises(ValueError):
        MMSEEqualizer(num_taps=0)
    with pytest.raises(ValueError):
        MMSEEqualizer(regularization=-1.0)
    with pytest.raises(ValueError):
        MMSEEqualizer(delay=-1)


def test_fit_apply_convenience(rng):
    x = _training_signal(rng)
    data = np.concatenate([x, _training_signal(rng)])
    channel = np.array([1.0, 0.3])
    received = sp_signal.lfilter(channel, 1.0, data)
    eq = MMSEEqualizer(num_taps=64)
    out = eq.fit_apply(received, slice(0, x.size), x)
    assert out.size == received.size
    assert eq.is_fitted


def test_output_length_matches_input(rng):
    x = _training_signal(rng)
    eq = MMSEEqualizer(num_taps=32)
    eq.fit(x, x)
    assert eq.apply(x).size == x.size
