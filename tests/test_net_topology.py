"""Tests for the network topology and its acoustic geometry."""

import numpy as np
import pytest

from repro.channel.physics import SOUND_SPEED_M_S
from repro.environments.sites import BRIDGE, LAKE
from repro.net.topology import AcousticNetTopology, NodePosition


def _triangle() -> AcousticNetTopology:
    topology = AcousticNetTopology(site=LAKE, comm_range_m=12.0)
    topology.add_node("a", 0.0, 0.0)
    topology.add_node("b", 10.0, 0.0)
    topology.add_node("c", 30.0, 0.0)
    return topology


def test_positions_and_distance():
    position = NodePosition(3.0, 4.0, 1.0)
    assert position.distance_to(NodePosition(0.0, 0.0, 1.0)) == pytest.approx(5.0)
    topology = _triangle()
    assert topology.num_nodes == 3
    assert topology.distance_m("a", "b") == pytest.approx(10.0)
    assert "a" in topology and "zz" not in topology


def test_duplicate_and_unknown_nodes_raise():
    topology = _triangle()
    with pytest.raises(ValueError):
        topology.add_node("a", 1.0, 1.0)
    with pytest.raises(KeyError):
        topology.position("zz")


def test_propagation_delay_uses_shared_sound_speed():
    topology = _triangle()
    assert topology.propagation_delay_s("a", "b") == pytest.approx(
        10.0 / SOUND_SPEED_M_S
    )


def test_neighbors_respect_range_and_sort_by_distance():
    topology = _triangle()
    assert topology.neighbors("a") == ("b",)  # c is 30 m away, out of range
    assert topology.neighbors("b") == ("a",)
    assert not topology.are_neighbors("a", "c")
    assert not topology.are_neighbors("a", "a")
    topology.add_node("d", 2.0, 0.0)
    assert topology.neighbors("a") == ("d", "b")


def test_link_snr_decreases_with_distance():
    topology = _triangle()
    assert topology.link_snr_db("a", "b") > topology.link_snr_db("a", "c")


def test_line_and_grid_builders():
    line = AcousticNetTopology.line(4, spacing_m=5.0, site=BRIDGE, comm_range_m=6.0)
    assert line.num_nodes == 4
    assert line.distance_m("n0", "n3") == pytest.approx(15.0)
    assert line.neighbors("n1") == ("n0", "n2")

    grid = AcousticNetTopology.grid(2, 3, spacing_m=4.0, comm_range_m=5.0)
    assert grid.num_nodes == 6
    assert grid.distance_m("n0", "n5") == pytest.approx(np.hypot(8.0, 4.0))


def test_random_deployment_is_seeded_and_in_bounds():
    first = AcousticNetTopology.random_deployment(10, (50.0, 50.0), seed=3)
    second = AcousticNetTopology.random_deployment(10, (50.0, 50.0), seed=3)
    assert first.num_nodes == 10
    for name in first.names:
        assert first.position(name) == second.position(name)
        assert 0.0 <= first.position(name).x_m <= 50.0
        assert 0.2 <= first.position(name).depth_m <= LAKE.water_depth_m - 0.2


def test_mobility_moves_nodes_and_clamps_depth():
    topology = AcousticNetTopology(site=LAKE, comm_range_m=20.0)
    topology.add_node("mover", 0.0, 0.0, depth_m=1.0, velocity_m_s=(1.0, 0.0, 10.0))
    topology.add_node("anchor", 5.0, 0.0)
    topology.step_mobility(2.0, rng=0)
    moved = topology.position("mover")
    assert moved.x_m == pytest.approx(2.0, abs=0.5)  # velocity plus jitter
    assert moved.depth_m == LAKE.water_depth_m - 0.2  # clamped at the bottom
    with pytest.raises(ValueError):
        topology.step_mobility(0.0)


def test_builder_validation():
    with pytest.raises(ValueError):
        AcousticNetTopology.line(0, spacing_m=5.0)
    with pytest.raises(ValueError):
        AcousticNetTopology.grid(0, 3, spacing_m=5.0)
    with pytest.raises(ValueError):
        AcousticNetTopology.random_deployment(0, (10.0, 10.0))
    with pytest.raises(ValueError):
        AcousticNetTopology(comm_range_m=0.0)


# ---------------------------------------------------- mutation properties
# Satellite of the fault-injection PR: random add/remove/deactivate/
# reactivate sequences must leave the spatial-hash grid and every cached
# NeighborTable indistinguishable from a brute-force rebuild over the
# *active* membership, and bump the version so greedy's memo refreshes.

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.net.packet import NetPacket  # noqa: E402
from repro.net.routing import GreedyForwarding  # noqa: E402

_slow = settings(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _live_brute_force(topology, name):
    """Oracle: all-pairs scan over active members, sorted (distance, name)."""
    candidates = sorted(
        (topology.distance_m(name, other), other)
        for other in topology.active_names
        if other != name
        and topology.distance_m(name, other) <= topology.comm_range_m
    )
    return tuple(other for _, other in candidates)


def _assert_consistent(topology):
    for name in topology.active_names:
        expected = _live_brute_force(topology, name)
        table = topology.neighbor_table(name)
        assert table.names == expected, (
            f"grid/table disagree with brute force at {name!r}: "
            f"{table.names} != {expected}"
        )
        # Table distances/delays must be bit-identical to the vectorized
        # recomputation (distance_m's scalar ``**2`` can differ from the
        # vector ``x*x`` in the last ulp, so compare same-path exactly
        # and cross-path approximately).
        recomputed = topology.distances_to(table.indices, name)
        assert np.array_equal(table.distances_m, recomputed)
        assert np.array_equal(table.delays_s, recomputed / SOUND_SPEED_M_S)
        for neighbor, distance in zip(table.names, table.distances_m):
            assert distance == pytest.approx(
                topology.distance_m(name, neighbor), rel=1e-12
            )
        assert topology.neighbors(name) == expected


_ops = st.lists(
    st.tuples(
        st.sampled_from(("add", "remove", "deactivate", "reactivate")),
        st.integers(min_value=0, max_value=10 ** 6),
    ),
    min_size=1,
    max_size=12,
)


@_slow
@given(seed=st.integers(min_value=0, max_value=50), ops=_ops)
def test_membership_mutations_match_brute_force_rebuild(seed, ops):
    topology = AcousticNetTopology.random_deployment(
        12, (60.0, 60.0), comm_range_m=20.0, seed=seed
    )
    # Warm every cache first so stale entries would be caught.
    _assert_consistent(topology)
    fresh = 0
    for op, raw in ops:
        names = topology.names
        if op == "add":
            topology.add_node(
                f"x{fresh}", float(raw % 60), float((raw // 60) % 60), 1.0
            )
            fresh += 1
        elif not names:
            continue
        else:
            target = names[raw % len(names)]
            if op == "remove":
                topology.remove_node(target)
                assert target not in topology
            elif op == "deactivate":
                topology.deactivate(target)
                assert not topology.is_active(target)
            else:
                topology.reactivate(target)
                assert topology.is_active(target)
        _assert_consistent(topology)


@_slow
@given(seed=st.integers(min_value=0, max_value=50))
def test_remove_then_readd_round_trip_restores_tables(seed):
    topology = AcousticNetTopology.random_deployment(
        10, (50.0, 50.0), comm_range_m=18.0, seed=seed
    )
    victim = topology.names[seed % topology.num_nodes]
    position = topology.position(victim)
    before = {
        name: topology.neighbor_table(name).names for name in topology.names
    }
    topology.remove_node(victim)
    _assert_consistent(topology)
    topology.add_node(victim, position.x_m, position.y_m, position.depth_m)
    _assert_consistent(topology)
    after = {
        name: topology.neighbor_table(name).names for name in topology.names
    }
    assert after == before


def test_greedy_memo_invalidates_on_liveness_changes():
    topology = AcousticNetTopology.line(4, spacing_m=6.0, comm_range_m=13.0)
    routing = GreedyForwarding()
    packet = NetPacket(uid=0, kind="data", source="n0", destination="n3",
                       created_s=0.0, ttl=8)
    # n0 reaches n1 (6 m) and n2 (12 m); greedy prefers the hop closest
    # to the destination.
    assert routing.next_hops("n0", packet, topology) == ("n2",)
    topology.deactivate("n2")
    assert routing.next_hops("n0", packet, topology) == ("n1",)
    topology.reactivate("n2")
    assert routing.next_hops("n0", packet, topology) == ("n2",)
    topology.remove_node("n2")
    assert routing.next_hops("n0", packet, topology) == ("n1",)
    # A dead destination is unreachable for greedy, not a crash.
    topology.deactivate("n3")
    assert routing.next_hops("n0", packet, topology) == ()
