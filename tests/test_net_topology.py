"""Tests for the network topology and its acoustic geometry."""

import numpy as np
import pytest

from repro.channel.physics import SOUND_SPEED_M_S
from repro.environments.sites import BRIDGE, LAKE
from repro.net.topology import AcousticNetTopology, NodePosition


def _triangle() -> AcousticNetTopology:
    topology = AcousticNetTopology(site=LAKE, comm_range_m=12.0)
    topology.add_node("a", 0.0, 0.0)
    topology.add_node("b", 10.0, 0.0)
    topology.add_node("c", 30.0, 0.0)
    return topology


def test_positions_and_distance():
    position = NodePosition(3.0, 4.0, 1.0)
    assert position.distance_to(NodePosition(0.0, 0.0, 1.0)) == pytest.approx(5.0)
    topology = _triangle()
    assert topology.num_nodes == 3
    assert topology.distance_m("a", "b") == pytest.approx(10.0)
    assert "a" in topology and "zz" not in topology


def test_duplicate_and_unknown_nodes_raise():
    topology = _triangle()
    with pytest.raises(ValueError):
        topology.add_node("a", 1.0, 1.0)
    with pytest.raises(KeyError):
        topology.position("zz")


def test_propagation_delay_uses_shared_sound_speed():
    topology = _triangle()
    assert topology.propagation_delay_s("a", "b") == pytest.approx(
        10.0 / SOUND_SPEED_M_S
    )


def test_neighbors_respect_range_and_sort_by_distance():
    topology = _triangle()
    assert topology.neighbors("a") == ("b",)  # c is 30 m away, out of range
    assert topology.neighbors("b") == ("a",)
    assert not topology.are_neighbors("a", "c")
    assert not topology.are_neighbors("a", "a")
    topology.add_node("d", 2.0, 0.0)
    assert topology.neighbors("a") == ("d", "b")


def test_link_snr_decreases_with_distance():
    topology = _triangle()
    assert topology.link_snr_db("a", "b") > topology.link_snr_db("a", "c")


def test_line_and_grid_builders():
    line = AcousticNetTopology.line(4, spacing_m=5.0, site=BRIDGE, comm_range_m=6.0)
    assert line.num_nodes == 4
    assert line.distance_m("n0", "n3") == pytest.approx(15.0)
    assert line.neighbors("n1") == ("n0", "n2")

    grid = AcousticNetTopology.grid(2, 3, spacing_m=4.0, comm_range_m=5.0)
    assert grid.num_nodes == 6
    assert grid.distance_m("n0", "n5") == pytest.approx(np.hypot(8.0, 4.0))


def test_random_deployment_is_seeded_and_in_bounds():
    first = AcousticNetTopology.random_deployment(10, (50.0, 50.0), seed=3)
    second = AcousticNetTopology.random_deployment(10, (50.0, 50.0), seed=3)
    assert first.num_nodes == 10
    for name in first.names:
        assert first.position(name) == second.position(name)
        assert 0.0 <= first.position(name).x_m <= 50.0
        assert 0.2 <= first.position(name).depth_m <= LAKE.water_depth_m - 0.2


def test_mobility_moves_nodes_and_clamps_depth():
    topology = AcousticNetTopology(site=LAKE, comm_range_m=20.0)
    topology.add_node("mover", 0.0, 0.0, depth_m=1.0, velocity_m_s=(1.0, 0.0, 10.0))
    topology.add_node("anchor", 5.0, 0.0)
    topology.step_mobility(2.0, rng=0)
    moved = topology.position("mover")
    assert moved.x_m == pytest.approx(2.0, abs=0.5)  # velocity plus jitter
    assert moved.depth_m == LAKE.water_depth_m - 0.2  # clamped at the bottom
    with pytest.raises(ValueError):
        topology.step_mobility(0.0)


def test_builder_validation():
    with pytest.raises(ValueError):
        AcousticNetTopology.line(0, spacing_m=5.0)
    with pytest.raises(ValueError):
        AcousticNetTopology.grid(0, 3, spacing_m=5.0)
    with pytest.raises(ValueError):
        AcousticNetTopology.random_deployment(0, (10.0, 10.0))
    with pytest.raises(ValueError):
        AcousticNetTopology(comm_range_m=0.0)
