"""Tests for the fixed-band baselines and bitrate accounting."""

import numpy as np
import pytest

from repro.core.baselines import (
    FIXED_BAND_SCHEMES,
    FIXED_FULL_BAND,
    FIXED_MEDIUM_BAND,
    FIXED_NARROW_BAND,
)
from repro.core.adaptation import selection_from_bins
from repro.core.config import OFDMConfig, ProtocolConfig
from repro.core.rates import (
    bitrate_for_selection,
    coded_bitrate_bps,
    message_latency_s,
    packet_airtime_s,
)


CONFIG = OFDMConfig()


def test_three_baselines_defined():
    assert len(FIXED_BAND_SCHEMES) == 3
    names = [s.name for s in FIXED_BAND_SCHEMES]
    assert any("3 kHz" in n for n in names)
    assert any("1.5 kHz" in n for n in names)
    assert any("0.5 kHz" in n for n in names)


def test_full_band_scheme_covers_all_data_bins():
    band = FIXED_FULL_BAND.selection(CONFIG)
    assert band.num_bins == 60
    assert band.start_bin == CONFIG.first_data_bin
    assert band.end_bin == CONFIG.last_data_bin


def test_medium_and_narrow_bin_counts_match_paper():
    # The paper quotes 60, 30 and 10 OFDM bins for the three schemes.
    assert FIXED_MEDIUM_BAND.selection(CONFIG).num_bins == 30
    assert FIXED_NARROW_BAND.selection(CONFIG).num_bins == 10


def test_bandwidth_property():
    assert FIXED_FULL_BAND.bandwidth_hz == pytest.approx(3000.0)
    assert FIXED_NARROW_BAND.bandwidth_hz == pytest.approx(500.0)


def test_coded_bitrate_values_match_paper_medians():
    # 4 bins -> 133.3 bps, 19 bins -> 633.3 bps: the medians quoted in Fig. 12.
    assert coded_bitrate_bps(4) == pytest.approx(133.33, rel=1e-3)
    assert coded_bitrate_bps(19) == pytest.approx(633.33, rel=1e-3)
    assert coded_bitrate_bps(60) == pytest.approx(2000.0, rel=1e-3)


def test_coded_bitrate_with_prefix_overhead_near_1_8_kbps():
    rate = coded_bitrate_bps(60, include_cyclic_prefix=True)
    assert 1800 < rate < 1900


def test_bitrate_for_selection_consistency():
    band = selection_from_bins(30, 48, CONFIG)
    assert bitrate_for_selection(band) == pytest.approx(coded_bitrate_bps(19))


def test_coded_bitrate_rejects_zero_bins():
    with pytest.raises(ValueError):
        coded_bitrate_bps(0)


def test_packet_airtime_scales_with_band_width():
    narrow = packet_airtime_s(16, 4)
    wide = packet_airtime_s(16, 60)
    assert narrow > wide
    # Even the widest-band exchange takes several OFDM symbols of overhead.
    assert wide > 10 * CONFIG.extended_symbol_duration_s


def test_message_latency_examples_from_paper():
    # An 8-bit message (12 coded bits) at 25 bps takes about half a second.
    assert message_latency_s(12, 25.0) == pytest.approx(0.48, abs=0.05)
    # A 50-character (400-bit) message at 1 kbps takes about half a second.
    assert message_latency_s(400, 1000.0) == pytest.approx(0.4, abs=0.05)


def test_message_latency_validation():
    with pytest.raises(ValueError):
        message_latency_s(0, 100.0)
    with pytest.raises(ValueError):
        message_latency_s(10, 0.0)
