"""Tests for link statistics helpers."""

import numpy as np
import pytest

from repro.link.session import PacketResult
from repro.link.stats import Counter, empirical_cdf, median, summarize_packets


def test_empirical_cdf_basic():
    values, probs = empirical_cdf([3.0, 1.0, 2.0])
    np.testing.assert_allclose(values, [1.0, 2.0, 3.0])
    np.testing.assert_allclose(probs, [1 / 3, 2 / 3, 1.0])


def test_empirical_cdf_empty():
    values, probs = empirical_cdf([])
    assert values.size == 0 and probs.size == 0


def test_median_basic_and_empty():
    assert median([1.0, 3.0, 2.0]) == 2.0
    assert np.isnan(median([]))


def test_counter_rates():
    counter = Counter()
    assert np.isnan(counter.rate)
    counter.record(True)
    counter.record(False)
    counter.record(True)
    assert counter.rate == pytest.approx(2 / 3)
    assert counter.events == 2
    assert counter.trials == 3


def test_summarize_packets_keys():
    results = [
        PacketResult(True, True, True, True, None, None, 0, 16, 0, 24, 800.0, 12.0, 0.95),
        PacketResult(False, True, True, False, None, None, 2, 16, 4, 24, 400.0, 3.0, 0.7),
    ]
    summary = summarize_packets(results)
    assert summary["num_packets"] == 2
    assert summary["packet_error_rate"] == pytest.approx(0.5)
    assert summary["median_bitrate_bps"] == pytest.approx(600.0)
    assert 0 <= summary["feedback_error_rate"] <= 1


def _packet(delivered: bool, bit_errors: int) -> PacketResult:
    return PacketResult(delivered, True, True, True, None, None,
                        bit_errors, 16, bit_errors, 24, 800.0, 12.0, 0.95)


def test_link_statistics_cache_invalidates_on_add():
    from repro.link.session import LinkStatistics

    stats = LinkStatistics()
    stats.add(_packet(True, 0))
    assert stats.packet_error_rate == pytest.approx(0.0)
    stats.add(_packet(False, 3))
    assert stats.packet_error_rate == pytest.approx(0.5)
    assert stats.payload_bit_error_rate == pytest.approx(3 / 32)


def test_link_statistics_cache_invalidates_on_tail_replacement():
    from repro.link.session import LinkStatistics

    stats = LinkStatistics.from_results([_packet(True, 0), _packet(True, 0)])
    assert stats.packet_error_rate == pytest.approx(0.0)
    stats.results[-1] = _packet(False, 5)
    assert stats.packet_error_rate == pytest.approx(0.5)
    stats.results.pop()
    assert stats.packet_error_rate == pytest.approx(0.0)


def test_link_statistics_cache_survives_pop_then_append():
    from repro.link.session import LinkStatistics

    stats = LinkStatistics.from_results([_packet(True, 0)])
    assert stats.packet_error_rate == pytest.approx(0.0)
    stats.results.pop()
    stats.results.append(_packet(False, 16))
    assert stats.packet_error_rate == pytest.approx(1.0)
