"""Tests for the data encoding / decoding pipeline."""

import numpy as np
import pytest
from scipy import signal as sp_signal

from repro.core.adaptation import selection_from_bins
from repro.core.coding import DataDecoder, DataEncoder
from repro.core.config import OFDMConfig


CONFIG = OFDMConfig()
FULL_BAND = selection_from_bins(CONFIG.first_data_bin, CONFIG.last_data_bin, CONFIG)
NARROW_BAND = selection_from_bins(30, 45, CONFIG)


@pytest.fixture(scope="module")
def encoder():
    return DataEncoder()


@pytest.fixture(scope="module")
def decoder():
    return DataDecoder()


def _payload(rng, bits=16):
    return rng.integers(0, 2, bits)


def test_encoded_packet_dimensions(encoder):
    payload = np.ones(16, dtype=int)
    packet = encoder.encode(payload, FULL_BAND)
    assert packet.num_payload_bits == 16
    assert packet.num_coded_bits == 24
    assert packet.num_data_symbols == 1  # 24 coded bits fit in one 60-bin symbol
    assert packet.num_symbols_total == 2
    assert packet.waveform.size == 2 * CONFIG.extended_symbol_length


def test_narrow_band_needs_more_symbols(encoder):
    payload = np.ones(16, dtype=int)
    packet = encoder.encode(payload, NARROW_BAND)
    assert packet.num_data_symbols == int(np.ceil(24 / NARROW_BAND.num_bins))


def test_energy_confined_to_selected_band(encoder):
    payload = np.ones(16, dtype=int)
    packet = encoder.encode(payload, NARROW_BAND)
    cp = CONFIG.cyclic_prefix_length
    first_data_symbol = packet.waveform[CONFIG.extended_symbol_length + cp:
                                        CONFIG.extended_symbol_length + cp + CONFIG.symbol_length]
    spectrum = np.abs(np.fft.rfft(first_data_symbol)) ** 2
    in_band = spectrum[NARROW_BAND.start_bin:NARROW_BAND.end_bin + 1].sum()
    assert in_band / spectrum.sum() > 0.99


def test_loopback_roundtrip_full_band(encoder, decoder, rng):
    payload = _payload(rng)
    packet = encoder.encode(payload, FULL_BAND)
    decoded = decoder.decode(packet.waveform, FULL_BAND, 16)
    np.testing.assert_array_equal(decoded.bits, payload)
    assert decoded.soft_bits.size == 24
    assert decoded.hard_coded_bits.size == 24


def test_loopback_roundtrip_narrow_band(encoder, decoder, rng):
    payload = _payload(rng)
    packet = encoder.encode(payload, NARROW_BAND)
    decoded = decoder.decode(packet.waveform, NARROW_BAND, 16)
    np.testing.assert_array_equal(decoded.bits, payload)


def test_loopback_single_bin_band(encoder, decoder, rng):
    band = selection_from_bins(40, 40, CONFIG)
    payload = _payload(rng)
    packet = encoder.encode(payload, band)
    assert packet.num_data_symbols == 24
    decoded = decoder.decode(packet.waveform, band, 16)
    np.testing.assert_array_equal(decoded.bits, payload)


def test_roundtrip_through_multipath_channel(rng):
    """The equalizer + cyclic prefix must handle a modest multipath channel."""
    encoder = DataEncoder()
    decoder = DataDecoder(equalizer_num_taps=200)
    payload = _payload(rng)
    packet = encoder.encode(payload, FULL_BAND)
    channel = np.zeros(120)
    channel[0] = 1.0
    channel[35] = 0.4
    channel[90] = -0.25
    received = sp_signal.lfilter(channel, 1.0, packet.waveform)
    received = received + 0.01 * rng.standard_normal(received.size)
    decoded = decoder.decode(received, FULL_BAND, 16)
    np.testing.assert_array_equal(decoded.bits, payload)


def test_roundtrip_with_noise(rng):
    encoder = DataEncoder()
    decoder = DataDecoder()
    payload = _payload(rng)
    packet = encoder.encode(payload, FULL_BAND)
    received = packet.waveform + 0.05 * rng.standard_normal(packet.waveform.size)
    decoded = decoder.decode(received, FULL_BAND, 16)
    np.testing.assert_array_equal(decoded.bits, payload)


def test_differential_disabled_roundtrip(rng):
    encoder = DataEncoder(use_differential=False)
    decoder = DataDecoder(use_differential=False)
    payload = _payload(rng)
    packet = encoder.encode(payload, FULL_BAND)
    decoded = decoder.decode(packet.waveform, FULL_BAND, 16)
    np.testing.assert_array_equal(decoded.bits, payload)


def test_interleaving_disabled_roundtrip(rng):
    encoder = DataEncoder(use_interleaving=False)
    decoder = DataDecoder(use_interleaving=False)
    payload = _payload(rng)
    packet = encoder.encode(payload, NARROW_BAND)
    decoded = decoder.decode(packet.waveform, NARROW_BAND, 16)
    np.testing.assert_array_equal(decoded.bits, payload)


def test_differential_coding_survives_slow_phase_drift(rng):
    """A slowly rotating channel phase should not break differential decoding."""
    encoder = DataEncoder()
    decoder = DataDecoder(use_equalizer=False)
    payload = _payload(rng)
    band = selection_from_bins(30, 59, CONFIG)
    packet = encoder.encode(payload, band)
    # Apply a slow time-varying delay (phase drift) across the burst.
    t = np.arange(packet.waveform.size)
    drifted = packet.waveform * (1.0 + 0.02 * np.sin(2 * np.pi * t / packet.waveform.size))
    decoded = decoder.decode(drifted, band, 16)
    np.testing.assert_array_equal(decoded.bits, payload)


def test_decode_validates_length(decoder):
    with pytest.raises(ValueError):
        decoder.decode(np.zeros(100), FULL_BAND, 16)


def test_encode_validates_payload(encoder):
    with pytest.raises(ValueError):
        encoder.encode(np.array([]), FULL_BAND)
    with pytest.raises(ValueError):
        encoder.encode(np.array([0, 1, 2]), FULL_BAND)


def test_expected_length_accounting(decoder, encoder):
    payload = np.ones(16, dtype=int)
    packet = encoder.encode(payload, NARROW_BAND)
    assert decoder.expected_length(16, NARROW_BAND) == packet.waveform.size


def test_coded_reference_bits_match_encoder(decoder, rng):
    payload = _payload(rng)
    assert decoder.coded_reference_bits(payload).size == 24


def test_longer_payload_roundtrip(rng):
    encoder = DataEncoder()
    decoder = DataDecoder()
    payload = rng.integers(0, 2, 64)
    packet = encoder.encode(payload, FULL_BAND)
    assert packet.num_coded_bits == 96
    decoded = decoder.decode(packet.waveform, FULL_BAND, 64)
    np.testing.assert_array_equal(decoded.bits, payload)
