"""Tests for the motion model and the in-air channel."""

import numpy as np
import pytest

from repro.channel.air import InAirChannel
from repro.channel.motion import (
    FAST_MOTION,
    MOTION_PRESETS,
    SLOW_MOTION,
    STATIC_MOTION,
    MotionModel,
)
from repro.dsp.chirp import lfm_chirp
from repro.dsp.spectrum import frequency_response_from_probe


def test_presets_match_paper_accelerations():
    assert STATIC_MOTION.acceleration_m_s2 == 0.0
    assert SLOW_MOTION.acceleration_m_s2 == pytest.approx(2.5)
    assert FAST_MOTION.acceleration_m_s2 == pytest.approx(5.1)
    assert set(MOTION_PRESETS) == {"static", "slow", "fast"}


def test_static_motion_produces_no_movement():
    state = STATIC_MOTION.sample(rng=0)
    assert state.radial_speed_m_s == 0.0
    assert state.drift_rate_per_s == 0.0
    assert state.displacement_m == 0.0


def test_fast_motion_faster_than_slow_on_average():
    slow = [abs(SLOW_MOTION.sample(rng=i, interval_s=0.5).radial_speed_m_s) for i in range(50)]
    fast = [abs(FAST_MOTION.sample(rng=i, interval_s=0.5).radial_speed_m_s) for i in range(50)]
    assert np.mean(fast) > np.mean(slow)


def test_motion_speed_capped_at_safe_diver_speed():
    model = MotionModel("test", acceleration_m_s2=50.0, max_speed_m_s=2.0,
                        channel_drift_rate_per_s=1.0)
    speeds = [abs(model.sample(rng=i, interval_s=1.0).radial_speed_m_s) for i in range(30)]
    assert max(speeds) <= 2.0 + 1e-9


def test_motion_sampling_is_deterministic_per_seed():
    a = FAST_MOTION.sample(rng=9, interval_s=0.4)
    b = FAST_MOTION.sample(rng=9, interval_s=0.4)
    assert a == b


def test_in_air_channel_reciprocity():
    """In air the forward and backward responses are nearly identical (Fig. 3c)."""
    fs = 48000.0
    chirp = lfm_chirp(1000, 3000, 1.0, fs)
    forward = InAirChannel(distance_m=2.0)
    backward = forward.reverse()
    freqs = np.arange(1000.0, 3000.0, 50.0)
    rx_fwd = forward.transmit(chirp, fs, rng=1)
    rx_bwd = backward.transmit(chirp, fs, rng=2)
    resp_fwd = frequency_response_from_probe(chirp, rx_fwd, fs, freqs)
    resp_bwd = frequency_response_from_probe(chirp, rx_bwd, fs, freqs)
    # Mean absolute difference across the band stays small in air.
    assert np.mean(np.abs(resp_fwd - resp_bwd)) < 3.0


def test_in_air_channel_output_length_and_noise():
    fs = 48000.0
    channel = InAirChannel()
    x = np.zeros(4800)
    y = channel.transmit(x, fs, rng=0)
    assert y.size == x.size
    assert np.std(y) > 0  # ambient noise present


def test_in_air_channel_validation():
    with pytest.raises(ValueError):
        InAirChannel(distance_m=0.0)
