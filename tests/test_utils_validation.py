"""Tests for validation helpers."""

import pytest

from repro.utils.validation import (
    require_in_range,
    require_non_negative,
    require_one_of,
    require_positive,
)


def test_require_positive_accepts_positive():
    assert require_positive(0.5, "x") == 0.5


@pytest.mark.parametrize("value", [0, -1, -0.001])
def test_require_positive_rejects_non_positive(value):
    with pytest.raises(ValueError, match="x"):
        require_positive(value, "x")


def test_require_non_negative_accepts_zero():
    assert require_non_negative(0.0, "y") == 0.0


def test_require_non_negative_rejects_negative():
    with pytest.raises(ValueError):
        require_non_negative(-0.1, "y")


def test_require_in_range_bounds_inclusive():
    assert require_in_range(1.0, 1.0, 2.0, "z") == 1.0
    assert require_in_range(2.0, 1.0, 2.0, "z") == 2.0


def test_require_in_range_rejects_outside():
    with pytest.raises(ValueError):
        require_in_range(2.5, 1.0, 2.0, "z")


def test_require_one_of_accepts_member():
    assert require_one_of("a", ("a", "b"), "opt") == "a"


def test_require_one_of_rejects_non_member():
    with pytest.raises(ValueError):
        require_one_of("c", ("a", "b"), "opt")
