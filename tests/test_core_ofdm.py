"""Tests for OFDM symbol modulation / demodulation."""

import numpy as np
import pytest

from repro.core.config import OFDMConfig
from repro.core.ofdm import OFDMModulator


@pytest.fixture(scope="module")
def config():
    return OFDMConfig()


@pytest.fixture(scope="module")
def modulator(config):
    return OFDMModulator(config)


def test_symbol_length_with_and_without_prefix(modulator, config):
    values = np.ones(config.num_data_bins, dtype=complex)
    with_cp = modulator.modulate(values, config.data_bins)
    without_cp = modulator.modulate(values, config.data_bins, add_cyclic_prefix=False)
    assert with_cp.size == config.extended_symbol_length
    assert without_cp.size == config.symbol_length


def test_cyclic_prefix_is_a_copy_of_the_tail(modulator, config):
    values = np.exp(1j * np.linspace(0, 3, config.num_data_bins))
    symbol = modulator.modulate(values, config.data_bins)
    prefix = symbol[: config.cyclic_prefix_length]
    tail = symbol[-config.cyclic_prefix_length:]
    np.testing.assert_allclose(prefix, tail)


def test_power_normalization(modulator, config):
    values = np.ones(config.num_data_bins, dtype=complex)
    symbol = modulator.modulate(values, config.data_bins, add_cyclic_prefix=False)
    assert np.mean(symbol ** 2) == pytest.approx(1.0, rel=1e-6)


def test_power_reallocation_on_fewer_bins(modulator, config):
    """Fewer active bins -> more power per bin (fixed total symbol power)."""
    full = modulator.modulate(np.ones(60, dtype=complex), config.data_bins,
                              add_cyclic_prefix=False)
    narrow_bins = config.data_bins[:10]
    narrow = modulator.modulate(np.ones(10, dtype=complex), narrow_bins,
                                add_cyclic_prefix=False)
    full_spectrum = np.abs(np.fft.rfft(full)) ** 2
    narrow_spectrum = np.abs(np.fft.rfft(narrow)) ** 2
    per_bin_full = full_spectrum[config.data_bins].mean()
    per_bin_narrow = narrow_spectrum[narrow_bins].mean()
    assert per_bin_narrow / per_bin_full == pytest.approx(6.0, rel=0.05)


def test_modulate_demodulate_roundtrip(modulator, config):
    rng = np.random.default_rng(0)
    values = np.exp(1j * rng.uniform(0, 2 * np.pi, config.num_data_bins))
    symbol = modulator.modulate(values, config.data_bins)
    recovered = modulator.demodulate(symbol, config.data_bins)
    # Up to a common positive scale factor the values must match.
    scale = np.abs(recovered[0] / values[0])
    np.testing.assert_allclose(recovered, values * scale, atol=1e-8 * scale + 1e-12)


def test_demodulate_full_spectrum_when_bins_omitted(modulator, config):
    values = np.ones(config.num_data_bins, dtype=complex)
    symbol = modulator.modulate(values, config.data_bins)
    spectrum = modulator.demodulate(symbol)
    assert spectrum.size == config.symbol_length // 2 + 1


def test_unused_bins_carry_no_energy(modulator, config):
    values = np.ones(config.num_data_bins, dtype=complex)
    symbol = modulator.modulate(values, config.data_bins, add_cyclic_prefix=False)
    spectrum = np.abs(np.fft.rfft(symbol))
    out_of_band = np.delete(spectrum, config.data_bins)
    assert np.max(out_of_band) < 1e-9 * np.max(spectrum)


def test_modulate_validations(modulator, config):
    with pytest.raises(ValueError):
        modulator.modulate(np.ones(3), np.array([1, 2]))
    with pytest.raises(ValueError):
        modulator.modulate(np.ones(1), np.array([config.symbol_length]))


def test_demodulate_validates_length(modulator):
    with pytest.raises(ValueError):
        modulator.demodulate(np.zeros(10))


def test_silence_generation(modulator, config):
    silence = modulator.silence(3)
    assert silence.size == 3 * config.extended_symbol_length
    assert np.all(silence == 0)
    assert modulator.silence(0).size == 0


def test_split_symbols(modulator, config):
    values = np.ones(config.num_data_bins, dtype=complex)
    one = modulator.modulate(values, config.data_bins)
    buffer = np.concatenate([one, 2 * one, 3 * one])
    symbols = modulator.split_symbols(buffer, 3)
    assert len(symbols) == 3
    np.testing.assert_allclose(symbols[1], 2 * one)
    with pytest.raises(ValueError):
        modulator.split_symbols(buffer, 4)


def test_constructor_rejects_bad_power(config):
    with pytest.raises(ValueError):
        OFDMModulator(config, symbol_power=0.0)


def test_modulate_many_matches_single_symbol_path(modulator, config):
    rng = np.random.default_rng(21)
    bins = config.data_bins[:12]
    values = np.exp(2j * np.pi * rng.random((7, bins.size)))
    for add_prefix in (True, False):
        for normalize in (True, False):
            batch = modulator.modulate_many(
                values, bins, add_cyclic_prefix=add_prefix, normalize_power=normalize
            )
            singles = np.stack([
                modulator.modulate(row, bins, add_cyclic_prefix=add_prefix,
                                   normalize_power=normalize)
                for row in values
            ])
            np.testing.assert_array_equal(batch, singles)


def test_modulate_many_validates_shapes(modulator, config):
    bins = config.data_bins[:4]
    with pytest.raises(ValueError):
        modulator.modulate_many(np.ones(4, dtype=complex), bins)  # 1-D input
    with pytest.raises(ValueError):
        modulator.modulate_many(np.ones((2, 3), dtype=complex), bins)  # width mismatch
    with pytest.raises(ValueError):
        modulator.modulate_many(np.ones((2, 1), dtype=complex),
                                [modulator.num_spectrum_bins])  # bin out of range


def test_demodulate_many_matches_single_symbol_path(modulator, config):
    rng = np.random.default_rng(22)
    bins = config.data_bins[:10]
    values = np.exp(2j * np.pi * rng.random((5, bins.size)))
    waveform = modulator.modulate_many(values, bins).ravel()
    batch = modulator.demodulate_many(waveform, 5, bins)
    step = config.extended_symbol_length
    singles = np.stack([
        modulator.demodulate(waveform[i * step:(i + 1) * step], bins)
        for i in range(5)
    ])
    np.testing.assert_array_equal(batch, singles)
    # Full-spectrum variant
    np.testing.assert_array_equal(
        modulator.demodulate_many(waveform, 5)[:, bins], batch
    )


def test_demodulate_many_validates_input(modulator):
    with pytest.raises(ValueError):
        modulator.demodulate_many(np.zeros(10), 5)
    with pytest.raises(ValueError):
        modulator.demodulate_many(np.zeros(10), -1)


def test_modulate_many_round_trip_recovers_values(modulator, config):
    rng = np.random.default_rng(23)
    bins = config.data_bins[:8]
    values = np.exp(2j * np.pi * rng.random((3, bins.size)))
    waveform = modulator.modulate_many(values, bins, normalize_power=False).ravel()
    recovered = modulator.demodulate_many(waveform, 3, bins)
    np.testing.assert_allclose(recovered, values, atol=1e-10)
