"""Tests for LFM chirp generation."""

import numpy as np
import pytest

from repro.dsp.chirp import chirp_instantaneous_frequency, lfm_chirp


def test_chirp_length_and_amplitude():
    chirp = lfm_chirp(1000, 5000, 0.5, 48000, amplitude=0.7)
    assert chirp.size == 24000
    assert np.max(np.abs(chirp)) <= 0.7 + 1e-9


def test_chirp_energy_concentrated_in_swept_band():
    fs = 48000
    chirp = lfm_chirp(1000, 4000, 0.5, fs)
    spectrum = np.abs(np.fft.rfft(chirp)) ** 2
    freqs = np.fft.rfftfreq(chirp.size, 1 / fs)
    in_band = spectrum[(freqs >= 900) & (freqs <= 4100)].sum()
    assert in_band / spectrum.sum() > 0.95


def test_downward_chirp_allowed():
    chirp = lfm_chirp(4000, 1000, 0.1, 48000)
    assert chirp.size == 4800


def test_chirp_rejects_bad_duration_and_rate():
    with pytest.raises(ValueError):
        lfm_chirp(1000, 2000, 0.0, 48000)
    with pytest.raises(ValueError):
        lfm_chirp(1000, 2000, 1.0, 0.0)
    with pytest.raises(ValueError):
        lfm_chirp(-10, 2000, 1.0, 48000)


def test_instantaneous_frequency_endpoints():
    times = np.array([0.0, 0.5, 1.0])
    freqs = chirp_instantaneous_frequency(1000, 3000, 1.0, times)
    np.testing.assert_allclose(freqs, [1000, 2000, 3000])
