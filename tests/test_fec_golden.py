"""Golden-equivalence tests: vectorized Viterbi vs the loop reference.

The vectorized decoder in :mod:`repro.fec.convolutional` must make the
*same decisions* as the retained loop implementation in
:mod:`repro.fec.reference` -- not just decode correctly, but be
bit-identical on every input class: random codewords, hard and soft
inputs, erasure (NaN) patterns, the punctured rate-2/3 configuration, and
terminated as well as unterminated trellises.  Noise levels are chosen
high enough that many decodes contain residual errors, so the tests also
pin down tie-breaking and traceback behaviour, not only the easy
error-free paths.

Tolerance audit (PR 5): this suite deliberately carries **no** atol/rtol
anywhere -- every comparison is exact array equality.  Both decoders
compute identical branch metrics from identical float inputs in the same
order (only the batching differs), so their decisions must agree bit for
bit; measured deviation is exactly 0 on every input class above.  Any
tolerance would mask the one failure mode this suite exists to catch: a
survivor path flipping under a vectorization change.  Randomized decode
loops report failures through ``_golden_utils.assert_bit_identical_seeded``
so the offending (seed, iteration) is printed ready to replay.
"""

import numpy as np
import pytest

from _golden_utils import assert_bit_identical_seeded

from repro.fec.convolutional import (
    ConvolutionalCode,
    PuncturedConvolutionalCode,
    hard_bits_to_soft,
)
from repro.fec.reference import (
    reference_decode,
    reference_encode,
    reference_punctured_decode,
)


@pytest.fixture(scope="module")
def code():
    return ConvolutionalCode()


@pytest.mark.parametrize("terminate", [True, False])
def test_encode_matches_reference(code, terminate):
    rng = np.random.default_rng(100)
    for n in (1, 2, 7, 16, 63, 200):
        bits = rng.integers(0, 2, n)
        np.testing.assert_array_equal(
            code.encode(bits, terminate=terminate),
            reference_encode(code, bits, terminate=terminate),
        )


@pytest.mark.parametrize("terminated", [True, False])
def test_decode_hard_bits_matches_reference(code, terminated):
    rng = np.random.default_rng(101)
    for iteration in range(15):
        n = int(rng.integers(1, 100))
        coded = code.encode(rng.integers(0, 2, n), terminate=terminated).astype(float)
        flips = rng.random(coded.size) < 0.08
        coded[flips] = 1 - coded[flips]
        assert_bit_identical_seeded(
            code.decode(coded, num_data_bits=n, terminated=terminated),
            reference_decode(code, coded, num_data_bits=n, terminated=terminated),
            seed=(101, iteration), label="viterbi hard-bit decode vs reference",
            detail=f"n={n} terminated={terminated}",
        )


@pytest.mark.parametrize("terminated", [True, False])
def test_decode_soft_values_matches_reference(code, terminated):
    rng = np.random.default_rng(102)
    for iteration in range(15):
        n = int(rng.integers(1, 100))
        coded = code.encode(rng.integers(0, 2, n), terminate=terminated)
        soft = (coded * 2.0 - 1.0) + rng.normal(0.0, 0.8, coded.size)
        assert_bit_identical_seeded(
            code.decode(soft, num_data_bits=n, terminated=terminated),
            reference_decode(code, soft, num_data_bits=n, terminated=terminated),
            seed=(102, iteration), label="viterbi soft decode vs reference",
            detail=f"n={n} terminated={terminated}",
        )


@pytest.mark.parametrize("erasure_fraction", [0.1, 0.3, 0.6])
def test_decode_with_erasures_matches_reference(code, erasure_fraction):
    rng = np.random.default_rng(103)
    for terminated in (True, False):
        n = 80
        coded = code.encode(rng.integers(0, 2, n), terminate=terminated)
        soft = (coded * 2.0 - 1.0) + rng.normal(0.0, 0.5, coded.size)
        soft[rng.random(soft.size) < erasure_fraction] = np.nan
        np.testing.assert_array_equal(
            code.decode(soft, num_data_bits=n, terminated=terminated),
            reference_decode(code, soft, num_data_bits=n, terminated=terminated),
        )


def test_decode_fully_erased_steps_match_reference(code):
    # Entire trellis steps can be erased (both outputs NaN); the reference
    # then gives every branch a zero metric and the tie-breaking rule alone
    # decides the survivor.
    rng = np.random.default_rng(104)
    n = 40
    coded = code.encode(rng.integers(0, 2, n)).astype(float)
    erased_steps = rng.choice(coded.size // 2, size=8, replace=False)
    for step in erased_steps:
        coded[2 * step:2 * step + 2] = np.nan
    np.testing.assert_array_equal(
        code.decode(coded, num_data_bits=n),
        reference_decode(code, coded, num_data_bits=n),
    )


def test_decode_all_erased_matches_reference(code):
    soft = np.full(60, np.nan)
    np.testing.assert_array_equal(
        code.decode(soft, num_data_bits=24),
        reference_decode(code, soft, num_data_bits=24),
    )


def test_decode_tie_breaking_matches_reference(code):
    # All-zero soft input makes every branch metric 0.0: the decode is pure
    # tie-breaking.  (0.0 is a "hard-like" value, so bypass the hard-bit
    # mapping by including one genuinely soft entry.)
    soft = np.zeros(64)
    soft[0] = 1e-9
    np.testing.assert_array_equal(
        code.decode(soft, num_data_bits=26),
        reference_decode(code, soft, num_data_bits=26),
    )


@pytest.mark.parametrize("terminate", [False, True])
def test_punctured_decode_matches_reference(terminate):
    punctured = PuncturedConvolutionalCode(terminate=terminate)
    rng = np.random.default_rng(105)
    for iteration in range(10):
        n = int(rng.integers(2, 60))
        coded = punctured.encode(rng.integers(0, 2, n))
        soft = (coded * 2.0 - 1.0) + rng.normal(0.0, 0.7, coded.size)
        assert_bit_identical_seeded(
            punctured.decode(soft, num_data_bits=n),
            reference_punctured_decode(punctured, soft, num_data_bits=n),
            seed=(105, iteration), label="punctured decode vs reference",
            detail=f"n={n} terminate={terminate}",
        )


def test_punctured_hard_bits_match_reference():
    punctured = PuncturedConvolutionalCode()
    rng = np.random.default_rng(106)
    bits = rng.integers(0, 2, 16)
    coded = punctured.encode(bits).astype(float)
    coded[3] = 1 - coded[3]
    coded[11] = 1 - coded[11]
    np.testing.assert_array_equal(
        punctured.decode(coded, num_data_bits=16),
        reference_punctured_decode(punctured, coded, num_data_bits=16),
    )


def test_other_code_parameters_match_reference():
    # A different constraint length and polynomial set exercises the
    # generic trellis construction, not just the cached (7, 133/171) case.
    small = ConvolutionalCode(constraint_length=5, polynomials=(0o23, 0o35))
    rng = np.random.default_rng(107)
    for terminated in (True, False):
        n = 50
        coded = small.encode(rng.integers(0, 2, n), terminate=terminated)
        soft = (coded * 2.0 - 1.0) + rng.normal(0.0, 0.6, coded.size)
        np.testing.assert_array_equal(
            small.decode(soft, num_data_bits=n, terminated=terminated),
            reference_decode(small, soft, num_data_bits=n, terminated=terminated),
        )


def test_three_output_code_matches_reference():
    rate_third = ConvolutionalCode(constraint_length=4, polynomials=(0o13, 0o15, 0o17))
    rng = np.random.default_rng(108)
    n = 40
    coded = rate_third.encode(rng.integers(0, 2, n))
    soft = (coded * 2.0 - 1.0) + rng.normal(0.0, 0.6, coded.size)
    soft[rng.random(soft.size) < 0.1] = np.nan
    np.testing.assert_array_equal(
        rate_third.decode(soft, num_data_bits=n),
        reference_decode(rate_third, soft, num_data_bits=n),
    )


# ---------------------------------------------------------------- shared helper
def test_hard_bits_to_soft_maps_hard_bits():
    np.testing.assert_array_equal(
        hard_bits_to_soft([0, 1, 1, 0]), np.array([-1.0, 1.0, 1.0, -1.0])
    )


def test_hard_bits_to_soft_preserves_soft_values():
    soft = np.array([-0.4, 0.9, 0.1])
    np.testing.assert_array_equal(hard_bits_to_soft(soft), soft)


def test_hard_bits_to_soft_keeps_nan_erasures():
    out = hard_bits_to_soft([0.0, np.nan, 1.0])
    assert np.isnan(out[1])
    np.testing.assert_array_equal(out[[0, 2]], [-1.0, 1.0])


def test_hard_bits_to_soft_empty():
    assert hard_bits_to_soft([]).size == 0
