"""Tests for Doppler resampling and fractional delay."""

import numpy as np
import pytest

from repro.dsp.resample import (
    SOUND_SPEED_WATER_M_S,
    apply_doppler,
    doppler_factor,
    fractional_delay,
)


def test_doppler_factor_static_is_unity():
    assert doppler_factor(0.0) == pytest.approx(1.0)


def test_doppler_factor_sign_convention():
    assert doppler_factor(1.5) > 1.0   # approaching compresses
    assert doppler_factor(-1.5) < 1.0  # receding dilates


def test_doppler_factor_magnitude_for_human_speeds():
    # 2 m/s relative speed over 1500 m/s sound speed: ~0.13 %.
    factor = doppler_factor(2.0)
    assert factor == pytest.approx(1.0 + 2.0 / SOUND_SPEED_WATER_M_S)


def test_doppler_factor_rejects_supersonic():
    with pytest.raises(ValueError):
        doppler_factor(2000.0)


def test_apply_doppler_identity():
    x = np.sin(np.linspace(0, 20, 1000))
    np.testing.assert_allclose(apply_doppler(x, 1.0), x)


def test_apply_doppler_shifts_tone_frequency():
    fs = 48000
    t = np.arange(fs) / fs
    tone = np.sin(2 * np.pi * 4000 * t)
    shifted = apply_doppler(tone, doppler_factor(2.0))
    spectrum = np.abs(np.fft.rfft(shifted * np.hanning(shifted.size)))
    freqs = np.fft.rfftfreq(shifted.size, 1 / fs)
    peak = freqs[np.argmax(spectrum)]
    expected = 4000 * doppler_factor(2.0)
    assert abs(peak - expected) < 3.0
    assert abs(peak - 4000) > 2.0  # the shift (≈5.3 Hz) is visible


def test_apply_doppler_preserves_length():
    x = np.random.default_rng(0).standard_normal(5000)
    assert apply_doppler(x, 1.001).size == x.size


def test_fractional_delay_integer_shift():
    x = np.zeros(10)
    x[3] = 1.0
    delayed = fractional_delay(x, 2.0)
    assert np.argmax(delayed) == 5


def test_fractional_delay_half_sample_splits_energy():
    x = np.zeros(10)
    x[4] = 1.0
    delayed = fractional_delay(x, 0.5)
    assert delayed[4] == pytest.approx(0.5)
    assert delayed[5] == pytest.approx(0.5)


def test_fractional_delay_rejects_negative():
    with pytest.raises(ValueError):
        fractional_delay(np.ones(4), -1.0)
