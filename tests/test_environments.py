"""Tests for the evaluation-site presets and the channel factory."""

import numpy as np
import pytest

from repro.channel.channel import UnderwaterAcousticChannel
from repro.channel.motion import FAST_MOTION
from repro.devices.case import HARD_CASE
from repro.environments.factory import build_channel, build_link_pair, build_noise_model
from repro.environments.sites import (
    BAY,
    BEACH,
    BRIDGE,
    LAKE,
    MUSEUM,
    PARK,
    SITE_CATALOG,
    Site,
)


def test_catalog_has_six_sites():
    assert set(SITE_CATALOG) == {"bridge", "park", "lake", "beach", "museum", "bay"}


def test_site_depths_match_paper():
    assert LAKE.water_depth_m == pytest.approx(5.0)
    assert MUSEUM.water_depth_m == pytest.approx(9.0)
    assert BAY.water_depth_m == pytest.approx(15.0)


def test_beach_supports_long_range():
    assert BEACH.max_range_m >= 113.0


def test_bridge_is_quietest_site():
    assert BRIDGE.noise_level_db <= min(s.noise_level_db for s in SITE_CATALOG.values())


def test_lake_is_most_reverberant():
    assert LAKE.extra_reflectors >= max(s.extra_reflectors for s in SITE_CATALOG.values())


def test_site_validation():
    with pytest.raises(ValueError):
        Site("bad", "", water_depth_m=-1.0, max_range_m=10.0, noise_level_db=-40.0,
             impulsive_noise_rate_hz=0.0, surface_loss_db=1.0, bottom_loss_db=5.0,
             extra_reflectors=0, current_speed_m_s=0.0)


def test_build_noise_model_uses_site_level():
    model = build_noise_model(PARK)
    assert model.level_db == PARK.noise_level_db


def test_build_channel_returns_configured_channel():
    channel = build_channel(site=LAKE, distance_m=10.0, seed=1)
    assert isinstance(channel, UnderwaterAcousticChannel)
    assert channel.distance_m == pytest.approx(10.0)
    assert channel.geometry.water_depth_m == pytest.approx(LAKE.water_depth_m)


def test_build_channel_rejects_excessive_distance():
    with pytest.raises(ValueError):
        build_channel(site=BRIDGE, distance_m=500.0)
    with pytest.raises(ValueError):
        build_channel(site=BRIDGE, distance_m=-1.0)


def test_build_channel_clamps_depth_into_water_column():
    channel = build_channel(site=BRIDGE, distance_m=5.0, tx_depth_m=10.0, seed=2,
                            tx_case=HARD_CASE, rx_case=HARD_CASE)
    assert channel.geometry.tx_depth_m < BRIDGE.water_depth_m


def test_build_channel_deterministic_for_seed():
    freqs = np.arange(1000.0, 4000.0, 100.0)
    a = build_channel(site=LAKE, distance_m=7.0, seed=42).end_to_end_response_db(freqs)
    b = build_channel(site=LAKE, distance_m=7.0, seed=42).end_to_end_response_db(freqs)
    np.testing.assert_allclose(a, b)


def test_build_channel_differs_across_sites():
    freqs = np.arange(1000.0, 4000.0, 100.0)
    lake = build_channel(site=LAKE, distance_m=5.0, seed=3).end_to_end_response_db(freqs)
    bridge = build_channel(site=BRIDGE, distance_m=5.0, seed=3).end_to_end_response_db(freqs)
    assert not np.allclose(lake, bridge, atol=1.0)


def test_build_channel_with_motion_preset():
    channel = build_channel(site=LAKE, distance_m=5.0, motion=FAST_MOTION, seed=4)
    assert channel.motion is FAST_MOTION


def test_static_requests_get_residual_currents_at_busy_sites():
    channel = build_channel(site=PARK, distance_m=5.0, seed=5)
    assert channel.motion.acceleration_m_s2 == pytest.approx(PARK.current_speed_m_s)


def test_build_link_pair_returns_forward_and_backward():
    forward, backward = build_link_pair(site=LAKE, distance_m=5.0, seed=6)
    assert isinstance(forward, UnderwaterAcousticChannel)
    assert isinstance(backward, UnderwaterAcousticChannel)
    assert backward.tx_device is forward.rx_device
