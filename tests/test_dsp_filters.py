"""Tests for FIR filter design and application."""

import numpy as np
import pytest
from scipy import signal as sp_signal

from repro.dsp.filters import FIRBandpassFilter, design_bandpass_fir, design_fir_from_response


def _tone(freq, fs=48000, duration=0.2):
    t = np.arange(int(fs * duration)) / fs
    return np.sin(2 * np.pi * freq * t)


def test_bandpass_design_passes_in_band_and_rejects_out_of_band():
    taps = design_bandpass_fir(1000, 4000, 48000, 129)
    w, h = sp_signal.freqz(taps, worN=4096, fs=48000)
    gain = np.abs(h)
    assert gain[np.argmin(np.abs(w - 2500))] > 0.9
    assert gain[np.argmin(np.abs(w - 200))] < 0.05
    assert gain[np.argmin(np.abs(w - 8000))] < 0.05


def test_bandpass_design_forces_odd_taps():
    taps = design_bandpass_fir(1000, 4000, 48000, 128)
    assert taps.size % 2 == 1


def test_bandpass_design_rejects_invalid_edges():
    with pytest.raises(ValueError):
        design_bandpass_fir(4000, 1000, 48000)
    with pytest.raises(ValueError):
        design_bandpass_fir(1000, 30000, 48000)


def test_filter_attenuates_out_of_band_tone():
    filt = FIRBandpassFilter()
    in_band = filt.apply(_tone(2500))
    out_band = filt.apply(_tone(300))
    assert np.std(in_band) > 10 * np.std(out_band)


def test_filter_delay_compensation_preserves_alignment():
    filt = FIRBandpassFilter()
    x = _tone(2000, duration=0.05)
    y = filt.apply(x, compensate_delay=True)
    assert y.size == x.size
    # Cross-correlation peak should sit at (nearly) zero lag.
    corr = np.correlate(y, x, mode="full")
    lag = np.argmax(corr) - (x.size - 1)
    assert abs(lag) <= 1


def test_filter_output_length_matches_input():
    filt = FIRBandpassFilter()
    x = np.random.default_rng(0).standard_normal(1000)
    assert filt.apply(x).size == x.size


def test_design_fir_from_response_matches_target_gain():
    freqs = np.array([500.0, 1000.0, 2000.0, 4000.0, 8000.0])
    gains = np.array([-20.0, -3.0, 0.0, -3.0, -20.0])
    taps = design_fir_from_response(freqs, gains, 48000, 257)
    w, h = sp_signal.freqz(taps, worN=8192, fs=48000)
    gain_db = 20 * np.log10(np.maximum(np.abs(h), 1e-9))
    at_2k = gain_db[np.argmin(np.abs(w - 2000))]
    at_500 = gain_db[np.argmin(np.abs(w - 500))]
    assert at_2k == pytest.approx(0.0, abs=1.5)
    assert at_500 < -10.0


def test_design_fir_from_response_validates_inputs():
    with pytest.raises(ValueError):
        design_fir_from_response(np.array([1000.0]), np.array([0.0]), 48000)
    with pytest.raises(ValueError):
        design_fir_from_response(np.array([2000.0, 1000.0]), np.array([0.0, 0.0]), 48000)


def test_group_delay_property():
    filt = FIRBandpassFilter(num_taps=129)
    assert filt.group_delay_samples == (filt.num_taps - 1) // 2
