"""Tests for the frequency band adaptation algorithm (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.adaptation import BandSelection, select_frequency_band, selection_from_bins
from repro.core.config import OFDMConfig, ProtocolConfig


CONFIG = OFDMConfig()
N0 = CONFIG.num_data_bins


def test_all_bins_above_threshold_selects_full_band():
    snr = np.full(N0, 20.0)
    band = select_frequency_band(snr, CONFIG)
    assert band.num_bins == N0
    assert band.start_bin == CONFIG.first_data_bin
    assert band.end_bin == CONFIG.last_data_bin
    assert band.satisfied


def test_low_snr_everywhere_falls_back_to_best_bin():
    snr = np.full(N0, -30.0)
    snr[17] = -20.0
    band = select_frequency_band(snr, CONFIG)
    assert band.num_bins == 1
    assert band.start_offset == 17
    assert not band.satisfied


def test_single_deep_notch_splits_band():
    snr = np.full(N0, 20.0)
    snr[10] = -10.0
    band = select_frequency_band(snr, CONFIG)
    # The largest contiguous band avoiding the notch is bins 11..59.
    assert band.start_offset == 11
    assert band.end_offset == N0 - 1
    assert band.num_bins == N0 - 11


def test_power_reallocation_bonus_allows_marginal_bins():
    """Bins below the raw threshold qualify once power is concentrated."""
    protocol = ProtocolConfig()
    snr = np.full(N0, 0.0)
    # A 10-bin island at 1.5 dB: with lambda*10*log10(60/10) = 6.2 dB bonus it
    # clears the 7 dB threshold, while the full band (bonus 0) would not.
    snr[20:30] = 1.5
    band = select_frequency_band(snr, CONFIG, protocol)
    assert band.satisfied
    assert band.start_offset >= 20
    assert band.end_offset <= 29


def test_threshold_override_changes_selection():
    snr = np.full(N0, 10.0)
    strict = select_frequency_band(snr, CONFIG, snr_threshold_db=25.0)
    relaxed = select_frequency_band(snr, CONFIG, snr_threshold_db=5.0)
    assert relaxed.num_bins == N0
    assert strict.num_bins < N0 or not strict.satisfied


def test_lambda_zero_ignores_reallocation_bonus():
    snr = np.full(N0, 6.0)  # below the 7 dB threshold everywhere
    none_selected = select_frequency_band(snr, CONFIG, conservative_lambda=1e-9)
    assert not none_selected.satisfied
    with_bonus = select_frequency_band(snr, CONFIG, conservative_lambda=1.0)
    assert with_bonus.satisfied
    assert with_bonus.num_bins < N0


def test_selected_band_is_contiguous_and_within_range():
    rng = np.random.default_rng(0)
    for _ in range(50):
        snr = rng.uniform(-10, 30, N0)
        band = select_frequency_band(snr, CONFIG)
        assert 1 <= band.num_bins <= N0
        assert CONFIG.first_data_bin <= band.start_bin <= band.end_bin <= CONFIG.last_data_bin
        assert band.num_bins == band.end_bin - band.start_bin + 1


def test_wider_band_never_satisfies_if_narrower_does_not():
    """The algorithm returns the *largest* width that satisfies the constraint."""
    rng = np.random.default_rng(1)
    protocol = ProtocolConfig()
    for _ in range(20):
        snr = rng.uniform(0, 15, N0)
        band = select_frequency_band(snr, CONFIG, protocol)
        if not band.satisfied:
            continue
        # No band one bin wider may satisfy the constraint.
        wider = band.num_bins + 1
        if wider > N0:
            continue
        bonus = protocol.conservative_lambda * 10 * np.log10(N0 / wider)
        windows = np.lib.stride_tricks.sliding_window_view(snr, wider)
        assert not np.any(windows.min(axis=1) + bonus > protocol.snr_threshold_db)


def test_band_frequencies_match_bins():
    snr = np.full(N0, 20.0)
    band = select_frequency_band(snr, CONFIG)
    assert band.start_frequency_hz == pytest.approx(band.start_bin * 50.0)
    assert band.end_frequency_hz == pytest.approx(band.end_bin * 50.0)


def test_absolute_bins_helper():
    band = selection_from_bins(30, 35, CONFIG)
    np.testing.assert_array_equal(band.absolute_bins(), np.arange(30, 36))
    assert band.num_bins == 6


def test_selection_from_bins_swaps_and_validates():
    band = selection_from_bins(40, 30, CONFIG)
    assert band.start_bin == 30 and band.end_bin == 40
    with pytest.raises(ValueError):
        selection_from_bins(5, 30, CONFIG)
    with pytest.raises(ValueError):
        selection_from_bins(30, 200, CONFIG)


def test_input_length_validation():
    with pytest.raises(ValueError):
        select_frequency_band(np.ones(10), CONFIG)
    with pytest.raises(ValueError):
        select_frequency_band(np.array([]), CONFIG)
