"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_sites_command_lists_all_sites(capsys):
    assert main(["sites"]) == 0
    output = capsys.readouterr().out
    for name in ("bridge", "park", "lake", "beach", "museum", "bay"):
        assert name in output


def test_link_command_runs_small_experiment(capsys):
    code = main(["link", "--site", "bridge", "--distance", "5", "--packets", "3",
                 "--seed", "1"])
    assert code == 0
    output = capsys.readouterr().out
    assert "packet error rate" in output
    assert "median coded bitrate" in output


def test_link_command_with_fixed_scheme(capsys):
    code = main(["link", "--site", "lake", "--distance", "5", "--packets", "2",
                 "--scheme", "fixed-0.5k", "--seed", "2"])
    assert code == 0
    assert "scheme=fixed-0.5k" in capsys.readouterr().out


def test_sweep_command_runs_grid(capsys):
    code = main(["sweep", "--site", "bridge", "--distance", "5", "10",
                 "--packets", "2", "--workers", "1", "--seed", "1"])
    assert code == 0
    output = capsys.readouterr().out
    assert "2 scenario(s)" in output
    assert "median_bps" in output
    assert output.count("bridge") >= 2


def test_sweep_command_writes_json(capsys, tmp_path):
    out = tmp_path / "sweep.json"
    code = main(["sweep", "--site", "bridge", "--distance", "5",
                 "--scheme", "adaptive", "fixed-0.5k",
                 "--packets", "2", "--workers", "1", "--seed", "3",
                 "--json", str(out)])
    assert code == 0
    from repro.experiments import ResultSet

    results = ResultSet.load(out)
    assert len(results) == 2
    assert {r.scenario.scheme_key for r in results} == {"adaptive", "fixed-0.5k"}
    # Deterministic per-scenario seeding: seed + index.
    assert [r.scenario.seed for r in results] == [3, 4]


def test_sweep_command_uses_cache(capsys, tmp_path):
    cache = tmp_path / "cache"
    args = ["sweep", "--site", "bridge", "--distance", "5", "--packets", "2",
            "--workers", "1", "--seed", "5", "--cache", str(cache)]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "cache hits 0/1" in first
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "cache hits 1/1" in second


def test_sweep_rejects_unknown_scheme():
    with pytest.raises(SystemExit):
        main(["sweep", "--scheme", "fixed-9k"])


def test_sos_command(capsys):
    code = main(["sos", "--distance", "50", "--rate", "20", "--repetitions", "2",
                 "--seed", "3"])
    assert code == 0
    output = capsys.readouterr().out
    assert "correctly decoded IDs" in output


def test_mac_command_with_and_without_carrier_sense(capsys):
    assert main(["mac", "--transmitters", "2", "--packets", "20", "--seed", "4"]) == 0
    with_cs = capsys.readouterr().out
    assert "carrier sense enabled" in with_cs
    assert main(["mac", "--transmitters", "2", "--packets", "20", "--seed", "4",
                 "--no-carrier-sense"]) == 0
    without_cs = capsys.readouterr().out
    assert "carrier sense disabled" in without_cs


def test_invalid_site_rejected():
    with pytest.raises(SystemExit):
        main(["link", "--site", "atlantis"])
