"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_sites_command_lists_all_sites(capsys):
    assert main(["sites"]) == 0
    output = capsys.readouterr().out
    for name in ("bridge", "park", "lake", "beach", "museum", "bay"):
        assert name in output


def test_link_command_runs_small_experiment(capsys):
    code = main(["link", "--site", "bridge", "--distance", "5", "--packets", "3",
                 "--seed", "1"])
    assert code == 0
    output = capsys.readouterr().out
    assert "packet error rate" in output
    assert "median coded bitrate" in output


def test_link_command_with_fixed_scheme(capsys):
    code = main(["link", "--site", "lake", "--distance", "5", "--packets", "2",
                 "--scheme", "fixed-0.5k", "--seed", "2"])
    assert code == 0
    assert "scheme=fixed-0.5k" in capsys.readouterr().out


def test_sweep_command_runs_grid(capsys):
    code = main(["sweep", "--site", "bridge", "--distance", "5", "10",
                 "--packets", "2", "--workers", "1", "--seed", "1"])
    assert code == 0
    output = capsys.readouterr().out
    assert "2 scenario(s)" in output
    assert "median_bps" in output
    assert output.count("bridge") >= 2


def test_sweep_command_writes_json(capsys, tmp_path):
    out = tmp_path / "sweep.json"
    code = main(["sweep", "--site", "bridge", "--distance", "5",
                 "--scheme", "adaptive", "fixed-0.5k",
                 "--packets", "2", "--workers", "1", "--seed", "3",
                 "--json", str(out)])
    assert code == 0
    from repro.experiments import ResultSet

    results = ResultSet.load(out)
    assert len(results) == 2
    assert {r.scenario.scheme_key for r in results} == {"adaptive", "fixed-0.5k"}
    # Deterministic per-scenario seeding: seed + index.
    assert [r.scenario.seed for r in results] == [3, 4]


def test_sweep_command_uses_cache(capsys, tmp_path):
    cache = tmp_path / "cache"
    args = ["sweep", "--site", "bridge", "--distance", "5", "--packets", "2",
            "--workers", "1", "--seed", "5", "--cache", str(cache)]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "cache hits 0/1" in first
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "cache hits 1/1" in second


def test_sweep_command_writes_npz_artifact(capsys, tmp_path):
    out = tmp_path / "sweep.npz"
    code = main(["sweep", "--site", "bridge", "--distance", "5",
                 "--scheme", "adaptive", "fixed-0.5k",
                 "--packets", "2", "--workers", "1", "--seed", "3",
                 "--npz", str(out)])
    assert code == 0
    assert "columnar artifact" in capsys.readouterr().out
    from repro.experiments import ColumnarResultSet

    results = ColumnarResultSet.load_npz(out)
    assert len(results) == 2
    assert {results.scenario(i).scheme_key for i in range(2)} == \
        {"adaptive", "fixed-0.5k"}


def test_sweep_command_stream_prints_progress(capsys):
    code = main(["sweep", "--site", "bridge", "--distance", "5", "--packets", "2",
                 "--workers", "1", "--seed", "1", "--stream"])
    assert code == 0
    captured = capsys.readouterr()
    assert "sweep 1/1" in captured.err
    assert "eta" in captured.err


def _serve_args(jobs_dir, distances=("4", "5", "6")):
    return ["serve", "--site", "bridge", "--distance", *distances,
            "--packets", "2", "--workers", "1", "--seed", "7",
            "--jobs", str(jobs_dir)]


def test_serve_command_streams_then_replays_from_artifact(capsys, tmp_path):
    root = tmp_path / "svc"
    assert main(_serve_args(root)) == 0
    first = capsys.readouterr().out
    assert "3 scenario(s), state=submitted" in first
    for k in (1, 2, 3):
        assert f"[{k}/3]" in first
    assert "median_bps" in first
    assert "cache hits 0/3" in first
    # Resubmitting the identical grid is served entirely from the
    # artifact: state=done at submission, 100% cache hit reported.
    assert main(_serve_args(root)) == 0
    second = capsys.readouterr().out
    assert "state=done" in second
    assert "[3/3]" in second
    assert "cache hits 3/3" in second


def test_jobs_command_lists_shows_and_fetches(capsys, tmp_path):
    root = tmp_path / "svc"
    assert main(_serve_args(root, distances=("4", "5"))) == 0
    job_id = capsys.readouterr().out.split()[1].rstrip(":")

    assert main(["jobs", "--jobs", str(root)]) == 0
    listing = capsys.readouterr().out
    assert job_id in listing and "done" in listing

    assert main(["jobs", "--jobs", str(root), "--show", job_id]) == 0
    shown = capsys.readouterr().out
    assert "state=done" in shown and "completed=2/2" in shown
    assert "median_bps" in shown  # finished jobs print their table

    out = tmp_path / "fetched.npz"
    assert main(["jobs", "--jobs", str(root), "--fetch", job_id,
                 "--out", str(out)]) == 0
    assert "artifact written to" in capsys.readouterr().out
    from repro.experiments import ColumnarResultSet

    assert len(ColumnarResultSet.load_npz(out)) == 2


def test_jobs_command_rejects_bad_requests(capsys, tmp_path):
    root = tmp_path / "svc"
    assert main(["jobs", "--jobs", str(root)]) == 0
    assert "no jobs" in capsys.readouterr().out
    assert main(["jobs", "--jobs", str(root), "--show", "no-such-job"]) == 2
    assert "error" in capsys.readouterr().err
    assert main(["jobs", "--jobs", str(root), "--fetch", "no-such-job"]) == 2
    assert "--fetch requires --out" in capsys.readouterr().err
    assert main(["jobs", "--jobs", str(root), "--fetch", "no-such-job",
                 "--out", str(tmp_path / "x.json")]) == 2
    assert "error" in capsys.readouterr().err


def test_sweep_rejects_unknown_scheme():
    with pytest.raises(SystemExit):
        main(["sweep", "--scheme", "fixed-9k"])


def test_sos_command(capsys):
    code = main(["sos", "--distance", "50", "--rate", "20", "--repetitions", "2",
                 "--seed", "3"])
    assert code == 0
    output = capsys.readouterr().out
    assert "correctly decoded IDs" in output


def test_mac_command_with_and_without_carrier_sense(capsys):
    assert main(["mac", "--transmitters", "2", "--packets", "20", "--seed", "4"]) == 0
    with_cs = capsys.readouterr().out
    assert "carrier sense enabled" in with_cs
    assert main(["mac", "--transmitters", "2", "--packets", "20", "--seed", "4",
                 "--no-carrier-sense"]) == 0
    without_cs = capsys.readouterr().out
    assert "carrier sense disabled" in without_cs


def test_invalid_site_rejected():
    with pytest.raises(SystemExit):
        main(["link", "--site", "atlantis"])


def test_bench_command_writes_suite_json(capsys, tmp_path):
    code = main(["bench", "--suite", "fec", "ofdm", "--quick",
                 "--json", str(tmp_path)])
    assert code == 0
    output = capsys.readouterr().out
    assert "suite fec (quick" in output
    assert "viterbi_decode_1024" in output
    assert (tmp_path / "BENCH_fec.json").exists()
    assert (tmp_path / "BENCH_ofdm.json").exists()

    from repro.perf import load_results

    suite, results = load_results(tmp_path / "BENCH_fec.json")
    assert suite == "fec"
    assert {r.name for r in results} >= {"viterbi_decode_1024",
                                         "viterbi_decode_1024_reference"}


def test_bench_command_compares_against_baseline(capsys, tmp_path):
    assert main(["bench", "--suite", "ofdm", "--quick", "--json", str(tmp_path)]) == 0
    capsys.readouterr()
    code = main(["bench", "--suite", "ofdm", "--quick", "--json", str(tmp_path),
                 "--compare", str(tmp_path / "BENCH_ofdm.json")])
    assert code == 0
    output = capsys.readouterr().out
    assert "vs baseline" in output
    assert "%" in output


def test_bench_command_rejects_missing_baseline(capsys, tmp_path):
    code = main(["bench", "--suite", "ofdm", "--quick", "--json", str(tmp_path),
                 "--compare", str(tmp_path / "missing.json")])
    assert code == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_bench_rejects_unknown_suite():
    with pytest.raises(SystemExit):
        main(["bench", "--suite", "warp-drive"])


def test_bench_command_rejects_malformed_baseline(capsys, tmp_path):
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text('{"suite": "ofdm", "results": ["not-a-dict"]}')
    code = main(["bench", "--suite", "ofdm", "--quick", "--json", str(tmp_path),
                 "--compare", str(bad)])
    assert code == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_bench_fail_above_requires_compare(capsys):
    code = main(["bench", "--suite", "ofdm", "--quick", "--fail-above", "10"])
    assert code == 2
    assert "--fail-above requires --compare" in capsys.readouterr().err


def test_bench_fail_above_passes_when_within_threshold(capsys, tmp_path):
    assert main(["bench", "--suite", "ofdm", "--quick", "--json", str(tmp_path)]) == 0
    capsys.readouterr()
    code = main(["bench", "--suite", "ofdm", "--quick", "--json", str(tmp_path),
                 "--compare", str(tmp_path / "BENCH_ofdm.json"),
                 "--fail-above", "100000"])
    assert code == 0
    assert "perf gate passed" in capsys.readouterr().out


def test_bench_fail_above_fails_on_regression(capsys, tmp_path):
    import json

    assert main(["bench", "--suite", "ofdm", "--quick", "--json", str(tmp_path)]) == 0
    capsys.readouterr()
    # Rewrite the baseline with implausibly fast medians so the fresh run
    # must regress beyond any threshold.
    path = tmp_path / "BENCH_ofdm.json"
    data = json.loads(path.read_text())
    for entry in data["results"]:
        entry["times_s"] = [1e-9] * len(entry["times_s"])
    path.write_text(json.dumps(data))
    code = main(["bench", "--suite", "ofdm", "--quick", "--json", str(tmp_path),
                 "--compare", str(path), "--fail-above", "50"])
    assert code == 1
    assert "PERF GATE FAILED" in capsys.readouterr().err


def test_validate_command_quick_report(capsys, tmp_path):
    out = tmp_path / "report.json"
    code = main(["validate", "--figure", "ber_vs_snr", "--trials", "1",
                 "--quick", "--workers", "1", "--ab-compare", "fast-path",
                 "--json", str(out)])
    assert code == 0
    output = capsys.readouterr().out
    assert "ber_vs_snr" in output
    assert "95% CI" in output
    assert "fast-path" in output and "pass" in output
    assert "validation gate passed" in output
    import json

    payload = json.loads(out.read_text())
    assert payload["passed"] is True
    assert payload["ab"]


def test_validate_command_write_then_compare_reference(capsys, tmp_path):
    base = ["validate", "--figure", "sos_range", "--trials", "1",
            "--reference-dir", str(tmp_path), "--ab-compare", "none"]
    # References come from full runs; the later quick comparison sweeps
    # the quick subset of the same grid against them.
    assert main(base + ["--write-reference"]) == 0
    assert (tmp_path / "VALID_sos_range.json").exists()
    capsys.readouterr()
    assert main(base + ["--quick", "--compare-reference"]) == 0
    output = capsys.readouterr().out
    assert "envelope gate" in output
    assert "validation gate passed" in output


def test_validate_command_refuses_quick_reference_write(capsys, tmp_path):
    # A quick-grid envelope would make every later full-grid comparison
    # fail on the missing points, so writing one is an error.
    code = main(["validate", "--figure", "sos_range", "--trials", "1",
                 "--quick", "--write-reference", "--ab-compare", "none",
                 "--reference-dir", str(tmp_path)])
    assert code == 2
    assert "full run" in capsys.readouterr().err
    assert not (tmp_path / "VALID_sos_range.json").exists()


def test_validate_command_missing_envelope_errors(capsys, tmp_path):
    code = main(["validate", "--figure", "net_pdr_vs_hops", "--trials", "1",
                 "--quick", "--compare-reference", "--ab-compare", "none",
                 "--reference-dir", str(tmp_path)])
    assert code == 2
    assert "cannot read envelope" in capsys.readouterr().err


def test_validate_command_fails_on_shifted_envelope(capsys, tmp_path):
    import json

    base = ["validate", "--figure", "net_pdr_vs_hops", "--trials", "1",
            "--reference-dir", str(tmp_path), "--ab-compare", "none"]
    assert main(base + ["--write-reference"]) == 0
    path = tmp_path / "VALID_net_pdr_vs_hops.json"
    data = json.loads(path.read_text())
    for point in data["result"]["points"]:
        pdr = point["summaries"]["pdr"]
        pdr["mean"], pdr["ci_low"], pdr["ci_high"] = 0.05, 0.04, 0.06
    path.write_text(json.dumps(data))
    capsys.readouterr()
    code = main(base + ["--compare-reference"])
    assert code == 1
    assert "VALIDATION GATE FAILED" in capsys.readouterr().err


def test_validate_command_rejects_bad_flags(capsys):
    assert main(["validate", "--trials", "0"]) == 2
    assert "--trials" in capsys.readouterr().err
    assert main(["validate", "--compare-reference", "--write-reference"]) == 2
    assert "exclusive" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["validate", "--figure", "fig99"])


def test_net_command_packets_per_point_rebuilds_table(capsys):
    code = main(["net", "--nodes", "4", "--topology", "line", "--spacing", "6",
                 "--range", "8", "--routing", "flooding", "--arq", "none",
                 "--traffic", "cbr", "--rate", "0.05", "--duration", "20",
                 "--destination", "n3", "--seed", "1",
                 "--packets-per-point", "1"])
    assert code == 0
    captured = capsys.readouterr()
    assert "calibrate[lake]" in captured.err
    assert "eta" in captured.err
