"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_sites_command_lists_all_sites(capsys):
    assert main(["sites"]) == 0
    output = capsys.readouterr().out
    for name in ("bridge", "park", "lake", "beach", "museum", "bay"):
        assert name in output


def test_link_command_runs_small_experiment(capsys):
    code = main(["link", "--site", "bridge", "--distance", "5", "--packets", "3",
                 "--seed", "1"])
    assert code == 0
    output = capsys.readouterr().out
    assert "packet error rate" in output
    assert "median coded bitrate" in output


def test_link_command_with_fixed_scheme(capsys):
    code = main(["link", "--site", "lake", "--distance", "5", "--packets", "2",
                 "--scheme", "fixed-0.5k", "--seed", "2"])
    assert code == 0
    assert "scheme=fixed-0.5k" in capsys.readouterr().out


def test_sos_command(capsys):
    code = main(["sos", "--distance", "50", "--rate", "20", "--repetitions", "2",
                 "--seed", "3"])
    assert code == 0
    output = capsys.readouterr().out
    assert "correctly decoded IDs" in output


def test_mac_command_with_and_without_carrier_sense(capsys):
    assert main(["mac", "--transmitters", "2", "--packets", "20", "--seed", "4"]) == 0
    with_cs = capsys.readouterr().out
    assert "carrier sense enabled" in with_cs
    assert main(["mac", "--transmitters", "2", "--packets", "20", "--seed", "4",
                 "--no-carrier-sense"]) == 0
    without_cs = capsys.readouterr().out
    assert "carrier sense disabled" in without_cs


def test_invalid_site_rejected():
    with pytest.raises(SystemExit):
        main(["link", "--site", "atlantis"])
