"""Tests for spectrum estimation helpers."""

import numpy as np
import pytest

from repro.dsp.spectrum import (
    band_power,
    band_power_db,
    frequency_response_from_probe,
    magnitude_spectrum_db,
    power_spectral_density,
)


def _tone(freq, fs=48000, duration=0.2, amplitude=1.0):
    t = np.arange(int(fs * duration)) / fs
    return amplitude * np.sin(2 * np.pi * freq * t)


def test_psd_peak_at_tone_frequency():
    freqs, psd = power_spectral_density(_tone(2000), 48000)
    assert abs(freqs[np.argmax(psd)] - 2000) < 50


def test_psd_requires_enough_samples():
    with pytest.raises(ValueError):
        power_spectral_density(np.zeros(4), 48000)


def test_magnitude_spectrum_normalized_to_zero_db_peak():
    _, db = magnitude_spectrum_db(_tone(1500), 48000)
    assert np.max(db) == pytest.approx(0.0, abs=1e-9)


def test_band_power_captures_in_band_tone():
    tone = _tone(2500)
    inside = band_power(tone, 48000, 1000, 4000)
    outside = band_power(tone, 48000, 5000, 10000)
    assert inside > 100 * outside
    assert inside == pytest.approx(0.5, rel=0.05)


def test_band_power_of_empty_signal_is_zero():
    assert band_power(np.array([]), 48000, 1000, 4000) == 0.0


def test_band_power_rejects_bad_band():
    with pytest.raises(ValueError):
        band_power(_tone(2000), 48000, 4000, 1000)


def test_band_power_db_monotone_in_amplitude():
    quiet = band_power_db(_tone(2000, amplitude=0.1), 48000, 1000, 4000)
    loud = band_power_db(_tone(2000, amplitude=1.0), 48000, 1000, 4000)
    assert loud - quiet == pytest.approx(20.0, abs=0.5)


def test_frequency_response_from_probe_recovers_attenuation():
    rng = np.random.default_rng(0)
    probe = rng.standard_normal(48000)
    attenuated = 0.1 * probe
    freqs = np.array([1000.0, 2000.0, 3000.0])
    response = frequency_response_from_probe(probe, attenuated, 48000, freqs)
    np.testing.assert_allclose(response, -20.0, atol=1.0)
