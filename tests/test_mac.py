"""Tests for the carrier-sense MAC layer and network simulator."""

import numpy as np
import pytest

from repro.channel.noise import AmbientNoiseModel
from repro.mac.carrier_sense import CarrierSenseConfig, EnergyDetector
from repro.mac.simulator import (
    MacNetworkSimulator,
    MacSimulationResult,
    TransmissionRecord,
    TransmitterConfig,
)


# --------------------------------------------------------------- energy sense
def test_measurement_window_is_80ms():
    detector = EnergyDetector()
    assert detector.samples_per_measurement == int(0.08 * 48000)


def test_calibration_then_busy_detection(rng):
    detector = EnergyDetector()
    noise = AmbientNoiseModel(level_db=-45.0).generate(48000, 48000.0, rng)
    threshold = detector.calibrate(noise)
    assert np.isfinite(threshold)
    t = np.arange(detector.samples_per_measurement) / 48000.0
    packet = 0.3 * np.sin(2 * np.pi * 2500 * t)
    assert detector.is_busy(packet + noise[: packet.size])
    assert not detector.is_busy(noise[: packet.size])


def test_out_of_band_energy_does_not_trigger(rng):
    detector = EnergyDetector()
    noise = AmbientNoiseModel(level_db=-45.0).generate(48000, 48000.0, rng)
    detector.calibrate(noise)
    t = np.arange(detector.samples_per_measurement) / 48000.0
    # A loud 10 kHz tone lies outside the 1-4 kHz sensing band.
    out_of_band = 0.5 * np.sin(2 * np.pi * 10000 * t)
    assert not detector.is_busy(out_of_band + noise[: out_of_band.size])


def test_is_busy_requires_calibration():
    with pytest.raises(RuntimeError):
        EnergyDetector().is_busy(np.zeros(3840))


def test_calibrate_requires_enough_samples():
    with pytest.raises(ValueError):
        EnergyDetector().calibrate(np.zeros(100))


def test_custom_carrier_sense_config():
    config = CarrierSenseConfig(measurement_interval_s=0.04, threshold_margin_db=3.0)
    detector = EnergyDetector(config)
    assert detector.samples_per_measurement == int(0.04 * 48000)


# ------------------------------------------------------------- MAC simulation
def _transmitters(count, packets=40):
    return [TransmitterConfig(name=f"tx{i}", num_packets=packets) for i in range(count)]


def test_all_packets_get_transmitted():
    sim = MacNetworkSimulator(_transmitters(3, packets=30))
    result = sim.run(seed=1)
    assert result.num_packets == 90


def test_carrier_sense_reduces_collisions_three_transmitters():
    """Fig. 19: with three transmitters carrier sense cuts collisions sharply."""
    with_cs = MacNetworkSimulator(_transmitters(3), carrier_sense=True).run(seed=2)
    without_cs = MacNetworkSimulator(_transmitters(3), carrier_sense=False).run(seed=2)
    assert without_cs.collision_fraction > 0.25
    assert with_cs.collision_fraction < 0.15
    assert with_cs.collision_fraction < without_cs.collision_fraction / 2


def test_carrier_sense_reduces_collisions_two_transmitters():
    with_cs = MacNetworkSimulator(_transmitters(2), carrier_sense=True).run(seed=3)
    without_cs = MacNetworkSimulator(_transmitters(2), carrier_sense=False).run(seed=3)
    assert without_cs.collision_fraction > 0.15
    assert with_cs.collision_fraction < without_cs.collision_fraction


def test_single_transmitter_never_collides():
    result = MacNetworkSimulator(_transmitters(1), carrier_sense=False).run(seed=4)
    assert result.collision_fraction == 0.0


def test_per_transmitter_collision_fraction():
    result = MacNetworkSimulator(_transmitters(2, packets=25), carrier_sense=False).run(seed=5)
    for name in ("tx0", "tx1"):
        fraction = result.collision_fraction_for(name)
        assert 0.0 <= fraction <= 1.0
    assert np.isnan(result.collision_fraction_for("unknown"))


def test_transmissions_are_time_ordered_per_transmitter():
    result = MacNetworkSimulator(_transmitters(2, packets=20)).run(seed=6)
    for name in ("tx0", "tx1"):
        times = [t.start_time_s for t in result.transmissions if t.transmitter == name]
        assert times == sorted(times)
        assert len(times) == 20


def test_collision_definition_symmetry():
    """If packet A collides with B then B collides with A."""
    result = MacNetworkSimulator(_transmitters(3, packets=20), carrier_sense=False).run(seed=7)
    records = result.transmissions
    for i, a in enumerate(records):
        for b in records[i + 1:]:
            overlap = (abs(a.start_time_s - b.start_time_s) < 0.6
                       and a.transmitter != b.transmitter)
            if overlap:
                assert a.collided and b.collided


def test_simulator_validation():
    with pytest.raises(ValueError):
        MacNetworkSimulator([])
    with pytest.raises(ValueError):
        MacNetworkSimulator(_transmitters(2), packet_duration_s=0.0)


def test_result_dataclass_counts():
    records = [
        TransmissionRecord("a", 0.0, 0.6, False),
        TransmissionRecord("b", 0.3, 0.9, True),
    ]
    result = MacSimulationResult(transmissions=records, carrier_sense_enabled=False)
    assert result.num_packets == 2
    assert result.num_collided == 1
    assert result.collision_fraction == pytest.approx(0.5)
