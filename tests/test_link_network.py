"""Tests for the multi-device messaging network layer."""

import numpy as np
import pytest

from repro.app.codec import MessageCodec
from repro.environments.sites import BRIDGE
from repro.link.network import (
    NetworkNode,
    NetworkReport,
    QueuedMessage,
    UnderwaterMessagingNetwork,
)


def _node(name, device_id, messages, distance=6.0):
    codec = MessageCodec()
    node = NetworkNode(name=name, device_id=device_id, distance_to_receiver_m=distance)
    for message_id in messages:
        node.enqueue("leader", codec.encode_ids([message_id]))
    return node


def test_network_requires_nodes_and_unique_names():
    with pytest.raises(ValueError):
        UnderwaterMessagingNetwork([])
    with pytest.raises(ValueError):
        UnderwaterMessagingNetwork([_node("a", 1, [1]), _node("a", 2, [2])])


def test_enqueue_builds_queue():
    node = _node("a", 1, [3, 4, 5])
    assert len(node.queue) == 3
    assert isinstance(node.queue[0], QueuedMessage)
    assert node.queue[0].sender == "a"
    assert len(node.queue[0].payload_bits) == 16


def test_single_node_delivers_messages():
    node = _node("diver-1", 1, [0, 7], distance=5.0)
    network = UnderwaterMessagingNetwork([node], site=BRIDGE, seed=3,
                                         max_retransmissions=2)
    report = network.run()
    assert report.num_messages == 2
    assert report.delivery_rate >= 0.5
    assert report.collision_fraction == 0.0  # a single transmitter never collides
    assert all(r.attempts >= 1 for r in report.records)


def test_two_node_network_with_carrier_sense():
    nodes = [_node("diver-1", 1, [0, 1], 5.0), _node("diver-2", 2, [2, 3], 7.0)]
    network = UnderwaterMessagingNetwork(nodes, site=BRIDGE, seed=5,
                                         carrier_sense=True, max_retransmissions=2)
    report = network.run()
    assert report.num_messages == 4
    assert report.delivery_rate >= 0.5
    assert report.collision_fraction <= 0.3


def test_network_without_carrier_sense_collides_more():
    def build(carrier_sense, seed):
        nodes = [_node("diver-1", 1, list(range(6)), 5.0),
                 _node("diver-2", 2, list(range(6, 12)), 7.0),
                 _node("diver-3", 3, list(range(12, 18)), 9.0)]
        return UnderwaterMessagingNetwork(nodes, site=BRIDGE, seed=seed,
                                          carrier_sense=carrier_sense,
                                          max_retransmissions=0)

    with_cs = build(True, 11).run()
    without_cs = build(False, 11).run()
    assert without_cs.collision_fraction > with_cs.collision_fraction


def test_report_statistics_handle_empty():
    report = NetworkReport()
    assert np.isnan(report.delivery_rate)
    assert np.isnan(report.mean_attempts)
    assert report.num_messages == 0


def _report_signature(report):
    return [
        (r.message.sender, r.attempts, r.collided_attempts, r.delivered)
        for r in report.records
    ]


def test_same_seed_gives_identical_reports_across_networks():
    def build():
        nodes = [_node("diver-1", 1, [0, 1], 5.0), _node("diver-2", 2, [2], 7.0)]
        return UnderwaterMessagingNetwork(nodes, site=BRIDGE, seed=9,
                                          max_retransmissions=1)

    first, second = build().run(), build().run()
    assert _report_signature(first) == _report_signature(second)
    assert first.collision_fraction == second.collision_fraction


def test_running_the_same_network_twice_is_reproducible():
    # Integer seeds are re-expanded per run: repeated runs must not drift.
    nodes = [_node("diver-1", 1, [3], 5.0), _node("diver-2", 2, [4], 6.5)]
    network = UnderwaterMessagingNetwork(nodes, site=BRIDGE, seed=17)
    assert _report_signature(network.run()) == _report_signature(network.run())
