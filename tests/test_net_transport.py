"""Tests for the sliding-window ARQ state machines.

The sender/receiver pairs are driven directly (no simulator), with time
fed explicitly, which is what makes the timeout/retransmission paths --
window wraparound, duplicate-ACK suppression, max-retry exhaustion --
deterministic to assert on.
"""

import pytest

from repro.net.transport import ArqConfig, ArqReceiver, ArqSender, Segment


def _gbn(window=3, modulus=4, timeout=1.0, retries=2, dup=3) -> ArqConfig:
    return ArqConfig(window_size=window, seq_modulus=modulus, timeout_s=timeout,
                     max_retries=retries, mode="go-back-n", dup_ack_threshold=dup)


def _sr(window=3, modulus=8, timeout=1.0, retries=2) -> ArqConfig:
    return ArqConfig(window_size=window, seq_modulus=modulus, timeout_s=timeout,
                     max_retries=retries, mode="selective-repeat")


def _pair(config, payloads):
    sender = ArqSender("f", config)
    sender.offer_many(payloads)
    return sender, ArqReceiver("f", config)


def _run_lossless(sender, receiver, rounds=100):
    """Ferry segments and acks with no loss until the flow completes."""
    now = 0.0
    for _ in range(rounds):
        if sender.done:
            break
        for segment in sender.window_transmissions(now):
            _, ack = receiver.on_data(segment)
            sender.on_ack(ack, now)
        now += 0.1
    return now


# ------------------------------------------------------------- configuration
def test_config_validation():
    with pytest.raises(ValueError):
        ArqConfig(mode="stop-and-wait")
    with pytest.raises(ValueError):
        ArqConfig(window_size=0)
    with pytest.raises(ValueError):
        ArqConfig(mode="go-back-n", window_size=4, seq_modulus=4)
    with pytest.raises(ValueError):
        ArqConfig(mode="selective-repeat", window_size=4, seq_modulus=7)
    with pytest.raises(ValueError):
        ArqConfig(timeout_s=0.0)
    with pytest.raises(ValueError):
        ArqConfig(max_retries=-1)
    with pytest.raises(ValueError):
        ArqConfig(dup_ack_threshold=0)


# ---------------------------------------------------------------- Go-Back-N
def test_gbn_window_limits_in_flight():
    sender, _ = _pair(_gbn(window=3), list(range(10)))
    first = sender.window_transmissions(0.0)
    assert [segment.seq for segment in first] == [0, 1, 2]
    assert sender.in_flight == 3
    # The window is full: nothing more until an ACK arrives.
    assert sender.window_transmissions(0.0) == []


def test_gbn_in_order_delivery_with_window_wraparound():
    # 10 payloads through a modulus-4 sequence space: the window wraps
    # twice and delivery must stay in order with no retransmissions.
    sender, receiver = _pair(_gbn(window=3, modulus=4), list(range(10)))
    _run_lossless(sender, receiver)
    assert sender.done
    assert receiver.delivered == list(range(10))
    assert sender.stats.data_transmissions == 10
    assert sender.stats.retransmissions == 0
    assert receiver.stats.delivered_in_order == 10


def test_gbn_cumulative_ack_advances_past_several_segments():
    sender, receiver = _pair(_gbn(window=3), list(range(3)))
    segments = sender.window_transmissions(0.0)
    for segment in segments[:-1]:
        receiver.on_data(segment)
    _, last_ack = receiver.on_data(segments[-1])
    assert last_ack.seq == 3 % 4  # next expected
    sender.on_ack(last_ack, 0.1)  # one cumulative ACK clears the window
    assert sender.done
    assert sender.in_flight == 0


def test_gbn_receiver_discards_out_of_order_and_reacks():
    sender, receiver = _pair(_gbn(window=3), list(range(3)))
    seg0, seg1, seg2 = sender.window_transmissions(0.0)
    delivered, ack = receiver.on_data(seg1)  # seg0 lost
    assert delivered == []
    assert ack.seq == 0  # still waiting for seq 0
    delivered, ack = receiver.on_data(seg2)
    assert delivered == []
    assert ack.seq == 0
    delivered, _ = receiver.on_data(seg0)
    assert delivered == [0]  # GBN buffers nothing: 1 and 2 must be resent
    assert receiver.delivered == [0]


def test_gbn_duplicate_ack_suppression_and_single_fast_retransmit():
    sender, receiver = _pair(_gbn(window=3, dup=3), list(range(3)))
    seg0, seg1, seg2 = sender.window_transmissions(0.0)
    _, dup1 = receiver.on_data(seg1)
    _, dup2 = receiver.on_data(seg2)
    assert sender.on_ack(dup1, 0.1) == []  # first duplicate: counted only
    assert sender.on_ack(dup2, 0.2) == []  # second duplicate: counted only
    assert sender.stats.duplicate_acks == 2
    assert sender.stats.fast_retransmits == 0
    retrans = sender.on_ack(Segment("f", 0, "ack"), 0.3)  # third duplicate
    assert [segment.seq for segment in retrans] == [0]
    assert sender.stats.fast_retransmits == 1
    # Further duplicates are suppressed: no second fast retransmit.
    assert sender.on_ack(Segment("f", 0, "ack"), 0.4) == []
    assert sender.stats.duplicate_acks == 4
    assert sender.stats.fast_retransmits == 1
    # Delivering the retransmitted base unblocks the flow.
    delivered, ack = receiver.on_data(retrans[0])
    assert delivered == [0]
    sender.on_ack(ack, 0.5)
    assert sender.base_seq == 1
    assert sender.stats.duplicate_acks == 4  # genuine ACK, not a duplicate


def test_gbn_timeout_resends_whole_window():
    sender, _ = _pair(_gbn(window=3, timeout=1.0), list(range(5)))
    sender.window_transmissions(0.0)
    assert sender.next_timeout_s() == pytest.approx(1.0)
    assert sender.on_timeout(0.5) == []  # not due yet
    resent = sender.on_timeout(1.0)
    assert [segment.seq for segment in resent] == [0, 1, 2]
    assert sender.stats.timeouts == 1
    assert sender.stats.retransmissions == 3


def test_gbn_max_retry_exhaustion_aborts_the_flow():
    sender, _ = _pair(_gbn(window=2, timeout=1.0, retries=2), list(range(2)))
    sender.window_transmissions(0.0)
    assert len(sender.on_timeout(1.0)) == 2   # retry 1
    assert len(sender.on_timeout(2.0)) == 2   # retry 2
    assert sender.on_timeout(3.0) == []       # retries exhausted
    assert sender.failed
    assert not sender.done
    assert sender.window_transmissions(3.0) == []
    assert sender.next_timeout_s() is None
    assert sender.on_ack(Segment("f", 1, "ack"), 3.0) == []


def test_gbn_receiver_counts_duplicate_data():
    sender, receiver = _pair(_gbn(window=3), list(range(2)))
    seg0, seg1 = sender.window_transmissions(0.0)
    receiver.on_data(seg0)
    delivered, ack = receiver.on_data(seg0)  # retransmitted copy
    assert delivered == []
    assert ack.seq == 1
    assert receiver.stats.duplicates_received == 1


# ---------------------------------------------------------- selective repeat
def test_sr_in_order_delivery_with_window_wraparound():
    sender, receiver = _pair(_sr(window=4, modulus=8), list(range(20)))
    _run_lossless(sender, receiver)
    assert sender.done
    assert receiver.delivered == list(range(20))
    assert sender.stats.retransmissions == 0


def test_sr_buffers_out_of_order_and_delivers_in_order():
    sender, receiver = _pair(_sr(window=3), list(range(3)))
    seg0, seg1, seg2 = sender.window_transmissions(0.0)
    delivered, ack2 = receiver.on_data(seg2)  # arrives first
    assert delivered == []
    assert ack2.seq == 2
    delivered, ack1 = receiver.on_data(seg1)
    assert delivered == []
    assert set(ack1.sack) == {1, 2}
    delivered, _ = receiver.on_data(seg0)
    assert delivered == [0, 1, 2]  # the buffered tail flushes at once
    assert receiver.delivered == [0, 1, 2]


def test_sr_retransmits_only_the_lost_segment():
    sender, receiver = _pair(_sr(window=3, timeout=1.0), list(range(3)))
    seg0, seg1, seg2 = sender.window_transmissions(0.0)
    for segment in (seg0, seg2):  # seg1 lost
        _, ack = receiver.on_data(segment)
        sender.on_ack(ack, 0.1)
    assert sender.base_seq == 1  # base waits on the hole
    resent = sender.on_timeout(1.1)
    assert [segment.seq for segment in resent] == [1]  # 0 and 2 are not resent
    assert sender.stats.retransmissions == 1
    delivered, ack = receiver.on_data(resent[0])
    assert delivered == [1, 2]
    sender.on_ack(ack, 1.2)
    assert sender.done


def test_sr_sack_acknowledges_buffered_segments():
    sender, receiver = _pair(_sr(window=3, timeout=1.0), list(range(3)))
    seg0, seg1, seg2 = sender.window_transmissions(0.0)
    _, ack2 = receiver.on_data(seg2)
    # The individual ack for 2 also lists it in the SACK; either way the
    # sender must not resend 2 on timeout.
    sender.on_ack(ack2, 0.1)
    resent = sender.on_timeout(1.1)
    assert sorted(segment.seq for segment in resent) == [0, 1]


def test_sr_duplicate_data_is_reacked_for_lost_acks():
    sender, receiver = _pair(_sr(window=3), list(range(3)))
    seg0, _, _ = sender.window_transmissions(0.0)
    receiver.on_data(seg0)
    delivered, ack = receiver.on_data(seg0)  # the ACK was lost; copy returns
    assert delivered == []
    assert ack.seq == 0
    assert receiver.stats.duplicates_received == 1
    sender.on_ack(ack, 0.1)
    assert sender.base_seq == 1


def test_sr_duplicate_acks_are_counted_and_harmless():
    sender, receiver = _pair(_sr(window=3), list(range(2)))
    seg0, _ = sender.window_transmissions(0.0)
    _, ack = receiver.on_data(seg0)
    assert sender.on_ack(ack, 0.1) == []
    sender.on_ack(ack, 0.2)  # duplicate
    assert sender.stats.duplicate_acks == 1


def test_sr_max_retry_exhaustion_aborts_the_flow():
    sender, _ = _pair(_sr(window=2, timeout=1.0, retries=1), list(range(2)))
    sender.window_transmissions(0.0)
    assert len(sender.on_timeout(1.0)) == 2
    assert sender.on_timeout(2.0) == []
    assert sender.failed


def test_sender_done_and_offer_after_start():
    sender, receiver = _pair(_gbn(), [0])
    assert not sender.done
    _run_lossless(sender, receiver)
    assert sender.done
    sender.offer(1)  # streaming: more payloads re-open the window
    assert not sender.done
    _run_lossless(sender, receiver)
    assert sender.done
    assert receiver.delivered == [0, 1]


def test_receiver_rejects_ack_segments():
    receiver = ArqReceiver("f", _gbn())
    with pytest.raises(ValueError):
        receiver.on_data(Segment("f", 0, "ack"))
