"""Tests for the analysis helpers."""

import numpy as np
import pytest

from repro.analysis.ber import bpsk_ber_theoretical, q_function, snr_for_target_ber
from repro.analysis.metrics import format_table, geometric_mean, per_to_percent


def test_q_function_known_values():
    assert q_function(0.0) == pytest.approx(0.5)
    assert q_function(1.96) == pytest.approx(0.025, abs=2e-3)
    assert q_function(-10.0) == pytest.approx(1.0, abs=1e-9)


def test_bpsk_ber_reference_points():
    # Classic BPSK numbers: ~7.8e-2 at 0 dB, ~2.4e-3 at 7 dB.
    assert bpsk_ber_theoretical(0.0) == pytest.approx(0.0786, rel=0.05)
    assert bpsk_ber_theoretical(7.0) == pytest.approx(0.00077, rel=0.3)
    assert bpsk_ber_theoretical(-100.0) == pytest.approx(0.5, abs=1e-3)


def test_bpsk_ber_monotone_decreasing():
    snrs = np.linspace(-5, 15, 40)
    bers = bpsk_ber_theoretical(snrs)
    assert np.all(np.diff(bers) < 0)


def test_snr_for_one_percent_ber_near_4db():
    """Fig. 16 uses 4 dB as the ~1 % BER reference point."""
    assert snr_for_target_ber(0.01) == pytest.approx(4.3, abs=0.5)


def test_snr_for_target_ber_validation():
    with pytest.raises(ValueError):
        snr_for_target_ber(0.0)
    with pytest.raises(ValueError):
        snr_for_target_ber(0.6)


def test_per_to_percent_formatting():
    assert per_to_percent(0.031) == "3.1%"
    assert per_to_percent(float("nan")) == "n/a"


def test_format_table_alignment():
    table = format_table(["site", "PER"], [["lake", "1.0%"], ["bridge", "0.5%"]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("site")
    assert "lake" in lines[2]


def test_geometric_mean():
    assert geometric_mean([1.0, 10.0, 100.0]) == pytest.approx(10.0)
    assert geometric_mean([2.0, 0.0, -3.0]) == pytest.approx(2.0)
    assert np.isnan(geometric_mean([]))
