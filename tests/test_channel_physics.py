"""Tests for propagation physics."""

import numpy as np
import pytest

from repro.channel.physics import (
    absorption_db_per_km,
    path_amplitude,
    sound_speed_m_s,
    spreading_loss_db,
    transmission_loss_db,
)


def test_sound_speed_in_plausible_range():
    assert 1400 < sound_speed_m_s() < 1550
    assert 1400 < sound_speed_m_s(temperature_c=5.0, depth_m=15.0) < 1550


def test_sound_speed_increases_with_temperature():
    assert sound_speed_m_s(temperature_c=20.0) > sound_speed_m_s(temperature_c=5.0)


def test_absorption_increases_with_frequency():
    assert absorption_db_per_km(4000) > absorption_db_per_km(1000) > 0


def test_absorption_is_negligible_at_modem_frequencies():
    # Below 4 kHz the Thorp absorption over 100 m is a fraction of a dB.
    assert absorption_db_per_km(4000) * 0.1 < 0.1


def test_absorption_accepts_arrays():
    values = absorption_db_per_km(np.array([1000.0, 2000.0, 4000.0]))
    assert values.shape == (3,)
    assert np.all(np.diff(values) > 0)


def test_spreading_loss_monotone_in_distance():
    distances = [1, 5, 10, 30, 100]
    losses = [spreading_loss_db(d) for d in distances]
    assert all(b > a for a, b in zip(losses, losses[1:]))
    assert spreading_loss_db(1.0) == pytest.approx(0.0)


def test_spreading_loss_follows_exponent():
    assert spreading_loss_db(10.0, spreading_exponent=2.0) == pytest.approx(20.0)
    assert spreading_loss_db(10.0, spreading_exponent=1.5) == pytest.approx(15.0)


def test_transmission_loss_combines_terms():
    loss = transmission_loss_db(30.0, 2500.0)
    assert loss > spreading_loss_db(30.0) - 1e-9
    assert loss == pytest.approx(spreading_loss_db(30.0), abs=0.5)


def test_path_amplitude_decreases_with_distance():
    assert path_amplitude(5.0) > path_amplitude(10.0) > path_amplitude(30.0) > 0


def test_path_amplitude_at_reference_distance():
    assert path_amplitude(1.0) == pytest.approx(1.0, abs=1e-3)


def test_distance_validation():
    with pytest.raises(ValueError):
        spreading_loss_db(-1.0)
    with pytest.raises(ValueError):
        transmission_loss_db(0.0)


def test_nominal_sound_speed_is_shared_by_every_layer():
    from repro.channel.physics import SOUND_SPEED_M_S
    from repro.dsp.resample import SOUND_SPEED_WATER_M_S
    from repro.mac import simulator as mac_simulator

    assert SOUND_SPEED_M_S == 1500.0
    assert SOUND_SPEED_M_S is SOUND_SPEED_WATER_M_S
    assert mac_simulator.SOUND_SPEED_M_S is SOUND_SPEED_M_S
