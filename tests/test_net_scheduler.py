"""Tests for the discrete-event scheduler."""

import pytest

from repro.net.scheduler import Scheduler


def test_events_run_in_time_order():
    scheduler = Scheduler()
    order = []
    scheduler.at(2.0, lambda: order.append("late"))
    scheduler.at(0.5, lambda: order.append("early"))
    scheduler.at(1.0, lambda: order.append("middle"))
    scheduler.run()
    assert order == ["early", "middle", "late"]
    assert scheduler.now_s == 2.0
    assert scheduler.num_processed == 3


def test_ties_run_in_insertion_order():
    scheduler = Scheduler()
    order = []
    for tag in ("a", "b", "c"):
        scheduler.at(1.0, lambda tag=tag: order.append(tag))
    scheduler.run()
    assert order == ["a", "b", "c"]


def test_after_is_relative_to_current_time():
    scheduler = Scheduler()
    times = []
    scheduler.at(3.0, lambda: scheduler.after(2.0, lambda: times.append(scheduler.now_s)))
    scheduler.run()
    assert times == [5.0]


def test_cannot_schedule_in_the_past():
    scheduler = Scheduler()
    scheduler.at(1.0, lambda: None)
    scheduler.run()
    with pytest.raises(ValueError):
        scheduler.at(0.5, lambda: None)
    with pytest.raises(ValueError):
        scheduler.after(-1.0, lambda: None)


def test_cancelled_events_are_skipped():
    scheduler = Scheduler()
    fired = []
    keep = scheduler.at(1.0, lambda: fired.append("keep"))
    drop = scheduler.at(2.0, lambda: fired.append("drop"))
    scheduler.cancel(drop)
    scheduler.run()
    assert fired == ["keep"]
    assert not keep.cancelled
    assert scheduler.num_pending == 0


def test_run_until_leaves_future_events_queued():
    scheduler = Scheduler()
    fired = []
    scheduler.at(1.0, lambda: fired.append(1))
    scheduler.at(5.0, lambda: fired.append(5))
    processed = scheduler.run(until_s=2.0)
    assert processed == 1
    assert fired == [1]
    assert scheduler.num_pending == 1
    assert scheduler.now_s == 2.0
    scheduler.run()
    assert fired == [1, 5]


def test_run_max_events_guard():
    scheduler = Scheduler()
    for index in range(10):
        scheduler.at(float(index), lambda: None)
    assert scheduler.run(max_events=4) == 4
    assert scheduler.num_pending == 6


def test_events_can_schedule_events():
    scheduler = Scheduler()
    seen = []

    def chain(depth):
        seen.append(depth)
        if depth < 3:
            scheduler.after(1.0, lambda: chain(depth + 1))

    scheduler.at(0.0, lambda: chain(0))
    scheduler.run()
    assert seen == [0, 1, 2, 3]
    assert scheduler.now_s == 3.0


def test_num_pending_tracks_cancellations_cheaply():
    scheduler = Scheduler()
    events = [scheduler.at(float(i), lambda: None) for i in range(5)]
    assert scheduler.num_pending == 5
    scheduler.cancel(events[1])
    scheduler.cancel(events[1])  # double-cancel must not double-count
    assert scheduler.num_pending == 4
    scheduler.run()
    assert scheduler.num_pending == 0
    assert scheduler.num_processed == 4
    # cancelling an already-run event is a no-op and does not corrupt counts
    scheduler.cancel(events[0])
    assert scheduler.num_pending == 0


def test_cancelled_then_rescheduled_pattern():
    scheduler = Scheduler()
    fired = []
    timer = scheduler.at(5.0, lambda: fired.append("old"))
    scheduler.cancel(timer)
    scheduler.at(2.0, lambda: fired.append("new"))
    scheduler.run()
    assert fired == ["new"]
    assert scheduler.num_pending == 0
