"""Tests for the AquaModem facade."""

import numpy as np
import pytest

from repro.core.adaptation import selection_from_bins
from repro.core.modem import AquaModem


@pytest.fixture(scope="module")
def static_modem():
    return AquaModem()


def test_build_preamble_and_header_layout(static_modem):
    header = static_modem.build_preamble_and_header(receiver_id=7)
    config = static_modem.ofdm_config
    assert header.preamble_length == 8 * config.extended_symbol_length
    assert header.waveform.size == header.preamble_length + config.extended_symbol_length
    assert header.receiver_id == 7


def test_detect_and_decode_own_header(static_modem, rng):
    header = static_modem.build_preamble_and_header(receiver_id=23)
    received = np.concatenate([np.zeros(2000), header.waveform, np.zeros(1000)])
    received += 1e-4 * rng.standard_normal(received.size)
    detection = static_modem.detect_preamble(received)
    assert detection.detected
    decoded_id = static_modem.decode_header(received, detection.start_index)
    assert decoded_id.value == 23


def test_estimate_snr_and_select_band_clean_signal(static_modem, rng):
    header = static_modem.build_preamble_and_header(receiver_id=1)
    received = np.concatenate([np.zeros(500), header.waveform, np.zeros(500)])
    received += 1e-4 * rng.standard_normal(received.size)
    detection = static_modem.detect_preamble(received)
    estimate = static_modem.estimate_snr(received, detection.start_index)
    band = static_modem.select_band(estimate)
    # A clean, flat channel should admit (nearly) the full band.
    assert band.num_bins >= 55
    assert band.satisfied


def test_feedback_roundtrip_through_modem(static_modem, rng):
    band = selection_from_bins(25, 60, static_modem.ofdm_config)
    feedback = static_modem.build_feedback(band)
    received = np.concatenate([np.zeros(300), feedback, np.zeros(300)])
    received += 1e-4 * rng.standard_normal(received.size)
    decoded = static_modem.decode_feedback(received)
    assert decoded.found
    recovered = static_modem.band_from_feedback(decoded)
    assert recovered.start_bin == 25
    assert recovered.end_bin == 60


def test_band_from_feedback_requires_found(static_modem):
    from repro.core.feedback import FeedbackDecodeResult

    with pytest.raises(ValueError):
        static_modem.band_from_feedback(FeedbackDecodeResult(False, -1, -1, -1, 0.0))


def test_encode_decode_data_through_modem(static_modem, rng):
    band = selection_from_bins(30, 59, static_modem.ofdm_config)
    payload = rng.integers(0, 2, 16)
    packet = static_modem.encode_data(payload, band)
    decoded = static_modem.decode_data(packet.waveform, band)
    np.testing.assert_array_equal(decoded.bits, payload)


def test_decode_data_uses_protocol_payload_size_by_default(static_modem):
    assert static_modem.protocol_config.payload_bits == 16


def test_ack_roundtrip(static_modem, rng):
    ack = static_modem.build_ack()
    assert static_modem.decode_ack(ack + 1e-4 * rng.standard_normal(ack.size))
    assert not static_modem.decode_ack(rng.standard_normal(ack.size))


def test_ack_dominance_threshold_is_configurable(static_modem):
    from repro.core.config import ProtocolConfig

    # An ACK tone plus a half-amplitude interfering tone: the ACK bin holds
    # 1 / (1 + 0.25) = 80 % of the in-band energy.
    mixed = static_modem.build_ack() + 0.5 * static_modem.tone_codec.encode_id(5)
    assert static_modem.decode_ack(mixed)  # default threshold 0.2
    strict = AquaModem(protocol_config=ProtocolConfig(ack_dominance_threshold=0.9))
    assert not strict.decode_ack(mixed)


def test_bitrate_for_band(static_modem):
    band = selection_from_bins(20, 23, static_modem.ofdm_config)  # 4 bins
    assert static_modem.bitrate_for_band(band) == pytest.approx(133.33, rel=1e-3)


def test_data_burst_length_matches_encoder(static_modem, rng):
    band = selection_from_bins(30, 45, static_modem.ofdm_config)
    payload = rng.integers(0, 2, 16)
    packet = static_modem.encode_data(payload, band)
    assert static_modem.data_burst_length(16, band) == packet.waveform.size


def test_filter_received_removes_out_of_band_noise(static_modem, rng):
    t = np.arange(48000) / 48000.0
    low_tone = np.sin(2 * np.pi * 200 * t)
    filtered = static_modem.filter_received(low_tone)
    assert np.std(filtered) < 0.1 * np.std(low_tone)


def test_modem_with_custom_configuration():
    from repro.core.config import OFDMConfig

    modem = AquaModem(ofdm_config=OFDMConfig().with_subcarrier_spacing(25.0))
    assert modem.ofdm_config.num_data_bins == 120
    assert modem.preamble_generator.reference_bin_values.size == 120
