"""Tests for preamble generation, detection and synchronization."""

import numpy as np
import pytest

from repro.core.config import OFDMConfig, ProtocolConfig
from repro.core.preamble import PreambleDetector, PreambleGenerator


@pytest.fixture(scope="module")
def generator():
    return PreambleGenerator()


@pytest.fixture(scope="module")
def detector(generator):
    return PreambleDetector(generator)


def test_preamble_dimensions(generator):
    config = OFDMConfig()
    assert generator.num_symbols == 8
    assert generator.symbol_length == config.extended_symbol_length
    assert generator.total_length == 8 * config.extended_symbol_length
    assert generator.waveform().size == generator.total_length
    assert generator.duration_s == pytest.approx(generator.total_length / 48000.0)


def test_preamble_symbols_follow_pn_signs(generator):
    base = generator.base_symbol()
    waveform = generator.waveform()
    signs = ProtocolConfig().pn_signs_array
    for i, sign in enumerate(signs):
        segment = waveform[i * base.size:(i + 1) * base.size]
        np.testing.assert_allclose(segment, sign * base)


def test_reference_bin_values_are_unit_magnitude(generator):
    np.testing.assert_allclose(np.abs(generator.reference_bin_values), 1.0)


def test_clean_detection_at_known_offset(detector, generator, rng):
    offset = 3000
    received = np.concatenate([
        np.zeros(offset), generator.waveform(), np.zeros(2000)
    ]) + 0.001 * rng.standard_normal(offset + generator.total_length + 2000)
    detection = detector.detect(received)
    assert detection.detected
    assert abs(detection.start_index - offset) <= detector.protocol_config.sliding_correlation_step
    assert detection.fine_metric > 0.9


def test_detection_in_moderate_noise(detector, generator, rng):
    offset = 5000
    preamble = generator.waveform()
    noise = rng.standard_normal(offset + preamble.size + 3000)
    received = noise * np.sqrt(np.mean(preamble ** 2)) * 0.5  # ~6 dB SNR
    received[offset:offset + preamble.size] += preamble
    detection = detector.detect(received)
    assert detection.detected
    assert abs(detection.start_index - offset) <= 2 * detector.protocol_config.sliding_correlation_step


def test_no_detection_on_pure_noise(detector, rng):
    received = rng.standard_normal(20000)
    detection = detector.detect(received)
    assert not detection.detected


def test_no_detection_on_impulsive_noise(detector, rng):
    received = 0.001 * rng.standard_normal(20000)
    received[7000] = 100.0  # a loud click / bubble
    detection = detector.detect(received)
    assert not detection.detected


def test_no_detection_when_buffer_too_short(detector):
    assert not detector.detect(np.zeros(100)).detected


def test_extract_symbols_shape_and_sign_removal(detector, generator):
    offset = 1000
    received = np.concatenate([np.zeros(offset), generator.waveform(), np.zeros(100)])
    symbols = detector.extract_symbols(received, offset)
    config = generator.ofdm_config
    assert symbols.shape == (8, config.symbol_length)
    # After sign removal all eight symbols should be identical.
    for i in range(1, 8):
        np.testing.assert_allclose(symbols[i], symbols[0], atol=1e-12)


def test_extract_symbols_out_of_range(detector, generator):
    with pytest.raises(ValueError):
        detector.extract_symbols(np.zeros(generator.total_length), 10)


def test_detection_survives_amplitude_scaling(detector, generator):
    """The normalized metric should not depend on the absolute level."""
    offset = 2000
    received = np.concatenate([np.zeros(offset), 1e-3 * generator.waveform(), np.zeros(1000)])
    received = received + 1e-6 * np.random.default_rng(0).standard_normal(received.size)
    detection = detector.detect(received)
    assert detection.detected
    assert detection.fine_metric > 0.9
