"""Integration tests: full protocol exchanges across the simulated testbed.

These tests exercise the complete chain the paper describes -- modem,
adaptation protocol, channel, environments, application layer -- rather than
individual modules, using small packet counts so the suite stays fast.
"""

import numpy as np
import pytest

from repro.app.codec import MessageCodec
from repro.app.messenger import Messenger
from repro.app.sos import SosBeaconService
from repro.channel.motion import FAST_MOTION
from repro.core.baselines import FIXED_FULL_BAND
from repro.core.config import OFDMConfig
from repro.core.modem import AquaModem
from repro.environments.factory import build_channel, build_link_pair
from repro.environments.sites import BEACH, BRIDGE, LAKE
from repro.link.session import LinkSession


def test_full_adaptive_exchange_at_bridge():
    forward, backward = build_link_pair(site=BRIDGE, distance_m=5.0, seed=101)
    session = LinkSession(forward, backward, seed=101)
    stats = session.run_many(4)
    assert stats.preamble_detection_rate == 1.0
    assert stats.packet_error_rate <= 0.25
    assert stats.median_bitrate_bps > 300.0


def test_adaptive_beats_fixed_full_band_at_lake_20m():
    """The headline claim: adaptation keeps PER low where fixed bands fail."""
    adaptive_errors = 0
    fixed_errors = 0
    trials = 6
    for i in range(trials):
        fwd, bwd = build_link_pair(site=LAKE, distance_m=20.0, seed=300 + i)
        adaptive = LinkSession(fwd, bwd, seed=1).run_packet()
        fwd2, bwd2 = build_link_pair(site=LAKE, distance_m=20.0, seed=300 + i)
        fixed = LinkSession(fwd2, bwd2, scheme=FIXED_FULL_BAND, seed=1).run_packet()
        adaptive_errors += int(not adaptive.delivered)
        fixed_errors += int(not fixed.delivered)
    assert adaptive_errors <= fixed_errors
    assert adaptive_errors <= trials // 2


def test_bitrate_decreases_with_distance_at_lake():
    rates = []
    for distance in (5.0, 20.0):
        fwd, bwd = build_link_pair(site=LAKE, distance_m=distance, seed=77)
        stats = LinkSession(fwd, bwd, seed=3).run_many(4)
        rates.append(stats.median_bitrate_bps)
    assert rates[1] < rates[0]


def test_mobility_still_delivers_packets():
    fwd, bwd = build_link_pair(site=LAKE, distance_m=5.0, motion=FAST_MOTION, seed=55)
    stats = LinkSession(fwd, bwd, seed=5).run_many(4)
    assert stats.preamble_detection_rate >= 0.75
    assert stats.packet_error_rate <= 0.5


def test_hand_signal_message_end_to_end():
    channel = build_channel(site=BRIDGE, distance_m=5.0, seed=88)
    session = LinkSession(channel, seed=88)
    messenger = Messenger(session, max_retransmissions=2, seed=88)
    report = messenger.send_message_ids([17, 203])
    assert report.attempts <= 3
    assert report.success
    assert [m.message_id for m in report.delivered] == [17, 203]


def test_sos_beacon_long_range_at_beach():
    channel = build_channel(site=BEACH, distance_m=100.0, seed=99)
    service = SosBeaconService(channel, bit_rate_bps=5, seed=99)
    receptions = service.broadcast_many(user_id=13, repetitions=3)
    total_errors = sum(r.bit_errors for r in receptions)
    assert total_errors <= 1  # <1 % BER at 5 bps in the paper; allow one flip here


def test_protocol_works_with_25hz_subcarrier_spacing():
    """Fig. 17 configuration: halving the spacing doubles the bin count."""
    modem = AquaModem(ofdm_config=OFDMConfig().with_subcarrier_spacing(25.0))
    fwd, bwd = build_link_pair(site=LAKE, distance_m=5.0, seed=123)
    session = LinkSession(fwd, bwd, modem=modem, seed=123)
    result = session.run_packet()
    assert result.preamble_detected
    assert result.receiver_band is not None


def test_channel_stability_probe_static_vs_motion():
    static_fwd, _ = build_link_pair(site=LAKE, distance_m=10.0, seed=31)
    moving_fwd, _ = build_link_pair(site=LAKE, distance_m=10.0, motion=FAST_MOTION, seed=31)
    static_session = LinkSession(static_fwd, seed=1, randomize_every=0)
    moving_session = LinkSession(moving_fwd, seed=1, randomize_every=0)
    static_probes = [static_session.probe_channel_stability() for _ in range(3)]
    moving_probes = [moving_session.probe_channel_stability() for _ in range(3)]
    static_probes = [p for p in static_probes if np.isfinite(p)]
    moving_probes = [p for p in moving_probes if np.isfinite(p)]
    assert static_probes and moving_probes
    # With only a handful of probes this is a smoke check: both configurations
    # produce sensible finite values and motion does not massively *improve*
    # the worst-case in-band SNR (the statistical comparison lives in
    # benchmarks/bench_fig16_channel_stability.py).
    assert np.mean(moving_probes) <= np.mean(static_probes) + 6.0


def test_message_codec_consistency_with_protocol_payload():
    assert MessageCodec().payload_bits == AquaModem().protocol_config.payload_bits
