"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.channel import UnderwaterAcousticChannel
from repro.channel.multipath import ImageMethodGeometry, MultipathModel
from repro.channel.noise import AmbientNoiseModel
from repro.core.config import OFDMConfig, ProtocolConfig
from repro.core.modem import AquaModem


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def ofdm_config() -> OFDMConfig:
    """The paper's default OFDM configuration."""
    return OFDMConfig()


@pytest.fixture(scope="session")
def protocol_config() -> ProtocolConfig:
    """The paper's default protocol configuration."""
    return ProtocolConfig()


@pytest.fixture(scope="session")
def modem() -> AquaModem:
    """One shared modem instance (stateless between calls)."""
    return AquaModem()


@pytest.fixture
def quiet_channel() -> UnderwaterAcousticChannel:
    """A short, quiet underwater channel that decodes easily."""
    geometry = ImageMethodGeometry(
        water_depth_m=4.0, tx_depth_m=1.0, rx_depth_m=1.0, horizontal_range_m=4.0
    )
    multipath = MultipathModel(geometry=geometry, surface_loss_db=2.0, bottom_loss_db=8.0, seed=7)
    noise = AmbientNoiseModel(level_db=-50.0)
    return UnderwaterAcousticChannel(multipath=multipath, noise=noise, seed=7)


@pytest.fixture
def noisy_channel() -> UnderwaterAcousticChannel:
    """A longer, noisier channel that stresses the adaptation."""
    geometry = ImageMethodGeometry(
        water_depth_m=5.0, tx_depth_m=1.0, rx_depth_m=1.2, horizontal_range_m=20.0
    )
    multipath = MultipathModel(
        geometry=geometry, surface_loss_db=1.0, bottom_loss_db=3.0, extra_reflectors=4, seed=11
    )
    noise = AmbientNoiseModel(level_db=-33.0, impulsive_rate_hz=1.0)
    return UnderwaterAcousticChannel(multipath=multipath, noise=noise, seed=11)
