"""Equivalence oracle for the columnar result arenas.

The object path (:class:`~repro.experiments.records.ResultSet`) is the
legacy reference implementation; :class:`~repro.experiments.columnar.\
ColumnarResultSet` must be observationally identical to it.  The
hypothesis suite here is the gate: randomized records (NaN/inf metrics,
unicode scenario labels, ragged per-packet series) must round-trip
losslessly between the two representations and through the ``.npz``
artifact, and every query -- ``where``, ``to_table``, ``metric``,
aggregations -- must agree with the object path bit for bit.
"""

import math
import tempfile
import pathlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments import (
    ColumnarResultSet,
    ExperimentRunner,
    ResultSet,
    RunRecord,
    Scenario,
    Sweep,
)

_slow = settings(max_examples=30, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

# Any float a simulation metric could plausibly (or implausibly) carry:
# the arenas must be lossless for all of them, NaN and +/-inf included.
_metric = st.floats(allow_nan=True, allow_infinity=True, width=64)

_scenarios = st.builds(
    Scenario,
    site=st.sampled_from(["bridge", "lake"]),
    distance_m=st.sampled_from([4.0, 5.0, 8.0, 12.5]),
    scheme=st.sampled_from(["adaptive", "fixed-3k", "fixed-0.5k"]),
    motion=st.sampled_from(["static", "slow"]),
    num_packets=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=999),
    label=st.text(max_size=8),  # unicode, including '' and whitespace
    use_fast_path=st.booleans(),
    rx_depth_m=st.one_of(st.none(), st.sampled_from([0.5, 2.0])),
)


@st.composite
def _records(draw):
    scenario = draw(_scenarios)
    packets = scenario.num_packets
    series = st.lists(_metric, min_size=packets, max_size=packets)
    return RunRecord(
        scenario=scenario,
        num_packets=packets,
        delivered=draw(st.integers(0, packets)),
        packet_error_rate=draw(_metric),
        payload_bit_error_rate=draw(_metric),
        coded_bit_error_rate=draw(_metric),
        preamble_detection_rate=draw(_metric),
        feedback_error_rate=draw(_metric),
        bitrates_bps=tuple(draw(series)),
        band_starts_hz=tuple(draw(series)),
        band_ends_hz=tuple(draw(series)),
        min_band_snrs_db=tuple(draw(series)),
        delivered_flags=tuple(
            draw(st.lists(st.booleans(), min_size=packets, max_size=packets))
        ),
        elapsed_s=draw(st.floats(min_value=0.0, max_value=10.0)),
    )


_record_lists = st.lists(_records(), max_size=8)

_SCALAR_METRICS = (
    "packet_error_rate",
    "payload_bit_error_rate",
    "coded_bit_error_rate",
    "preamble_detection_rate",
    "feedback_error_rate",
    "elapsed_s",
    "num_packets",
    "delivered",
    "median_bitrate_bps",
)


def _float_equal(a: float, b: float) -> bool:
    return (math.isnan(a) and math.isnan(b)) or a == b


# ------------------------------------------------------------- round-trip
@_slow
@given(_record_lists)
def test_roundtrip_is_lossless(records):
    reference = ResultSet(list(records))
    columnar = ColumnarResultSet.from_result_set(reference)
    assert len(columnar) == len(reference)
    assert columnar.to_result_set() == reference
    assert columnar == reference
    for rebuilt, original in zip(columnar, reference):
        assert rebuilt == original
        # Record equality excludes timing; losslessness must not.
        assert _float_equal(rebuilt.elapsed_s, original.elapsed_s)
        # Series come back as the exact same tuples (NaN/inf preserved).
        assert len(rebuilt.bitrates_bps) == len(original.bitrates_bps)
        for got, want in zip(rebuilt.bitrates_bps, original.bitrates_bps):
            assert _float_equal(got, want)
        assert rebuilt.delivered_flags == original.delivered_flags


@_slow
@given(_record_lists)
def test_npz_roundtrip_is_lossless(records):
    columnar = ColumnarResultSet(list(records))
    with tempfile.TemporaryDirectory(prefix="columnar-npz-") as tmp:
        path = columnar.save_npz(pathlib.Path(tmp) / "results.npz")
        loaded = ColumnarResultSet.load_npz(path)
    assert loaded == columnar
    assert loaded.to_result_set() == ResultSet(list(records))
    for rebuilt, original in zip(loaded, records):
        assert _float_equal(rebuilt.elapsed_s, original.elapsed_s)


@_slow
@given(_record_lists)
def test_json_form_matches_object_path(records):
    reference = ResultSet(list(records))
    columnar = ColumnarResultSet(list(records))
    assert columnar.to_json() == reference.to_json()
    assert (columnar.to_json(include_timing=True)
            == reference.to_json(include_timing=True))


# ---------------------------------------------------------------- queries
@_slow
@given(_record_lists)
def test_to_table_matches_object_path(records):
    reference = ResultSet(list(records))
    columnar = ColumnarResultSet(list(records))
    assert columnar.to_table() == reference.to_table()
    wide = ("scenario", "packets", "per", "coded_ber", "median_bps",
            "detect", "feedback_err", "elapsed_s", "delivered")
    assert columnar.to_table(wide) == reference.to_table(wide)


@_slow
@given(_record_lists)
def test_metrics_and_aggregations_match_object_path(records):
    reference = ResultSet(list(records))
    columnar = ColumnarResultSet(list(records))
    for name in _SCALAR_METRICS:
        want = reference.metric(name)
        got = np.asarray(columnar.metric(name), dtype=float)
        assert np.array_equal(got, want, equal_nan=True), name
        if want.size:
            assert _float_equal(columnar.mean(name), float(np.mean(want)))
            assert _float_equal(columnar.sum(name), float(np.sum(want)))
        else:
            assert math.isnan(columnar.mean(name))
            assert columnar.sum(name) == 0.0
    assert _float_equal(columnar.total_elapsed_s, reference.total_elapsed_s)
    offered = sum(r.num_packets for r in records)
    if offered:
        want_ratio = sum(r.delivered for r in records) / offered
        assert _float_equal(columnar.delivery_ratio(), want_ratio)
    else:
        assert math.isnan(columnar.delivery_ratio())


@st.composite
def _records_with_criteria(draw):
    records = draw(_record_lists)
    criteria = {}
    names = draw(st.sets(
        st.sampled_from(["site", "scheme", "distance_m", "seed",
                         "use_fast_path", "label", "motion", "rx_depth_m"]),
        max_size=3,
    ))
    for name in names:
        if records and draw(st.booleans()):
            # Bias towards values actually present so matches happen.
            record = draw(st.sampled_from(records))
            value = getattr(record.scenario, name)
            if name in ("site", "motion"):
                value = draw(st.sampled_from([value, value.name]))
            if name == "scheme":
                value = draw(st.sampled_from(
                    [value, record.scenario.scheme_key]))
        else:
            value = draw({
                "site": st.sampled_from(["bridge", "lake"]),
                "scheme": st.sampled_from(["adaptive", "fixed-3k"]),
                "distance_m": st.sampled_from([4.0, 5.0, 99.0]),
                "seed": st.integers(0, 999),
                "use_fast_path": st.booleans(),
                "label": st.text(max_size=8),
                "motion": st.sampled_from(["static", "slow"]),
                "rx_depth_m": st.one_of(st.none(), st.sampled_from([0.5, 2.0])),
            }[name])
        criteria[name] = value
    return records, criteria


@_slow
@given(_records_with_criteria())
def test_where_matches_object_path(records_and_criteria):
    records, criteria = records_and_criteria
    reference = ResultSet(list(records)).where(**criteria)
    filtered = ColumnarResultSet(list(records)).where(**criteria)
    assert filtered == reference
    assert filtered.to_table() == reference.to_table()


@_slow
@given(_record_lists)
def test_where_predicate_matches_object_path(records):
    predicate = lambda r: r.delivered > 0  # noqa: E731
    reference = ResultSet(list(records)).where(predicate)
    filtered = ColumnarResultSet(list(records)).where(predicate)
    assert filtered == reference
    combined = ColumnarResultSet(list(records)).where(predicate, site="bridge")
    assert combined == ResultSet(list(records)).where(predicate, site="bridge")


# --------------------------------------------------- directed unit checks
def _simulated(num_scenarios=4, packets=2):
    sweep = (
        Sweep(Scenario(site="bridge", num_packets=packets))
        .over(distance_m=[4.0 + i for i in range(num_scenarios // 2)],
              scheme=["adaptive", "fixed-0.5k"])
        .seeded(60)
    )
    return ExperimentRunner(max_workers=1).run(sweep)


def test_simulated_records_roundtrip_and_agree(tmp_path):
    reference = _simulated()
    columnar = ColumnarResultSet.from_result_set(reference)
    assert columnar == reference
    assert columnar.to_table() == reference.to_table()
    assert columnar.to_json() == reference.to_json()
    loaded = ColumnarResultSet.load_npz(columnar.save_npz(tmp_path / "r.npz"))
    assert loaded == reference
    adaptive = columnar.where(scheme="adaptive")
    assert adaptive == reference.where(scheme="adaptive")
    record = columnar.lookup(distance_m=4.0, scheme="fixed-0.5k")
    assert record == reference.lookup(distance_m=4.0, scheme="fixed-0.5k")


def test_result_set_to_columnar_bridge():
    reference = _simulated()
    columnar = reference.to_columnar()
    assert isinstance(columnar, ColumnarResultSet)
    assert columnar == reference
    assert columnar.to_result_set() == reference


def test_lookup_raises_like_object_path():
    columnar = ColumnarResultSet.from_result_set(_simulated())
    with pytest.raises(LookupError):
        columnar.lookup(scheme="adaptive")  # two matches
    with pytest.raises(LookupError):
        columnar.lookup(distance_m=999.0)  # zero matches


def test_where_rejects_unknown_fields_like_object_path():
    reference = _simulated()
    columnar = ColumnarResultSet.from_result_set(reference)
    # Unknown catalog spellings raise ValueError, unknown fields
    # AttributeError -- exactly as Scenario.matches does.
    with pytest.raises(ValueError, match="unknown"):
        columnar.where(site="atlantis")
    with pytest.raises(AttributeError):
        columnar.where(depth_m=1.0)
    with pytest.raises(ValueError, match="unknown"):
        reference.where(site="atlantis")
    with pytest.raises(AttributeError):
        reference.where(depth_m=1.0)


def test_metric_views_are_zero_copy_and_read_only():
    columnar = ColumnarResultSet.from_result_set(_simulated())
    view = columnar.metric("packet_error_rate")
    assert not view.flags.writeable
    with pytest.raises(ValueError):
        view[0] = 0.5
    # Appending must not invalidate what the view exposed.
    before = view.copy()
    columnar.append(columnar.record(0))
    assert np.array_equal(columnar.metric("packet_error_rate")[:len(before)],
                          before, equal_nan=True)


def test_record_indexing_matches_object_path():
    reference = _simulated()
    columnar = ColumnarResultSet.from_result_set(reference)
    assert columnar.record(-1) == reference[len(reference) - 1]
    assert columnar[0] == reference[0]
    with pytest.raises(IndexError):
        columnar.record(len(reference))


# -------------------------------------------------------- artifact safety
def test_load_npz_rejects_truncated_file(tmp_path):
    columnar = ColumnarResultSet.from_result_set(_simulated(2))
    path = columnar.save_npz(tmp_path / "results.npz")
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(ValueError, match="corrupt or unreadable"):
        ColumnarResultSet.load_npz(path)


def test_load_npz_rejects_garbage_and_missing_files(tmp_path):
    garbage = tmp_path / "garbage.npz"
    garbage.write_bytes(b"this is not a zip archive")
    with pytest.raises(ValueError, match="corrupt or unreadable"):
        ColumnarResultSet.load_npz(garbage)
    with pytest.raises(ValueError, match="corrupt or unreadable"):
        ColumnarResultSet.load_npz(tmp_path / "missing.npz")


def test_load_npz_rejects_foreign_npz(tmp_path):
    path = tmp_path / "foreign.npz"
    np.savez(path, unrelated=np.arange(3))
    with pytest.raises(ValueError):
        ColumnarResultSet.load_npz(path)


def test_load_npz_rejects_wrong_version(tmp_path):
    columnar = ColumnarResultSet.from_result_set(_simulated(2))
    path = columnar.save_npz(tmp_path / "results.npz")
    arrays = dict(np.load(path, allow_pickle=False))
    arrays["version"] = np.asarray(99)
    np.savez(path, **arrays)
    with pytest.raises(ValueError):
        ColumnarResultSet.load_npz(path)


def test_empty_set_roundtrips(tmp_path):
    empty = ColumnarResultSet()
    assert len(empty) == 0
    assert empty == ResultSet()
    assert empty.where(site="atlantis") == ResultSet()  # never evaluated
    loaded = ColumnarResultSet.load_npz(empty.save_npz(tmp_path / "e.npz"))
    assert loaded == empty
    assert empty.to_table() == ResultSet().to_table()
    assert math.isnan(empty.delivery_ratio())
