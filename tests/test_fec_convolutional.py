"""Tests for the convolutional code and Viterbi decoder."""

import numpy as np
import pytest

from repro.fec.convolutional import ConvolutionalCode, PuncturedConvolutionalCode


@pytest.fixture(scope="module")
def mother():
    return ConvolutionalCode()


@pytest.fixture(scope="module")
def punctured():
    return PuncturedConvolutionalCode()


def test_mother_code_rate_and_tail(mother):
    assert mother.rate == pytest.approx(0.5)
    assert mother.num_tail_bits == 6
    assert mother.num_states == 64


def test_mother_encode_length(mother):
    bits = np.array([1, 0, 1, 1])
    coded = mother.encode(bits, terminate=True)
    assert coded.size == (4 + 6) * 2
    coded_unterminated = mother.encode(bits, terminate=False)
    assert coded_unterminated.size == 8


def test_mother_encode_known_all_zero_input(mother):
    coded = mother.encode(np.zeros(8, dtype=int))
    np.testing.assert_array_equal(coded, np.zeros_like(coded))


def test_mother_roundtrip_clean(mother):
    rng = np.random.default_rng(0)
    bits = rng.integers(0, 2, 40)
    decoded = mother.decode(mother.encode(bits), num_data_bits=40)
    np.testing.assert_array_equal(decoded, bits)


def test_mother_corrects_scattered_errors(mother):
    rng = np.random.default_rng(1)
    bits = rng.integers(0, 2, 60)
    coded = mother.encode(bits).astype(float)
    # Flip 6 well-separated coded bits.
    for position in range(0, 120, 20):
        coded[position] = 1 - coded[position]
    decoded = mother.decode(coded, num_data_bits=60)
    np.testing.assert_array_equal(decoded, bits)


def test_mother_accepts_soft_values(mother):
    rng = np.random.default_rng(2)
    bits = rng.integers(0, 2, 30)
    coded = mother.encode(bits)
    soft = (coded * 2.0 - 1.0) * 0.8 + rng.normal(0, 0.3, coded.size)
    decoded = mother.decode(soft, num_data_bits=30)
    errors = np.count_nonzero(decoded != bits)
    assert errors <= 1


def test_mother_handles_erasures(mother):
    rng = np.random.default_rng(3)
    bits = rng.integers(0, 2, 30)
    coded = mother.encode(bits).astype(float)
    coded[::7] = np.nan  # erase every 7th coded bit
    decoded = mother.decode(coded, num_data_bits=30)
    np.testing.assert_array_equal(decoded, bits)


def test_mother_decode_validates_length(mother):
    with pytest.raises(ValueError):
        mother.decode(np.zeros(7))


def test_mother_rejects_non_binary_input(mother):
    with pytest.raises(ValueError):
        mother.encode([0, 1, 2])


def test_mother_constructor_validation():
    with pytest.raises(ValueError):
        ConvolutionalCode(constraint_length=1)
    with pytest.raises(ValueError):
        ConvolutionalCode(polynomials=(0o133,))


def test_punctured_rate_is_two_thirds(punctured):
    assert punctured.rate == pytest.approx(2.0 / 3.0)
    # 16 data bits -> 24 coded bits, matching the paper's packet accounting.
    assert punctured.coded_length(16) == 24


def test_punctured_encode_length_matches_coded_length(punctured):
    rng = np.random.default_rng(4)
    for n in (4, 16, 32, 50):
        bits = rng.integers(0, 2, n)
        assert punctured.encode(bits).size == punctured.coded_length(n)


def test_punctured_roundtrip_clean(punctured):
    rng = np.random.default_rng(5)
    bits = rng.integers(0, 2, 16)
    decoded = punctured.decode(punctured.encode(bits), num_data_bits=16)
    np.testing.assert_array_equal(decoded, bits)


def test_punctured_roundtrip_many_random_payloads(punctured):
    rng = np.random.default_rng(6)
    for _ in range(20):
        bits = rng.integers(0, 2, 16)
        decoded = punctured.decode(punctured.encode(bits), num_data_bits=16)
        np.testing.assert_array_equal(decoded, bits)


def test_punctured_corrects_single_error(punctured):
    rng = np.random.default_rng(7)
    bits = rng.integers(0, 2, 16)
    coded = punctured.encode(bits).astype(float)
    coded[5] = 1 - coded[5]
    decoded = punctured.decode(coded, num_data_bits=16)
    np.testing.assert_array_equal(decoded, bits)


def test_punctured_decode_validates_length(punctured):
    with pytest.raises(ValueError):
        punctured.decode(np.zeros(10), num_data_bits=16)


def test_punctured_terminated_variant_roundtrip():
    code = PuncturedConvolutionalCode(terminate=True)
    rng = np.random.default_rng(8)
    bits = rng.integers(0, 2, 16)
    coded = code.encode(bits)
    assert coded.size == code.coded_length(16) > 24  # tail bits add overhead
    decoded = code.decode(coded, num_data_bits=16)
    np.testing.assert_array_equal(decoded, bits)
