"""Regression tests for late-added behaviours: channel drift accumulation and
feedback decoding under strong tone imbalance."""

import numpy as np
import pytest

from repro.channel.channel import UnderwaterAcousticChannel
from repro.channel.motion import FAST_MOTION, STATIC_MOTION
from repro.channel.multipath import ImageMethodGeometry, MultipathModel
from repro.channel.noise import AmbientNoiseModel
from repro.core.config import OFDMConfig
from repro.core.feedback import FeedbackCodec


def _channel(motion):
    geometry = ImageMethodGeometry(5.0, 1.0, 1.0, 8.0)
    return UnderwaterAcousticChannel(
        multipath=MultipathModel(geometry=geometry, seed=4),
        noise=AmbientNoiseModel(level_db=-60.0),
        motion=motion,
        seed=4,
    )


def _response(channel):
    return channel.end_to_end_response_db(np.arange(1000.0, 4000.0, 100.0))


def test_static_channel_does_not_drift_between_transmissions(rng):
    channel = _channel(STATIC_MOTION)
    before = _response(channel)
    channel.transmit(np.ones(9600), rng)
    after = _response(channel)
    np.testing.assert_allclose(before, after)


def test_motion_accumulates_channel_drift_between_transmissions(rng):
    channel = _channel(FAST_MOTION)
    before = _response(channel)
    for _ in range(3):
        channel.transmit(np.ones(19200), rng)
    after = _response(channel)
    assert not np.allclose(before, after, atol=0.5)


def test_randomize_resets_are_still_bounded(rng):
    """Randomizing between packets moves the geometry by centimetres, not metres."""
    channel = _channel(STATIC_MOTION)
    original_range = channel.distance_m
    for _ in range(20):
        channel.randomize(rng)
    assert channel.distance_m == pytest.approx(original_range, abs=3.0)
    assert 0.05 < channel.geometry.tx_depth_m < channel.geometry.water_depth_m


def test_feedback_decodes_strongly_imbalanced_tones(rng):
    """A 20 dB per-tone imbalance (deep fade on one tone) must still decode."""
    config = OFDMConfig()
    codec = FeedbackCodec(config)
    start_bin, end_bin = 25, 70
    symbol = codec.encode(start_bin, end_bin)
    # Attenuate the end tone by 20 dB in the frequency domain.
    core = symbol[config.cyclic_prefix_length:]
    spectrum = np.fft.rfft(core)
    spectrum[end_bin] *= 0.1
    faded = np.fft.irfft(spectrum, n=config.symbol_length)
    faded = np.concatenate([faded[-config.cyclic_prefix_length:], faded])
    received = np.concatenate([np.zeros(400), faded, np.zeros(1500)])
    received += 1e-5 * rng.standard_normal(received.size)
    result = codec.decode(received)
    assert result.found
    assert result.start_bin == start_bin
    assert result.end_bin == end_bin


def test_feedback_collapses_to_single_tone_when_other_is_gone(rng):
    """A tone buried >26 dB below the other is reported as a single-bin band."""
    config = OFDMConfig()
    codec = FeedbackCodec(config)
    symbol = codec.encode(30, 30)
    received = np.concatenate([np.zeros(200), symbol, np.zeros(1500)])
    received += 1e-6 * rng.standard_normal(received.size)
    result = codec.decode(received)
    assert result.found
    assert result.start_bin == result.end_bin == 30
