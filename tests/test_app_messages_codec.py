"""Tests for the hand-signal catalog and the message codec."""

import numpy as np
import pytest

from repro.app.codec import EMPTY_SLOT, MessageCodec
from repro.app.messages import (
    CATEGORIES,
    COMMON_MESSAGE_IDS,
    MESSAGE_CATALOG,
    common_messages,
    get_message,
    messages_in_category,
)


# ------------------------------------------------------------------ catalog
def test_catalog_has_exactly_240_messages():
    assert len(MESSAGE_CATALOG) == 240


def test_catalog_has_eight_categories():
    assert len(CATEGORIES) == 8
    assert {m.category for m in MESSAGE_CATALOG} == set(CATEGORIES)


def test_message_ids_are_stable_and_dense():
    ids = [m.message_id for m in MESSAGE_CATALOG]
    assert ids == list(range(240))


def test_twenty_common_messages():
    assert len(COMMON_MESSAGE_IDS) == 20
    assert len(common_messages()) == 20
    assert all(m.is_common for m in common_messages())


def test_message_texts_are_unique_and_nonempty():
    texts = [m.text for m in MESSAGE_CATALOG]
    assert len(set(texts)) == len(texts)
    assert all(t.strip() for t in texts)


def test_messages_in_category():
    for category in CATEGORIES:
        subset = messages_in_category(category)
        assert len(subset) == 30
        assert all(m.category == category for m in subset)
    with pytest.raises(ValueError):
        messages_in_category("nonexistent")


def test_get_message_bounds():
    assert get_message(0).message_id == 0
    assert get_message(239).message_id == 239
    with pytest.raises(ValueError):
        get_message(240)
    with pytest.raises(ValueError):
        get_message(-1)


def test_every_id_fits_in_eight_bits():
    assert all(0 <= m.message_id < 256 for m in MESSAGE_CATALOG)


# -------------------------------------------------------------------- codec
def test_codec_payload_size_matches_packet():
    assert MessageCodec().payload_bits == 16


def test_single_message_roundtrip():
    codec = MessageCodec()
    bits = codec.encode_ids([42])
    assert bits.size == 16
    assert codec.decode_ids(bits) == [42]


def test_two_message_roundtrip():
    codec = MessageCodec()
    bits = codec.encode_ids([3, 197])
    assert codec.decode_ids(bits) == [3, 197]


def test_all_ids_roundtrip():
    codec = MessageCodec()
    for message_id in range(0, 240, 13):
        assert codec.decode_ids(codec.encode_ids([message_id]))[0] == message_id


def test_empty_slot_value_not_a_catalog_id():
    assert EMPTY_SLOT >= len(MESSAGE_CATALOG)


def test_encode_messages_by_object():
    codec = MessageCodec()
    messages = [MESSAGE_CATALOG[5], MESSAGE_CATALOG[77]]
    decoded = codec.decode_messages(codec.encode_messages(messages))
    assert [m.message_id for m in decoded] == [5, 77]


def test_decode_messages_skips_invalid_ids():
    codec = MessageCodec()
    bits = codec.encode_ids([10])
    # Corrupt the second (empty) slot into an out-of-range value that is not 255.
    corrupted = bits.copy()
    corrupted[8:16] = [1, 1, 1, 1, 0, 1, 0, 1]  # 245
    decoded = codec.decode_messages(corrupted)
    assert [m.message_id for m in decoded] == [10]


def test_encode_validations():
    codec = MessageCodec()
    with pytest.raises(ValueError):
        codec.encode_ids([])
    with pytest.raises(ValueError):
        codec.encode_ids([1, 2, 3])
    with pytest.raises(ValueError):
        codec.encode_ids([400])


def test_decode_validates_length():
    with pytest.raises(ValueError):
        MessageCodec().decode_ids(np.zeros(8, dtype=int))
