"""Tests for CAZAC / PN sequence generation."""

import numpy as np
import pytest

from repro.dsp.sequences import (
    PREAMBLE_PN_SIGNS,
    periodic_autocorrelation,
    pn_sign_sequence,
    preamble_pn_signs,
    zadoff_chu,
)


def test_zadoff_chu_unit_magnitude():
    seq = zadoff_chu(60, root=1)
    np.testing.assert_allclose(np.abs(seq), 1.0, atol=1e-12)


def test_zadoff_chu_length():
    assert zadoff_chu(37).size == 37


def test_zadoff_chu_odd_length_ideal_autocorrelation():
    seq = zadoff_chu(63, root=1)
    acf = periodic_autocorrelation(seq)
    assert acf[0] == pytest.approx(1.0)
    assert np.max(np.abs(acf[1:])) < 1e-8


def test_zadoff_chu_even_length_low_sidelobes():
    seq = zadoff_chu(60, root=1)
    acf = periodic_autocorrelation(seq)
    assert acf[0] == pytest.approx(1.0)
    # Even lengths are not perfectly ideal but must stay well below the peak.
    assert np.max(np.abs(acf[1:])) < 0.35


def test_zadoff_chu_different_roots_differ():
    assert not np.allclose(zadoff_chu(61, root=1), zadoff_chu(61, root=2))


def test_zadoff_chu_non_coprime_root_is_fixed_up():
    # root 30 shares a factor with 60; the generator must still return a
    # constant-amplitude sequence rather than a degenerate one.
    seq = zadoff_chu(60, root=30)
    np.testing.assert_allclose(np.abs(seq), 1.0, atol=1e-12)
    acf = periodic_autocorrelation(seq)
    assert np.max(np.abs(acf[1:])) < 0.5


def test_zadoff_chu_rejects_bad_args():
    with pytest.raises(ValueError):
        zadoff_chu(0)
    with pytest.raises(ValueError):
        zadoff_chu(10, root=0)


def test_pn_sign_sequence_values_and_determinism():
    seq = pn_sign_sequence(64)
    assert set(np.unique(seq)) <= {-1.0, 1.0}
    np.testing.assert_array_equal(seq, pn_sign_sequence(64))


def test_pn_sign_sequence_balanced():
    seq = pn_sign_sequence(512)
    # A maximal-length LFSR output is nearly balanced.
    assert abs(np.sum(seq)) < 60


def test_pn_sign_sequence_rejects_non_positive_length():
    with pytest.raises(ValueError):
        pn_sign_sequence(0)


def test_preamble_pn_signs_match_paper():
    assert PREAMBLE_PN_SIGNS == (-1, 1, 1, 1, 1, 1, -1, 1)
    np.testing.assert_array_equal(preamble_pn_signs(), np.array(PREAMBLE_PN_SIGNS, dtype=float))


def test_periodic_autocorrelation_rejects_empty():
    with pytest.raises(ValueError):
        periodic_autocorrelation(np.array([]))
