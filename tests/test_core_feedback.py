"""Tests for the two-tone feedback symbol codec."""

import numpy as np
import pytest

from repro.core.config import OFDMConfig
from repro.core.feedback import FeedbackCodec


@pytest.fixture(scope="module")
def codec():
    return FeedbackCodec()


CONFIG = OFDMConfig()


def test_encode_length(codec):
    symbol = codec.encode(25, 70)
    assert symbol.size == CONFIG.extended_symbol_length


def test_encode_concentrates_power_in_two_bins(codec):
    symbol = codec.encode(25, 70)
    spectrum = np.abs(np.fft.rfft(symbol[CONFIG.cyclic_prefix_length:])) ** 2
    in_tones = spectrum[25] + spectrum[70]
    assert in_tones / spectrum.sum() > 0.98


def test_encode_single_bin_band(codec):
    symbol = codec.encode(33, 33)
    spectrum = np.abs(np.fft.rfft(symbol[CONFIG.cyclic_prefix_length:])) ** 2
    assert spectrum[33] / spectrum.sum() > 0.98


def test_encode_swaps_reversed_bins(codec):
    np.testing.assert_allclose(codec.encode(70, 25), codec.encode(25, 70))


def test_encode_rejects_out_of_band_bins(codec):
    with pytest.raises(ValueError):
        codec.encode(5, 40)
    with pytest.raises(ValueError):
        codec.encode(25, 200)


def test_decode_clean_symbol(codec, rng):
    symbol = codec.encode(22, 61)
    received = np.concatenate([np.zeros(500), symbol, np.zeros(500)])
    received += 1e-4 * rng.standard_normal(received.size)
    result = codec.decode(received)
    assert result.found
    assert result.start_bin == 22
    assert result.end_bin == 61
    assert result.peak_power_ratio > 0.5


def test_decode_with_noise_and_attenuation(codec, rng):
    symbol = 0.05 * codec.encode(30, 75)
    received = np.concatenate([np.zeros(800), symbol, np.zeros(400)])
    received += 0.005 * rng.standard_normal(received.size)
    result = codec.decode(received)
    assert result.found
    assert result.start_bin == 30
    assert result.end_bin == 75


def test_decode_pure_noise_not_found_or_weak(codec, rng):
    received = 0.01 * rng.standard_normal(6000)
    result = codec.decode(received)
    # White noise spreads energy over all 60 bins, so the top-2 ratio stays low.
    assert not result.found


def test_decode_respects_search_window(codec, rng):
    symbol = codec.encode(40, 50)
    received = np.concatenate([np.zeros(3000), symbol, np.zeros(200)])
    received += 1e-5 * rng.standard_normal(received.size)
    late = codec.decode(received, search_start=0, search_stop=4000)
    assert late.found and late.start_bin == 40
    result = codec.decode(received, search_start=0, search_stop=100)
    # The symbol lies outside the narrow window, so either nothing is found or
    # the quality ratio is poor.
    assert (not result.found) or result.peak_power_ratio < 0.5


def test_decode_empty_window(codec):
    result = codec.decode(np.zeros(10), search_start=5, search_stop=2)
    assert not result.found
