"""Tests for the repro.trace subsystem: capture, replay, synthesis, QoE."""

from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.experiments.net_scenario import NetScenario
from repro.net.links import CalibratedLink, LinkCalibration
from repro.net.metrics import DeliveryRecord, NetworkMetrics
from repro.net.packet import BROADCAST
from repro.net.routing import StaticShortestPathRouting
from repro.net.simulator import NetworkSimulator
from repro.net.topology import AcousticNetTopology
from repro.trace.events import TRACE_VERSION
from repro.trace import (
    PopulationWorkload,
    Trace,
    TraceEvent,
    TraceRecorder,
    capture_scenario,
    check_roundtrip,
    compare_stacks,
    load_trace,
    metrics_signature,
    qoe_delta,
    qoe_report,
    replay_trace,
    save_trace,
    scenario_from_trace,
    synthesize_trace,
)
from repro.trace.replay import TraceTrafficGenerator

FIXTURE = Path(__file__).parent / "data" / "trace_fixture_9node.jsonl"


def _small_scenario(**overrides) -> NetScenario:
    fields = dict(num_nodes=5, duration_s=30.0, rate_msgs_per_s=0.05, seed=7)
    fields.update(overrides)
    return NetScenario(**fields)


# -------------------------------------------------------------- event schema
def test_trace_event_rejects_unknown_event_kind():
    with pytest.raises(ValueError, match="unknown event"):
        TraceEvent(time_s=0.0, event="teleport", uid=1, source="a", destination="b")


def test_trace_event_rejects_unknown_payload_kind():
    with pytest.raises(ValueError, match="unknown payload kind"):
        TraceEvent(time_s=0.0, event="send", uid=1, source="a",
                   destination="b", kind="video")


def test_trace_event_dict_roundtrip_is_compact():
    event = TraceEvent(time_s=1.5, event="send", uid=3, source="n0",
                       destination="n1", size_bits=16, kind="data")
    data = event.to_dict()
    # Zero-valued optionals are omitted from the JSON-line form.
    assert "hops" not in data and "flow" not in data
    assert TraceEvent.from_dict(data) == event


# ------------------------------------------------------------ serialization
def _sample_trace() -> Trace:
    events = [
        TraceEvent(0.5, "send", 0, "n0", "n2", size_bits=16, kind="data"),
        TraceEvent(1.0, "send", 1, "n1", BROADCAST, size_bits=6, kind="broadcast"),
        TraceEvent(2.5, "deliver", 0, "n0", "n2", hop_count=2, kind="data"),
        TraceEvent(9.0, "drop", 1, "n1", "n2", kind="broadcast"),
        TraceEvent(9.0, "abort", -1, "", "", flow_id="n0->n2#0"),
    ]
    return Trace(events=events, meta={"note": "sample"})


def test_jsonl_roundtrip_preserves_events_and_meta():
    trace = _sample_trace()
    restored = Trace.loads(trace.dumps())
    assert restored.events == trace.events
    assert restored.meta == trace.meta
    assert restored.version == trace.version


def test_jsonl_rejects_foreign_and_wrong_version_documents():
    with pytest.raises(ValueError, match="empty trace"):
        Trace.loads("")
    with pytest.raises(ValueError, match="not a repro.trace"):
        Trace.loads('{"format": "other", "version": 1}\n')
    text = _sample_trace().dumps().replace(
        f'"version": {TRACE_VERSION}', '"version": 99'
    )
    with pytest.raises(ValueError, match="unsupported trace version 99"):
        Trace.loads(text)


def test_jsonl_accepts_v1_documents():
    # v1 read-compat: every v1 document is a valid v2 document with
    # empty reasons, so old committed fixtures keep loading.
    text = _sample_trace().dumps().replace(
        f'"version": {TRACE_VERSION}', '"version": 1'
    )
    restored = Trace.loads(text)
    assert restored.version == 1
    assert restored.events == _sample_trace().events
    assert all(event.reason == "" for event in restored.events)


def test_v2_reason_field_roundtrips_jsonl_and_columnar():
    events = [
        TraceEvent(1.0, "send", 0, "n0", "n1", size_bits=16, kind="data"),
        TraceEvent(5.0, "drop", 0, "n0", "n1", kind="data", reason="ttl"),
        TraceEvent(6.0, "abort", -1, "", "", flow_id="n0>n1#0",
                   reason="dest-dead"),
    ]
    trace = Trace(events=events)
    assert Trace.loads(trace.dumps()).events == events
    assert Trace.from_columns(trace.to_columns()).events == events
    # Zero-value omission: events without a reason stay compact.
    assert "reason" not in events[0].to_dict()
    assert events[1].to_dict()["reason"] == "ttl"


def test_columnar_v1_archive_without_reason_columns_loads():
    trace = _sample_trace()
    columns = trace.to_columns()
    del columns["reason"], columns["reasons"]
    restored = Trace.from_columns(columns, meta=trace.meta)
    assert restored.events == trace.events


def test_jsonl_rejects_truncated_documents():
    lines = _sample_trace().dumps().splitlines()
    with pytest.raises(ValueError, match="truncated"):
        Trace.loads("\n".join(lines[:-1]))


def test_columnar_roundtrip_is_exact():
    trace = _sample_trace()
    restored = Trace.from_columns(trace.to_columns(), meta=trace.meta)
    assert restored.events == trace.events
    assert restored.meta == trace.meta


def test_save_load_dispatch_on_extension(tmp_path):
    trace = _sample_trace()
    for name in ("t.jsonl", "t.npz"):
        path = tmp_path / name
        save_trace(trace, path)
        restored = load_trace(path)
        assert restored.events == trace.events
        assert restored.meta == trace.meta


def test_npz_rejects_wrong_version(tmp_path):
    trace = _sample_trace()
    trace.version = 99
    path = tmp_path / "t.npz"
    trace.save_npz(path)
    with pytest.raises(ValueError, match="unsupported trace version 99"):
        Trace.load_npz(path)


def test_trace_summary_counts_and_duration():
    trace = _sample_trace()
    assert trace.num_messages == 2
    assert trace.duration_s == 9.0
    assert "2 sends, 1 deliveries, 1 drops, 1 aborts" in trace.summary()


# ----------------------------------------------------------------- capture
def test_recorder_counts_match_run_metrics():
    result, trace = capture_scenario(_small_scenario())
    assert trace.num_messages == result.metrics.offered
    deliveries = sum(e.event == "deliver" for e in trace.events)
    drops = sum(e.event == "drop" for e in trace.events)
    assert deliveries == result.metrics.delivered
    assert deliveries + drops == result.metrics.offered
    assert trace.meta["scenario"] == _small_scenario().to_dict()
    assert trace.meta["capture_metrics"] == metrics_signature(result)


def test_recorder_trace_is_time_sorted():
    _, trace = capture_scenario(_small_scenario())
    times = [e.time_s for e in trace.events]
    assert times == sorted(times)


def test_recorder_records_flow_aborts():
    # A lossy link with minimal retries forces ARQ aborts.
    lossy = CalibratedLink(LinkCalibration(
        site_name="lake", distances_m=(1.0, 40.0),
        packet_error_rate=(0.9, 0.9), bitrate_bps=(1000.0, 1000.0),
    ))
    from repro.net.transport import ArqConfig

    recorder = TraceRecorder()
    simulator = NetworkSimulator(
        AcousticNetTopology.line(2, spacing_m=8.0, comm_range_m=10.0),
        StaticShortestPathRouting(), lossy,
        arq=ArqConfig(window_size=2, timeout_s=2.0, max_retries=1),
        seed=5, observer=recorder,
    )
    simulator.send_message("n0", "n1", time_s=0.0)
    simulator.run()
    trace = recorder.trace()
    aborts = [e for e in trace.events if e.event == "abort"]
    assert aborts and all(e.flow_id for e in aborts)


# ------------------------------------------------------------------- replay
def test_capture_replay_roundtrip_is_bit_deterministic():
    _, trace = capture_scenario(_small_scenario())
    identical, captured, replayed = check_roundtrip(trace)
    assert identical, f"roundtrip diverged: {captured} != {replayed}"


def test_replay_twice_is_identical():
    _, trace = capture_scenario(_small_scenario())
    first = metrics_signature(replay_trace(trace))
    second = metrics_signature(replay_trace(trace))
    assert first == second


def test_replay_through_serialization_is_still_identical(tmp_path):
    _, trace = capture_scenario(_small_scenario())
    path = tmp_path / "run.npz"
    save_trace(trace, path)
    identical, _, _ = check_roundtrip(load_trace(path))
    assert identical


def test_replay_with_stack_override_changes_results():
    _, trace = capture_scenario(_small_scenario())
    baseline = replay_trace(trace)
    no_arq = replay_trace(trace, arq="none")
    assert no_arq.metrics.offered == baseline.metrics.offered
    assert no_arq.metrics.transmissions < baseline.metrics.transmissions


def test_replay_rejects_foreign_topology():
    _, trace = capture_scenario(_small_scenario())
    generator = TraceTrafficGenerator(trace)
    tiny = AcousticNetTopology.line(2, spacing_m=8.0, comm_range_m=10.0)
    with pytest.raises(ValueError, match="not in the topology"):
        generator.messages(tiny, np.random.default_rng(0))


def test_scenario_from_trace_requires_metadata():
    with pytest.raises(ValueError, match="no scenario metadata"):
        scenario_from_trace(Trace())


def test_check_roundtrip_requires_capture_metrics():
    scenario = _small_scenario()
    trace = synthesize_trace(
        PopulationWorkload(duration_s=30.0), scenario.build_topology(),
        meta={"scenario": scenario.to_dict()},
    )
    with pytest.raises(ValueError, match="no capture_metrics"):
        check_roundtrip(trace)


def test_committed_fixture_replays_bit_identically():
    """The regression gate: the committed trace must keep reproducing."""
    trace = load_trace(FIXTURE)
    identical, captured, replayed = check_roundtrip(trace)
    assert identical, (
        f"fixture replay diverged from its recorded capture metrics: "
        f"{captured} != {replayed}"
    )


# --------------------------------------------------------------- population
def test_population_is_deterministic_per_seed():
    workload = PopulationWorkload(duration_s=600.0, base_rate_msgs_per_s=0.05,
                                  diurnal_period_s=300.0)
    topology = _small_scenario(num_nodes=8).build_topology()
    first = workload.messages(topology, np.random.default_rng(3))
    second = workload.messages(topology, np.random.default_rng(3))
    third = workload.messages(topology, np.random.default_rng(4))
    assert first == second
    assert first != third


def test_population_messages_are_sorted_and_bounded():
    workload = PopulationWorkload(
        duration_s=600.0, base_rate_msgs_per_s=0.1,
        min_size_bits=8, max_size_bits=64,
    )
    topology = _small_scenario(num_nodes=8).build_topology()
    messages = workload.messages(topology, np.random.default_rng(1))
    assert messages
    times = [m.time_s for m in messages]
    assert times == sorted(times)
    assert all(0.0 <= t < 600.0 for t in times)
    assert all(8 <= m.size_bits <= 64 for m in messages)
    assert all(m.destination != m.source for m in messages)


def test_population_groups_partition_the_deployment():
    workload = PopulationWorkload(duration_s=60.0, group_size=3)
    topology = _small_scenario(num_nodes=8).build_topology()
    groups = workload.groups_for(topology)
    assert [len(g) for g in groups] == [3, 3, 2]
    assert [name for group in groups for name in group] == list(topology.names)


def test_population_leader_policy_routes_to_group_leader():
    workload = PopulationWorkload(
        duration_s=600.0, base_rate_msgs_per_s=0.1, group_size=4,
        leader_fraction=1.0, in_group_fraction=0.0,
    )
    topology = _small_scenario(num_nodes=8).build_topology()
    groups = workload.groups_for(topology)
    leaders = {name: group[0] for group in groups for name in group}
    for message in workload.messages(topology, np.random.default_rng(2)):
        if message.source != leaders[message.source]:
            assert message.destination == leaders[message.source]


def test_population_in_group_policy_stays_inside_the_group():
    workload = PopulationWorkload(
        duration_s=600.0, base_rate_msgs_per_s=0.1, group_size=4,
        leader_fraction=0.0, in_group_fraction=1.0,
    )
    topology = _small_scenario(num_nodes=8).build_topology()
    member_group = {
        name: set(group)
        for group in workload.groups_for(topology) for name in group
    }
    for message in workload.messages(topology, np.random.default_rng(2)):
        assert message.destination in member_group[message.source]


def test_population_diurnal_modulation_shifts_mass_to_the_peak():
    # Trough at t=0 and t=period, peak at period/2: the peak-centered
    # middle half must carry most of the mass ((pi+2)/(pi-2) ~ 4.5x at
    # full depth) with always-on sessions.
    workload = PopulationWorkload(
        duration_s=4000.0, base_rate_msgs_per_s=0.2, activity_duty=1.0,
        diurnal_period_s=4000.0, diurnal_depth=1.0,
    )
    topology = _small_scenario(num_nodes=8).build_topology()
    messages = workload.messages(topology, np.random.default_rng(9))
    middle = sum(1000.0 <= m.time_s < 3000.0 for m in messages)
    outer = len(messages) - middle
    assert middle > 2 * outer


def test_population_requires_two_users():
    topology = AcousticNetTopology.line(2, spacing_m=8.0, comm_range_m=10.0)
    workload = PopulationWorkload(
        duration_s=60.0, base_rate_msgs_per_s=1.0, activity_duty=1.0,
        sources=("n0",),
    )
    with pytest.raises(ValueError, match="at least two users"):
        workload.messages(topology, np.random.default_rng(0))


def test_population_rejects_invalid_parameters():
    with pytest.raises(ValueError, match="activity_duty"):
        PopulationWorkload(duration_s=60.0, activity_duty=0.0)
    with pytest.raises(ValueError, match="must not exceed 1"):
        PopulationWorkload(duration_s=60.0, leader_fraction=0.6,
                           in_group_fraction=0.6)
    with pytest.raises(ValueError, match="min_size_bits"):
        PopulationWorkload(duration_s=60.0, min_size_bits=100, max_size_bits=8)


def test_synthesized_trace_replays_as_offered_load():
    scenario = _small_scenario(traffic="population")
    workload = PopulationWorkload(duration_s=30.0, base_rate_msgs_per_s=0.1)
    trace = synthesize_trace(
        workload, scenario.build_topology(), seed=5,
        meta={"scenario": scenario.to_dict()},
    )
    assert trace.meta["synthesized"] is True
    assert all(e.event == "send" for e in trace.events)
    result = replay_trace(trace)
    assert result.metrics.offered == trace.num_messages


def test_population_scenario_runs_through_net_scenario():
    result = _small_scenario(traffic="population", duration_s=120.0).run()
    assert result.metrics.offered > 0


# ---------------------------------------------------------------------- qoe
def test_qoe_score_decays_with_latency_and_zeroes_losses():
    tau = 10.0
    metrics = NetworkMetrics(records=[
        DeliveryRecord(0, "a", "b", created_s=0.0, delivered_s=0.0),
        DeliveryRecord(1, "a", "b", created_s=0.0, delivered_s=tau),
        DeliveryRecord(2, "a", "b", created_s=0.0),  # lost
    ])
    report = qoe_report(metrics, latency_tau_s=tau)
    expected = (1.0 + np.exp(-1.0) + 0.0) / 3.0
    assert report.qoe_score == pytest.approx(expected)
    assert report.offered == 3 and report.delivered == 2


def test_qoe_sos_deadline_misses_count_losses_and_late_deliveries():
    metrics = NetworkMetrics(records=[
        DeliveryRecord(0, "a", "b", 0.0, delivered_s=10.0, kind="broadcast"),
        DeliveryRecord(1, "a", "c", 0.0, delivered_s=90.0, kind="broadcast"),
        DeliveryRecord(2, "a", "d", 0.0, kind="broadcast"),  # lost
        DeliveryRecord(3, "a", "b", 0.0, delivered_s=90.0, kind="data"),
    ])
    report = qoe_report(metrics, sos_deadline_s=60.0)
    assert report.sos_offered == 3
    assert report.sos_deadline_misses == 2


def test_qoe_delta_markdown_reports_percentile_rows():
    metrics = NetworkMetrics(records=[
        DeliveryRecord(i, "a", "b", 0.0, delivered_s=float(i + 1))
        for i in range(10)
    ])
    delta = qoe_delta(metrics, metrics, label_a="fast", label_b="reference")
    table = delta.to_markdown()
    assert "| fast | reference |" in table
    assert "latency p95" in table
    assert delta.pdr_delta == 0.0
    assert delta.qoe_delta == pytest.approx(0.0)


def test_compare_stacks_pairs_the_same_workload():
    _, trace = capture_scenario(_small_scenario())
    delta = compare_stacks(trace, scenario_b=_small_scenario(arq="none"))
    assert delta.a.offered == delta.b.offered == trace.num_messages
    assert delta.label_a == "calibrated+greedy+go-back-n"
    assert delta.label_b == "calibrated+greedy+none"


# ----------------------------------------------------- metrics satellites
def test_metrics_p95_latency():
    metrics = NetworkMetrics(records=[
        DeliveryRecord(i, "a", "b", 0.0, delivered_s=float(i + 1))
        for i in range(100)
    ])
    assert metrics.p95_latency_s == pytest.approx(
        np.percentile(np.arange(1.0, 101.0), 95.0)
    )
    assert np.isnan(NetworkMetrics().p95_latency_s)


def test_latency_cdf_plateaus_at_pdr():
    metrics = NetworkMetrics(records=[
        DeliveryRecord(0, "a", "b", 0.0, delivered_s=1.0),
        DeliveryRecord(1, "a", "b", 0.0, delivered_s=3.0),
        DeliveryRecord(2, "a", "b", 0.0),  # lost
        DeliveryRecord(3, "a", "b", 0.0),  # lost
    ])
    latencies, fraction = metrics.latency_cdf()
    assert latencies.tolist() == [1.0, 3.0]
    # Normalized by offered payloads: the curve tops out at the PDR.
    assert fraction.tolist() == [0.25, 0.5]
    empty_latencies, empty_fraction = NetworkMetrics().latency_cdf()
    assert empty_latencies.size == 0 and empty_fraction.size == 0


def test_run_progress_callback_receives_eta_lines():
    scenario = _small_scenario()
    lines: list[str] = []
    simulator = scenario.build_simulator()
    simulator.run(traffic=scenario.build_traffic(), progress=lines.append)
    assert lines
    assert all("net run:" in line and "eta" in line for line in lines)


# ----------------------------------------------------------------- cli
def test_cli_trace_capture_replay_roundtrip(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    assert main(["trace", "capture", "--nodes", "5", "--duration", "30",
                 "--seed", "7", "--out", str(out)]) == 0
    assert "trace written to" in capsys.readouterr().out
    assert main(["trace", "replay", "--trace", str(out),
                 "--check-roundtrip"]) == 0
    assert "roundtrip OK" in capsys.readouterr().out


def test_cli_trace_replay_with_override_and_json(tmp_path, capsys):
    out = tmp_path / "run.npz"
    report = tmp_path / "replay.json"
    assert main(["trace", "capture", "--nodes", "5", "--duration", "30",
                 "--seed", "7", "--out", str(out)]) == 0
    capsys.readouterr()
    assert main(["trace", "replay", "--trace", str(out), "--arq", "none",
                 "--json", str(report)]) == 0
    assert "message QoE score" in capsys.readouterr().out
    import json

    payload = json.loads(report.read_text())
    assert payload["scenario"]["arq"] == "none"
    assert payload["qoe"]["offered"] == payload["metrics"]["offered"]


def test_cli_trace_replay_roundtrip_rejects_overrides(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    assert main(["trace", "capture", "--nodes", "5", "--duration", "30",
                 "--seed", "7", "--out", str(out)]) == 0
    capsys.readouterr()
    assert main(["trace", "replay", "--trace", str(out), "--arq", "none",
                 "--check-roundtrip"]) == 2
    assert "drop the stack overrides" in capsys.readouterr().err


def test_cli_trace_synth_then_replay(tmp_path, capsys):
    out = tmp_path / "pop.jsonl"
    assert main(["trace", "synth", "--nodes", "8", "--duration", "120",
                 "--rate", "0.05", "--seed", "3", "--out", str(out)]) == 0
    assert "sends" in capsys.readouterr().out
    assert main(["trace", "replay", "--trace", str(out)]) == 0
    assert "delivered" in capsys.readouterr().out


def test_cli_trace_compare_reports_qoe_table(capsys):
    assert main(["trace", "compare", "--trace", str(FIXTURE),
                 "--b-link", "calibrated", "--b-arq", "none"]) == 0
    output = capsys.readouterr().out
    assert "| PDR |" in output
    assert "latency p95" in output
    assert "delta (b-a)" in output


def test_cli_trace_errors_are_reported(tmp_path, capsys):
    assert main(["trace", "replay", "--trace",
                 str(tmp_path / "missing.jsonl")]) == 2
    assert "error:" in capsys.readouterr().err
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"format": "other"}\n')
    assert main(["trace", "replay", "--trace", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err
