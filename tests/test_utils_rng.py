"""Tests for RNG handling."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


def test_ensure_rng_accepts_none():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_ensure_rng_seed_is_deterministic():
    a = ensure_rng(42).integers(0, 1000, 10)
    b = ensure_rng(42).integers(0, 1000, 10)
    np.testing.assert_array_equal(a, b)


def test_ensure_rng_passes_generator_through():
    gen = np.random.default_rng(7)
    assert ensure_rng(gen) is gen


def test_spawn_rngs_count_and_independence():
    rngs = spawn_rngs(3, 5)
    assert len(rngs) == 5
    draws = [r.integers(0, 10 ** 9) for r in rngs]
    assert len(set(draws)) > 1


def test_spawn_rngs_deterministic():
    first = [r.integers(0, 10 ** 9) for r in spawn_rngs(11, 4)]
    second = [r.integers(0, 10 ** 9) for r in spawn_rngs(11, 4)]
    assert first == second


def test_spawn_rngs_negative_count_raises():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)
