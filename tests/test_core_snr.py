"""Tests for per-subcarrier channel / SNR estimation."""

import numpy as np
import pytest

from repro.core.config import OFDMConfig
from repro.core.preamble import PreambleDetector, PreambleGenerator
from repro.core.snr import ChannelEstimate, estimate_channel_and_snr


@pytest.fixture(scope="module")
def generator():
    return PreambleGenerator()


def _received_preamble(generator, noise_std, rng, gain=1.0, notch_bin=None):
    """Build a received preamble: optional per-bin gain/notch plus noise."""
    config = generator.ofdm_config
    waveform = generator.waveform() * gain
    if notch_bin is not None:
        # Remove one subcarrier from the waveform in the frequency domain.
        detector = PreambleDetector(generator)
        symbols = detector.extract_symbols(waveform, 0)
        spectra = np.fft.rfft(symbols, axis=1)
        spectra[:, notch_bin] *= 0.01
        symbols = np.fft.irfft(spectra, n=config.symbol_length, axis=1)
        return symbols + noise_std * rng.standard_normal(symbols.shape)
    detector = PreambleDetector(generator)
    received = waveform + noise_std * rng.standard_normal(waveform.size)
    return detector.extract_symbols(received, 0)


def test_estimate_shape_and_fields(generator, rng):
    symbols = _received_preamble(generator, 0.01, rng)
    estimate = estimate_channel_and_snr(symbols, generator.reference_bin_values,
                                        generator.ofdm_config)
    assert isinstance(estimate, ChannelEstimate)
    assert estimate.num_bins == 60
    assert estimate.snr_db.shape == (60,)
    assert estimate.response.shape == (60,)
    assert estimate.noise_power.shape == (60,)


def test_high_snr_for_clean_preamble(generator, rng):
    symbols = _received_preamble(generator, 1e-4, rng)
    estimate = estimate_channel_and_snr(symbols, generator.reference_bin_values,
                                        generator.ofdm_config)
    assert np.min(estimate.snr_db) > 30.0


def test_snr_tracks_noise_level(generator, rng):
    quiet = _received_preamble(generator, 0.01, rng)
    loud = _received_preamble(generator, 0.1, rng)
    config = generator.ofdm_config
    ref = generator.reference_bin_values
    snr_quiet = np.median(estimate_channel_and_snr(quiet, ref, config).snr_db)
    snr_loud = np.median(estimate_channel_and_snr(loud, ref, config).snr_db)
    # 10x noise amplitude = 20 dB SNR difference.
    assert snr_quiet - snr_loud == pytest.approx(20.0, abs=3.0)


def test_notched_bin_has_low_snr(generator, rng):
    notch_bin = 40
    symbols = _received_preamble(generator, 0.01, rng, notch_bin=notch_bin)
    estimate = estimate_channel_and_snr(symbols, generator.reference_bin_values,
                                        generator.ofdm_config)
    offset = notch_bin - generator.ofdm_config.first_data_bin
    others = np.delete(estimate.snr_db, offset)
    assert estimate.snr_db[offset] < np.median(others) - 15.0


def test_channel_gain_is_recovered(generator, rng):
    symbols = _received_preamble(generator, 1e-4, rng, gain=0.25)
    estimate = estimate_channel_and_snr(symbols, generator.reference_bin_values,
                                        generator.ofdm_config)
    assert np.median(np.abs(estimate.response)) == pytest.approx(0.25, rel=0.05)


def test_snr_for_band_slicing(generator, rng):
    symbols = _received_preamble(generator, 0.01, rng)
    estimate = estimate_channel_and_snr(symbols, generator.reference_bin_values,
                                        generator.ofdm_config)
    config = generator.ofdm_config
    band = estimate.snr_for_band(config.first_data_bin + 5, config.first_data_bin + 14)
    assert band.size == 10
    np.testing.assert_allclose(band, estimate.snr_db[5:15])


def test_input_validation(generator):
    config = generator.ofdm_config
    with pytest.raises(ValueError):
        estimate_channel_and_snr(np.zeros((8, 10)), generator.reference_bin_values, config)
    with pytest.raises(ValueError):
        estimate_channel_and_snr(np.zeros((8, config.symbol_length)), np.ones(10), config)
