"""Tests for ambient noise synthesis."""

import numpy as np
import pytest

from repro.channel.noise import AmbientNoiseModel
from repro.dsp.spectrum import band_power


def test_generate_length_and_determinism():
    model = AmbientNoiseModel(level_db=-40.0)
    a = model.generate(4800, 48000.0, rng=5)
    b = model.generate(4800, 48000.0, rng=5)
    assert a.size == 4800
    np.testing.assert_array_equal(a, b)


def test_generate_zero_samples():
    assert AmbientNoiseModel().generate(0, 48000.0).size == 0


def test_overall_level_matches_request():
    model = AmbientNoiseModel(level_db=-30.0, impulsive_rate_hz=0.0)
    noise = model.generate(96000, 48000.0, rng=1)
    rms_db = 20 * np.log10(np.sqrt(np.mean(noise ** 2)))
    assert rms_db == pytest.approx(-30.0, abs=1.0)


def test_level_difference_between_models():
    quiet = AmbientNoiseModel(level_db=-45.0).generate(48000, 48000.0, rng=2)
    loud = AmbientNoiseModel(level_db=-36.0).generate(48000, 48000.0, rng=2)
    ratio_db = 20 * np.log10(np.std(loud) / np.std(quiet))
    assert ratio_db == pytest.approx(9.0, abs=1.0)


def test_low_frequency_emphasis():
    """Noise below 1 kHz must be stronger than between 1-4 kHz (Fig. 4)."""
    model = AmbientNoiseModel(level_db=-40.0, impulsive_rate_hz=0.0)
    noise = model.generate(96000, 48000.0, rng=3)
    low = band_power(noise, 48000.0, 100.0, 1000.0)
    mid = band_power(noise, 48000.0, 1000.0, 4000.0)
    high = band_power(noise, 48000.0, 8000.0, 16000.0)
    assert low > mid
    assert mid > high


def test_spectral_shape_db_features():
    model = AmbientNoiseModel()
    freqs = np.array([200.0, 2500.0, 10000.0])
    shape = model.spectral_shape_db(freqs)
    assert shape[0] > shape[1] > shape[2]


def test_impulsive_component_adds_spikes():
    base = AmbientNoiseModel(level_db=-40.0, impulsive_rate_hz=0.0)
    spiky = AmbientNoiseModel(level_db=-40.0, impulsive_rate_hz=20.0, impulsive_gain_db=20.0)
    calm = base.generate(48000, 48000.0, rng=4)
    bursty = spiky.generate(48000, 48000.0, rng=4)
    assert np.max(np.abs(bursty)) > 3 * np.max(np.abs(calm))


def test_with_level_returns_adjusted_copy():
    model = AmbientNoiseModel(level_db=-40.0, impulsive_rate_hz=1.0)
    adjusted = model.with_level(-30.0)
    assert adjusted.level_db == -30.0
    assert adjusted.impulsive_rate_hz == 1.0
    assert model.level_db == -40.0


def test_invalid_sample_rate_rejected():
    with pytest.raises(ValueError):
        AmbientNoiseModel().generate(100, 0.0)
