"""Tests for the end-to-end underwater acoustic channel."""

import numpy as np
import pytest

from repro.channel.channel import UnderwaterAcousticChannel
from repro.channel.motion import FAST_MOTION, STATIC_MOTION
from repro.channel.multipath import ImageMethodGeometry, MultipathModel
from repro.channel.noise import AmbientNoiseModel
from repro.devices.case import HARD_CASE, SOFT_POUCH
from repro.devices.models import GALAXY_S9, PIXEL_4
from repro.dsp.chirp import lfm_chirp


def _channel(distance=5.0, noise_db=-45.0, motion=STATIC_MOTION, **kwargs):
    geometry = ImageMethodGeometry(
        water_depth_m=5.0, tx_depth_m=1.0, rx_depth_m=1.0, horizontal_range_m=distance
    )
    multipath = MultipathModel(geometry=geometry, seed=3)
    return UnderwaterAcousticChannel(
        multipath=multipath,
        noise=AmbientNoiseModel(level_db=noise_db),
        motion=motion,
        seed=3,
        **kwargs,
    )


def test_transmit_output_longer_than_input_by_channel_tail(rng):
    channel = _channel()
    x = rng.standard_normal(4800)
    out = channel.transmit(x, rng)
    assert out.samples.size > x.size
    assert np.all(np.isfinite(out.samples))


def test_transmit_rejects_empty_waveform(rng):
    with pytest.raises(ValueError):
        _channel().transmit(np.array([]), rng)


def test_received_level_decreases_with_distance(rng):
    x = lfm_chirp(1000, 4000, 0.2, 48000)
    near = _channel(distance=5.0).transmit(x, np.random.default_rng(0), include_noise=False)
    far = _channel(distance=25.0).transmit(x, np.random.default_rng(0), include_noise=False)
    assert np.std(near.samples) > 2 * np.std(far.samples)


def test_snr_decreases_with_distance(rng):
    x = lfm_chirp(1000, 4000, 0.2, 48000)
    near = _channel(distance=5.0, noise_db=-40.0).transmit(x, np.random.default_rng(1))
    far = _channel(distance=25.0, noise_db=-40.0).transmit(x, np.random.default_rng(1))
    assert near.in_band_snr_db > far.in_band_snr_db + 5.0


def test_noise_free_transmission_has_high_snr(rng):
    x = lfm_chirp(1000, 4000, 0.1, 48000)
    out = _channel().transmit(x, rng, include_noise=False)
    assert out.in_band_snr_db > 100.0


def test_static_motion_has_no_doppler(rng):
    out = _channel().transmit(np.ones(2000), rng)
    assert out.doppler == pytest.approx(1.0)
    assert out.motion.radial_speed_m_s == 0.0


def test_fast_motion_produces_doppler_and_drift(rng):
    channel = _channel(motion=FAST_MOTION)
    dopplers = []
    for seed in range(8):
        out = channel.transmit(np.ones(9600), np.random.default_rng(seed))
        dopplers.append(out.doppler)
    assert any(abs(d - 1.0) > 1e-5 for d in dopplers)


def test_hard_case_attenuates_more_than_pouch(rng):
    x = lfm_chirp(1000, 4000, 0.2, 48000)
    soft = _channel(tx_case=SOFT_POUCH, rx_case=SOFT_POUCH).transmit(
        x, np.random.default_rng(2), include_noise=False)
    hard = _channel(tx_case=HARD_CASE, rx_case=HARD_CASE).transmit(
        x, np.random.default_rng(2), include_noise=False)
    assert np.std(soft.samples) > 1.5 * np.std(hard.samples)


def test_case_depth_rating_enforced():
    geometry = ImageMethodGeometry(
        water_depth_m=15.0, tx_depth_m=12.0, rx_depth_m=12.0, horizontal_range_m=5.0
    )
    multipath = MultipathModel(geometry=geometry, seed=1)
    with pytest.raises(ValueError):
        UnderwaterAcousticChannel(multipath=multipath, noise=AmbientNoiseModel(),
                                  tx_case=SOFT_POUCH, rx_case=SOFT_POUCH)
    # The hard case is rated to 15 m and must be accepted.
    UnderwaterAcousticChannel(multipath=multipath, noise=AmbientNoiseModel(),
                              tx_case=HARD_CASE, rx_case=HARD_CASE)


def test_orientation_reduces_received_level(rng):
    x = lfm_chirp(1000, 4000, 0.2, 48000)
    facing = _channel(orientation_deg=0.0).transmit(x, np.random.default_rng(3), include_noise=False)
    away = _channel(orientation_deg=180.0).transmit(x, np.random.default_rng(3), include_noise=False)
    assert np.std(facing.samples) > np.std(away.samples)


def test_end_to_end_response_is_frequency_selective():
    channel = _channel()
    freqs = np.arange(1000.0, 4000.0, 50.0)
    response = channel.end_to_end_response_db(freqs)
    assert response.shape == freqs.shape
    assert response.max() - response.min() > 8.0


def test_reverse_channel_differs_from_forward():
    """Underwater reciprocity is broken (Fig. 3d)."""
    forward = _channel(tx_device=GALAXY_S9, rx_device=GALAXY_S9)
    backward = forward.reverse(seed=9)
    freqs = np.arange(1000.0, 4000.0, 50.0)
    diff = forward.end_to_end_response_db(freqs) - backward.end_to_end_response_db(freqs)
    assert np.max(np.abs(diff)) > 3.0
    # Devices swap between the directions.
    assert backward.tx_device is forward.rx_device
    assert backward.rx_device is forward.tx_device


def test_randomize_changes_small_scale_channel():
    channel = _channel()
    freqs = np.arange(1000.0, 4000.0, 50.0)
    before = channel.end_to_end_response_db(freqs)
    channel.randomize(rng=5)
    after = channel.end_to_end_response_db(freqs)
    assert not np.allclose(before, after, atol=0.5)
    # The bulk geometry stays roughly the same.
    assert channel.distance_m == pytest.approx(5.0, abs=1.0)


def test_different_device_pairs_have_different_responses():
    freqs = np.arange(1000.0, 4000.0, 50.0)
    s9_pair = _channel(tx_device=GALAXY_S9, rx_device=GALAXY_S9)
    mixed_pair = _channel(tx_device=PIXEL_4, rx_device=GALAXY_S9)
    diff = s9_pair.end_to_end_response_db(freqs) - mixed_pair.end_to_end_response_db(freqs)
    assert np.max(np.abs(diff)) > 2.0


def test_fixed_gain_budget_components():
    channel = _channel(orientation_deg=180.0, extra_gain_db=-3.0)
    expected = (GALAXY_S9.source_level_db
                + GALAXY_S9.orientation_gain_db(180.0)
                - SOFT_POUCH.attenuation_db * 2
                - 3.0)
    assert channel.fixed_gain_db() == pytest.approx(expected)
