"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.app.codec import MessageCodec
from repro.core.adaptation import select_frequency_band
from repro.core.config import OFDMConfig, ProtocolConfig
from repro.core.feedback import FeedbackCodec
from repro.core.ofdm import OFDMModulator
from repro.core.tones import ToneCodec
from repro.dsp.resample import fractional_delay
from repro.dsp.sequences import zadoff_chu
from repro.fec.convolutional import PuncturedConvolutionalCode
from repro.fec.interleaver import SubcarrierInterleaver
from repro.utils.units import db_to_power_ratio, power_ratio_to_db


CONFIG = OFDMConfig()
PROTOCOL = ProtocolConfig()
CODE = PuncturedConvolutionalCode()
TONE_CODEC = ToneCodec()
FEEDBACK_CODEC = FeedbackCodec()
MODULATOR = OFDMModulator(CONFIG)
MESSAGE_CODEC = MessageCodec()

_slow = settings(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------- units
@given(st.floats(min_value=-120.0, max_value=120.0))
def test_db_power_roundtrip_property(db):
    assert power_ratio_to_db(db_to_power_ratio(db)) == pytest.approx(db, abs=1e-6)


# ------------------------------------------------------------------- FEC
@_slow
@given(st.lists(st.integers(0, 1), min_size=2, max_size=64))
def test_convolutional_code_roundtrip_property(bits):
    if len(bits) % 2 == 1:
        bits = bits + [0]
    coded = CODE.encode(bits)
    assert coded.size == CODE.coded_length(len(bits))
    decoded = CODE.decode(coded, num_data_bits=len(bits))
    np.testing.assert_array_equal(decoded, np.asarray(bits))


@_slow
@given(st.lists(st.integers(0, 1), min_size=16, max_size=16),
       st.integers(min_value=0, max_value=15))
def test_single_coded_bit_flip_is_corrected(bits, flip_position):
    """Early coded-bit flips are always corrected by the unterminated code.

    (Flips in the final constraint length of an *unterminated* stream have
    weaker protection; the terminated variant is tested below.)
    """
    coded = CODE.encode(bits).astype(float)
    coded[flip_position] = 1.0 - coded[flip_position]
    decoded = CODE.decode(coded, num_data_bits=16)
    np.testing.assert_array_equal(decoded, np.asarray(bits))


@_slow
@given(st.lists(st.integers(0, 1), min_size=16, max_size=16),
       st.integers(min_value=0, max_value=23))
def test_single_flip_corrected_by_terminated_code(bits, flip_position):
    code = PuncturedConvolutionalCode(terminate=True)
    coded = code.encode(bits).astype(float)
    position = min(flip_position, coded.size - 1)
    coded[position] = 1.0 - coded[position]
    decoded = code.decode(coded, num_data_bits=16)
    np.testing.assert_array_equal(decoded, np.asarray(bits))


# ------------------------------------------------------------ interleaver
@_slow
@given(st.integers(min_value=1, max_value=60),
       st.integers(min_value=0, max_value=200))
def test_interleaver_roundtrip_property(bins, num_bits):
    interleaver = SubcarrierInterleaver(bins)
    rng = np.random.default_rng(num_bits)
    bits = rng.integers(0, 2, num_bits)
    grid = interleaver.interleave(bits)
    assert grid.shape[0] == interleaver.num_symbols(num_bits)
    recovered = interleaver.deinterleave(grid, num_bits)
    np.testing.assert_array_equal(recovered, bits)


@given(st.integers(min_value=1, max_value=60))
def test_interleaver_order_is_permutation_property(bins):
    order = SubcarrierInterleaver(bins).within_symbol_order
    assert sorted(order.tolist()) == list(range(bins))


# ------------------------------------------------------------- adaptation
@_slow
@given(st.lists(st.floats(min_value=-20.0, max_value=40.0),
                min_size=60, max_size=60))
def test_band_selection_invariants_property(snr_values):
    snr = np.array(snr_values)
    band = select_frequency_band(snr, CONFIG, PROTOCOL)
    # Invariants: contiguity, bounds, and the SNR constraint when satisfied.
    assert CONFIG.first_data_bin <= band.start_bin <= band.end_bin <= CONFIG.last_data_bin
    assert band.num_bins == band.end_bin - band.start_bin + 1
    if band.satisfied:
        bonus = PROTOCOL.conservative_lambda * 10.0 * np.log10(60 / band.num_bins)
        selected = snr[band.start_offset:band.end_offset + 1]
        assert np.all(selected + bonus > PROTOCOL.snr_threshold_db)


@_slow
@given(st.lists(st.floats(min_value=-20.0, max_value=40.0),
                min_size=60, max_size=60))
def test_band_selection_maximality_property(snr_values):
    """No strictly wider window may satisfy the constraint."""
    snr = np.array(snr_values)
    band = select_frequency_band(snr, CONFIG, PROTOCOL)
    if not band.satisfied or band.num_bins == 60:
        return
    wider = band.num_bins + 1
    bonus = PROTOCOL.conservative_lambda * 10.0 * np.log10(60 / wider)
    windows = np.lib.stride_tricks.sliding_window_view(snr, wider)
    assert not np.any(windows.min(axis=1) + bonus > PROTOCOL.snr_threshold_db)


# ---------------------------------------------------------------- OFDM / tones
@_slow
@given(st.integers(min_value=0, max_value=59))
def test_tone_codec_roundtrip_property(device_id):
    symbol = TONE_CODEC.encode_id(device_id)
    assert TONE_CODEC.decode(symbol).value == device_id


@_slow
@given(st.integers(min_value=20, max_value=79), st.integers(min_value=20, max_value=79))
def test_feedback_roundtrip_property(bin_a, bin_b):
    # Adjacent end bins are indistinguishable from spectral leakage and are
    # excluded by the decoder design; equal bins (single-tone feedback) and
    # all other separations must round-trip exactly.
    assume(abs(bin_a - bin_b) != 1)
    symbol = FEEDBACK_CODEC.encode(bin_a, bin_b)
    padded = np.concatenate([np.zeros(100), symbol, np.zeros(1200)])
    result = FEEDBACK_CODEC.decode(padded)
    assert result.found
    assert result.start_bin == min(bin_a, bin_b)
    assert result.end_bin == max(bin_a, bin_b)


@_slow
@given(st.integers(min_value=1, max_value=60))
def test_ofdm_power_normalization_property(num_bins):
    bins = CONFIG.data_bins[:num_bins]
    values = np.ones(num_bins, dtype=complex)
    symbol = MODULATOR.modulate(values, bins, add_cyclic_prefix=False)
    assert np.mean(symbol ** 2) == pytest.approx(1.0, rel=1e-6)


# ---------------------------------------------------------------- sequences
@given(st.integers(min_value=2, max_value=128), st.integers(min_value=1, max_value=64))
def test_zadoff_chu_constant_amplitude_property(length, root):
    seq = zadoff_chu(length, root)
    assert seq.size == length
    np.testing.assert_allclose(np.abs(seq), 1.0, atol=1e-10)


# ---------------------------------------------------------------- resample
@_slow
@given(st.floats(min_value=0.0, max_value=20.0))
def test_fractional_delay_conserves_peak_location_property(delay):
    x = np.zeros(64)
    x[10] = 1.0
    delayed = fractional_delay(x, delay)
    if 10 + delay <= 62:
        assert abs(int(np.argmax(delayed)) - (10 + delay)) <= 1.0


# ------------------------------------------------------------------- codec
@_slow
@given(st.integers(min_value=0, max_value=239),
       st.integers(min_value=0, max_value=239))
def test_message_codec_roundtrip_property(first, second):
    bits = MESSAGE_CODEC.encode_ids([first, second])
    assert bits.size == 16
    assert MESSAGE_CODEC.decode_ids(bits) == [first, second]


@_slow
@given(st.lists(st.integers(0, 239), min_size=1, max_size=2))
def test_message_codec_roundtrip_any_slot_count_property(ids):
    # One-message packets pad the second slot with the reserved empty
    # value, which must vanish again on decode.  (Id 255 itself is the
    # empty marker and excluded from the catalog range by construction.)
    decoded = MESSAGE_CODEC.decode_ids(MESSAGE_CODEC.encode_ids(ids))
    assert decoded == ids


# ----------------------------------------------------- randomized round trips
# Parametrized fuzzing: every seed draws fresh random lengths and payloads,
# and every round trip must be bit-exact -- these are the noiseless
# ("infinite SNR") recovery guarantees the validation harness leans on.

@pytest.mark.parametrize("seed", range(5))
def test_fec_roundtrip_fuzz(seed):
    rng = np.random.default_rng(1000 + seed)
    for _ in range(5):
        # The rate-2/3 puncturing works on bit pairs, so lengths are even.
        n = 2 * int(rng.integers(1, 60))
        bits = rng.integers(0, 2, n)
        for terminate in (False, True):
            code = PuncturedConvolutionalCode(terminate=terminate)
            decoded = code.decode(code.encode(bits), num_data_bits=n)
            np.testing.assert_array_equal(decoded, bits,
                                          err_msg=f"seed={seed} n={n} "
                                                  f"terminate={terminate}")


@_slow
@given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=2**31 - 1))
def test_ofdm_modulate_demodulate_roundtrip_property(num_bins, seed):
    """BPSK values survive modulate_many -> demodulate_many sign-exactly."""
    rng = np.random.default_rng(seed)
    bins = CONFIG.data_bins[:num_bins]
    num_symbols = int(rng.integers(1, 5))
    values = rng.choice([-1.0, 1.0], size=(num_symbols, num_bins)).astype(complex)
    symbols = MODULATOR.modulate_many(values, bins, add_cyclic_prefix=True)
    recovered = MODULATOR.demodulate_many(
        symbols.ravel(), num_symbols, bins, has_cyclic_prefix=True
    )
    assert recovered.shape == values.shape
    # Power normalization scales each symbol; signs (the information) must
    # be recovered exactly and imaginary leakage stay at FFT rounding level.
    assert np.all(np.sign(recovered.real) == values.real)
    assert np.max(np.abs(recovered.imag)) < 1e-9 * np.max(np.abs(recovered.real))


@given(st.integers(min_value=1, max_value=60))
def test_ofdm_single_symbol_matches_batch_property(num_bins):
    rng = np.random.default_rng(num_bins)
    bins = CONFIG.data_bins[:num_bins]
    values = rng.choice([-1.0, 1.0], size=num_bins).astype(complex)
    single = MODULATOR.modulate(values, bins, add_cyclic_prefix=True)
    batch = MODULATOR.modulate_many(values[None, :], bins, add_cyclic_prefix=True)
    np.testing.assert_array_equal(single, batch[0])


def _random_band(rng):
    from repro.core.adaptation import selection_from_bins

    start = int(rng.integers(CONFIG.first_data_bin, CONFIG.last_data_bin + 1))
    end = int(rng.integers(start, CONFIG.last_data_bin + 1))
    return selection_from_bins(start, end, CONFIG)


@pytest.mark.parametrize("seed", range(4))
def test_data_pipeline_roundtrip_fuzz(seed):
    """encode -> decode over a clean channel is bit-exact for random
    payload lengths and random bands (the high-SNR recovery guarantee)."""
    from repro.core.coding import DataDecoder, DataEncoder

    encoder = DataEncoder(CONFIG, PROTOCOL)
    decoder = DataDecoder(CONFIG, PROTOCOL)
    rng = np.random.default_rng(2000 + seed)
    for _ in range(3):
        n = int(rng.integers(1, 41))
        payload = rng.integers(0, 2, n)
        band = _random_band(rng)
        packet = encoder.encode(payload, band)
        decoded = decoder.decode(packet.waveform, band, n, apply_bandpass=False)
        np.testing.assert_array_equal(
            decoded.bits, payload,
            err_msg=f"seed={seed} n={n} band=({band.start_bin},{band.end_bin})",
        )
        # The coded stream itself must also be error-free on a clean link.
        np.testing.assert_array_equal(
            decoded.hard_coded_bits, encoder._code.encode(payload)
        )


@pytest.mark.parametrize("use_differential", [True, False])
@pytest.mark.parametrize("use_interleaving", [True, False])
@pytest.mark.parametrize("use_equalizer", [True, False])
def test_data_pipeline_roundtrip_all_toggles(use_differential, use_interleaving,
                                             use_equalizer):
    """Every ablation combination (Fig. 14 / Table 2 knobs) round-trips."""
    from repro.core.coding import DataDecoder, DataEncoder

    encoder = DataEncoder(CONFIG, PROTOCOL, use_differential=use_differential,
                          use_interleaving=use_interleaving)
    decoder = DataDecoder(CONFIG, PROTOCOL, use_differential=use_differential,
                          use_interleaving=use_interleaving,
                          use_equalizer=use_equalizer)
    rng = np.random.default_rng(17)
    payload = rng.integers(0, 2, 16)
    band = _random_band(rng)
    packet = encoder.encode(payload, band)
    decoded = decoder.decode(packet.waveform, band, 16, apply_bandpass=False)
    np.testing.assert_array_equal(decoded.bits, payload)


@pytest.mark.parametrize("seed", range(3))
def test_message_to_waveform_roundtrip_fuzz(seed):
    """The full application chain: message ids -> payload bits -> FEC ->
    OFDM waveform -> decode -> message ids, bit-exact on a clean link."""
    from repro.core.coding import DataDecoder, DataEncoder

    encoder = DataEncoder(CONFIG, PROTOCOL)
    decoder = DataDecoder(CONFIG, PROTOCOL)
    rng = np.random.default_rng(3000 + seed)
    ids = [int(v) for v in rng.integers(0, 240, rng.integers(1, 3))]
    payload = MESSAGE_CODEC.encode_ids(ids)
    band = _random_band(rng)
    packet = encoder.encode(payload, band)
    decoded = decoder.decode(packet.waveform, band, payload.size,
                             apply_bandpass=False)
    assert MESSAGE_CODEC.decode_ids(decoded.bits) == ids
