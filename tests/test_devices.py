"""Tests for device and waterproof-case models."""

import numpy as np
import pytest

from repro.devices.case import (
    AIR_FILLED_POUCH,
    CASE_CATALOG,
    HARD_CASE,
    NO_CASE,
    SOFT_POUCH,
)
from repro.devices.models import (
    DEVICE_CATALOG,
    GALAXY_S9,
    GALAXY_WATCH_4,
    ONEPLUS_8_PRO,
    PIXEL_4,
)
from repro.devices.response import FrequencyResponse, ResponseNotch, flat_response


def test_catalog_contains_the_four_paper_devices():
    assert set(DEVICE_CATALOG) == {"galaxy_s9", "pixel_4", "oneplus_8_pro", "galaxy_watch_4"}


def test_device_responses_differ_between_models():
    freqs = np.arange(1000.0, 4000.0, 50.0)
    s9 = GALAXY_S9.speaker_response.gain_db(freqs)
    pixel = PIXEL_4.speaker_response.gain_db(freqs)
    oneplus = ONEPLUS_8_PRO.speaker_response.gain_db(freqs)
    assert np.max(np.abs(s9 - pixel)) > 3.0
    assert np.max(np.abs(s9 - oneplus)) > 3.0


def test_responses_roll_off_above_4khz():
    """Fig. 3a: the response diminishes above 4 kHz on all devices."""
    for device in DEVICE_CATALOG.values():
        in_band = device.speaker_response.mean_gain_db(2000.0, 3500.0)
        above = device.speaker_response.mean_gain_db(6000.0, 8000.0)
        assert above < in_band - 8.0


def test_responses_have_in_band_notches():
    freqs = np.arange(1000.0, 4000.0, 10.0)
    for device in (GALAXY_S9, PIXEL_4, ONEPLUS_8_PRO):
        gains = device.speaker_response.gain_db(freqs)
        assert gains.max() - gains.min() > 8.0


def test_watch_is_quieter_than_phones():
    assert GALAXY_WATCH_4.source_level_db < GALAXY_S9.source_level_db
    assert (GALAXY_WATCH_4.speaker_response.mean_gain_db()
            < GALAXY_S9.speaker_response.mean_gain_db())


def test_orientation_gain_monotone_and_bounded():
    angles = [0, 45, 90, 135, 180]
    gains = [GALAXY_S9.orientation_gain_db(a) for a in angles]
    assert gains[0] == pytest.approx(0.0)
    assert all(b <= a for a, b in zip(gains, gains[1:]))
    assert gains[-1] == pytest.approx(-GALAXY_S9.directivity_loss_at_180_db)


def test_orientation_gain_symmetric_and_periodic():
    assert GALAXY_S9.orientation_gain_db(90) == pytest.approx(GALAXY_S9.orientation_gain_db(-90))
    assert GALAXY_S9.orientation_gain_db(270) == pytest.approx(GALAXY_S9.orientation_gain_db(90))


def test_frequency_response_interpolation_and_notch():
    response = FrequencyResponse(
        anchor_frequencies_hz=(1000.0, 4000.0),
        anchor_gains_db=(0.0, 0.0),
        notches=(ResponseNotch(2000.0, 12.0, 200.0),),
    )
    assert response.gain_db(2000.0) == pytest.approx(-12.0, abs=0.5)
    assert response.gain_db(3000.0) == pytest.approx(0.0, abs=0.5)


def test_frequency_response_validation():
    with pytest.raises(ValueError):
        FrequencyResponse((1000.0,), (0.0,))
    with pytest.raises(ValueError):
        FrequencyResponse((2000.0, 1000.0), (0.0, 0.0))
    with pytest.raises(ValueError):
        FrequencyResponse((1000.0, 2000.0), (0.0,))


def test_flat_response_is_flat():
    response = flat_response(-3.0)
    freqs = np.array([100.0, 1000.0, 10000.0])
    np.testing.assert_allclose(response.gain_db(freqs), -3.0)


def test_combined_response_adds_gains():
    a = flat_response(-2.0)
    b = flat_response(-3.0)
    combined = a.combined_with(b)
    assert combined.gain_db(2000.0) == pytest.approx(-5.0, abs=0.1)


def test_response_apply_scales_waveform():
    response = flat_response(-20.0)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(4800)
    y = response.apply(x)
    assert y.size == x.size
    # -20 dB is a factor of 10 in amplitude (allowing for filter edge effects).
    assert np.std(y[500:-500]) == pytest.approx(0.1 * np.std(x[500:-500]), rel=0.2)


def test_case_catalog_and_attenuations():
    assert set(CASE_CATALOG) == {"none", "soft_pouch", "air_filled_pouch", "hard_case"}
    assert HARD_CASE.attenuation_db > SOFT_POUCH.attenuation_db
    assert NO_CASE.attenuation_db == 0.0


def test_hard_case_rated_deeper_than_pouch():
    assert HARD_CASE.rated_depth_m == pytest.approx(15.0)
    assert HARD_CASE.rated_depth_m > SOFT_POUCH.rated_depth_m


def test_case_depth_check():
    SOFT_POUCH.check_depth(2.0)
    with pytest.raises(ValueError):
        SOFT_POUCH.check_depth(12.0)
    HARD_CASE.check_depth(12.0)


def test_air_filled_pouch_similar_average_power_in_band():
    """Fig. 18: air in the case changes the fine structure, not the 1-4 kHz average."""
    freqs = np.arange(1000.0, 4000.0, 25.0)
    expelled = SOFT_POUCH.total_gain_db(freqs)
    air = AIR_FILLED_POUCH.total_gain_db(freqs)
    assert abs(np.mean(expelled) - np.mean(air)) < 2.0
    assert np.max(np.abs(expelled - air)) > 1.0
