"""Tests for the OFDM and protocol configuration objects."""

import numpy as np
import pytest

from repro.core.config import OFDMConfig, ProtocolConfig


def test_default_matches_paper_parameters():
    config = OFDMConfig()
    assert config.sample_rate_hz == 48000.0
    assert config.symbol_length == 960
    assert config.cyclic_prefix_length == 67
    assert config.subcarrier_spacing_hz == pytest.approx(50.0)
    assert config.symbol_duration_s == pytest.approx(0.020)
    assert config.num_data_bins == 60
    assert config.first_data_bin == 20
    assert config.last_data_bin == 79


def test_cyclic_prefix_overhead_close_to_seven_percent():
    config = OFDMConfig()
    overhead = config.cyclic_prefix_length / config.symbol_length
    assert overhead == pytest.approx(0.069, abs=0.002)


def test_data_bin_frequencies_span_band():
    config = OFDMConfig()
    freqs = config.data_bin_frequencies_hz
    assert freqs[0] == pytest.approx(1000.0)
    assert freqs[-1] == pytest.approx(3950.0)
    assert np.all(np.diff(freqs) == pytest.approx(50.0))


def test_frequency_bin_roundtrip():
    config = OFDMConfig()
    assert config.frequency_to_bin(config.bin_frequency_hz(42)) == 42


def test_with_subcarrier_spacing_25hz():
    config = OFDMConfig().with_subcarrier_spacing(25.0)
    assert config.symbol_length == 1920
    assert config.subcarrier_spacing_hz == pytest.approx(25.0)
    assert config.num_data_bins == 120
    # The cyclic prefix keeps roughly the same fractional overhead.
    assert config.cyclic_prefix_length / config.symbol_length == pytest.approx(67 / 960, rel=0.05)


def test_with_subcarrier_spacing_10hz():
    config = OFDMConfig().with_subcarrier_spacing(10.0)
    assert config.symbol_length == 4800
    assert config.num_data_bins == 300


def test_with_band_changes_bins():
    config = OFDMConfig().with_band(1000.0, 2500.0)
    assert config.num_data_bins == 30


def test_invalid_configs_raise():
    with pytest.raises(ValueError):
        OFDMConfig(band_low_hz=4000.0, band_high_hz=1000.0)
    with pytest.raises(ValueError):
        OFDMConfig(band_high_hz=30000.0)
    with pytest.raises(ValueError):
        OFDMConfig(symbol_length=-1)
    with pytest.raises(ValueError):
        OFDMConfig(cyclic_prefix_length=-1)
    with pytest.raises(ValueError):
        OFDMConfig().with_subcarrier_spacing(-5.0)


def test_protocol_defaults_match_paper():
    protocol = ProtocolConfig()
    assert protocol.num_preamble_symbols == 8
    assert protocol.preamble_pn_signs == (-1, 1, 1, 1, 1, 1, -1, 1)
    assert protocol.snr_threshold_db == 7.0
    assert protocol.conservative_lambda == 0.8
    assert protocol.equalizer_num_taps == 480
    assert protocol.payload_bits == 16
    assert protocol.code_rate == pytest.approx(2.0 / 3.0)
    assert protocol.constraint_length == 7
    assert protocol.carrier_sense_interval_s == pytest.approx(0.08)
    assert protocol.ack_dominance_threshold == pytest.approx(0.2)


def test_protocol_validation():
    with pytest.raises(ValueError):
        ProtocolConfig(num_preamble_symbols=4)  # sign pattern mismatch
    with pytest.raises(ValueError):
        ProtocolConfig(conservative_lambda=0.0)
    with pytest.raises(ValueError):
        ProtocolConfig(snr_threshold_db=-1.0)
    with pytest.raises(ValueError):
        ProtocolConfig(sliding_correlation_threshold=1.5)
    with pytest.raises(ValueError):
        ProtocolConfig(ack_dominance_threshold=0.0)
    with pytest.raises(ValueError):
        ProtocolConfig(ack_dominance_threshold=1.0)


def test_pn_signs_array():
    protocol = ProtocolConfig()
    np.testing.assert_array_equal(protocol.pn_signs_array,
                                  np.array([-1, 1, 1, 1, 1, 1, -1, 1], dtype=float))


def test_config_is_hashable_and_frozen():
    config = OFDMConfig()
    with pytest.raises(Exception):
        config.symbol_length = 100  # type: ignore[misc]
    assert hash(config) == hash(OFDMConfig())
