"""Tests for the streaming sweep service (repro.experiments.service)."""

import warnings

import pytest

import repro.experiments.runner as runner_module
from repro.experiments import (
    ColumnarResultSet,
    ExperimentRunner,
    ResultSet,
    Scenario,
    Sweep,
    SweepService,
)
from repro.experiments.runner import CacheMissWarning


def _scenarios(n=3, packets=2, seed=11):
    return (
        Sweep(Scenario(site="bridge", num_packets=packets))
        .over(distance_m=[4.0 + i for i in range(n)])
        .seeded(seed)
        .scenarios()
    )


def _complete(service, scenarios, **kwargs):
    job = service.submit(scenarios, **kwargs)
    records = list(service.stream(job.job_id))
    return job, records


# ------------------------------------------------------------- submission
def test_submit_is_content_addressed_and_idempotent(tmp_path):
    service = SweepService(tmp_path, max_workers=1)
    scenarios = _scenarios(2)
    job = service.submit(scenarios, label="first")
    assert job.job_id == SweepService.job_id_for(scenarios)
    assert job.state == "submitted"
    assert job.total == 2 and job.completed == 0
    assert job.label == "first"
    assert not job.done
    # Same sweep, same job -- the original label survives.
    again = service.submit(scenarios, label="second")
    assert again.job_id == job.job_id
    assert again.label == "first"
    # A different sweep is a different job.
    other = service.submit(_scenarios(3))
    assert other.job_id != job.job_id
    assert {j.job_id for j in service.list_jobs()} == {job.job_id, other.job_id}


def test_poll_unknown_job_raises(tmp_path):
    service = SweepService(tmp_path)
    with pytest.raises(KeyError, match="unknown job"):
        service.poll("deadbeefdeadbeef")


# -------------------------------------------------------------- streaming
def test_stream_matches_blocking_runner(tmp_path):
    scenarios = _scenarios(3)
    service = SweepService(tmp_path / "svc", max_workers=1)
    job, records = _complete(service, scenarios)
    reference = ExperimentRunner(max_workers=1).run(scenarios)
    assert ResultSet(records) == reference
    assert [r.scenario for r in records] == scenarios
    final = service.poll(job.job_id)
    assert final.done and final.completed == final.total == 3
    assert service.artifact_path(job.job_id, "npz").exists()
    assert service.artifact_path(job.job_id, "json").exists()
    assert service.result(job.job_id) == reference


def test_poll_sees_progress_between_records(tmp_path):
    scenarios = _scenarios(3)
    service = SweepService(tmp_path, max_workers=1)
    job = service.submit(scenarios)
    completed = []
    for _ in service.stream(job.job_id):
        completed.append(service.poll(job.job_id).completed)
    assert completed == [1, 2, 3]
    assert service.poll(job.job_id).done


def test_done_job_streams_from_artifact_without_simulating(tmp_path, monkeypatch):
    scenarios = _scenarios(2)
    service = SweepService(tmp_path, max_workers=1)
    job, records = _complete(service, scenarios)

    def _boom(scenario):
        raise AssertionError("a done job must not re-simulate")

    monkeypatch.setattr(runner_module, "run_scenario", _boom)
    resubmitted = service.submit(scenarios)
    assert resubmitted.done
    replayed = list(service.stream(job.job_id))
    assert replayed == records


def test_scenario_cache_is_shared_with_runner(tmp_path):
    scenarios = _scenarios(2)
    service = SweepService(tmp_path, max_workers=1)
    # Warm the per-scenario cache through a plain runner pointed at the
    # service's cache directory -- the service must pick the entries up.
    ExperimentRunner(max_workers=1, cache_dir=service.cache_dir).run(scenarios)
    job, _ = _complete(service, scenarios)
    assert service.poll(job.job_id).cache_hits == 2


# ---------------------------------------------------------------- fetches
def test_fetch_exports_both_artifact_forms(tmp_path):
    scenarios = _scenarios(2)
    service = SweepService(tmp_path / "svc", max_workers=1)
    job, records = _complete(service, scenarios)
    npz_out = service.fetch(job.job_id, tmp_path / "out.npz")
    json_out = service.fetch(job.job_id, tmp_path / "out.json")
    assert ColumnarResultSet.load_npz(npz_out) == ResultSet(records)
    assert ResultSet.load(json_out) == ResultSet(records)


def test_fetch_requires_a_finished_job(tmp_path):
    service = SweepService(tmp_path, max_workers=1)
    job = service.submit(_scenarios(2))
    with pytest.raises(RuntimeError, match="stream it to completion"):
        service.fetch(job.job_id, tmp_path / "out.npz")


# ------------------------------------------------------------- robustness
def test_corrupt_artifact_is_treated_as_a_miss(tmp_path):
    scenarios = _scenarios(2)
    service = SweepService(tmp_path, max_workers=1)
    job, records = _complete(service, scenarios)
    service.artifact_path(job.job_id, "npz").write_bytes(b"rotten bytes")
    with pytest.warns(CacheMissWarning) as caught:
        resubmitted = service.submit(scenarios)
    assert caught[0].message.reason == "npz-corrupt"
    assert resubmitted.state == "submitted"
    # Re-streaming re-runs the sweep (served from the per-scenario JSON
    # cache) and heals the artifact.
    replayed = list(service.stream(job.job_id))
    assert replayed == records
    assert service.poll(job.job_id).cache_hits == 2
    with warnings.catch_warnings():
        warnings.simplefilter("error", CacheMissWarning)
        assert service.submit(scenarios).done


def test_failed_job_records_the_error_and_recovers(tmp_path, monkeypatch):
    scenarios = _scenarios(2)
    service = SweepService(tmp_path, max_workers=1)
    job = service.submit(scenarios)

    def _boom(scenario):
        raise RuntimeError("transducer on fire")

    monkeypatch.setattr(runner_module, "run_scenario", _boom)
    with pytest.raises(RuntimeError, match="transducer on fire"):
        list(service.stream(job.job_id))
    failed = service.poll(job.job_id)
    assert failed.state == "failed"
    assert "transducer on fire" in failed.error
    # Once the fault clears, the same job streams to completion.
    monkeypatch.undo()
    records = list(service.stream(job.job_id))
    assert len(records) == 2
    final = service.poll(job.job_id)
    assert final.done and final.error == ""


def test_manifest_version_gate(tmp_path):
    import json

    service = SweepService(tmp_path, max_workers=1)
    job = service.submit(_scenarios(1))
    path = service.jobs_dir / job.job_id / "manifest.json"
    data = json.loads(path.read_text())
    data["manifest_version"] = 99
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="manifest version"):
        service.poll(job.job_id)
