"""Tests for the application traffic generators."""

import numpy as np
import pytest

from repro.net.packet import BROADCAST
from repro.net.topology import AcousticNetTopology
from repro.net.traffic import (
    CBRTraffic,
    PoissonTraffic,
    SosBroadcastTraffic,
    _pick_destination,
)


def _line(num=4):
    return AcousticNetTopology.line(num, spacing_m=8.0, comm_range_m=10.0)


# -------------------------------------------------------------- determinism
def test_poisson_traffic_is_seed_deterministic():
    traffic = PoissonTraffic(rate_msgs_per_s=0.1, duration_s=200.0)
    topology = _line()
    first = traffic.messages(topology, np.random.default_rng(5))
    second = traffic.messages(topology, np.random.default_rng(5))
    different = traffic.messages(topology, np.random.default_rng(6))
    assert first == second
    assert first != different


def test_cbr_traffic_is_seed_deterministic_and_phase_shifted():
    traffic = CBRTraffic(interval_s=10.0, duration_s=60.0, destination="n0")
    topology = _line()
    first = traffic.messages(topology, np.random.default_rng(1))
    second = traffic.messages(topology, np.random.default_rng(99))
    # CBR timing consumes no randomness at all: any seed, same schedule.
    assert first == second
    # Sources start phase-shifted across the interval, not synchronized.
    first_times = sorted({m.time_s for m in first if m.time_s < 10.0})
    assert len(first_times) == 3
    assert all(m.destination == "n0" for m in first)
    assert all(m.source != "n0" for m in first)


def test_sos_traffic_ignores_rng_and_sorts_times():
    traffic = SosBroadcastTraffic("n1", times_s=(30.0, 0.0, 60.0))
    topology = _line()
    first = traffic.messages(topology, np.random.default_rng(1))
    second = traffic.messages(topology, np.random.default_rng(2))
    assert first == second
    assert [m.time_s for m in first] == [0.0, 30.0, 60.0]
    assert all(m.destination == BROADCAST for m in first)
    assert all(m.source == "n1" for m in first)


def test_messages_are_time_sorted():
    traffic = PoissonTraffic(rate_msgs_per_s=0.2, duration_s=100.0)
    messages = traffic.messages(_line(), np.random.default_rng(3))
    times = [m.time_s for m in messages]
    assert times == sorted(times)
    assert all(t < 100.0 for t in times)


# --------------------------------------------------------- destination picks
def test_pick_destination_fixed_destination_wins():
    rng = np.random.default_rng(0)
    assert _pick_destination("n0", "n3", _line(), rng) == "n3"


def test_pick_destination_two_node_topology_always_picks_the_peer():
    rng = np.random.default_rng(0)
    topology = _line(2)
    for _ in range(10):
        assert _pick_destination("n0", None, topology, rng) == "n1"
        assert _pick_destination("n1", None, topology, rng) == "n0"


def test_pick_destination_never_picks_the_source():
    rng = np.random.default_rng(7)
    topology = _line(5)
    picks = {_pick_destination("n2", None, topology, rng) for _ in range(200)}
    assert "n2" not in picks
    assert picks == {"n0", "n1", "n3", "n4"}


def test_pick_destination_requires_a_peer():
    topology = AcousticNetTopology.line(1, spacing_m=8.0, comm_range_m=10.0)
    with pytest.raises(ValueError, match="at least two nodes"):
        _pick_destination("n0", None, topology, np.random.default_rng(0))


def test_sources_exclude_a_fixed_destination():
    traffic = CBRTraffic(interval_s=20.0, duration_s=60.0, destination="n2")
    messages = traffic.messages(_line(), np.random.default_rng(0))
    assert {m.source for m in messages} == {"n0", "n1", "n3"}


def test_explicit_sources_are_respected():
    traffic = PoissonTraffic(
        rate_msgs_per_s=0.5, duration_s=60.0, sources=("n1",), destination="n0"
    )
    messages = traffic.messages(_line(), np.random.default_rng(4))
    assert messages
    assert {m.source for m in messages} == {"n1"}


def test_unknown_sos_source_rejected():
    traffic = SosBroadcastTraffic("nope")
    with pytest.raises(ValueError, match="unknown SOS source"):
        traffic.messages(_line(), np.random.default_rng(0))


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        PoissonTraffic(rate_msgs_per_s=0.0, duration_s=10.0)
    with pytest.raises(ValueError):
        CBRTraffic(interval_s=-1.0, duration_s=10.0)
    with pytest.raises(ValueError, match="times_s"):
        SosBroadcastTraffic("n0", times_s=())
