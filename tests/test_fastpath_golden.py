"""Golden equivalence tests pinning the fast paths to their references.

Mirrors the pattern of tests/test_fec_golden.py: every frequency-domain /
vectorized fast path introduced by the link-layer optimization PR is
compared against the retained reference implementation on randomized
inputs, with the tolerance of each comparison documented at the assert.

Tolerances, and why they are what they are (PR-5 audit: every bound was
measured over >= 8 fresh seeds and is quoted at the assert; the asserted
tolerance sits 2-3 orders of magnitude above the measured worst case, so
it absorbs a different FFT backend's rounding but still fails on any
algorithmic divergence, which costs many orders of magnitude more):

* fastconv (``convolve_full``/``cascade``/``shared``) vs ``fftconvolve``:
  measured <= 1.1e-15 relative of the peak; asserted at 1e-12.
* channel fast path vs the seed ``fftconvolve`` pipeline: measured
  <= 1.7e-15 relative of the received peak (with and without noise);
  asserted at 1e-12.
* overlap-save coarse correlation vs
  :func:`normalized_cross_correlation`: measured <= 1.4e-16 absolute on
  the O(1) metric; asserted at 1e-12.
* vectorized sliding correlation vs the per-offset loop: measured
  <= 7.9e-15 absolute (cumulative sums reassociate additions); asserted
  at 1e-12.
* Levinson vs dense solve (raw): measured <= 4.3e-11 relative through a
  480-unknown diagonally-loaded system; asserted at rtol 1e-8.
* Equalizer taps, Levinson vs dense: measured <= 1.7e-14 relative of the
  largest tap; asserted at 1e-11.
* Equalizer fit vs the seed ``np.correlate`` pipeline: measured
  <= 2.3e-13 relative; asserted at 1e-11.
* ``fit_apply_many`` vs sequential fits: measured <= 6.3e-13 absolute;
  asserted at 1e-10 (the batched axis FFTs may legitimately reassociate
  more under a future backend).

Failures in the randomized comparisons raise through
``_golden_utils.assert_allclose_seeded``, which names the offending seed
and the measured deviation so any flake is a one-command repro.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import signal as sp_signal

from _golden_utils import assert_allclose_seeded

from repro.channel.motion import MOTION_PRESETS
from repro.core.equalizer import MMSEEqualizer
from repro.dsp.correlation import (
    TemplateCorrelator,
    normalized_cross_correlation,
    sliding_correlation_curve,
    sliding_correlation_curve_reference,
)
from repro.dsp.fastconv import (
    SpectrumCache,
    convolve_cascade,
    convolve_full,
    convolve_shared,
    next_fast_len,
)
from repro.dsp.levinson import levinson_solve, solve_symmetric_toeplitz
from repro.environments.factory import build_channel
from repro.environments.sites import SITE_CATALOG


# --------------------------------------------------------------------- fastconv
def test_convolve_full_matches_fftconvolve():
    for seed in range(3):
        rng = np.random.default_rng(seed)
        cache = SpectrumCache()
        for n, m in ((64, 5), (1000, 257), (9243, 961)):
            x = rng.normal(size=n)
            kernel = rng.normal(size=m)
            fast = convolve_full(x, kernel, cache=cache)
            reference = sp_signal.fftconvolve(x, kernel)
            # Same algorithm and padding; differences can only come from
            # FFT rounding reassociation.  Measured max deviation: 8.2e-16
            # relative of the peak (seeds 0-9) -> asserted at 1e-12.
            scale = np.max(np.abs(reference))
            assert_allclose_seeded(fast, reference, seed,
                                   "convolve_full vs fftconvolve",
                                   atol=1e-12 * scale, detail=f"n={n} m={m}")


def test_convolve_cascade_matches_two_fftconvolves():
    for seed in range(3):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=5000)
        first = rng.normal(size=700)
        second = rng.normal(size=257)
        fast = convolve_cascade(x, first, second)
        reference = sp_signal.fftconvolve(sp_signal.fftconvolve(x, first), second)
        scale = np.max(np.abs(reference))
        # One combined multiply vs two sequential convolutions at
        # different FFT sizes.  Measured max deviation: 1.2e-15 relative
        # of the peak (seeds 0-9) -> asserted at 1e-12.
        assert fast.size == reference.size
        assert_allclose_seeded(fast, reference, seed,
                               "convolve_cascade vs fftconvolve x2",
                               atol=1e-12 * scale)


def test_convolve_shared_matches_individual_convolutions():
    for seed in range(3):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=4000)
        kernels = (rng.normal(size=300), rng.normal(size=450))
        shared = convolve_shared(x, kernels)
        for result, kernel in zip(shared, kernels):
            reference = sp_signal.fftconvolve(x, kernel)
            scale = np.max(np.abs(reference))
            # Measured max deviation: 8.1e-16 relative of the peak
            # (seeds 0-9) -> asserted at 1e-12.
            assert result.size == reference.size
            assert_allclose_seeded(result, reference, seed,
                                   "convolve_shared vs fftconvolve",
                                   atol=1e-12 * scale,
                                   detail=f"kernel size {kernel.size}")


def test_spectrum_cache_hits_on_equal_content():
    cache = SpectrumCache(max_entries=4)
    kernel = np.arange(32.0)
    first = cache.spectrum(kernel, 64)
    second = cache.spectrum(kernel.copy(), 64)  # equal content, new array
    assert cache.hits == 1 and cache.misses == 1
    assert first is second
    cache.spectrum(kernel, 128)  # different FFT size -> new entry
    assert cache.misses == 2


# ---------------------------------------------------------------- channel path
@pytest.mark.parametrize("motion", ["static", "slow", "fast"])
def test_channel_fast_path_matches_reference(motion):
    """Frequency-domain transmit vs the seed fftconvolve pipeline.

    ``include_noise=False`` isolates the deterministic propagation (the
    noise realization is random by contract and pinned statistically in
    test_channel_noise.py).  Both paths must also evolve the channel drift
    state identically, which the second transmit checks.
    """
    fast = build_channel(site=SITE_CATALOG["lake"], distance_m=10.0, seed=3,
                         motion=MOTION_PRESETS[motion])
    reference = build_channel(site=SITE_CATALOG["lake"], distance_m=10.0, seed=3,
                              motion=MOTION_PRESETS[motion])
    reference.use_fast_path = False
    waveform = np.sin(2 * np.pi * 2000.0 * np.arange(12000) / 48000.0)
    for trial in range(3):
        out_fast = fast.transmit(waveform, rng=np.random.default_rng(40 + trial),
                                 include_noise=False)
        out_ref = reference.transmit(waveform, rng=np.random.default_rng(40 + trial),
                                     include_noise=False)
        scale = np.max(np.abs(out_ref.samples))
        assert out_fast.samples.size == out_ref.samples.size
        # Measured max deviation: 1.7e-15 relative of the received peak
        # (seeds 3/5/7 x 3 motions x 3 trials) -> asserted at 1e-12.
        assert_allclose_seeded(out_fast.samples, out_ref.samples, 40 + trial,
                               "channel fast path vs fftconvolve reference",
                               atol=1e-12 * scale,
                               detail=f"motion={motion} trial={trial}")
        assert out_fast.doppler == out_ref.doppler


def test_channel_fast_path_matches_reference_with_noise():
    """With noise the two paths share the same rng stream and stay close."""
    fast = build_channel(site=SITE_CATALOG["lake"], distance_m=5.0, seed=9)
    reference = build_channel(site=SITE_CATALOG["lake"], distance_m=5.0, seed=9)
    reference.use_fast_path = False
    waveform = np.sin(2 * np.pi * 1500.0 * np.arange(9000) / 48000.0)
    out_fast = fast.transmit(waveform, rng=np.random.default_rng(77))
    out_ref = reference.transmit(waveform, rng=np.random.default_rng(77))
    scale = np.max(np.abs(out_ref.samples))
    # Measured max deviation: 9.5e-16 relative of the peak (channel seeds
    # 9/11/13, shared noise stream) -> asserted at 1e-12.
    assert_allclose_seeded(out_fast.samples, out_ref.samples, 77,
                           "channel fast path with noise", atol=1e-12 * scale)


# -------------------------------------------------------------- preamble search
def test_template_correlator_matches_reference():
    for seed in (4, 14, 24):
        rng = np.random.default_rng(seed)
        for n, m in ((900, 300), (5000, 800), (30000, 8216)):
            received = rng.normal(size=n)
            template = rng.normal(size=m)
            fast = TemplateCorrelator(template).correlate(received)
            reference = normalized_cross_correlation(received, template)
            assert fast.size == reference.size
            # Measured max deviation: 1.4e-16 absolute on a metric bounded
            # by 1 (seeds 0-9) -> asserted at 1e-12.
            assert_allclose_seeded(fast, reference, seed,
                                   "TemplateCorrelator vs reference",
                                   atol=1e-12, detail=f"n={n} m={m}")


def test_template_correlator_multi_block_path():
    """Buffers beyond the single-shot limit stream through overlap-save."""
    rng = np.random.default_rng(5)
    template = rng.normal(size=500)
    received = rng.normal(size=12000)  # > 4x template -> block streaming
    correlator = TemplateCorrelator(template, block_size=1000)
    fast = correlator.correlate(received)
    reference = normalized_cross_correlation(received, template)
    # Measured max deviation: 1.4e-16 absolute (seeds 0-9) -> 1e-12.
    assert_allclose_seeded(fast, reference, 5,
                           "TemplateCorrelator multi-block", atol=1e-12)


def test_sliding_correlation_curve_matches_reference():
    rng = np.random.default_rng(6)
    signs = np.array([-1, 1, 1, 1, 1, 1, -1, 1], dtype=float)
    received = rng.normal(size=12000)
    # Also embed a real preamble-like structure so the metric exercises
    # values near 1, not just noise.
    segment = rng.normal(size=1027)
    received[2000:2000 + 8 * 1027] = np.concatenate([s * segment for s in signs])
    for start, stop, step in ((0, 3000, 8), (1500, 2500, 1), (11000, 12000, 8)):
        offsets_fast, metric_fast = sliding_correlation_curve(
            received, start, stop, 1027, signs, step=step
        )
        offsets_ref, metric_ref = sliding_correlation_curve_reference(
            received, start, stop, 1027, signs, step=step
        )
        assert np.array_equal(offsets_fast, offsets_ref)
        # Measured max deviation: 7.9e-15 absolute on the normalized
        # metric (seeds 0-9; cumsum reassociation) -> asserted at 1e-12.
        assert_allclose_seeded(metric_fast, metric_ref, 6,
                               "sliding_correlation_curve vs loop",
                               atol=1e-12,
                               detail=f"start={start} stop={stop} step={step}")


def test_sliding_correlation_curve_empty_range():
    offsets, metric = sliding_correlation_curve(np.zeros(100), 90, 10, 50, np.ones(8))
    assert offsets.size == 0 and metric.size == 0


def test_preamble_detector_fast_path_finds_same_offset():
    from repro.core.preamble import PreambleDetector, PreambleGenerator

    generator = PreambleGenerator()
    detector = PreambleDetector(generator)
    rng = np.random.default_rng(11)
    template = generator.waveform()
    capture = rng.normal(0.0, 0.05, template.size * 3)
    capture[1500:1500 + template.size] += template
    detection = detector.detect(capture)
    assert detection.detected
    assert detection.start_index == 1500


# ------------------------------------------------------------------- equalizer
def test_levinson_recursion_matches_dense_solve():
    for seed in (7, 17, 27):
        rng = np.random.default_rng(seed)
        for n in (1, 2, 3, 16, 128, 480):
            y = rng.normal(size=max(4 * n, 8))
            r = np.correlate(y, y, "full")[y.size - 1:y.size - 1 + n] / y.size
            r[0] *= 1.001  # diagonal loading keeps the system well conditioned
            b = rng.normal(size=n)
            indices = np.arange(n)
            dense = np.linalg.solve(r[np.abs(indices[:, None] - indices[None, :])], b)
            pure = levinson_solve(r, b)
            dispatched = solve_symmetric_toeplitz(r, b)
            # Measured max deviation between the O(n^2) recursion and the
            # O(n^3) solve: 4.3e-11 relative at n=480 (seeds 0-9) ->
            # asserted at rtol 1e-8 (was 1e-6 before the PR-5 audit).
            assert_allclose_seeded(pure, dense, seed, "levinson_solve vs dense",
                                   rtol=1e-8, atol=1e-9, detail=f"n={n}")
            assert_allclose_seeded(dispatched, dense, seed,
                                   "solve_symmetric_toeplitz vs dense",
                                   rtol=1e-8, atol=1e-9, detail=f"n={n}")


def test_levinson_solve_rejects_bad_inputs():
    with pytest.raises(ValueError):
        levinson_solve(np.ones(3), np.ones(4))
    with pytest.raises(ValueError):
        levinson_solve(np.zeros(0), np.zeros(0))
    with pytest.raises(ValueError):
        levinson_solve(np.array([0.0, 1.0]), np.ones(2))


def test_equalizer_levinson_matches_dense_reference():
    rng = np.random.default_rng(8)
    reference_training = rng.normal(size=1027)
    channel = rng.normal(size=60) * np.exp(-np.arange(60) / 12.0)
    received = np.convolve(reference_training, channel)[:1027]
    received += 0.01 * rng.normal(size=received.size)
    taps_fast = MMSEEqualizer(num_taps=480).fit(received, reference_training)
    taps_dense = MMSEEqualizer(num_taps=480, solver="dense").fit(received, reference_training)
    scale = np.max(np.abs(taps_dense))
    # Measured max deviation: 1.7e-14 relative of the largest tap through
    # the 480-tap fit (seeds 0-7) -> asserted at 1e-11 (was 1e-6).
    assert_allclose_seeded(taps_fast, taps_dense, 8,
                           "equalizer Levinson vs dense taps",
                           atol=1e-11 * scale)


def test_equalizer_matches_seed_implementation():
    """The FFT-correlation fit reproduces the seed np.correlate pipeline."""
    from scipy import linalg as sp_linalg

    def seed_fit(y, x, taps, reg, delay):
        n = y.size
        full_autocorr = np.correlate(y, y, mode="full") / n
        zero_lag = y.size - 1
        r_yy = full_autocorr[zero_lag:zero_lag + taps].copy()
        r_yy[0] += reg * r_yy[0] + 1e-12
        x_target = np.concatenate([np.zeros(delay), x])[:n] if delay else x
        full_crosscorr = np.correlate(x_target, y, mode="full") / n
        r_xy = full_crosscorr[zero_lag:zero_lag + taps]
        return sp_linalg.solve_toeplitz((r_yy, r_yy), r_xy)

    rng = np.random.default_rng(9)
    y = rng.normal(size=1027)
    x = rng.normal(size=1027)
    for delay in (0, 7):
        seed_taps = seed_fit(y, x, 480, 1e-3, delay)
        fast_taps = MMSEEqualizer(num_taps=480, delay=delay).fit(y, x)
        scale = np.max(np.abs(seed_taps))
        # Measured max deviation: 2.3e-13 relative (seeds 0-7; FFT
        # correlations + the time-reversal phase identity reassociate
        # rounding) -> asserted at 1e-11 (was 1e-9).
        assert_allclose_seeded(fast_taps, seed_taps, 9,
                               "equalizer fit vs seed np.correlate pipeline",
                               atol=1e-11 * scale, detail=f"delay={delay}")


def test_fit_apply_many_matches_sequential_fit_apply():
    rng = np.random.default_rng(10)
    reference = rng.normal(size=1027)
    bursts = [rng.normal(size=4000 + 135) for _ in range(5)]
    sequential = MMSEEqualizer(num_taps=480)
    expected = [sequential.fit_apply(b, slice(0, 1027), reference) for b in bursts]
    batch = MMSEEqualizer(num_taps=480)
    results = batch.fit_apply_many(bursts, slice(0, 1027), reference)
    assert len(results) == len(expected)
    for index, (got, want) in enumerate(zip(results, expected)):
        # Measured max deviation: 6.3e-13 absolute (seeds 0-4); kept at
        # 1e-10 because the batched axis FFTs may legitimately
        # reassociate more under a future pocketfft revision.
        assert_allclose_seeded(got, want, 10, "fit_apply_many vs sequential",
                               atol=1e-10, detail=f"burst {index}")
    # the batch leaves the last burst's taps behind, like a sequential loop
    assert np.allclose(batch.coefficients, sequential.coefficients, atol=1e-10, rtol=0)


def test_fit_apply_many_empty_and_bad_training():
    eq = MMSEEqualizer(num_taps=32)
    assert eq.fit_apply_many([], slice(0, 64), np.zeros(64)) == []
    rng = np.random.default_rng(11)
    # training segment length must match the reference for every burst
    with pytest.raises(ValueError):
        MMSEEqualizer(num_taps=32).fit_apply_many(
            [rng.normal(size=200), rng.normal(size=300)],
            slice(0, None),
            rng.normal(size=200),
        )


# ----------------------------------------------------------------- run_packets
def test_run_packets_matches_run_packet_loop():
    from repro.environments.factory import build_link_pair
    from repro.link.session import LinkSession

    forward, backward = build_link_pair(site=SITE_CATALOG["lake"], distance_m=5.0, seed=21)
    batched = LinkSession(forward, backward, seed=22)
    stats_batched = batched.run_packets(3, rng=np.random.default_rng(5))

    forward2, backward2 = build_link_pair(site=SITE_CATALOG["lake"], distance_m=5.0, seed=21)
    looped = LinkSession(forward2, backward2, seed=22)
    rng = np.random.default_rng(5)
    results = [looped.run_packet(rng=rng) for _ in range(3)]

    assert stats_batched.num_packets == 3
    for batch_result, loop_result in zip(stats_batched.results, results):
        assert batch_result == loop_result


# ----------------------------------------------------------- failure reporting
def test_golden_helper_reports_offending_seed():
    """The repro helper must name the seed and deviation on failure."""
    from _golden_utils import assert_bit_identical_seeded

    with pytest.raises(AssertionError) as excinfo:
        assert_allclose_seeded(np.ones(4), np.zeros(4), seed=1234,
                               label="demo", atol=1e-12, detail="n=4")
    message = str(excinfo.value)
    assert "1234" in message and "demo" in message
    assert "max deviation" in message and "repro" in message

    with pytest.raises(AssertionError) as excinfo:
        assert_bit_identical_seeded(np.array([0, 1]), np.array([1, 1]),
                                    seed=(101, 7), label="bits")
    message = str(excinfo.value)
    assert "(101, 7)" in message and "mismatching" in message


def test_golden_helper_passes_on_equal_inputs():
    from _golden_utils import assert_bit_identical_seeded

    assert_allclose_seeded(np.ones(4), np.ones(4) + 1e-14, seed=0,
                           label="close", atol=1e-12)
    assert_bit_identical_seeded(np.arange(5), np.arange(5), seed=0, label="eq")


def test_golden_helper_rejects_matching_nans():
    """A regression producing NaN in both the fast path and the reference
    must fail the equivalence gate, never read as agreement."""
    both_nan = np.array([1.0, np.nan])
    with pytest.raises(AssertionError):
        assert_allclose_seeded(both_nan, both_nan.copy(), seed=0,
                               label="nan-hole", atol=1e-9)


# ------------------------------------------------------------------ multipath
def test_tap_amplitudes_match_physics_path_amplitude():
    """The vectorized tap builder's inlined loss math must stay bit-identical
    to repro.channel.physics.path_amplitude (same float operations)."""
    from repro.channel.multipath import ImageMethodGeometry, MultipathModel
    from repro.channel.physics import path_amplitude

    geometry = ImageMethodGeometry(
        water_depth_m=10.0, tx_depth_m=2.2, rx_depth_m=3.7, horizontal_range_m=25.0
    )
    model = MultipathModel(
        geometry=geometry, surface_loss_db=0.0, bottom_loss_db=0.0, max_bounces=3
    )
    for path in model.paths():
        assert abs(path.amplitude) == path_amplitude(path.length_m)
