"""Tests for the image-method multipath model."""

import numpy as np
import pytest

from repro.channel.multipath import ImageMethodGeometry, MultipathModel


def _model(**kwargs):
    defaults = dict(
        geometry=ImageMethodGeometry(
            water_depth_m=5.0, tx_depth_m=1.0, rx_depth_m=1.0, horizontal_range_m=10.0
        ),
        surface_loss_db=1.0,
        bottom_loss_db=5.0,
    )
    defaults.update(kwargs)
    return MultipathModel(**defaults)


def test_geometry_validation():
    with pytest.raises(ValueError):
        ImageMethodGeometry(water_depth_m=5.0, tx_depth_m=6.0, rx_depth_m=1.0,
                            horizontal_range_m=10.0)
    with pytest.raises(ValueError):
        ImageMethodGeometry(water_depth_m=5.0, tx_depth_m=1.0, rx_depth_m=0.0,
                            horizontal_range_m=10.0)
    with pytest.raises(ValueError):
        ImageMethodGeometry(water_depth_m=-1.0, tx_depth_m=1.0, rx_depth_m=1.0,
                            horizontal_range_m=10.0)


def test_direct_path_is_first_and_strongest():
    paths = _model().paths()
    direct = paths[0]
    assert direct.num_surface_bounces == 0
    assert direct.num_bottom_bounces == 0
    assert direct.length_m == pytest.approx(10.0)
    assert abs(direct.amplitude) == pytest.approx(max(abs(p.amplitude) for p in paths))


def test_surface_bounce_flips_polarity():
    paths = _model().paths()
    surface_paths = [p for p in paths if p.num_surface_bounces % 2 == 1]
    assert surface_paths
    assert all(p.amplitude < 0 for p in surface_paths)


def test_single_bottom_bounce_present():
    paths = _model().paths()
    assert any(p.num_bottom_bounces == 1 and p.num_surface_bounces == 0 for p in paths)


def test_more_bounces_allowed_with_higher_order():
    few = _model(max_bounces=2).paths()
    many = _model(max_bounces=6).paths()
    assert len(many) > len(few)


def test_delays_sorted_and_positive():
    paths = _model().paths()
    delays = [p.delay_s for p in paths]
    assert delays == sorted(delays)
    assert all(d > 0 for d in delays)


def test_extra_reflectors_add_late_paths():
    base = _model(seed=3).paths()
    extended = _model(extra_reflectors=4, seed=3).paths()
    assert len(extended) == len(base) + 4


def test_impulse_response_properties():
    response = _model().impulse_response(48000.0)
    assert response.ndim == 1
    assert response.size >= 1
    assert np.argmax(np.abs(response)) <= 1  # delay-normalized: direct path first


def test_impulse_response_max_taps_cap():
    response = _model(extra_reflectors=3, seed=1).impulse_response(48000.0, max_taps=50)
    assert response.size <= 50


def test_frequency_response_has_notches():
    """Multipath must produce frequency-selective fading in the 1-4 kHz band."""
    model = _model()
    freqs = np.arange(1000.0, 4000.0, 25.0)
    response = model.frequency_response_db(freqs)
    assert response.max() - response.min() > 6.0


def test_frequency_response_changes_with_geometry():
    a = _model().frequency_response_db(np.arange(1000, 4000, 50.0))
    b = _model(geometry=ImageMethodGeometry(5.0, 2.0, 1.5, 14.0)).frequency_response_db(
        np.arange(1000, 4000, 50.0))
    assert not np.allclose(a, b, atol=1.0)


def test_delay_spread_larger_for_deeper_water_with_reflectors():
    shallow = _model()
    reverberant = _model(extra_reflectors=5, seed=2)
    assert reverberant.delay_spread_s() >= shallow.delay_spread_s()


def test_direct_path_delay_matches_geometry():
    model = _model()
    expected = 10.0 / model.sound_speed_m_s
    assert model.direct_path_delay_s() == pytest.approx(expected, rel=1e-3)


def test_apply_convolves_signal():
    model = _model()
    impulse_in = np.zeros(2000)
    impulse_in[0] = 1.0
    out = model.apply(impulse_in, 48000.0)
    assert out.size == impulse_in.size
    np.testing.assert_allclose(out[: model.impulse_response(48000.0).size],
                               model.impulse_response(48000.0)[:2000][: out.size][: model.impulse_response(48000.0).size])


def test_delayed_apply_adds_propagation_delay():
    model = _model()
    impulse_in = np.zeros(4000)
    impulse_in[0] = 1.0
    delayed = model.delayed_apply(impulse_in, 48000.0)
    expected_delay = int(round(model.direct_path_delay_s() * 48000.0))
    assert abs(int(np.argmax(np.abs(delayed))) - expected_delay) <= 1
