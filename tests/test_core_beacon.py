"""Tests for the FSK SoS beacon mode."""

import numpy as np
import pytest

from repro.core.beacon import SUPPORTED_RATES_BPS, FSKBeacon


def test_supported_rates():
    assert SUPPORTED_RATES_BPS == (5, 10, 20)


@pytest.mark.parametrize("rate,expected_duration", [(5, 0.2), (10, 0.1), (20, 0.05)])
def test_symbol_durations_match_paper(rate, expected_duration):
    beacon = FSKBeacon(bit_rate_bps=rate)
    assert beacon.symbol_duration_s == pytest.approx(expected_duration)
    assert beacon.samples_per_symbol == int(48000 * expected_duration)


def test_unsupported_rate_rejected():
    with pytest.raises(ValueError):
        FSKBeacon(bit_rate_bps=7)


def test_tone_frequencies_must_be_in_band():
    with pytest.raises(ValueError):
        FSKBeacon(f0_hz=500.0, f1_hz=3000.0)
    with pytest.raises(ValueError):
        FSKBeacon(f0_hz=3000.0, f1_hz=2000.0)


def test_encode_length_and_rms():
    beacon = FSKBeacon(bit_rate_bps=10)
    waveform = beacon.encode([1, 0, 1])
    assert waveform.size == 3 * beacon.samples_per_symbol
    assert np.sqrt(np.mean(waveform ** 2)) == pytest.approx(1.0, rel=1e-3)


def test_encode_validates_bits():
    beacon = FSKBeacon()
    with pytest.raises(ValueError):
        beacon.encode([])
    with pytest.raises(ValueError):
        beacon.encode([0, 2])


def test_clean_roundtrip_all_rates(rng):
    for rate in SUPPORTED_RATES_BPS:
        beacon = FSKBeacon(bit_rate_bps=rate)
        bits = rng.integers(0, 2, 8)
        received = beacon.encode(bits) + 0.01 * rng.standard_normal(8 * beacon.samples_per_symbol)
        result = beacon.decode(received, 8)
        np.testing.assert_array_equal(result.bits, bits)
        assert np.all(result.confidence > 10.0)


def test_roundtrip_in_strong_noise(rng):
    beacon = FSKBeacon(bit_rate_bps=5)
    bits = rng.integers(0, 2, 6)
    waveform = beacon.encode(bits)
    # 0 dB broadband SNR: the long symbols still give a large per-tone margin.
    received = waveform + rng.standard_normal(waveform.size)
    result = beacon.decode(received, 6)
    np.testing.assert_array_equal(result.bits, bits)


def test_decode_validates_length():
    beacon = FSKBeacon()
    with pytest.raises(ValueError):
        beacon.decode(np.zeros(100), 6)


def test_sos_roundtrip(rng):
    beacon = FSKBeacon(bit_rate_bps=20)
    for user_id in (0, 1, 42, 63):
        waveform = beacon.encode_sos(user_id)
        noisy = waveform + 0.05 * rng.standard_normal(waveform.size)
        decoded_id, result = beacon.decode_sos(noisy)
        assert decoded_id == user_id
        assert result.bits.size == 6


def test_sos_rejects_wide_ids():
    with pytest.raises(ValueError):
        FSKBeacon().encode_sos(64)
    with pytest.raises(ValueError):
        FSKBeacon().encode_sos(-1)
