"""Tests for the repro.validation Monte-Carlo figure harness."""

import json
import math

import pytest

from repro.validation import (
    AB_VARIANTS,
    FIGURE_REGISTRY,
    FigureReport,
    FigureSpec,
    MetricSummary,
    MonteCarloRunner,
    ValidationReport,
    ab_compare,
    available_figures,
    check_against_envelope,
    get_figure,
    intervals_overlap,
    load_envelope,
    normal_interval,
    summarize_continuous,
    summarize_proportion,
    valid_json_path,
    wilson_interval,
    write_envelope,
)
from repro.validation.figures import TrialOutcome, link_scenario
from repro.validation.montecarlo import FigureResult, summarize_point


# ---------------------------------------------------------------------- stats
def test_wilson_interval_brackets_the_proportion():
    low, high = wilson_interval(30, 100)
    assert 0.0 <= low < 0.3 < high <= 1.0


def test_wilson_interval_zero_successes_has_meaningful_upper_bound():
    low, high = wilson_interval(0, 200)
    assert low == 0.0
    assert 0.0 < high < 0.05  # not degenerate, unlike the Wald interval


def test_wilson_interval_all_successes_mirrors_zero():
    low_zero, high_zero = wilson_interval(0, 50)
    low_all, high_all = wilson_interval(50, 50)
    assert low_all == pytest.approx(1.0 - high_zero, abs=1e-12)
    assert high_all == 1.0 and low_zero == 0.0


def test_wilson_interval_narrows_with_more_trials():
    _, high_small = wilson_interval(5, 10)
    low_small, _ = wilson_interval(5, 10)
    low_big, high_big = wilson_interval(500, 1000)
    assert (high_big - low_big) < (high_small - low_small)


def test_wilson_interval_edge_cases():
    assert all(math.isnan(v) for v in wilson_interval(0, 0))
    with pytest.raises(ValueError):
        wilson_interval(5, 3)
    with pytest.raises(ValueError):
        wilson_interval(-1, 3)
    with pytest.raises(ValueError):
        wilson_interval(1, 3, z=0.0)


def test_normal_interval_single_trial_is_degenerate():
    low, high = normal_interval(3.0, 1.0, 1)
    assert low == high == 3.0


def test_summarize_proportion_pools_counts():
    summary = summarize_proportion("per", [(1, 10), (0, 10), (2, 10)])
    assert summary.successes == 3 and summary.total == 30
    assert summary.mean == pytest.approx(0.1)
    assert summary.kind == "proportion"
    assert summary.ci_low < 0.1 < summary.ci_high
    assert summary.n_trials == 3


def test_summarize_continuous_drops_nan_trials():
    summary = summarize_continuous("goodput", [10.0, float("nan"), 14.0])
    assert summary.mean == pytest.approx(12.0)
    assert summary.ci_low < 12.0 < summary.ci_high


def test_design_effect_widens_ci_for_clustered_failures():
    """Whole-packet failures make bits within a trial move together; the
    corrected interval must be much wider than the naive pooled one."""
    from repro.validation.stats import design_effect

    clustered = [(24, 24), (0, 24), (24, 24), (0, 24)]  # all-or-nothing trials
    assert design_effect(clustered) > 10.0
    summary = summarize_proportion("coded_ber", clustered)
    naive_low, naive_high = wilson_interval(48, 96)
    assert (summary.ci_high - summary.ci_low) > 2 * (naive_high - naive_low)
    # The point estimate and raw pooled counts stay untouched.
    assert summary.mean == pytest.approx(0.5)
    assert summary.successes == 48 and summary.total == 96


def test_design_effect_degenerate_cases_are_neutral():
    from repro.validation.stats import design_effect

    assert design_effect([(0, 10), (0, 10)]) == 1.0  # p == 0
    assert design_effect([(10, 10), (10, 10)]) == 1.0  # p == 1
    assert design_effect([(3, 10)]) == 1.0  # one trial: nothing to estimate
    assert design_effect([]) == 1.0


def test_metric_summary_roundtrip():
    summary = summarize_proportion("ber", [(3, 100), (1, 100)])
    rebuilt = MetricSummary.from_dict(summary.to_dict())
    assert rebuilt == summary


def test_metric_summary_rejects_unknown_kind():
    with pytest.raises(ValueError):
        MetricSummary(name="x", kind="fuzzy", mean=0.0, std=0.0,
                      ci_low=0.0, ci_high=0.0, n_trials=1)


def test_intervals_overlap_with_slack_and_nan():
    assert intervals_overlap(0.0, 1.0, 0.5, 2.0)
    assert not intervals_overlap(0.0, 1.0, 1.2, 2.0)
    assert intervals_overlap(0.0, 1.0, 1.2, 2.0, slack=0.3)
    assert not intervals_overlap(float("nan"), 1.0, 0.0, 2.0)


# -------------------------------------------------------------------- figures
def test_registry_specs_are_coherent():
    assert len(available_figures()) >= 4
    for name, spec in FIGURE_REGISTRY.items():
        assert spec.name == name
        assert set(spec.quick_values) <= set(spec.values)
        assert spec.headline in spec.metrics
        assert spec.kind in ("link", "sos", "net", "cc", "faults")


def test_figure_spec_validation_errors():
    with pytest.raises(ValueError):
        FigureSpec(name="x", title="x", kind="warp", axis="a", values=(1,),
                   quick_values=(1,), metrics=("m",), headline="m", tolerance=0.1)
    with pytest.raises(ValueError):
        FigureSpec(name="x", title="x", kind="link", axis="a", values=(1,),
                   quick_values=(2,), metrics=("m",), headline="m", tolerance=0.1)
    with pytest.raises(ValueError):
        FigureSpec(name="x", title="x", kind="link", axis="a", values=(1,),
                   quick_values=(1,), metrics=("m",), headline="other", tolerance=0.1)
    with pytest.raises(ValueError):
        get_figure("nonexistent_figure")


def test_point_seed_is_stable_across_quick_and_full_grids():
    spec = get_figure("ber_vs_snr")
    # quick sweeps a subset of values, but a shared axis value must land on
    # the same seed so quick CI runs replay the committed envelope's trials.
    for value in spec.quick_values:
        assert spec.point_seed(value, trial=1) == spec.point_seed(value, trial=1)
    seeds = {spec.point_seed(v, t) for v in spec.values for t in range(3)}
    assert len(seeds) == len(spec.values) * 3  # no collisions on the grid


def test_link_scenario_carries_axis_value_and_seed():
    spec = get_figure("ber_vs_snr")
    scenario = link_scenario(spec, 20.0, trial=2, base_seed=7, quick=True)
    assert scenario.distance_m == 20.0
    assert scenario.seed == spec.point_seed(20.0, 2, 7)
    assert scenario.num_packets == spec.param("num_packets", quick=True)


# ----------------------------------------------------------------- montecarlo
@pytest.fixture(scope="module")
def tiny_link_result():
    spec = get_figure("ber_vs_snr")
    runner = MonteCarloRunner(trials=2, max_workers=1)
    return spec, runner.run(spec, quick=True)


def test_montecarlo_link_figure_structure(tiny_link_result):
    spec, result = tiny_link_result
    assert result.figure == "ber_vs_snr"
    assert [p.axis_value for p in result.points] == list(spec.quick_values)
    for point in result.points:
        assert point.n_trials == 2
        for metric in spec.metrics:
            summary = point.summary(metric)
            assert summary.n_trials == 2
            if summary.kind == "proportion":
                assert 0.0 <= summary.ci_low <= summary.ci_high <= 1.0
    # Wilson CIs run over genuine bit counts, not trial counts.
    ber = result.points[0].summary("coded_ber")
    assert ber.total > 100


def test_montecarlo_is_reproducible(tiny_link_result):
    spec, first = tiny_link_result
    second = MonteCarloRunner(trials=2, max_workers=1).run(spec, quick=True)
    assert second.points == first.points


def test_montecarlo_result_json_roundtrip(tiny_link_result):
    _, result = tiny_link_result
    rebuilt = FigureResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert rebuilt.points == result.points
    assert rebuilt.figure == result.figure


def test_montecarlo_sos_and_net_figures_run():
    runner = MonteCarloRunner(trials=1)
    sos = runner.run("sos_range", quick=True)
    assert {m for p in sos.points for m in p.summaries} >= {
        "id_detection_rate", "sos_bit_error_rate", "mean_confidence_db"}
    net = runner.run("net_pdr_vs_hops", quick=True)
    pdr = net.points[0].summary("pdr")
    assert pdr.total > 0 and 0.0 <= pdr.mean <= 1.0


def test_montecarlo_memo_reuses_records_across_figures(monkeypatch):
    """ber_vs_snr and throughput_vs_distance sweep identical scenarios;
    one shared runner must simulate each grid cell exactly once."""
    import repro.validation.montecarlo as mc_module

    executed = []
    real_runner = mc_module.ExperimentRunner

    class CountingRunner(real_runner):
        def iter_run(self, scenarios, progress=None):
            scenarios = list(scenarios)
            executed.extend(s.scenario_hash() for s in scenarios)
            return super().iter_run(scenarios, progress=progress)

    monkeypatch.setattr(mc_module, "ExperimentRunner", CountingRunner)
    runner = MonteCarloRunner(trials=1, max_workers=1)
    first = runner.run("ber_vs_snr", quick=True)
    count_after_first = len(executed)
    second = runner.run("throughput_vs_distance", quick=True)
    assert count_after_first == 2  # 2 quick points x 1 trial
    assert len(executed) == count_after_first  # fully served from the memo
    assert first.points[0].axis_value == second.points[0].axis_value


def test_ab_compare_reuses_runner_memo(monkeypatch):
    import repro.validation.montecarlo as mc_module

    executed = []
    real_runner = mc_module.ExperimentRunner

    class CountingRunner(real_runner):
        def iter_run(self, scenarios, progress=None):
            scenarios = list(scenarios)
            executed.extend(scenarios)
            return super().iter_run(scenarios, progress=progress)

    monkeypatch.setattr(mc_module, "ExperimentRunner", CountingRunner)
    runner = MonteCarloRunner(trials=1, max_workers=1)
    runner.run("ber_vs_snr", quick=True)
    baseline_runs = len(executed)
    rows = ab_compare("ber_vs_snr", variant="fast-path", quick=True,
                      runner=runner)
    # Only the reference variant is new work; the baseline came from memo.
    assert len(executed) == baseline_runs + 2
    assert all(not s.use_fast_path for s in executed[baseline_runs:])
    assert all(row.passed for row in rows)


def test_montecarlo_rejects_bad_trials():
    with pytest.raises(ValueError):
        MonteCarloRunner(trials=0)


def test_summarize_point_mixed_metrics():
    outcomes = [
        TrialOutcome(counts={"per": (1, 4)}, values={"goodput": 100.0}),
        TrialOutcome(counts={"per": (0, 4)}, values={"goodput": 120.0}),
    ]
    point = summarize_point(10.0, outcomes)
    assert point.summary("per").successes == 1
    assert point.summary("goodput").mean == pytest.approx(110.0)
    with pytest.raises(KeyError):
        point.summary("unknown")


# ------------------------------------------------------- envelopes / reports
def test_envelope_roundtrip_and_gate_passes(tiny_link_result, tmp_path):
    spec, result = tiny_link_result
    path = write_envelope(result, tmp_path)
    assert path == valid_json_path(spec.name, tmp_path)
    envelope = load_envelope(path)
    checks = check_against_envelope(result, envelope, spec)
    assert len(checks) == len(result.points)
    assert all(c.passed for c in checks)  # a run always matches itself


def test_envelope_gate_fails_on_shifted_physics(tiny_link_result, tmp_path):
    spec, result = tiny_link_result
    path = write_envelope(result, tmp_path)
    data = json.loads(path.read_text())
    # Simulate a decoder regression: the committed expectation says the
    # coded BER should sit far away from what the fresh run measured.
    for point in data["result"]["points"]:
        headline = point["summaries"][spec.headline]
        headline["mean"] = 0.9
        headline["ci_low"] = 0.89
        headline["ci_high"] = 0.91
    path.write_text(json.dumps(data))
    checks = check_against_envelope(result, load_envelope(path), spec)
    assert not any(c.passed for c in checks)
    assert "FAIL" in checks[0].describe()


def test_envelope_gate_fails_on_missing_point(tiny_link_result, tmp_path):
    spec, result = tiny_link_result
    path = write_envelope(result, tmp_path)
    data = json.loads(path.read_text())
    data["result"]["points"] = data["result"]["points"][:1]
    path.write_text(json.dumps(data))
    checks = check_against_envelope(result, load_envelope(path), spec)
    assert checks[0].passed and not checks[1].passed


def test_load_envelope_rejects_non_envelope(tmp_path):
    bad = tmp_path / "VALID_x.json"
    bad.write_text("[1, 2, 3]")
    with pytest.raises(ValueError):
        load_envelope(bad)


def test_validation_report_markdown_and_save(tiny_link_result, tmp_path):
    spec, result = tiny_link_result
    write_envelope(result, tmp_path)
    checks = check_against_envelope(result, load_envelope(
        valid_json_path(spec.name, tmp_path)), spec)
    report = ValidationReport()
    report.add(FigureReport(result=result, checks=checks, compared=True))
    markdown = report.to_markdown()
    assert spec.name in markdown
    assert "95% CI" in markdown
    assert "envelope gate" in markdown and "pass" in markdown
    assert report.passed
    path = report.save(tmp_path / "report.json")
    payload = json.loads(path.read_text())
    assert payload["passed"] is True
    assert payload["figures"][0]["checks"]


# ------------------------------------------------------------------------- ab
def test_ab_compare_fast_path_is_equivalent():
    """Acceptance criterion: the seed-paired fast-path rerun must agree on
    link BER and preamble detection."""
    rows = ab_compare("ber_vs_snr", variant="fast-path", trials=1, quick=True,
                      max_workers=1)
    by_metric = {row.metric: row for row in rows}
    assert by_metric["coded_ber"].passed
    assert by_metric["detection_rate"].passed
    assert by_metric["coded_ber"].max_abs_delta <= 1e-12


def test_ab_compare_solver_variant_is_equivalent():
    rows = ab_compare("ber_vs_snr", variant="solver", trials=1, quick=True,
                      max_workers=1)
    assert all(row.passed for row in rows)


def test_ab_variants_flip_the_right_flags():
    scenario = link_scenario(get_figure("ber_vs_snr"), 5.0, 0)
    reference = AB_VARIANTS["fast-path"](scenario)
    assert scenario.use_fast_path and not reference.use_fast_path
    dense = AB_VARIANTS["solver"](scenario)
    assert dense.modem.equalizer_solver == "dense"
    assert scenario.modem.equalizer_solver == "levinson"


def test_ab_compare_rejects_bad_inputs():
    with pytest.raises(ValueError):
        ab_compare("sos_range", trials=1)  # not a link figure
    with pytest.raises(ValueError):
        ab_compare("ber_vs_snr", variant="warp-drive", trials=1)


def test_ab_row_markdown_and_failure_detection():
    from repro.validation import ABRow

    row = ABRow(figure="f", variant="fast-path", metric="per", n_pairs=4,
                mean_delta=0.0, max_abs_delta=0.5, tolerance=0.01)
    assert not row.passed
    assert "FAIL" in row.to_markdown_row()
    nan_row = ABRow(figure="f", variant="fast-path", metric="per", n_pairs=0,
                    mean_delta=float("nan"), max_abs_delta=float("nan"),
                    tolerance=0.01)
    assert not nan_row.passed  # no data must read as failure
    # NaN deltas serialize as strict-JSON null, never bare NaN tokens.
    payload = json.dumps(nan_row.to_dict(), allow_nan=False)
    assert json.loads(payload)["mean_delta"] is None


# -------------------------------------------------------------- fast vs slow
def test_scenario_reference_path_produces_same_statistics():
    """End-to-end spot check behind the A/B harness: flipping both
    reference flags on one scenario reproduces the fast run's packet
    outcomes exactly (decisions have margins ~1e9 times the path error)."""
    import dataclasses

    from repro.experiments import Scenario

    fast = Scenario(site="lake", distance_m=10.0, num_packets=3, seed=91)
    slow = fast.replace(
        use_fast_path=False,
        modem=dataclasses.replace(fast.modem, equalizer_solver="dense"),
    )
    fast_stats = fast.run()
    slow_stats = slow.run()
    assert fast_stats.packet_error_rate == slow_stats.packet_error_rate
    assert fast_stats.coded_bit_error_rate == slow_stats.coded_bit_error_rate
    assert (fast_stats.preamble_detection_rate
            == slow_stats.preamble_detection_rate)
