"""Tests for the routing protocols."""

import pytest

from repro.net.packet import NetPacket
from repro.net.routing import (
    ROUTING_CATALOG,
    FloodingRouting,
    GreedyForwarding,
    StaticShortestPathRouting,
    build_routing,
)
from repro.net.topology import AcousticNetTopology


def _line(num=4, spacing=5.0, comm_range=6.0):
    return AcousticNetTopology.line(num, spacing_m=spacing, comm_range_m=comm_range)


def _packet(source, destination, path=()):
    return NetPacket(
        uid=0, kind="raw", source=source, destination=destination,
        created_s=0.0, path=tuple(path),
    )


def test_flooding_relays_to_all_but_previous_hop():
    topology = _line()
    flooding = FloodingRouting()
    fresh = _packet("n1", "n3")
    assert set(flooding.next_hops("n1", fresh, topology)) == {"n0", "n2"}
    relayed = _packet("n0", "n3", path=("n0",))
    assert flooding.next_hops("n1", relayed, topology) == ("n2",)


def test_shortest_path_follows_the_chain():
    topology = _line()
    routing = StaticShortestPathRouting()
    routing.prepare(topology)
    packet = _packet("n0", "n3")
    assert routing.next_hops("n0", packet, topology) == ("n1",)
    assert routing.next_hops("n1", packet, topology) == ("n2",)
    assert routing.next_hops("n2", packet, topology) == ("n3",)
    assert routing.has_route("n0", "n3")


def test_shortest_path_handles_partitions():
    topology = _line()
    topology.add_node("island", 1000.0, 1000.0)
    routing = StaticShortestPathRouting()
    routing.prepare(topology)
    assert not routing.has_route("n0", "island")
    assert routing.next_hops("n0", _packet("n0", "island"), topology) == ()


def test_shortest_path_prefers_fewer_metres_not_fewer_hops():
    topology = AcousticNetTopology(comm_range_m=11.0)
    topology.add_node("src", 0.0, 0.0)
    topology.add_node("detour", 5.0, 0.1)
    topology.add_node("dst", 10.0, 0.0)
    routing = StaticShortestPathRouting()
    routing.prepare(topology)
    # The direct 10 m edge beats the 5 m + 5 m detour only in hop count;
    # in metres they are nearly equal, and the direct edge is shorter.
    assert routing.next_hops("src", _packet("src", "dst"), topology) == ("dst",)


def test_greedy_picks_neighbor_closest_to_destination():
    topology = _line()
    greedy = GreedyForwarding("distance")
    packet = _packet("n0", "n3")
    assert greedy.next_hops("n0", packet, topology) == ("n1",)
    # Direct delivery once the destination is in range.
    assert greedy.next_hops("n2", packet, topology) == ("n3",)


def test_greedy_drops_at_voids():
    topology = AcousticNetTopology(comm_range_m=6.0)
    topology.add_node("src", 0.0, 0.0)
    topology.add_node("back", -5.0, 0.0)  # only neighbour leads away
    topology.add_node("dst", 20.0, 0.0)
    greedy = GreedyForwarding("distance")
    assert greedy.next_hops("src", _packet("src", "dst"), topology) == ()


def test_greedy_unknown_destination_is_a_void():
    topology = _line()
    greedy = GreedyForwarding("distance")
    assert greedy.next_hops("n0", _packet("n0", "ghost"), topology) == ()


def test_depth_greedy_climbs_to_the_surface_sink():
    topology = AcousticNetTopology(comm_range_m=8.0)
    topology.add_node("sink", 0.0, 0.0, depth_m=0.3)
    topology.add_node("mid", 0.0, 5.0, depth_m=2.0)
    topology.add_node("deep", 0.0, 10.0, depth_m=4.0)
    greedy = GreedyForwarding("depth")
    packet = _packet("deep", "sink")
    assert greedy.next_hops("deep", packet, topology) == ("mid",)
    assert greedy.next_hops("mid", packet, topology) == ("sink",)
    # A node with no shallower neighbour is a void.
    assert greedy.next_hops("sink", _packet("sink", "deep"), topology) == ()


def test_routing_catalog_and_validation():
    assert set(ROUTING_CATALOG) == {
        "flooding", "shortest-path", "greedy", "greedy-depth"
    }
    assert build_routing("greedy-depth").name == "greedy-depth"
    assert build_routing("flooding").name == "flooding"
    with pytest.raises(ValueError):
        build_routing("ospf")
    with pytest.raises(ValueError):
        GreedyForwarding("sideways")
