"""Tests for the link-layer protocol session."""

import numpy as np
import pytest

from repro.core.baselines import FIXED_BAND_SCHEMES, FIXED_FULL_BAND, FIXED_NARROW_BAND
from repro.core.feedback import FeedbackDecodeResult
from repro.core.preamble import PreambleDetection
from repro.link.session import LinkSession, LinkStatistics, PacketResult


@pytest.fixture
def quiet_session(quiet_channel):
    return LinkSession(quiet_channel, seed=5)


def test_adaptive_packet_delivery_on_quiet_channel(quiet_session):
    results = [quiet_session.run_packet() for _ in range(3)]
    assert all(isinstance(r, PacketResult) for r in results)
    assert all(r.preamble_detected for r in results)
    assert all(r.feedback_ok for r in results)
    # On a short quiet link the large majority of packets must get through
    # (the occasional miss comes from a deep fade hitting a feedback tone).
    delivered = [r for r in results if r.delivered]
    assert len(delivered) >= 2
    assert all(r.bit_errors == 0 for r in delivered)
    assert all(r.receiver_band is not None for r in results)
    assert all(r.coded_bitrate_bps > 100.0 for r in results)


def test_adaptive_many_packets_statistics(quiet_session):
    stats = quiet_session.run_many(5)
    assert stats.num_packets == 5
    assert stats.packet_error_rate <= 0.2
    assert stats.preamble_detection_rate == 1.0
    assert np.isfinite(stats.median_bitrate_bps)
    assert stats.bitrates_bps.size == 5


def test_fixed_scheme_skips_feedback(quiet_channel):
    session = LinkSession(quiet_channel, scheme=FIXED_FULL_BAND, seed=6)
    result = session.run_packet()
    assert result.feedback_ok and result.feedback_exact
    assert result.receiver_band.num_bins == 60
    assert result.transmitter_band.num_bins == 60


def test_fixed_narrow_scheme_band(quiet_channel):
    session = LinkSession(quiet_channel, scheme=FIXED_NARROW_BAND, seed=7)
    result = session.run_packet()
    assert result.receiver_band.num_bins == 10


def test_invalid_scheme_string_rejected(quiet_channel):
    with pytest.raises(ValueError):
        LinkSession(quiet_channel, scheme="bogus")


def test_explicit_payload_is_used(quiet_session):
    payload = np.ones(16, dtype=int)
    result = quiet_session.run_packet(payload=payload)
    assert result.num_payload_bits == 16
    if result.delivered:
        assert result.bit_errors == 0


def test_run_many_validates_count(quiet_session):
    with pytest.raises(ValueError):
        quiet_session.run_many(0)


def test_noisy_channel_selects_narrower_band(quiet_channel, noisy_channel):
    quiet_stats = LinkSession(quiet_channel, seed=8, randomize_every=0).run_many(3)
    noisy_stats = LinkSession(noisy_channel, seed=8, randomize_every=0).run_many(3)
    assert noisy_stats.median_bitrate_bps < quiet_stats.median_bitrate_bps


def test_statistics_aggregation_from_results():
    results = [
        PacketResult(True, True, True, True, None, None, 0, 16, 0, 24, 1000.0, 10.0, 0.9),
        PacketResult(False, True, True, True, None, None, 3, 16, 5, 24, 500.0, 4.0, 0.8),
        PacketResult(False, False, False, False, None, None, 16, 16, 24, 24, float("nan"),
                     float("nan"), 0.0),
    ]
    stats = LinkStatistics.from_results(results)
    assert stats.num_packets == 3
    assert stats.packet_error_rate == pytest.approx(2 / 3)
    assert stats.payload_bit_error_rate == pytest.approx(19 / 48)
    assert stats.coded_bit_error_rate == pytest.approx(29 / 72)
    assert stats.preamble_detection_rate == pytest.approx(2 / 3)
    assert stats.feedback_error_rate == pytest.approx(1 / 3)


def test_empty_statistics_are_nan():
    stats = LinkStatistics()
    assert np.isnan(stats.packet_error_rate)
    assert np.isnan(stats.median_bitrate_bps)
    assert np.isnan(stats.preamble_detection_rate)


def test_bitrate_cdf_monotone(quiet_session):
    stats = quiet_session.run_many(4)
    values, probabilities = stats.bitrate_cdf()
    assert values.size == probabilities.size
    assert np.all(np.diff(values) >= 0)
    assert probabilities[-1] == pytest.approx(1.0)


def test_channel_stability_probe(quiet_channel):
    session = LinkSession(quiet_channel, seed=9, randomize_every=0)
    snr = session.probe_channel_stability()
    assert np.isfinite(snr)
    # On a quiet static channel the second preamble should confirm a healthy band.
    assert snr > 0.0


def test_random_payload_size_matches_protocol(quiet_session):
    payload = quiet_session.random_payload()
    assert payload.size == quiet_session.payload_bits == 16
    assert set(np.unique(payload)) <= {0, 1}


def test_min_band_snr_recorded(quiet_session):
    result = quiet_session.run_packet()
    assert np.isfinite(result.min_band_snr_db)


# ------------------------------------------------------------ failure paths
_NO_DETECTION = PreambleDetection(
    detected=False, start_index=-1, coarse_metric=0.0, fine_metric=0.0
)
_NO_FEEDBACK = FeedbackDecodeResult(
    found=False, start_bin=0, end_bin=0, offset=0, peak_power_ratio=0.0
)


def test_undetected_preamble_fails_packet(quiet_session, monkeypatch):
    monkeypatch.setattr(
        quiet_session.modem, "detect_preamble", lambda received: _NO_DETECTION
    )
    result = quiet_session.run_packet()
    assert not result.delivered
    assert not result.preamble_detected
    assert not result.feedback_ok
    assert result.receiver_band is None and result.transmitter_band is None
    # A lost packet counts every payload and coded bit as wrong.
    assert result.bit_errors == result.num_payload_bits == 16
    assert result.coded_bit_errors == result.num_coded_bits
    assert np.isnan(result.coded_bitrate_bps)
    assert np.isnan(result.min_band_snr_db)


def test_lost_feedback_fails_packet(quiet_session, monkeypatch):
    monkeypatch.setattr(
        quiet_session.modem,
        "decode_feedback",
        lambda received, search_start=0, search_stop=None: _NO_FEEDBACK,
    )
    result = quiet_session.run_packet()
    assert not result.delivered
    assert result.preamble_detected
    assert not result.feedback_ok and not result.feedback_exact
    # Bob selected a band, but Alice never learned it.
    assert result.receiver_band is not None
    assert result.transmitter_band is None
    assert np.isfinite(result.min_band_snr_db)
    assert np.isfinite(result.coded_bitrate_bps)


def test_band_mismatch_decode_error_fails_packet(quiet_session, monkeypatch):
    def _raise(received, band, num_payload_bits=None, apply_bandpass=True):
        raise ValueError("burst shorter than the receiver expects")

    monkeypatch.setattr(quiet_session.modem, "decode_data", _raise)
    result = quiet_session.run_packet()
    assert not result.delivered
    assert result.preamble_detected
    assert result.feedback_ok
    assert result.receiver_band is not None
    assert result.detection_metric > 0.0
    assert result.bit_errors == result.num_payload_bits


def test_failure_paths_aggregate_into_statistics(quiet_session, monkeypatch):
    monkeypatch.setattr(
        quiet_session.modem, "detect_preamble", lambda received: _NO_DETECTION
    )
    stats = quiet_session.run_many(3)
    assert stats.packet_error_rate == 1.0
    assert stats.preamble_detection_rate == 0.0
    assert stats.feedback_error_rate == 1.0
    assert stats.payload_bit_error_rate == 1.0
    assert stats.bitrates_bps.size == 0
    assert np.isnan(stats.median_bitrate_bps)


# ------------------------------------------------------ fixed-band baselines
@pytest.mark.parametrize("scheme", FIXED_BAND_SCHEMES, ids=lambda s: s.name)
def test_fixed_band_schemes_use_their_band(quiet_channel, scheme):
    session = LinkSession(quiet_channel, scheme=scheme, seed=11)
    stats = session.run_many(2)
    expected = scheme.selection(session.modem.ofdm_config)
    for result in stats.results:
        assert result.receiver_band == expected
        assert result.transmitter_band == expected
    # Baselines need no feedback, so feedback errors are impossible and the
    # bitrate is fixed by the band width.
    assert stats.feedback_error_rate == 0.0
    assert np.unique(stats.bitrates_bps).size == 1
    assert np.isnan(stats.min_band_snrs_db()).all()
