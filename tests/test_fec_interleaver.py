"""Tests for the subcarrier interleaver."""

import numpy as np
import pytest

from repro.fec.interleaver import SubcarrierInterleaver


def test_interleave_deinterleave_roundtrip():
    rng = np.random.default_rng(0)
    for bins in (1, 2, 3, 4, 10, 19, 60):
        interleaver = SubcarrierInterleaver(bins)
        bits = rng.integers(0, 2, 57)
        grid = interleaver.interleave(bits)
        recovered = interleaver.deinterleave(grid, bits.size)
        np.testing.assert_array_equal(recovered, bits)


def test_within_symbol_order_is_permutation():
    for bins in range(1, 61):
        order = SubcarrierInterleaver(bins).within_symbol_order
        assert sorted(order.tolist()) == list(range(bins))


def test_small_bands_use_identity_order():
    # Fewer than three bins: the paper disables interleaving.
    np.testing.assert_array_equal(SubcarrierInterleaver(1).within_symbol_order, [0])
    np.testing.assert_array_equal(SubcarrierInterleaver(2).within_symbol_order, [0, 1])


def test_consecutive_bits_are_not_adjacent_for_wide_bands():
    interleaver = SubcarrierInterleaver(60)
    order = interleaver.within_symbol_order
    gaps = np.abs(np.diff(order))
    # Consecutive coded bits should land on well-separated subcarriers.
    assert np.min(gaps[:40]) > 2


def test_num_symbols_accounting():
    interleaver = SubcarrierInterleaver(10)
    assert interleaver.num_symbols(0) == 0
    assert interleaver.num_symbols(1) == 1
    assert interleaver.num_symbols(10) == 1
    assert interleaver.num_symbols(11) == 2


def test_interleave_pads_final_symbol():
    interleaver = SubcarrierInterleaver(10)
    grid = interleaver.interleave(np.ones(12, dtype=int), pad_value=0)
    assert grid.shape == (2, 10)
    assert grid.sum() == 12


def test_deinterleave_preserves_soft_values():
    interleaver = SubcarrierInterleaver(6)
    soft = np.linspace(-1, 1, 12)
    grid = interleaver.interleave(soft)
    recovered = interleaver.deinterleave(grid, 12)
    np.testing.assert_allclose(np.sort(recovered), np.sort(soft))
    np.testing.assert_allclose(recovered, soft)


def test_deinterleave_validates_shape_and_size():
    interleaver = SubcarrierInterleaver(5)
    with pytest.raises(ValueError):
        interleaver.deinterleave(np.zeros((2, 4)), 5)
    with pytest.raises(ValueError):
        interleaver.deinterleave(np.zeros((1, 5)), 6)


def test_constructor_rejects_zero_bins():
    with pytest.raises(ValueError):
        SubcarrierInterleaver(0)


def test_burst_error_on_one_subcarrier_is_spread_out():
    """A corrupted subcarrier must not hit consecutive coded bits."""
    bins = 30
    interleaver = SubcarrierInterleaver(bins)
    num_bits = 3 * bins
    bits = np.zeros(num_bits, dtype=int)
    grid = interleaver.interleave(bits)
    # Corrupt one subcarrier (column) in every symbol.
    corrupted = grid.copy()
    corrupted[:, 7] = 1
    recovered = interleaver.deinterleave(corrupted, num_bits)
    error_positions = np.nonzero(recovered != bits)[0]
    assert error_positions.size == 3
    assert np.min(np.diff(error_positions)) >= bins - 1
