"""Deterministic trace replay and A/B stack comparison.

:class:`TraceTrafficGenerator` feeds a captured (or synthesized) trace's
send events back into any :class:`~repro.net.simulator.NetworkSimulator`
as its workload.  Because the simulator expands *every* traffic
generator through a dedicated RNG stream (one draw off the master
generator, however many draws the generator itself consumes), replaying
a trace against the stack that captured it reproduces the original run's
event interleaving -- and therefore its delivery records and metrics --
bit for bit.  That exactness is what :func:`check_roundtrip` asserts and
what makes committed traces usable as regression fixtures.

:func:`compare_stacks` is the ``ab_compare`` of this layer (mirroring
:mod:`repro.validation.ab`'s seed-paired idiom): one trace, two stack
configurations, the same seed on both sides, scored into a
:class:`~repro.trace.qoe.QoeDelta` of latency CDFs/percentiles, message
QoE and SOS deadline misses.
"""

from __future__ import annotations

import numpy as np

from repro.net.packet import BROADCAST
from repro.net.topology import AcousticNetTopology
from repro.net.traffic import AppMessage, TrafficGenerator
from repro.trace.capture import metrics_signature
from repro.trace.events import Trace
from repro.trace.qoe import (
    DEFAULT_LATENCY_TAU_S,
    DEFAULT_SOS_DEADLINE_S,
    QoeDelta,
    qoe_delta,
)


class TraceTrafficGenerator(TrafficGenerator):
    """Replays a trace's send events as the scenario workload.

    The trace is already concrete, so -- unlike the synthetic
    generators -- expansion consumes no randomness at all.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace

    def messages(
        self, topology: AcousticNetTopology, rng: np.random.Generator
    ) -> list[AppMessage]:
        del rng  # a trace is deterministic by definition
        out = []
        for event in self.trace.sends():
            if event.source not in topology:
                raise ValueError(
                    f"trace source {event.source!r} is not in the topology; "
                    f"replay needs a deployment with the captured node names"
                )
            if event.destination != BROADCAST and event.destination not in topology:
                raise ValueError(
                    f"trace destination {event.destination!r} is not in the "
                    f"topology; replay needs a deployment with the captured "
                    f"node names"
                )
            out.append(
                AppMessage(
                    event.time_s, event.source, event.destination, event.size_bits
                )
            )
        out.sort(key=lambda message: (message.time_s, message.source))
        return out


def scenario_from_trace(trace: Trace, **overrides):
    """Rebuild the trace's recorded scenario, with field overrides.

    The scenario dict the capture stamped into ``meta["scenario"]`` is
    the stack description; ``overrides`` are applied through
    :meth:`~repro.experiments.net_scenario.NetScenario.replace`, which is
    how a replay swaps the link model, routing or ARQ while keeping the
    deployment (and node names) the trace was captured on.
    """
    from repro.experiments.net_scenario import NetScenario

    recorded = trace.meta.get("scenario")
    if recorded is None:
        raise ValueError(
            "trace carries no scenario metadata; pass an explicit scenario "
            "to replay_trace instead"
        )
    scenario = NetScenario.from_dict(recorded)
    return scenario.replace(**overrides) if overrides else scenario


def replay_trace(
    trace: Trace,
    scenario=None,
    observer=None,
    progress: bool = False,
    **overrides,
):
    """Replay ``trace`` against a stack and return the
    :class:`~repro.net.simulator.NetworkResult`.

    ``scenario`` defaults to the one recorded in the trace metadata;
    ``overrides`` select the stack variant under test (e.g.
    ``link="physical"`` or ``arq="none"``).
    """
    if scenario is None:
        scenario = scenario_from_trace(trace, **overrides)
    elif overrides:
        scenario = scenario.replace(**overrides)
    simulator = scenario.build_simulator(observer=observer)
    return simulator.run(traffic=TraceTrafficGenerator(trace), progress=progress)


def check_roundtrip(trace: Trace, scenario=None) -> tuple[bool, dict, dict]:
    """Replay ``trace`` against its capturing stack and compare metrics.

    Returns ``(identical, captured, replayed)`` where the dicts are the
    strict-JSON metric signatures.  ``identical`` demands bit-equality of
    every scalar -- the round-trip guarantee is exact reproduction, not
    statistical agreement.
    """
    captured = trace.meta.get("capture_metrics")
    if captured is None:
        raise ValueError(
            "trace carries no capture_metrics metadata (synthesized traces "
            "have nothing to round-trip against); capture one with "
            "capture_scenario or `cli trace capture`"
        )
    result = replay_trace(trace, scenario=scenario)
    replayed = metrics_signature(result)
    return replayed == captured, dict(captured), replayed


def compare_stacks(
    trace: Trace,
    scenario_a=None,
    scenario_b=None,
    label_a: str | None = None,
    label_b: str | None = None,
    latency_tau_s: float = DEFAULT_LATENCY_TAU_S,
    sos_deadline_s: float = DEFAULT_SOS_DEADLINE_S,
) -> QoeDelta:
    """Replay one trace against two stacks and score the QoE deltas.

    ``scenario_a`` defaults to the trace's recorded stack, ``scenario_b``
    to the full-PHY reference of the same deployment (``link="physical"``)
    -- the fast-path-vs-reference comparison the committed fixture is
    gated on.  Both replays run the identical message stream with the
    identical scenario seed, so every difference in the report is the
    stacks', not the workload's.
    """
    if scenario_a is None:
        scenario_a = scenario_from_trace(trace)
    if scenario_b is None:
        scenario_b = scenario_a.replace(link="physical")
    result_a = replay_trace(trace, scenario=scenario_a)
    result_b = replay_trace(trace, scenario=scenario_b)

    def stack_label(scenario) -> str:
        # Compact and markdown-table safe (describe() uses " | ").
        return f"{scenario.link}+{scenario.routing}+{scenario.arq}"

    return qoe_delta(
        result_a.metrics,
        result_b.metrics,
        label_a=label_a or stack_label(scenario_a),
        label_b=label_b or stack_label(scenario_b),
        latency_tau_s=latency_tau_s,
        sos_deadline_s=sos_deadline_s,
    )
