"""Trace capture/replay and synthetic user-population workloads.

The CGReplay pattern (PAPERS.md) for this reproduction: record what a
network run did at the application layer, replay it deterministically
against modified stacks, and score the user-facing deltas -- plus a
population-scale workload synthesizer so scenarios go beyond plain
Poisson.  Three pillars:

* :mod:`~repro.trace.events` -- the portable, versioned :class:`Trace`
  format (JSON lines + columnar numpy);
* :mod:`~repro.trace.capture` -- :class:`TraceRecorder`, the
  :class:`~repro.net.simulator.NetObserver` that records a run, and
  :func:`capture_scenario`;
* :mod:`~repro.trace.replay` -- :class:`TraceTrafficGenerator`,
  :func:`replay_trace`, the exact :func:`check_roundtrip` gate and the
  seed-paired :func:`compare_stacks` QoE A/B harness
  (:mod:`~repro.trace.qoe` provides the scoring);
* :mod:`~repro.trace.population` -- :class:`PopulationWorkload`
  (groups, on/off sessions, diurnal modulation, heavy-tailed sizes) and
  :func:`synthesize_trace`.

CLI: ``python -m repro.cli trace {capture,replay,synth,compare}``.
"""

from repro.trace.capture import TraceRecorder, capture_scenario, metrics_signature
from repro.trace.events import (
    EVENT_KINDS,
    PAYLOAD_KINDS,
    TRACE_FORMAT,
    TRACE_VERSION,
    Trace,
    TraceEvent,
    load_trace,
    save_trace,
)
from repro.trace.population import PopulationWorkload, synthesize_trace
from repro.trace.qoe import (
    DEFAULT_LATENCY_TAU_S,
    DEFAULT_SOS_DEADLINE_S,
    QoeDelta,
    QoeReport,
    latency_percentiles_s,
    qoe_delta,
    qoe_report,
)
from repro.trace.replay import (
    TraceTrafficGenerator,
    check_roundtrip,
    compare_stacks,
    replay_trace,
    scenario_from_trace,
)

__all__ = [
    "DEFAULT_LATENCY_TAU_S",
    "DEFAULT_SOS_DEADLINE_S",
    "EVENT_KINDS",
    "PAYLOAD_KINDS",
    "PopulationWorkload",
    "QoeDelta",
    "QoeReport",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Trace",
    "TraceEvent",
    "TraceRecorder",
    "TraceTrafficGenerator",
    "capture_scenario",
    "check_roundtrip",
    "compare_stacks",
    "latency_percentiles_s",
    "load_trace",
    "metrics_signature",
    "qoe_delta",
    "qoe_report",
    "replay_trace",
    "save_trace",
    "scenario_from_trace",
    "synthesize_trace",
]
