"""Quality-of-experience scoring of network runs.

The CGReplay pattern (PAPERS.md): once the *same* workload can be
replayed against different stacks, the interesting output is no longer a
single PDR number but the user-facing deltas -- how the latency
distribution moved, how many messages effectively "felt lost", whether
safety alerts still met their deadline.  This module turns a
:class:`~repro.net.metrics.NetworkMetrics` into a :class:`QoeReport` and
two reports into a :class:`QoeDelta`.

The message QoE score is a mean opinion score in [0, 1]: a lost message
scores 0, a delivered one ``exp(-latency / tau)`` -- instant delivery is
worth 1, a delivery after ``tau`` seconds has decayed to ~0.37, and the
tail keeps discounting but never rewards a loss.  ``tau`` defaults to
30 s, the patience scale of short-message exchanges between divers (an
SOS alert uses the stricter deadline-miss count instead).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.metrics import NetworkMetrics
from repro.utils.jsonsafe import nan_to_none

#: Latency decay constant of the message QoE score (seconds).
DEFAULT_LATENCY_TAU_S = 30.0

#: Delivery deadline for SOS broadcast alerts (seconds).
DEFAULT_SOS_DEADLINE_S = 60.0

#: Percentiles reported by :meth:`QoeReport.latency_percentiles_s`.
REPORT_PERCENTILES = (50.0, 90.0, 95.0, 99.0)


@dataclass(frozen=True)
class QoeReport:
    """User-facing quality summary of one network run.

    Attributes
    ----------
    offered, delivered:
        End-to-end payload counts.
    pdr:
        Packet delivery ratio.
    mean_latency_s, median_latency_s, p95_latency_s:
        Latency statistics over delivered payloads.
    qoe_score:
        Mean per-message score in [0, 1] (see module docstring).
    latency_tau_s:
        Decay constant the score was computed with.
    sos_offered:
        Broadcast (SOS) payload records considered.
    sos_deadline_misses:
        Broadcast records lost or delivered after ``sos_deadline_s``.
    sos_deadline_s:
        The deadline applied.
    """

    offered: int
    delivered: int
    pdr: float
    mean_latency_s: float
    median_latency_s: float
    p95_latency_s: float
    qoe_score: float
    latency_tau_s: float
    sos_offered: int
    sos_deadline_misses: int
    sos_deadline_s: float

    def to_dict(self) -> dict:
        """JSON-safe dictionary form."""
        return {
            "offered": self.offered,
            "delivered": self.delivered,
            "pdr": nan_to_none(self.pdr),
            "mean_latency_s": nan_to_none(self.mean_latency_s),
            "median_latency_s": nan_to_none(self.median_latency_s),
            "p95_latency_s": nan_to_none(self.p95_latency_s),
            "qoe_score": nan_to_none(self.qoe_score),
            "latency_tau_s": self.latency_tau_s,
            "sos_offered": self.sos_offered,
            "sos_deadline_misses": self.sos_deadline_misses,
            "sos_deadline_s": self.sos_deadline_s,
        }

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"  delivered                : {self.delivered}/{self.offered} "
            f"(PDR {self.pdr:.1%})",
            f"  latency                  : median {self.median_latency_s:.2f} s, "
            f"p95 {self.p95_latency_s:.2f} s",
            f"  message QoE score        : {self.qoe_score:.3f} "
            f"(tau {self.latency_tau_s:g} s)",
        ]
        if self.sos_offered:
            lines.append(
                f"  SOS deadline misses      : {self.sos_deadline_misses}/"
                f"{self.sos_offered} (deadline {self.sos_deadline_s:g} s)"
            )
        return "\n".join(lines)


def qoe_report(
    metrics: NetworkMetrics,
    latency_tau_s: float = DEFAULT_LATENCY_TAU_S,
    sos_deadline_s: float = DEFAULT_SOS_DEADLINE_S,
) -> QoeReport:
    """Score one run's :class:`~repro.net.metrics.NetworkMetrics`."""
    if latency_tau_s <= 0:
        raise ValueError("latency_tau_s must be positive")
    if sos_deadline_s <= 0:
        raise ValueError("sos_deadline_s must be positive")
    scores = []
    sos_offered = 0
    sos_misses = 0
    for record in metrics.records:
        latency = record.latency_s
        scores.append(
            float(np.exp(-latency / latency_tau_s)) if record.delivered else 0.0
        )
        if record.kind == "broadcast":
            sos_offered += 1
            if not record.delivered or latency > sos_deadline_s:
                sos_misses += 1
    return QoeReport(
        offered=metrics.offered,
        delivered=metrics.delivered,
        pdr=metrics.packet_delivery_ratio,
        mean_latency_s=metrics.mean_latency_s,
        median_latency_s=metrics.median_latency_s,
        p95_latency_s=metrics.p95_latency_s,
        qoe_score=float(np.mean(scores)) if scores else float("nan"),
        latency_tau_s=latency_tau_s,
        sos_offered=sos_offered,
        sos_deadline_misses=sos_misses,
        sos_deadline_s=sos_deadline_s,
    )


def latency_percentiles_s(
    metrics: NetworkMetrics, percentiles: tuple[float, ...] = REPORT_PERCENTILES
) -> dict[float, float]:
    """Latency percentiles over delivered payloads (``nan`` when empty)."""
    latencies = metrics.latencies_s()
    if not latencies.size:
        return {q: float("nan") for q in percentiles}
    values = np.percentile(latencies, percentiles)
    return {q: float(v) for q, v in zip(percentiles, values)}


@dataclass(frozen=True)
class QoeDelta:
    """Paired QoE comparison of two runs of the *same* workload.

    Deltas are ``b - a`` throughout: a positive ``pdr_delta`` means
    stack B delivered more, a positive latency delta means stack B was
    slower.
    """

    label_a: str
    label_b: str
    a: QoeReport
    b: QoeReport
    percentiles_a: dict[float, float]
    percentiles_b: dict[float, float]

    @property
    def pdr_delta(self) -> float:
        return self.b.pdr - self.a.pdr

    @property
    def qoe_delta(self) -> float:
        return self.b.qoe_score - self.a.qoe_score

    @property
    def sos_miss_delta(self) -> int:
        return self.b.sos_deadline_misses - self.a.sos_deadline_misses

    def percentile_delta_s(self, q: float) -> float:
        return self.percentiles_b[q] - self.percentiles_a[q]

    def to_dict(self) -> dict:
        """JSON-safe dictionary form."""
        return {
            "label_a": self.label_a,
            "label_b": self.label_b,
            "a": self.a.to_dict(),
            "b": self.b.to_dict(),
            "latency_percentiles_a": {
                str(q): nan_to_none(v) for q, v in self.percentiles_a.items()
            },
            "latency_percentiles_b": {
                str(q): nan_to_none(v) for q, v in self.percentiles_b.items()
            },
            "pdr_delta": nan_to_none(self.pdr_delta),
            "qoe_delta": nan_to_none(self.qoe_delta),
            "sos_miss_delta": self.sos_miss_delta,
        }

    def to_markdown(self) -> str:
        """Comparison table: one row per metric, deltas last."""
        rows = [
            "| metric | " + self.label_a + " | " + self.label_b + " | delta (b-a) |",
            "|---|---|---|---|",
            f"| PDR | {self.a.pdr:.3f} | {self.b.pdr:.3f} | {self.pdr_delta:+.3f} |",
            f"| QoE score | {self.a.qoe_score:.3f} | {self.b.qoe_score:.3f} "
            f"| {self.qoe_delta:+.3f} |",
        ]
        for q in sorted(self.percentiles_a):
            a_v, b_v = self.percentiles_a[q], self.percentiles_b[q]
            rows.append(
                f"| latency p{q:g} (s) | {a_v:.2f} | {b_v:.2f} "
                f"| {b_v - a_v:+.2f} |"
            )
        if self.a.sos_offered or self.b.sos_offered:
            rows.append(
                f"| SOS deadline misses | {self.a.sos_deadline_misses} "
                f"| {self.b.sos_deadline_misses} | {self.sos_miss_delta:+d} |"
            )
        return "\n".join(rows)


def qoe_delta(
    metrics_a: NetworkMetrics,
    metrics_b: NetworkMetrics,
    label_a: str = "a",
    label_b: str = "b",
    latency_tau_s: float = DEFAULT_LATENCY_TAU_S,
    sos_deadline_s: float = DEFAULT_SOS_DEADLINE_S,
) -> QoeDelta:
    """Score two runs of the same workload and pair the results."""
    return QoeDelta(
        label_a=label_a,
        label_b=label_b,
        a=qoe_report(metrics_a, latency_tau_s, sos_deadline_s),
        b=qoe_report(metrics_b, latency_tau_s, sos_deadline_s),
        percentiles_a=latency_percentiles_s(metrics_a),
        percentiles_b=latency_percentiles_s(metrics_b),
    )
