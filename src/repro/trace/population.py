"""Synthetic user-population workload generation.

The Poisson/CBR generators in :mod:`repro.net.traffic` model steady,
memoryless sources -- fine for protocol microbenchmarks, wrong for the
"heavy traffic from many users" scenarios the roadmap targets (and the
multi-party sessions SRMCA motivates).  Real messaging populations are
structured: users belong to small groups (dive buddy teams, vessels of a
fleet) and mostly talk within them, activity comes in sessions (a dive,
a watch shift) separated by idle stretches, the aggregate rate swings
with the time of day, and message sizes are heavy-tailed (most messages
are a few preset words, a few are long).

:class:`PopulationWorkload` composes exactly those four mechanisms, each
independently parameterized, and expands -- deterministically for a given
generator -- into the same flat, time-sorted
:class:`~repro.net.traffic.AppMessage` list every other generator
produces, so populations drop into any scenario unchanged:

* **Groups**: the deployment's nodes are partitioned into consecutive
  groups of ``group_size``; each group's first member is its leader.
* **Sessions**: every user alternates exponentially-distributed active
  and idle periods (``mean_session_s`` active, duty cycle
  ``activity_duty``); messages are only emitted while active, at rate
  ``base_rate_msgs_per_s / activity_duty`` so the long-run per-user
  average stays ``base_rate_msgs_per_s`` regardless of duty.
* **Diurnal modulation**: with ``diurnal_period_s`` set, the in-session
  emission rate follows ``1 - depth*cos(2*pi*t/period)`` (trough at
  t=0, peak half a period in), sampled exactly via Lewis-Shedler
  thinning of a homogeneous Poisson process at the peak rate.
* **Sizes**: lognormal around ``size_mean_bits`` with shape
  ``size_sigma``, clipped to ``[min_size_bits, max_size_bits]`` -- the
  heavy tail that makes airtime/energy accounting non-trivial.

Destinations: each message goes to the group leader with probability
``leader_fraction`` (the convergecast share -- position reports to the
dive leader), otherwise to a random same-group peer with probability
``in_group_fraction``, otherwise to a uniform random node of the whole
deployment (the cross-group gossip that keeps relays busy).
"""

from __future__ import annotations

import math

import numpy as np

from repro.net.packet import BROADCAST
from repro.net.topology import AcousticNetTopology
from repro.net.traffic import AppMessage, TrafficGenerator
from repro.trace.events import Trace, TraceEvent
from repro.utils.validation import require_positive


class PopulationWorkload(TrafficGenerator):
    """Parameterized user-population traffic (see module docstring)."""

    def __init__(
        self,
        duration_s: float,
        base_rate_msgs_per_s: float = 0.02,
        group_size: int = 4,
        activity_duty: float = 0.35,
        mean_session_s: float = 120.0,
        diurnal_period_s: float | None = None,
        diurnal_depth: float = 0.8,
        size_mean_bits: float = 16.0,
        size_sigma: float = 1.0,
        min_size_bits: int = 8,
        max_size_bits: int = 512,
        in_group_fraction: float = 0.8,
        leader_fraction: float = 0.1,
        sources: tuple[str, ...] | None = None,
    ) -> None:
        require_positive(duration_s, "duration_s")
        require_positive(base_rate_msgs_per_s, "base_rate_msgs_per_s")
        require_positive(mean_session_s, "mean_session_s")
        require_positive(size_mean_bits, "size_mean_bits")
        if group_size < 1:
            raise ValueError("group_size must be at least 1")
        if not 0.0 < activity_duty <= 1.0:
            raise ValueError("activity_duty must lie in (0, 1]")
        if diurnal_period_s is not None:
            require_positive(diurnal_period_s, "diurnal_period_s")
        if not 0.0 <= diurnal_depth <= 1.0:
            raise ValueError("diurnal_depth must lie in [0, 1]")
        if size_sigma < 0.0:
            raise ValueError("size_sigma must be non-negative")
        if not 1 <= min_size_bits <= max_size_bits:
            raise ValueError("need 1 <= min_size_bits <= max_size_bits")
        if not 0.0 <= in_group_fraction <= 1.0:
            raise ValueError("in_group_fraction must lie in [0, 1]")
        if not 0.0 <= leader_fraction <= 1.0:
            raise ValueError("leader_fraction must lie in [0, 1]")
        if in_group_fraction + leader_fraction > 1.0:
            raise ValueError(
                "leader_fraction + in_group_fraction must not exceed 1"
            )
        self.duration_s = float(duration_s)
        self.base_rate_msgs_per_s = float(base_rate_msgs_per_s)
        self.group_size = int(group_size)
        self.activity_duty = float(activity_duty)
        self.mean_session_s = float(mean_session_s)
        self.diurnal_period_s = (
            None if diurnal_period_s is None else float(diurnal_period_s)
        )
        self.diurnal_depth = float(diurnal_depth)
        self.size_mean_bits = float(size_mean_bits)
        self.size_sigma = float(size_sigma)
        self.min_size_bits = int(min_size_bits)
        self.max_size_bits = int(max_size_bits)
        self.in_group_fraction = float(in_group_fraction)
        self.leader_fraction = float(leader_fraction)
        self.sources = sources

    # ------------------------------------------------------------- structure
    def groups_for(
        self, topology: AcousticNetTopology
    ) -> list[tuple[str, ...]]:
        """Partition the user names into consecutive groups."""
        users = list(self.sources if self.sources is not None else topology.names)
        return [
            tuple(users[i:i + self.group_size])
            for i in range(0, len(users), self.group_size)
        ]

    # -------------------------------------------------------------- emission
    def _rate_fraction(self, time_s: float) -> float:
        """Instantaneous rate as a fraction of the peak rate (thinning)."""
        if self.diurnal_period_s is None:
            return 1.0
        modulation = 1.0 - self.diurnal_depth * math.cos(
            2.0 * math.pi * time_s / self.diurnal_period_s
        )
        return modulation / (1.0 + self.diurnal_depth)

    def _arrival_times(self, rng: np.random.Generator) -> list[float]:
        """One user's message times: on/off sessions + thinned Poisson."""
        session_rate = self.base_rate_msgs_per_s / self.activity_duty
        peak_rate = session_rate * (
            1.0 if self.diurnal_period_s is None else 1.0 + self.diurnal_depth
        )
        mean_idle_s = (
            self.mean_session_s * (1.0 - self.activity_duty) / self.activity_duty
            if self.activity_duty < 1.0
            else 0.0
        )
        times: list[float] = []
        now = 0.0
        active = bool(rng.random() < self.activity_duty)
        while now < self.duration_s:
            if active:
                end = min(
                    now + float(rng.exponential(self.mean_session_s)),
                    self.duration_s,
                )
                t = now
                while True:
                    t += float(rng.exponential(1.0 / peak_rate))
                    if t >= end:
                        break
                    if rng.random() < self._rate_fraction(t):
                        times.append(t)
                now = end
            else:
                now += float(rng.exponential(mean_idle_s)) if mean_idle_s else 0.0
            active = not active
        return times

    def _destination(
        self,
        source: str,
        group: tuple[str, ...],
        all_users: tuple[str, ...],
        rng: np.random.Generator,
    ) -> str:
        leader = group[0]
        draw = float(rng.random())
        if draw < self.leader_fraction and source != leader:
            return leader
        if draw < self.leader_fraction + self.in_group_fraction:
            peers = [name for name in group if name != source]
            if peers:
                return peers[int(rng.integers(0, len(peers)))]
        anyone = [name for name in all_users if name != source]
        if not anyone:
            raise ValueError("need at least two users for population traffic")
        return anyone[int(rng.integers(0, len(anyone)))]

    def _size_bits(self, rng: np.random.Generator) -> int:
        size = rng.lognormal(math.log(self.size_mean_bits), self.size_sigma)
        return int(np.clip(round(size), self.min_size_bits, self.max_size_bits))

    def messages(
        self, topology: AcousticNetTopology, rng: np.random.Generator
    ) -> list[AppMessage]:
        groups = self.groups_for(topology)
        all_users = tuple(name for group in groups for name in group)
        for name in all_users:
            if name not in topology:
                raise ValueError(f"unknown population user {name!r}")
        out: list[AppMessage] = []
        # Users are expanded in deployment order off one shared stream, so
        # the whole population is reproducible from a single generator.
        for group in groups:
            for source in group:
                for time_s in self._arrival_times(rng):
                    out.append(
                        AppMessage(
                            time_s,
                            source,
                            self._destination(source, group, all_users, rng),
                            self._size_bits(rng),
                        )
                    )
        out.sort(key=lambda message: (message.time_s, message.source))
        return out


def synthesize_trace(
    workload: TrafficGenerator,
    topology: AcousticNetTopology,
    seed: int = 0,
    meta: dict | None = None,
) -> Trace:
    """Expand a workload into a send-only :class:`Trace` (no simulation).

    The result replays like any captured trace (its sends *are* the
    workload), which separates workload synthesis from stack evaluation:
    synthesize once, replay against every stack variant.
    """
    rng = np.random.default_rng(seed)
    events = [
        TraceEvent(
            time_s=message.time_s,
            event="send",
            uid=index,
            source=message.source,
            destination=message.destination,
            size_bits=message.size_bits,
            kind="broadcast" if message.destination == BROADCAST else "data",
        )
        for index, message in enumerate(workload.messages(topology, rng))
    ]
    info = {"synthesized": True, "seed": int(seed)}
    info.update(meta or {})
    return Trace(events=events, meta=info)
