"""Portable, versioned app-layer trace format.

A :class:`Trace` is the record of what happened at the application layer
of one network run: every message *send*, every end-to-end *deliver*,
every finalized *drop* and every ARQ flow *abort*, each stamped with its
simulation time.  Two serializations are provided:

* **JSON lines** (:meth:`Trace.save_jsonl` / :meth:`Trace.load_jsonl`):
  one header object followed by one compact object per event -- greppable,
  diffable, append-friendly, the committed-fixture form.
* **Columnar numpy** (:meth:`Trace.to_columns` / :meth:`Trace.save_npz`):
  one array per field with node names interned into an index table --
  the form million-event traces are analysed and archived in.

Schema versioning rules: ``version`` is bumped whenever a field changes
meaning or a required field is added; loaders accept the versions listed
in :data:`SUPPORTED_TRACE_VERSIONS` -- the current one plus older
versions that read correctly as a subset of it (a trace is an experiment
artifact, not a config file -- silently reinterpreting incompatible old
captures would corrupt comparisons).  Version history: v1 is the original
schema; v2 adds the optional per-event ``reason`` field (drop/abort
causes), so every v1 document is a valid v2 document with empty reasons.
New *optional* header metadata may be added freely under ``meta``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

#: Format marker written into every trace header.
TRACE_FORMAT = "repro.trace"

#: Current schema version (see module docstring for the bump rules).
TRACE_VERSION = 2

#: Versions the loaders accept (older ones read as subsets of current).
SUPPORTED_TRACE_VERSIONS = (1, 2)

#: Event kinds, in their columnar integer encoding order.
EVENT_KINDS = ("send", "deliver", "drop", "abort")

#: Payload kinds, in their columnar integer encoding order ("" = n/a,
#: used by abort events which concern a flow, not a payload).
PAYLOAD_KINDS = ("", "data", "raw", "broadcast")


@dataclass(frozen=True)
class TraceEvent:
    """One app-layer event of a network run.

    Attributes
    ----------
    time_s:
        Simulation time of the event.  For ``drop`` events this is the
        time the loss was finalized (end of run), not the send time.
    event:
        One of :data:`EVENT_KINDS`.
    uid:
        Payload uid shared by the matching send/deliver/drop events
        (``-1`` for abort events, which reference a flow instead).
    source, destination:
        End-to-end addresses.  For broadcasts the send event carries the
        broadcast address while each deliver/drop names the concrete
        receiver.
    size_bits:
        Payload size (send events; ``0`` elsewhere).
    hop_count:
        Hops of the delivered copy (deliver events; ``0`` elsewhere).
    kind:
        Payload kind, one of :data:`PAYLOAD_KINDS`.
    flow_id:
        Aborted flow identifier (abort events; ``""`` elsewhere).
    reason:
        Why a payload was dropped or a flow aborted (drop/abort events,
        schema v2+; ``""`` elsewhere or in v1 captures).
    """

    time_s: float
    event: str
    uid: int
    source: str
    destination: str
    size_bits: int = 0
    hop_count: int = 0
    kind: str = ""
    flow_id: str = ""
    reason: str = ""

    def __post_init__(self) -> None:
        if self.event not in EVENT_KINDS:
            raise ValueError(
                f"unknown event {self.event!r}; known: {', '.join(EVENT_KINDS)}"
            )
        if self.kind not in PAYLOAD_KINDS:
            raise ValueError(
                f"unknown payload kind {self.kind!r}; known: "
                f"{', '.join(repr(k) for k in PAYLOAD_KINDS)}"
            )

    def to_dict(self) -> dict:
        """Compact JSON-line form (zero-valued optionals omitted)."""
        data = {
            "t": self.time_s,
            "ev": self.event,
            "uid": self.uid,
            "src": self.source,
            "dst": self.destination,
        }
        if self.size_bits:
            data["bits"] = self.size_bits
        if self.hop_count:
            data["hops"] = self.hop_count
        if self.kind:
            data["kind"] = self.kind
        if self.flow_id:
            data["flow"] = self.flow_id
        if self.reason:
            data["reason"] = self.reason
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            time_s=float(data["t"]),
            event=str(data["ev"]),
            uid=int(data["uid"]),
            source=str(data["src"]),
            destination=str(data["dst"]),
            size_bits=int(data.get("bits", 0)),
            hop_count=int(data.get("hops", 0)),
            kind=str(data.get("kind", "")),
            flow_id=str(data.get("flow", "")),
            reason=str(data.get("reason", "")),
        )


@dataclass
class Trace:
    """A versioned sequence of app-layer events plus free-form metadata.

    ``meta`` carries whatever the capturing context wants to persist --
    by convention the declarative scenario (``meta["scenario"]``, a
    :meth:`~repro.experiments.net_scenario.NetScenario.to_dict` dict that
    lets replay rebuild the exact stack) and the capture run's metrics
    (``meta["capture_metrics"]``, the round-trip determinism reference).
    """

    events: list[TraceEvent] = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    version: int = TRACE_VERSION

    # ------------------------------------------------------------------ views
    def sends(self) -> list[TraceEvent]:
        """The send events -- the replayable app-layer workload."""
        return [event for event in self.events if event.event == "send"]

    @property
    def num_messages(self) -> int:
        """Application messages captured."""
        return sum(event.event == "send" for event in self.events)

    @property
    def duration_s(self) -> float:
        """Time of the last event (0.0 for an empty trace)."""
        return max((event.time_s for event in self.events), default=0.0)

    def summary(self) -> str:
        """One-line human-readable description."""
        counts = {kind: 0 for kind in EVENT_KINDS}
        for event in self.events:
            counts[event.event] += 1
        return (
            f"trace v{self.version}: {counts['send']} sends, "
            f"{counts['deliver']} deliveries, {counts['drop']} drops, "
            f"{counts['abort']} aborts over {self.duration_s:.1f} s"
        )

    # ------------------------------------------------------------------ jsonl
    def dumps(self) -> str:
        """Serialize to the JSON-lines form (header line + event lines)."""
        header = {
            "format": TRACE_FORMAT,
            "version": self.version,
            "num_events": len(self.events),
            "meta": self.meta,
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(json.dumps(event.to_dict()) for event in self.events)
        return "\n".join(lines) + "\n"

    @classmethod
    def loads(cls, text: str) -> "Trace":
        """Parse the JSON-lines form produced by :meth:`dumps`."""
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("empty trace document")
        header = json.loads(lines[0])
        if header.get("format") != TRACE_FORMAT:
            raise ValueError(
                f"not a {TRACE_FORMAT} document (format={header.get('format')!r})"
            )
        version = int(header.get("version", -1))
        if version not in SUPPORTED_TRACE_VERSIONS:
            supported = ", ".join(str(v) for v in SUPPORTED_TRACE_VERSIONS)
            raise ValueError(
                f"unsupported trace version {version} (supported: {supported})"
            )
        events = [TraceEvent.from_dict(json.loads(line)) for line in lines[1:]]
        declared = header.get("num_events")
        if declared is not None and int(declared) != len(events):
            raise ValueError(
                f"truncated trace: header declares {declared} events, "
                f"found {len(events)}"
            )
        return cls(events=events, meta=dict(header.get("meta", {})), version=version)

    def save_jsonl(self, path) -> str:
        """Write the JSON-lines form to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())
        return str(path)

    @classmethod
    def load_jsonl(cls, path) -> "Trace":
        """Read a trace written by :meth:`save_jsonl`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.loads(handle.read())

    # --------------------------------------------------------------- columnar
    def to_columns(self) -> dict[str, np.ndarray]:
        """Compact columnar form: one array per field, names interned.

        Node names and flow ids are interned into ``nodes`` / ``flows``
        string tables with ``i4`` index columns (``-1`` = no flow), so a
        million-event trace costs ~30 bytes per event instead of a dict.
        """
        names = sorted(
            {event.source for event in self.events}
            | {event.destination for event in self.events}
        )
        name_index = {name: i for i, name in enumerate(names)}
        flows = sorted({event.flow_id for event in self.events if event.flow_id})
        flow_index = {flow: i for i, flow in enumerate(flows)}
        reasons = sorted({event.reason for event in self.events if event.reason})
        reason_index = {reason: i for i, reason in enumerate(reasons)}
        event_code = {kind: i for i, kind in enumerate(EVENT_KINDS)}
        payload_code = {kind: i for i, kind in enumerate(PAYLOAD_KINDS)}
        n = len(self.events)
        columns = {
            "time_s": np.zeros(n, dtype=np.float64),
            "event": np.zeros(n, dtype=np.uint8),
            "uid": np.zeros(n, dtype=np.int64),
            "source": np.zeros(n, dtype=np.int32),
            "destination": np.zeros(n, dtype=np.int32),
            "size_bits": np.zeros(n, dtype=np.int32),
            "hop_count": np.zeros(n, dtype=np.int16),
            "kind": np.zeros(n, dtype=np.uint8),
            "flow": np.full(n, -1, dtype=np.int32),
            "reason": np.full(n, -1, dtype=np.int32),
        }
        for i, event in enumerate(self.events):
            columns["time_s"][i] = event.time_s
            columns["event"][i] = event_code[event.event]
            columns["uid"][i] = event.uid
            columns["source"][i] = name_index[event.source]
            columns["destination"][i] = name_index[event.destination]
            columns["size_bits"][i] = event.size_bits
            columns["hop_count"][i] = event.hop_count
            columns["kind"][i] = payload_code[event.kind]
            if event.flow_id:
                columns["flow"][i] = flow_index[event.flow_id]
            if event.reason:
                columns["reason"][i] = reason_index[event.reason]
        columns["nodes"] = np.array(names, dtype=np.str_)
        columns["flows"] = np.array(flows, dtype=np.str_)
        columns["reasons"] = np.array(reasons, dtype=np.str_)
        return columns

    @classmethod
    def from_columns(
        cls, columns: dict[str, np.ndarray], meta: dict | None = None
    ) -> "Trace":
        """Rebuild from :meth:`to_columns` output (``reason`` columns are
        optional, so v1 archives load with empty reasons)."""
        names = [str(name) for name in columns["nodes"]]
        flows = [str(flow) for flow in columns["flows"]]
        reasons = [str(reason) for reason in columns.get("reasons", ())]
        reason_col = columns.get("reason")
        events = []
        for i in range(columns["time_s"].size):
            flow = int(columns["flow"][i])
            reason = int(reason_col[i]) if reason_col is not None else -1
            events.append(
                TraceEvent(
                    time_s=float(columns["time_s"][i]),
                    event=EVENT_KINDS[int(columns["event"][i])],
                    uid=int(columns["uid"][i]),
                    source=names[int(columns["source"][i])],
                    destination=names[int(columns["destination"][i])],
                    size_bits=int(columns["size_bits"][i]),
                    hop_count=int(columns["hop_count"][i]),
                    kind=PAYLOAD_KINDS[int(columns["kind"][i])],
                    flow_id=flows[flow] if flow >= 0 else "",
                    reason=reasons[reason] if reason >= 0 else "",
                )
            )
        return cls(events=events, meta=dict(meta or {}))

    def save_npz(self, path) -> str:
        """Write the columnar form (plus JSON-encoded meta) to ``path``."""
        columns = self.to_columns()
        header = json.dumps(
            {"format": TRACE_FORMAT, "version": self.version, "meta": self.meta},
            sort_keys=True,
        )
        np.savez_compressed(path, __header__=np.array(header), **columns)
        return str(path)

    @classmethod
    def load_npz(cls, path) -> "Trace":
        """Read a trace written by :meth:`save_npz`."""
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(str(archive["__header__"]))
            if header.get("format") != TRACE_FORMAT:
                raise ValueError(
                    f"not a {TRACE_FORMAT} archive (format={header.get('format')!r})"
                )
            version = int(header.get("version", -1))
            if version not in SUPPORTED_TRACE_VERSIONS:
                supported = ", ".join(str(v) for v in SUPPORTED_TRACE_VERSIONS)
                raise ValueError(
                    f"unsupported trace version {version} "
                    f"(supported: {supported})"
                )
            columns = {key: archive[key] for key in archive.files if key != "__header__"}
        trace = cls.from_columns(columns, meta=header.get("meta", {}))
        trace.version = version
        return trace


def load_trace(path) -> Trace:
    """Load a trace from ``path``, dispatching on the file extension."""
    if str(path).endswith(".npz"):
        return Trace.load_npz(path)
    return Trace.load_jsonl(path)


def save_trace(trace: Trace, path) -> str:
    """Save ``trace`` to ``path``, dispatching on the file extension."""
    if str(path).endswith(".npz"):
        return trace.save_npz(path)
    return trace.save_jsonl(path)
