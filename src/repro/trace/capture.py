"""Capturing a network run as a :class:`~repro.trace.events.Trace`.

:class:`TraceRecorder` is the concrete
:class:`~repro.net.simulator.NetObserver`: hand one to a
:class:`~repro.net.simulator.NetworkSimulator` (or to
:meth:`NetScenario.build_simulator
<repro.experiments.net_scenario.NetScenario.build_simulator>`) and every
app-layer send, delivery, drop and flow abort lands in the recorder as a
:class:`~repro.trace.events.TraceEvent`.  :func:`capture_scenario` wraps
the whole loop for declarative scenarios and stamps the trace with the
scenario dict and the run's metrics, which is what makes the committed
fixture a self-checking regression artifact: replaying it must reproduce
``meta["capture_metrics"]`` exactly.
"""

from __future__ import annotations

from repro.net.metrics import DeliveryRecord
from repro.net.simulator import NetObserver
from repro.net.traffic import AppMessage
from repro.trace.events import Trace, TraceEvent
from repro.utils.jsonsafe import nan_to_none


class TraceRecorder(NetObserver):
    """Accumulates the app-layer events of one simulator run."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    # ----------------------------------------------------------------- hooks
    def on_send(self, time_s: float, uid: int, message: AppMessage, kind: str) -> None:
        self.events.append(
            TraceEvent(
                time_s=time_s, event="send", uid=uid,
                source=message.source, destination=message.destination,
                size_bits=message.size_bits, kind=kind,
            )
        )

    def on_delivery(self, record: DeliveryRecord) -> None:
        self.events.append(
            TraceEvent(
                time_s=record.delivered_s, event="deliver", uid=record.uid,
                source=record.source, destination=record.destination,
                hop_count=record.hop_count, kind=record.kind,
            )
        )

    def on_drop(self, record: DeliveryRecord, time_s: float, reason: str = "") -> None:
        self.events.append(
            TraceEvent(
                time_s=time_s, event="drop", uid=record.uid,
                source=record.source, destination=record.destination,
                kind=record.kind, reason=reason,
            )
        )

    def on_flow_abort(self, time_s: float, flow_id: str, reason: str = "") -> None:
        self.events.append(
            TraceEvent(
                time_s=time_s, event="abort", uid=-1,
                source="", destination="", flow_id=flow_id, reason=reason,
            )
        )

    # ----------------------------------------------------------------- trace
    def trace(self, meta: dict | None = None) -> Trace:
        """Freeze the recorded events into a :class:`Trace`.

        Events are sorted by time with a stable key, so simultaneous
        events keep their (deterministic) emission order and the trace
        is identical however the caller interleaved hook calls.
        """
        events = sorted(
            self.events, key=lambda event: (event.time_s, event.uid)
        )
        return Trace(events=events, meta=dict(meta or {}))


def metrics_signature(result) -> dict:
    """JSON-safe metrics dict used as the round-trip determinism reference.

    Strict JSON (NaN mapped to ``None`` via the shared convention) of the
    run's full scalar metrics: replaying a captured trace against the
    same stack must reproduce every one of these values bit for bit.
    """
    return {
        key: nan_to_none(value)
        for key, value in result.metrics.to_dict().items()
    }


def capture_scenario(scenario, progress: bool = False):
    """Run a :class:`~repro.experiments.net_scenario.NetScenario`, captured.

    Returns ``(result, trace)`` where the trace's ``meta`` carries the
    scenario dict (so replay can rebuild the exact stack) and the
    capture run's :func:`metrics_signature`.
    """
    recorder = TraceRecorder()
    simulator = scenario.build_simulator(observer=recorder)
    result = simulator.run(traffic=scenario.build_traffic(), progress=progress)
    trace = recorder.trace(
        meta={
            "scenario": scenario.to_dict(),
            "capture_metrics": metrics_signature(result),
        }
    )
    return result, trace
