"""Grid expansion of scenarios.

:class:`Sweep` turns one base :class:`~repro.experiments.scenario.Scenario`
plus named parameter axes into the list of scenarios a figure needs,
replacing the nested ``for`` loops of the old benchmark files:

>>> from repro.experiments import Scenario, Sweep
>>> sweep = (
...     Sweep(Scenario(num_packets=10))
...     .paired(distance_m=[5.0, 10.0, 20.0], seed=[80, 81, 82])
...     .over(scheme=["adaptive", "fixed-3k"])
... )
>>> len(sweep)
6

``over`` adds independent axes (cartesian product, earlier axes vary
slowest); ``paired`` adds one axis whose fields vary together -- the
idiom for "seed follows the distance index" that every figure of the
paper uses.  ``where`` filters the expanded grid and ``seeded`` assigns
deterministic per-scenario seeds when no explicit seed axis is wanted.

Sweeps are immutable builders: every method returns a new sweep, so a
base sweep can be safely specialized multiple ways.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Iterator, Sequence

from repro.experiments.scenario import Scenario

_SCENARIO_FIELDS = frozenset(f.name for f in dataclasses.fields(Scenario))


def _check_fields(names: Sequence[str], axes: Sequence[Sequence[dict]]) -> None:
    unknown = [n for n in names if n not in _SCENARIO_FIELDS]
    if unknown:
        raise ValueError(
            f"unknown scenario field(s): {', '.join(unknown)}; "
            f"valid fields: {', '.join(sorted(_SCENARIO_FIELDS))}"
        )
    used = {name for axis in axes for point in axis for name in point}
    reused = [n for n in names if n in used]
    if reused:
        raise ValueError(
            f"scenario field(s) already swept by an earlier axis: {', '.join(reused)}"
        )


class Sweep:
    """Expand a base scenario over named parameter axes."""

    def __init__(self, base: Scenario | None = None) -> None:
        self.base = base if base is not None else Scenario()
        # Each axis is a list of {field: value} override dictionaries; the
        # expansion is the cartesian product of the axes applied in order.
        self._axes: tuple[tuple[dict, ...], ...] = ()
        self._predicates: tuple[Callable[[Scenario], bool], ...] = ()
        self._seed_start: int | None = None
        self._seed_step: int = 1

    def _derive(self, axes=None, predicates=None) -> "Sweep":
        clone = Sweep(self.base)
        clone._axes = self._axes if axes is None else axes
        clone._predicates = self._predicates if predicates is None else predicates
        clone._seed_start = self._seed_start
        clone._seed_step = self._seed_step
        return clone

    # ------------------------------------------------------------- building
    def over(self, **axes) -> "Sweep":
        """Add one independent axis per keyword (cartesian product).

        ``over(distance_m=[5, 10], scheme=["adaptive", "fixed-3k"])`` adds
        two axes and multiplies the sweep size by four.  Axes added first
        vary slowest in the expanded order.  A field may only be swept by
        one axis (otherwise later axes would silently duplicate scenarios).
        """
        _check_fields(list(axes), self._axes)
        new_axes = list(self._axes)
        for name, values in axes.items():
            values = list(values)
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            new_axes.append(tuple({name: value} for value in values))
        return self._derive(axes=tuple(new_axes))

    def paired(self, **axes) -> "Sweep":
        """Add one axis whose keyword fields vary together.

        All value lists must have the same length; point ``i`` of the axis
        sets every field to its ``i``-th value.  This expresses the common
        "seed follows the site index" pattern:
        ``paired(site=[BRIDGE, PARK], seed=[20, 21])``.
        """
        if not axes:
            raise ValueError("paired() needs at least one axis")
        _check_fields(list(axes), self._axes)
        columns = {name: list(values) for name, values in axes.items()}
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError(f"paired axes must have equal lengths, got {lengths}")
        count = next(iter(lengths.values()))
        axis = tuple(
            {name: columns[name][i] for name in columns} for i in range(count)
        )
        return self._derive(axes=tuple(list(self._axes) + [axis]))

    def where(self, predicate: Callable[[Scenario], bool]) -> "Sweep":
        """Keep only scenarios for which ``predicate`` returns true."""
        return self._derive(predicates=tuple(list(self._predicates) + [predicate]))

    def seeded(self, start: int = 0, step: int = 1) -> "Sweep":
        """Assign ``seed = start + i * step`` to the ``i``-th kept scenario.

        Applied after expansion and filtering, overriding any seed from the
        base scenario or the axes; the canonical way to give every point of
        a grid its own deterministic seed.
        """
        if step == 0:
            raise ValueError("step must be non-zero")
        clone = self._derive()
        clone._seed_start = start
        clone._seed_step = step
        return clone

    # ------------------------------------------------------------ expansion
    def scenarios(self) -> list[Scenario]:
        """Expand the axes into the ordered scenario list."""
        expanded = []
        for combination in itertools.product(*self._axes) if self._axes else [()]:
            overrides: dict = {}
            for point in combination:
                overrides.update(point)
            expanded.append(self.base.replace(**overrides) if overrides else self.base)
        for predicate in self._predicates:
            expanded = [s for s in expanded if predicate(s)]
        if self._seed_start is not None:
            expanded = [
                s.replace(seed=self._seed_start + i * self._seed_step)
                for i, s in enumerate(expanded)
            ]
        return expanded

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios())

    def __len__(self) -> int:
        return len(self.scenarios())

    def __repr__(self) -> str:
        sizes = " x ".join(str(len(axis)) for axis in self._axes) or "1"
        return f"Sweep({sizes} -> {len(self)} scenarios)"
