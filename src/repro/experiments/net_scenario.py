"""Declarative description of one *network* experiment point.

The single-link :class:`~repro.experiments.scenario.Scenario` freezes a
point-to-point experiment; :class:`NetScenario` does the same for a
multi-hop :mod:`repro.net` run: deployment shape, routing protocol, link
model, ARQ configuration, traffic workload and seed.  Like ``Scenario``
it is frozen, hashable, picklable and JSON-serializable, so network
points can ride the same sweep/runner machinery and CLI conventions.

>>> from repro.experiments import NetScenario, run_net_scenario
>>> point = NetScenario(num_nodes=25, routing="greedy", seed=3)
>>> result = run_net_scenario(point)        # doctest: +SKIP
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from repro.environments.sites import SITE_CATALOG
from repro.experiments.scenario import content_hash
from repro.net.congestion import CC_KINDS, RelayQueueConfig
from repro.net.links import CalibratedLink, LinkModel, PhysicalLink, calibrate_from_phy
from repro.net.routing import ROUTING_CATALOG, build_routing
from repro.net.simulator import NetworkResult, NetworkSimulator
from repro.net.topology import AcousticNetTopology
from repro.net.traffic import (
    CBRTraffic,
    PoissonTraffic,
    SosBroadcastTraffic,
    TrafficGenerator,
    convergecast_sources,
)
from repro.net.transport import ArqConfig

#: Deployment shapes :meth:`NetScenario.build_topology` understands.
TOPOLOGY_KINDS = ("line", "grid", "random")

#: Link-model keys.
LINK_KINDS = ("calibrated", "physical")

#: Traffic workload keys.
TRAFFIC_KINDS = ("poisson", "cbr", "sos", "population")

#: ARQ mode keys (``"none"`` disables reliable transport).
ARQ_KINDS = ("none", "go-back-n", "selective-repeat")


@dataclass(frozen=True)
class NetScenario:
    """One declarative network experiment point.

    Attributes
    ----------
    site:
        ``SITE_CATALOG`` key providing the acoustics.
    topology:
        Deployment shape: ``"line"``, ``"grid"`` or ``"random"``.
    num_nodes:
        Deployment size.
    spacing_m:
        Node spacing (line/grid); the random deployment covers a square
        of side ``spacing_m * sqrt(num_nodes)``.
    comm_range_m:
        Neighbour range; with grid spacing 8 m and range 12 m a packet
        crosses the deployment in several hops.
    depth_m:
        Device depth for regular deployments.
    routing:
        ``ROUTING_CATALOG`` key.
    link:
        ``"calibrated"`` (fast table) or ``"physical"`` (full PHY).
    arq:
        ``"none"``, ``"go-back-n"`` or ``"selective-repeat"``.
    window_size, timeout_s, max_retries:
        ARQ knobs (ignored for ``arq="none"``).
    cc:
        Congestion controller per ARQ flow: ``"fixed"`` (the bit-exact
        legacy window) or ``"reno"`` (AIMD with adaptive RTO).
    num_flows:
        When set, run this many concurrent convergecast flows: the
        ``num_flows`` nodes farthest from the destination (default
        ``"n0"``) each source the configured traffic towards it, sharing
        relays -- the multi-flow contention workload.  ``None`` keeps
        the legacy all-to-one/random workloads.
    queue_capacity:
        When set, bound every node's transmit buffer to this many
        packets (tail drop, accounted as ``queue_drops``).
    traffic:
        ``"poisson"``, ``"cbr"``, ``"sos"`` or ``"population"`` (the
        :class:`~repro.trace.population.PopulationWorkload` user-group
        synthesis: sessions, diurnal swing, heavy-tailed sizes).
    rate_msgs_per_s:
        Per-source Poisson rate (or ``1/interval`` for CBR).
    duration_s:
        Traffic horizon; the run drains all in-flight events afterwards.
    destination:
        Fixed destination node name, or ``None`` for random peers
        (``sos`` traffic broadcasts from node ``n0`` instead).
    ttl:
        Hop budget per packet copy.
    seed:
        Master seed; identical scenarios replay identically.
    calibration_packets_per_point:
        When set (and ``link="calibrated"``), the PER/bitrate table is
        measured freshly from the PHY with this many packets per distance
        instead of replaying the baked lake table -- the interactive
        rebuild the frequency-domain fast path makes affordable.
    calibration_progress:
        Emit per-distance progress/ETA lines on stderr while measuring
        the calibration table.  Off by default so library users (and
        parallel sweep workers) stay quiet; the CLI turns it on.
    faults_json:
        Canonical JSON of a :class:`~repro.faults.schedule.FaultSchedule`
        to inject into the run (``""`` = no faults).  Stored as a string
        so the scenario stays frozen/hashable and the schedule enters the
        scenario identity verbatim -- two scenarios with the same faults
        hash identically.
    label:
        Free-form tag for reports.
    """

    site: str = "lake"
    topology: str = "grid"
    num_nodes: int = 9
    spacing_m: float = 8.0
    comm_range_m: float = 12.0
    depth_m: float = 1.0
    routing: str = "greedy"
    link: str = "calibrated"
    arq: str = "go-back-n"
    window_size: int = 4
    timeout_s: float = 6.0
    max_retries: int = 4
    cc: str = "fixed"
    num_flows: int | None = None
    queue_capacity: int | None = None
    traffic: str = "poisson"
    rate_msgs_per_s: float = 0.02
    duration_s: float = 120.0
    destination: str | None = None
    ttl: int = 8
    seed: int = 0
    calibration_packets_per_point: int | None = None
    calibration_progress: bool = False
    faults_json: str = ""
    label: str = ""

    def __post_init__(self) -> None:
        if self.site not in SITE_CATALOG:
            raise ValueError(
                f"unknown site {self.site!r}; known: {', '.join(sorted(SITE_CATALOG))}"
            )
        for value, options, kind in (
            (self.topology, TOPOLOGY_KINDS, "topology"),
            (self.link, LINK_KINDS, "link"),
            (self.traffic, TRAFFIC_KINDS, "traffic"),
            (self.arq, ARQ_KINDS, "arq"),
        ):
            if value not in options:
                raise ValueError(
                    f"unknown {kind} {value!r}; known: {', '.join(options)}"
                )
        if self.routing not in ROUTING_CATALOG:
            raise ValueError(
                f"unknown routing {self.routing!r}; known: "
                f"{', '.join(sorted(ROUTING_CATALOG))}"
            )
        if self.cc not in CC_KINDS:
            raise ValueError(
                f"unknown cc {self.cc!r}; known: {', '.join(CC_KINDS)}"
            )
        if self.num_nodes < 2:
            raise ValueError("num_nodes must be at least 2")
        if self.num_flows is not None:
            if self.num_flows < 1:
                raise ValueError("num_flows must be at least 1")
            if self.num_flows > self.num_nodes - 1:
                raise ValueError(
                    f"num_flows={self.num_flows} needs that many "
                    f"non-destination nodes; num_nodes={self.num_nodes} "
                    f"provides {self.num_nodes - 1}"
                )
            if self.traffic not in ("poisson", "cbr"):
                raise ValueError(
                    "num_flows requires poisson or cbr traffic (the other "
                    "workloads define their own sources)"
                )
            if self.arq == "none":
                raise ValueError(
                    "num_flows describes concurrent ARQ flows; it needs "
                    "arq != 'none'"
                )
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.rate_msgs_per_s <= 0:
            raise ValueError("rate_msgs_per_s must be positive")
        if self.routing == "greedy-depth" and self.arq != "none":
            raise ValueError(
                "greedy-depth routing only moves packets shallower, so ARQ "
                "acknowledgements can never return to the sender; use "
                "arq='none' (unacknowledged convergecast) with it"
            )
        if self.destination is not None:
            known = {f"n{i}" for i in range(self.num_nodes)}
            if self.destination not in known:
                raise ValueError(
                    f"destination {self.destination!r} is not one of the "
                    f"{self.num_nodes} generated nodes (n0..n{self.num_nodes - 1})"
                )
        if self.calibration_packets_per_point is not None:
            if self.calibration_packets_per_point < 1:
                raise ValueError("calibration_packets_per_point must be at least 1")
            if self.link != "calibrated":
                raise ValueError(
                    "calibration_packets_per_point only applies to "
                    "link='calibrated' (the physical link runs the full PHY "
                    "per packet and needs no table)"
                )
        if self.faults_json:
            # Parse eagerly so an invalid schedule fails at declaration
            # time, like every other scenario field.
            self.fault_schedule()

    # ------------------------------------------------------------- components
    def fault_schedule(self):
        """Parse ``faults_json`` (``None`` when the scenario is fault-free)."""
        if not self.faults_json:
            return None
        from repro.faults import FaultSchedule

        return FaultSchedule.from_json(self.faults_json)

    def with_faults(self, schedule) -> "NetScenario":
        """Copy with a :class:`FaultSchedule` (or ``None``) installed."""
        return self.replace(
            faults_json="" if schedule is None else schedule.to_json()
        )

    def build_topology(self) -> AcousticNetTopology:
        """Construct the deployment this scenario describes."""
        site = SITE_CATALOG[self.site]
        if self.topology == "random":
            side = self.spacing_m * math.sqrt(self.num_nodes)
            return AcousticNetTopology.random_deployment(
                self.num_nodes, (side, side), site=site,
                comm_range_m=self.comm_range_m, seed=self.seed,
            )
        topology = AcousticNetTopology(site=site, comm_range_m=self.comm_range_m)
        cols = (
            self.num_nodes
            if self.topology == "line"
            else int(math.ceil(math.sqrt(self.num_nodes)))
        )
        for index in range(self.num_nodes):
            topology.add_node(
                f"n{index}",
                (index % cols) * self.spacing_m,
                (index // cols) * self.spacing_m,
                self.depth_m,
            )
        return topology

    def build_link_model(self) -> LinkModel:
        """Construct the configured per-hop link model."""
        if self.link == "physical":
            return PhysicalLink(site=SITE_CATALOG[self.site], seed=self.seed + 77)
        if self.calibration_packets_per_point is not None:
            calibration = calibrate_from_phy(
                site=self.site,
                packets_per_point=self.calibration_packets_per_point,
                seed=self.seed + 177,
                progress=self.calibration_progress,
            )
            return CalibratedLink(calibration)
        return CalibratedLink()

    def build_traffic(self) -> TrafficGenerator:
        """Construct the configured workload."""
        if self.traffic == "population":
            from repro.trace.population import PopulationWorkload

            # Two diurnal cycles per run keeps the burst/lull contrast
            # visible at any duration; the remaining knobs ride the
            # module defaults (buddy groups of 4, 35% duty, lognormal
            # sizes) so a scenario stays a one-line declaration.
            return PopulationWorkload(
                duration_s=self.duration_s,
                base_rate_msgs_per_s=self.rate_msgs_per_s,
                diurnal_period_s=self.duration_s / 2.0,
            )
        if self.traffic == "sos":
            times = tuple(
                float(t) for t in range(0, int(self.duration_s), 30)
            ) or (0.0,)
            return SosBroadcastTraffic("n0", times_s=times)
        sources = None
        destination = self.destination
        if self.num_flows is not None:
            # Convergecast: the num_flows farthest nodes all send to one
            # sink, sharing the relays near it.  Building the (cheap,
            # deterministic) topology here keeps the traffic declaration
            # self-contained.
            destination = self.destination or "n0"
            sources = convergecast_sources(
                self.build_topology(), self.num_flows, destination
            )
        if self.traffic == "cbr":
            return CBRTraffic(
                interval_s=1.0 / self.rate_msgs_per_s,
                duration_s=self.duration_s,
                sources=sources,
                destination=destination,
            )
        return PoissonTraffic(
            rate_msgs_per_s=self.rate_msgs_per_s,
            duration_s=self.duration_s,
            sources=sources,
            destination=destination,
        )

    def build_simulator(self, observer=None) -> NetworkSimulator:
        """Construct the fully wired simulator for this scenario.

        ``observer`` (a :class:`~repro.net.simulator.NetObserver`, e.g. a
        :class:`~repro.trace.capture.TraceRecorder`) taps the app layer
        without entering the scenario's identity: observation must never
        change a scenario hash or its results.
        """
        arq = (
            None
            if self.arq == "none"
            else ArqConfig(
                window_size=self.window_size,
                seq_modulus=max(2 * self.window_size, 8),
                timeout_s=self.timeout_s,
                max_retries=self.max_retries,
                mode=self.arq,
            )
        )
        topology = self.build_topology()
        faults = None
        if self.faults_json:
            from repro.faults import FaultInjector

            schedule = self.fault_schedule()
            schedule.validate_names(topology.names)
            faults = FaultInjector(schedule)
        return NetworkSimulator(
            topology=topology,
            routing=build_routing(self.routing),
            link_model=self.build_link_model(),
            arq=arq,
            ttl=self.ttl,
            seed=self.seed + 1,
            observer=observer,
            cc=self.cc,
            relay_queue=(
                RelayQueueConfig(capacity_packets=self.queue_capacity)
                if self.queue_capacity is not None
                else None
            ),
            faults=faults,
        )

    # ------------------------------------------------------------------- misc
    def replace(self, **changes) -> "NetScenario":
        """Copy with some fields changed."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-safe dictionary form (all fields are primitives)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "NetScenario":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**data)

    def scenario_hash(self) -> str:
        """Stable content hash (cache key)."""
        return content_hash(self.to_dict())

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [
            self.label or None,
            self.site,
            f"{self.num_nodes} nodes ({self.topology})",
            self.routing,
            self.link,
            None if self.arq == "none" else self.arq,
            None if self.cc == "fixed" else f"cc {self.cc}",
            None if self.num_flows is None else f"{self.num_flows} flows",
            None
            if not self.faults_json
            else (
                "faults"
                if self.fault_schedule().repair
                else "faults (no repair)"
            ),
            f"{self.traffic} {self.duration_s:g} s",
            f"seed {self.seed}",
        ]
        return " | ".join(p for p in parts if p)

    def run(self) -> NetworkResult:
        """Run the scenario in this process."""
        return self.build_simulator().run(traffic=self.build_traffic())

    def run_captured(self, progress: bool = False):
        """Run the scenario with app-layer trace capture.

        Returns ``(result, trace)``; see
        :func:`repro.trace.capture.capture_scenario`.
        """
        from repro.trace.capture import capture_scenario

        return capture_scenario(self, progress=progress)


def run_net_scenario(scenario: NetScenario) -> NetworkResult:
    """Run one network scenario (pool-friendly module-level function)."""
    return scenario.run()
