"""Parallel scenario execution with an optional on-disk result cache.

:class:`ExperimentRunner` turns a list of scenarios (or a
:class:`~repro.experiments.sweep.Sweep`) into run records:

* scenarios are independent -- each carries its own seed and builds its
  own channels -- so they are dispatched to a
  :class:`concurrent.futures.ProcessPoolExecutor` in chunks and the
  records are reassembled in submission order;
* because seeding is per scenario, a parallel run is bit-identical to a
  serial run of the same scenarios (``max_workers=1`` short-circuits the
  pool entirely, which is also the fallback when only one scenario is
  pending);
* with ``cache_dir`` set, finished records are written to
  ``<cache_dir>/<scenario_hash>-<package version>.json`` and later runs
  of the same scenario (same hash, same version) are served from disk
  without re-simulating.  Keying by the package version invalidates every
  entry when the simulation code changes, so a cached sweep can never
  silently report numbers computed by older code.  A truncated or
  otherwise corrupt entry is treated as a miss -- re-simulated and
  rewritten -- with a reason-coded :class:`CacheMissWarning`.

The primitive API is :meth:`ExperimentRunner.iter_run`: a generator that
yields records one by one as pool futures complete, in deterministic
submission order, so consumers (the streaming sweep service, live
progress displays) see results while later scenarios are still running.
The blocking :meth:`ExperimentRunner.run` /
:meth:`ExperimentRunner.run_columnar` are thin collectors over it.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import sys
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Iterator

from repro.experiments.columnar import ColumnarResultSet
from repro.experiments.records import ResultSet, RunRecord
from repro.experiments.scenario import Scenario, run_scenario


class CacheMissWarning(UserWarning):
    """A cache entry existed but could not be used (it will be rebuilt).

    Carries a machine-readable :attr:`reason` code -- ``"json-decode"``
    (truncated/garbled JSON), ``"schema"`` (well-formed JSON that does not
    decode into a record), ``"os-error"`` (unreadable file) or
    ``"npz-corrupt"`` (bad columnar artifact) -- so logs and tests can
    distinguish corruption flavours without parsing prose.
    """

    def __init__(self, path, reason: str, detail: str = "") -> None:
        self.path = pathlib.Path(path)
        self.reason = reason
        message = f"ignoring corrupt cache entry {path} [{reason}]"
        if detail:
            message += f": {detail}"
        super().__init__(message)


def warn_cache_miss(path, reason: str, detail: str = "") -> None:
    """Emit a :class:`CacheMissWarning` (shared by runner and service)."""
    warnings.warn(CacheMissWarning(path, reason, detail), stacklevel=3)


def _execute_scenario(scenario: Scenario) -> RunRecord:
    """Run one scenario and wrap it into a record (process-pool target)."""
    started = time.perf_counter()
    stats = run_scenario(scenario)
    return RunRecord.from_statistics(scenario, stats, elapsed_s=time.perf_counter() - started)


class ExperimentRunner:
    """Executes scenarios, in parallel when it pays off.

    Parameters
    ----------
    max_workers:
        Worker processes to use.  ``None`` picks ``min(num scenarios,
        cpu count)``; ``0`` or ``1`` forces serial in-process execution.
    cache_dir:
        Directory for the JSON result cache; ``None`` disables caching.
    chunk_size:
        Scenarios per dispatch chunk.  ``None`` balances chunks so every
        worker receives a few, amortizing pickling overhead on large
        sweeps without starving workers on small ones.
    progress:
        Optional callback invoked as ``progress(done, total, record)``
        after every completed scenario (cache hits included).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        cache_dir: str | pathlib.Path | None = None,
        chunk_size: int | None = None,
        progress: Callable[[int, int, RunRecord], None] | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError("max_workers must be non-negative")
        self.max_workers = max_workers
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir is not None else None
        self.chunk_size = chunk_size
        self.progress = progress
        #: Number of cache hits during the most recent run/iter_run.
        self.last_cache_hits = 0

    # -------------------------------------------------------------- caching
    def _cache_path(self, scenario: Scenario) -> pathlib.Path:
        assert self.cache_dir is not None
        from repro import __version__  # deferred: repro imports this module

        return self.cache_dir / f"{scenario.scenario_hash()}-{__version__}.json"

    def _load_cached(self, scenario: Scenario) -> RunRecord | None:
        if self.cache_dir is None:
            return None
        path = self._cache_path(scenario)
        if not path.exists():
            return None
        try:
            record = ResultSet.load(path).records[0]
        except json.JSONDecodeError as error:
            warn_cache_miss(path, "json-decode", str(error))
            return None
        except (ValueError, KeyError, IndexError, LookupError, TypeError) as error:
            warn_cache_miss(path, "schema", str(error))
            return None
        except OSError as error:
            warn_cache_miss(path, "os-error", str(error))
            return None
        # Hash collisions are unlikely but cheap to rule out.
        return record if record.scenario == scenario else None

    def _store_cached(self, record: RunRecord) -> None:
        if self.cache_dir is None:
            return
        ResultSet([record]).save(self._cache_path(record.scenario), include_timing=True)

    # -------------------------------------------------------------- running
    def iter_run(
        self,
        scenarios: Iterable[Scenario],
        progress: bool | Callable[[str], None] | None = None,
    ) -> Iterator[RunRecord]:
        """Execute the scenarios, yielding records as they complete.

        Records come out in deterministic submission order -- the same
        order, with byte-identical contents, as the blocking :meth:`run`
        -- but each one is yielded as soon as it (and every earlier one)
        is available, so a consumer can process, persist or display
        results while later scenarios are still executing.

        The cache is resolved eagerly when ``iter_run`` is called (so
        :attr:`last_cache_hits` is correct immediately); simulation work
        happens lazily as the generator is consumed.

        ``progress`` follows the ``calibrate_from_phy`` idiom: ``True``
        prints per-record lines with elapsed/ETA to stderr, a callable
        receives the same lines, ``None`` is silent.  The structured
        ``progress(done, total, record)`` constructor callback fires
        either way.
        """
        ordered = list(scenarios)
        slots: list[RunRecord | None] = [None] * len(ordered)
        self.last_cache_hits = 0

        pending: list[tuple[int, Scenario]] = []
        for index, scenario in enumerate(ordered):
            cached = self._load_cached(scenario)
            if cached is not None:
                slots[index] = cached
                self.last_cache_hits += 1
            else:
                pending.append((index, scenario))

        if progress is True:
            emit = lambda line: print(line, file=sys.stderr)  # noqa: E731
        elif callable(progress):
            emit = progress
        else:
            emit = None
        return self._stream(ordered, slots, pending, emit)

    def _stream(
        self,
        ordered: list[Scenario],
        slots: list[RunRecord | None],
        pending: list[tuple[int, Scenario]],
        emit: Callable[[str], None] | None,
    ) -> Iterator[RunRecord]:
        total = len(ordered)
        workers = self.max_workers
        if workers is None:
            workers = min(len(pending), os.cpu_count() or 1)

        started = time.perf_counter()
        done = 0
        with contextlib.ExitStack() as stack:
            if pending:
                to_run = [scenario for _, scenario in pending]
                if workers <= 1 or len(pending) == 1:
                    record_iter = map(_execute_scenario, to_run)
                else:
                    chunk = self.chunk_size
                    if chunk is None:
                        chunk = max(1, len(pending) // (4 * workers))
                    pool = stack.enter_context(
                        ProcessPoolExecutor(max_workers=workers)
                    )
                    # pool.map yields in submission order as chunks finish,
                    # which is exactly the streaming order we guarantee.
                    record_iter = pool.map(_execute_scenario, to_run, chunksize=chunk)
                pending_results = zip(pending, record_iter)
            else:
                pending_results = iter(())

            for index in range(total):
                record = slots[index]
                if record is None:
                    (slot_index, _), record = next(pending_results)
                    assert slot_index == index
                    slots[index] = record
                    self._store_cached(record)
                done += 1
                if self.progress is not None:
                    self.progress(done, total, record)
                if emit is not None:
                    elapsed = time.perf_counter() - started
                    eta = elapsed / done * (total - done)
                    emit(
                        f"sweep {done}/{total}: {record.scenario.describe()} "
                        f"({elapsed:.1f}s elapsed, eta {eta:.1f}s)"
                    )
                yield record

    def run(
        self,
        scenarios: Iterable[Scenario],
        progress: bool | Callable[[str], None] | None = None,
    ) -> ResultSet:
        """Execute the scenarios and return their records in order.

        A blocking collector over :meth:`iter_run`; the two produce
        byte-identical records in identical order.
        """
        return ResultSet(list(self.iter_run(scenarios, progress=progress)))

    def run_columnar(
        self,
        scenarios: Iterable[Scenario],
        progress: bool | Callable[[str], None] | None = None,
    ) -> ColumnarResultSet:
        """Execute the scenarios straight into columnar arenas.

        Equivalent to ``ColumnarResultSet(self.run(scenarios))`` but the
        records are appended as they stream in, never held as a list.
        """
        results = ColumnarResultSet()
        for record in self.iter_run(scenarios, progress=progress):
            results.append(record)
        return results
