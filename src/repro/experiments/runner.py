"""Parallel scenario execution with an optional on-disk result cache.

:class:`ExperimentRunner` turns a list of scenarios (or a
:class:`~repro.experiments.sweep.Sweep`) into a
:class:`~repro.experiments.records.ResultSet`:

* scenarios are independent -- each carries its own seed and builds its
  own channels -- so they are dispatched to a
  :class:`concurrent.futures.ProcessPoolExecutor` in chunks and the
  records are reassembled in submission order;
* because seeding is per scenario, a parallel run is bit-identical to a
  serial run of the same scenarios (``max_workers=1`` short-circuits the
  pool entirely, which is also the fallback when only one scenario is
  pending);
* with ``cache_dir`` set, finished records are written to
  ``<cache_dir>/<scenario_hash>-<package version>.json`` and later runs
  of the same scenario (same hash, same version) are served from disk
  without re-simulating.  Keying by the package version invalidates every
  entry when the simulation code changes, so a cached sweep can never
  silently report numbers computed by older code.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable

from repro.experiments.records import ResultSet, RunRecord
from repro.experiments.scenario import Scenario, run_scenario


def _execute_scenario(scenario: Scenario) -> RunRecord:
    """Run one scenario and wrap it into a record (process-pool target)."""
    started = time.perf_counter()
    stats = run_scenario(scenario)
    return RunRecord.from_statistics(scenario, stats, elapsed_s=time.perf_counter() - started)


class ExperimentRunner:
    """Executes scenarios, in parallel when it pays off.

    Parameters
    ----------
    max_workers:
        Worker processes to use.  ``None`` picks ``min(num scenarios,
        cpu count)``; ``0`` or ``1`` forces serial in-process execution.
    cache_dir:
        Directory for the JSON result cache; ``None`` disables caching.
    chunk_size:
        Scenarios per dispatch chunk.  ``None`` balances chunks so every
        worker receives a few, amortizing pickling overhead on large
        sweeps without starving workers on small ones.
    progress:
        Optional callback invoked as ``progress(done, total, record)``
        after every completed scenario (cache hits included).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        cache_dir: str | pathlib.Path | None = None,
        chunk_size: int | None = None,
        progress: Callable[[int, int, RunRecord], None] | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError("max_workers must be non-negative")
        self.max_workers = max_workers
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir is not None else None
        self.chunk_size = chunk_size
        self.progress = progress
        #: Number of cache hits during the most recent :meth:`run`.
        self.last_cache_hits = 0

    # -------------------------------------------------------------- caching
    def _cache_path(self, scenario: Scenario) -> pathlib.Path:
        assert self.cache_dir is not None
        from repro import __version__  # deferred: repro imports this module

        return self.cache_dir / f"{scenario.scenario_hash()}-{__version__}.json"

    def _load_cached(self, scenario: Scenario) -> RunRecord | None:
        if self.cache_dir is None:
            return None
        path = self._cache_path(scenario)
        if not path.exists():
            return None
        try:
            record = ResultSet.load(path).records[0]
        except (ValueError, KeyError, IndexError, LookupError, TypeError, OSError):
            return None  # corrupt, stale or unreadable cache entry: recompute
        # Hash collisions are unlikely but cheap to rule out.
        return record if record.scenario == scenario else None

    def _store_cached(self, record: RunRecord) -> None:
        if self.cache_dir is None:
            return
        ResultSet([record]).save(self._cache_path(record.scenario), include_timing=True)

    # -------------------------------------------------------------- running
    def run(self, scenarios: Iterable[Scenario]) -> ResultSet:
        """Execute the scenarios and return their records in order."""
        ordered = list(scenarios)
        slots: list[RunRecord | None] = [None] * len(ordered)
        self.last_cache_hits = 0

        pending: list[tuple[int, Scenario]] = []
        for index, scenario in enumerate(ordered):
            cached = self._load_cached(scenario)
            if cached is not None:
                slots[index] = cached
                self.last_cache_hits += 1
            else:
                pending.append((index, scenario))

        total = len(ordered)
        done = 0
        for record in slots:
            if record is not None:
                done += 1
                if self.progress is not None:
                    self.progress(done, total, record)

        workers = self.max_workers
        if workers is None:
            workers = min(len(pending), os.cpu_count() or 1)
        if pending:
            to_run = [s for _, s in pending]
            with contextlib.ExitStack() as stack:
                if workers <= 1 or len(pending) == 1:
                    record_iter = map(_execute_scenario, to_run)
                else:
                    chunk = self.chunk_size
                    if chunk is None:
                        chunk = max(1, len(pending) // (4 * workers))
                    pool = stack.enter_context(ProcessPoolExecutor(max_workers=workers))
                    record_iter = pool.map(_execute_scenario, to_run, chunksize=chunk)
                for (index, _), record in zip(pending, record_iter):
                    slots[index] = record
                    self._store_cached(record)
                    done += 1
                    if self.progress is not None:
                        self.progress(done, total, record)

        assert all(record is not None for record in slots)
        return ResultSet(slots)  # type: ignore[arg-type]
