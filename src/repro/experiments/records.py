"""Serializable experiment results.

:class:`RunRecord` captures everything a figure needs from one executed
scenario -- the aggregate link metrics plus the per-packet series
(bitrates, band edges, in-band SNRs, delivery flags) -- in plain Python
types, so records survive process boundaries and JSON round trips without
dragging :class:`~repro.link.session.LinkStatistics` (and its numpy
state) along.  :class:`ResultSet` is an ordered collection of records with
tabular and JSON export, subsuming the ad-hoc figure-table plumbing the
benchmark harness used to carry.

Records compare equal when their scientific content is identical; the
wall-clock ``elapsed_s`` field is deliberately excluded so a serial run
and a parallel run of the same scenarios produce equal result sets.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.analysis.metrics import format_table
from repro.experiments.scenario import Scenario
from repro.link.session import LinkStatistics
from repro.utils.jsonsafe import nan_to_none as _nan_to_none
from repro.utils.jsonsafe import none_to_nan as _none_to_nan

#: Default columns of :meth:`ResultSet.to_table`.
DEFAULT_TABLE_COLUMNS = (
    "scenario",
    "packets",
    "per",
    "coded_ber",
    "median_bps",
    "detect",
    "feedback_err",
)




@dataclass(eq=False)
class RunRecord:
    """Result of running one scenario.

    Attributes
    ----------
    scenario:
        The scenario that produced this record.
    num_packets, delivered:
        Packet counts.
    packet_error_rate, payload_bit_error_rate, coded_bit_error_rate,
    preamble_detection_rate, feedback_error_rate:
        The aggregate metrics of :class:`LinkStatistics`.
    bitrates_bps:
        Per-packet selected coded bitrate (``nan`` when no band was known).
    band_starts_hz, band_ends_hz:
        Per-packet selected band edges (``nan`` when no band was known).
    min_band_snrs_db:
        Per-packet minimum in-band SNR.
    delivered_flags:
        Per-packet delivery outcome.
    elapsed_s:
        Wall-clock execution time; excluded from equality and (by default)
        from serialization, so results are reproducible bit for bit.
    """

    scenario: Scenario
    num_packets: int
    delivered: int
    packet_error_rate: float
    payload_bit_error_rate: float
    coded_bit_error_rate: float
    preamble_detection_rate: float
    feedback_error_rate: float
    bitrates_bps: tuple[float, ...]
    band_starts_hz: tuple[float, ...]
    band_ends_hz: tuple[float, ...]
    min_band_snrs_db: tuple[float, ...]
    delivered_flags: tuple[bool, ...]
    elapsed_s: float = field(default=0.0)

    @classmethod
    def from_statistics(
        cls, scenario: Scenario, stats: LinkStatistics, elapsed_s: float = 0.0
    ) -> "RunRecord":
        """Summarize one scenario's link statistics into a record."""
        bitrates, starts, ends = [], [], []
        for result in stats.results:
            bitrates.append(float(result.coded_bitrate_bps))
            band = result.receiver_band
            starts.append(float(band.start_frequency_hz) if band else float("nan"))
            ends.append(float(band.end_frequency_hz) if band else float("nan"))
        return cls(
            scenario=scenario,
            num_packets=stats.num_packets,
            delivered=sum(r.delivered for r in stats.results),
            packet_error_rate=float(stats.packet_error_rate),
            payload_bit_error_rate=float(stats.payload_bit_error_rate),
            coded_bit_error_rate=float(stats.coded_bit_error_rate),
            preamble_detection_rate=float(stats.preamble_detection_rate),
            feedback_error_rate=float(stats.feedback_error_rate),
            bitrates_bps=tuple(bitrates),
            band_starts_hz=tuple(starts),
            band_ends_hz=tuple(ends),
            min_band_snrs_db=tuple(float(r.min_band_snr_db) for r in stats.results),
            delivered_flags=tuple(bool(r.delivered) for r in stats.results),
            elapsed_s=float(elapsed_s),
        )

    # ------------------------------------------------------------- derived
    @property
    def finite_bitrates_bps(self) -> np.ndarray:
        """Per-packet bitrates with unknown-band packets dropped."""
        rates = np.asarray(self.bitrates_bps, dtype=float)
        return rates[np.isfinite(rates)]

    @property
    def median_bitrate_bps(self) -> float:
        """Median selected coded bitrate."""
        rates = self.finite_bitrates_bps
        return float(np.median(rates)) if rates.size else float("nan")

    def bitrate_percentiles(self, percentiles) -> np.ndarray:
        """Bitrate percentiles (``nan``-filled when no band was ever known)."""
        rates = self.finite_bitrates_bps
        if rates.size == 0:
            return np.full(len(tuple(percentiles)), float("nan"))
        return np.percentile(rates, list(percentiles))

    def median_band_edges_hz(self) -> tuple[float, float]:
        """Median selected band edges over packets with a known band."""
        starts = np.asarray(self.band_starts_hz, dtype=float)
        ends = np.asarray(self.band_ends_hz, dtype=float)
        known = np.isfinite(starts)
        if not known.any():
            return float("nan"), float("nan")
        return float(np.median(starts[known])), float(np.median(ends[known]))

    # ------------------------------------------------------ serialization
    def to_dict(self, include_timing: bool = False) -> dict:
        """JSON-safe dictionary form (timing excluded by default)."""
        data = {
            "scenario": self.scenario.to_dict(),
            "num_packets": self.num_packets,
            "delivered": self.delivered,
            "packet_error_rate": _nan_to_none(self.packet_error_rate),
            "payload_bit_error_rate": _nan_to_none(self.payload_bit_error_rate),
            "coded_bit_error_rate": _nan_to_none(self.coded_bit_error_rate),
            "preamble_detection_rate": _nan_to_none(self.preamble_detection_rate),
            "feedback_error_rate": _nan_to_none(self.feedback_error_rate),
            "bitrates_bps": [_nan_to_none(v) for v in self.bitrates_bps],
            "band_starts_hz": [_nan_to_none(v) for v in self.band_starts_hz],
            "band_ends_hz": [_nan_to_none(v) for v in self.band_ends_hz],
            "min_band_snrs_db": [_nan_to_none(v) for v in self.min_band_snrs_db],
            "delivered_flags": list(self.delivered_flags),
        }
        if include_timing:
            data["elapsed_s"] = self.elapsed_s
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            num_packets=int(data["num_packets"]),
            delivered=int(data["delivered"]),
            packet_error_rate=_none_to_nan(data["packet_error_rate"]),
            payload_bit_error_rate=_none_to_nan(data["payload_bit_error_rate"]),
            coded_bit_error_rate=_none_to_nan(data["coded_bit_error_rate"]),
            preamble_detection_rate=_none_to_nan(data["preamble_detection_rate"]),
            feedback_error_rate=_none_to_nan(data["feedback_error_rate"]),
            bitrates_bps=tuple(_none_to_nan(v) for v in data["bitrates_bps"]),
            band_starts_hz=tuple(_none_to_nan(v) for v in data["band_starts_hz"]),
            band_ends_hz=tuple(_none_to_nan(v) for v in data["band_ends_hz"]),
            min_band_snrs_db=tuple(_none_to_nan(v) for v in data["min_band_snrs_db"]),
            delivered_flags=tuple(bool(v) for v in data["delivered_flags"]),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunRecord):
            return NotImplemented
        # Dictionary comparison treats NaN as None, so records with the
        # same missing values compare equal (NaN != NaN would break this).
        return self.to_dict() == other.to_dict()


class ResultSet:
    """Ordered collection of run records with export helpers.

    This is the per-record object form; large campaigns are better
    served by its columnar twin,
    :class:`~repro.experiments.columnar.ColumnarResultSet`, which is
    observationally identical (same ``where``/``metric``/``to_table``
    surface, gated by an equivalence oracle in the test suite) but
    aggregates vectorized over numpy arenas.  Convert with
    :meth:`to_columnar`.
    """

    def __init__(self, records: list[RunRecord] | None = None) -> None:
        self.records: list[RunRecord] = list(records or [])

    # ------------------------------------------------------------- protocol
    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index):
        picked = self.records[index]
        return ResultSet(picked) if isinstance(index, slice) else picked

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.records == other.records

    def append(self, record: RunRecord) -> None:
        """Add one more record."""
        self.records.append(record)

    # ------------------------------------------------------------ selection
    def where(self, predicate: Callable[[RunRecord], bool] | None = None, **criteria) -> "ResultSet":
        """Records whose scenario matches the criteria (and predicate)."""
        picked = [
            r for r in self.records
            if r.scenario.matches(**criteria) and (predicate is None or predicate(r))
        ]
        return ResultSet(picked)

    def lookup(self, **criteria) -> RunRecord:
        """The single record matching the criteria; raises otherwise."""
        picked = self.where(**criteria)
        if len(picked) != 1:
            raise LookupError(
                f"expected exactly one record for {criteria}, found {len(picked)}"
            )
        return picked.records[0]

    def metric(self, name: str) -> np.ndarray:
        """Array of one metric (attribute/property name) across records."""
        return np.asarray([getattr(r, name) for r in self.records], dtype=float)

    # --------------------------------------------------------------- export
    def to_columnar(self):
        """This result set in columnar arena form (lossless)."""
        # Deferred import: columnar builds on this module.
        from repro.experiments.columnar import ColumnarResultSet

        return ColumnarResultSet.from_result_set(self)

    def to_dicts(self, include_timing: bool = False) -> list[dict]:
        """List-of-dictionaries form."""
        return [r.to_dict(include_timing=include_timing) for r in self.records]

    def to_json(self, indent: int | None = None, include_timing: bool = False) -> str:
        """JSON form (stable across serial/parallel execution)."""
        return json.dumps(self.to_dicts(include_timing=include_timing), indent=indent)

    def save(self, path: str | pathlib.Path, include_timing: bool = False) -> pathlib.Path:
        """Write the result set to a JSON file and return its path."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(indent=2, include_timing=include_timing), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "ResultSet":
        """Load a result set previously written by :meth:`save`."""
        data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
        return cls([RunRecord.from_dict(entry) for entry in data])

    def to_table(self, columns=DEFAULT_TABLE_COLUMNS) -> str:
        """Fixed-width text table of the result set.

        Columns are names from :data:`DEFAULT_TABLE_COLUMNS` or any record
        attribute; ``scenario`` renders the scenario's one-line summary.
        """
        renderers = {
            "scenario": lambda r: r.scenario.describe(),
            "packets": lambda r: str(r.num_packets),
            "per": lambda r: f"{r.packet_error_rate:.2f}",
            "coded_ber": lambda r: f"{r.coded_bit_error_rate:.3f}",
            "median_bps": lambda r: f"{r.median_bitrate_bps:.0f}",
            "detect": lambda r: f"{r.preamble_detection_rate:.1%}",
            "feedback_err": lambda r: f"{r.feedback_error_rate:.1%}",
            "elapsed_s": lambda r: f"{r.elapsed_s:.2f}",
        }
        rows = []
        for record in self.records:
            row = []
            for column in columns:
                if column in renderers:
                    row.append(renderers[column](record))
                else:
                    row.append(str(getattr(record, column)))
            rows.append(row)
        return format_table(list(columns), rows)

    @property
    def total_elapsed_s(self) -> float:
        """Sum of the per-record execution times."""
        return float(sum(r.elapsed_s for r in self.records))
