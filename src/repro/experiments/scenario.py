"""Declarative description of one experiment point.

A :class:`Scenario` freezes everything that defines a single link
experiment -- where (site), the geometry (distance, depths, orientation),
the hardware (devices, waterproof case), the motion, the transmission
scheme, the modem build options, how many packets to run and which seed to
use.  It replaces the long positional-argument signature the benchmark
harness used to thread through ``build_link_pair`` + ``LinkSession``:

>>> from repro.experiments import Scenario, run_scenario
>>> scenario = Scenario(site="lake", distance_m=10.0, num_packets=5, seed=3)
>>> stats = run_scenario(scenario)          # doctest: +SKIP

Scenarios are frozen dataclasses: hashable, picklable (so they can cross
process boundaries in :class:`~repro.experiments.runner.ExperimentRunner`)
and serializable to plain dictionaries via :meth:`Scenario.to_dict` /
:meth:`Scenario.from_dict`.  :meth:`Scenario.scenario_hash` gives a stable
content hash used to key the runner's on-disk result cache.

Catalog entries (sites, devices, cases, motion presets, fixed-band
schemes) may be given either as the catalog objects themselves or as their
string keys; strings are resolved eagerly so a typo fails at construction
time, not deep inside a worker process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.channel.motion import MOTION_PRESETS, STATIC_MOTION, MotionModel
from repro.core.baselines import FIXED_BAND_SCHEMES, FixedBandScheme
from repro.core.config import OFDMConfig, ProtocolConfig
from repro.core.equalizer import EQUALIZER_SOLVERS
from repro.core.modem import AquaModem
from repro.devices.case import CASE_CATALOG, SOFT_POUCH, WaterproofCase
from repro.devices.models import DEVICE_CATALOG, GALAXY_S9, DeviceModel
from repro.devices.response import FrequencyResponse, ResponseNotch
from repro.environments.factory import build_link_pair
from repro.environments.sites import LAKE, SITE_CATALOG, Site
from repro.link.session import LinkSession, LinkStatistics

#: Scheme keys accepted by :class:`Scenario` (mirroring the CLI spellings).
SCHEME_CATALOG: dict[str, FixedBandScheme | str] = {
    "adaptive": "adaptive",
    "fixed-3k": FIXED_BAND_SCHEMES[0],
    "fixed-1.5k": FIXED_BAND_SCHEMES[1],
    "fixed-0.5k": FIXED_BAND_SCHEMES[2],
}


def content_hash(data: dict) -> str:
    """Stable 16-hex-digit hash of a JSON-safe dictionary.

    The cache key used by :class:`~repro.experiments.runner.\
    ExperimentRunner`; shared by every scenario flavour so the keying
    scheme cannot drift between them.
    """
    canonical = json.dumps(data, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _resolve(value, catalog: dict, kind: str):
    """Resolve a catalog key to its object, passing objects through."""
    if isinstance(value, str):
        try:
            return catalog[value]
        except KeyError:
            raise ValueError(
                f"unknown {kind} {value!r}; known: {', '.join(sorted(catalog))}"
            ) from None
    return value


def _catalog_key(value, catalog: dict) -> str | None:
    """Return the catalog key of ``value`` or ``None`` if it is custom."""
    for key, entry in catalog.items():
        if entry == value:
            return key
    return None


def _serialize_catalog_value(value, catalog: dict) -> str | dict:
    """Serialize a catalog object: its key when known, its fields otherwise."""
    key = _catalog_key(value, catalog)
    return key if key is not None else dataclasses.asdict(value)


def _deserialize_catalog_value(data, catalog: dict, cls, kind: str):
    if isinstance(data, str):
        return _resolve(data, catalog, kind)
    return cls(**data)


def _response_from_dict(data: dict) -> FrequencyResponse:
    """Rebuild a frequency response from its ``dataclasses.asdict`` form."""
    return FrequencyResponse(
        anchor_frequencies_hz=tuple(data["anchor_frequencies_hz"]),
        anchor_gains_db=tuple(data["anchor_gains_db"]),
        notches=tuple(ResponseNotch(**notch) for notch in data.get("notches", ())),
        label=data.get("label", ""),
    )


def _device_from_dict(data) -> DeviceModel:
    if isinstance(data, str):
        return _resolve(data, DEVICE_CATALOG, "device")
    data = dict(data)
    data["speaker_response"] = _response_from_dict(data["speaker_response"])
    data["microphone_response"] = _response_from_dict(data["microphone_response"])
    return DeviceModel(**data)


def _case_from_dict(data) -> WaterproofCase:
    if isinstance(data, str):
        return _resolve(data, CASE_CATALOG, "case")
    data = dict(data)
    data["response"] = _response_from_dict(data["response"])
    return WaterproofCase(**data)


@dataclass(frozen=True)
class ModemSpec:
    """Declarative modem build options for a scenario.

    Only the options the evaluation actually varies are exposed; everything
    else keeps the paper's defaults.  :meth:`build` constructs the
    corresponding :class:`~repro.core.modem.AquaModem`.

    Attributes
    ----------
    payload_bits:
        Payload size per packet (16 bits in the messaging app; the
        differential-coding study uses 192-bit bursts).
    use_differential, use_interleaving, use_equalizer:
        Modem feature toggles (the ablation knobs of Fig. 14 / Table 2).
    subcarrier_spacing_hz:
        Alternative subcarrier spacing (Fig. 17); ``None`` keeps 50 Hz.
    equalizer_solver:
        Toeplitz solver of the receive equalizer: ``"levinson"`` (the fast
        path, default) or ``"dense"`` (the retained O(n^3) reference).
        Exposed so the validation harness can rerun whole figures with the
        reference solver and confirm end-to-end equivalence statistically.
    """

    payload_bits: int = 16
    use_differential: bool = True
    use_interleaving: bool = True
    use_equalizer: bool = True
    subcarrier_spacing_hz: float | None = None
    equalizer_solver: str = "levinson"

    def __post_init__(self) -> None:
        # Fail at spec construction, not inside the first decode of a
        # pool worker mid-sweep.
        if self.equalizer_solver not in EQUALIZER_SOLVERS:
            raise ValueError(
                f"equalizer_solver must be one of {EQUALIZER_SOLVERS}, "
                f"got {self.equalizer_solver!r}"
            )

    def build(self) -> AquaModem:
        """Construct the modem this spec describes."""
        ofdm = OFDMConfig()
        if self.subcarrier_spacing_hz is not None:
            ofdm = ofdm.with_subcarrier_spacing(self.subcarrier_spacing_hz)
        protocol = ProtocolConfig(payload_bits=self.payload_bits)
        return AquaModem(
            ofdm_config=ofdm,
            protocol_config=protocol,
            use_differential=self.use_differential,
            use_interleaving=self.use_interleaving,
            use_equalizer=self.use_equalizer,
            equalizer_solver=self.equalizer_solver,
        )

    def to_dict(self) -> dict:
        """Plain-dictionary form (JSON-safe)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ModemSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class Scenario:
    """One declarative experiment point.

    Attributes
    ----------
    site:
        Evaluation site (a :class:`~repro.environments.sites.Site` or a
        ``SITE_CATALOG`` key such as ``"lake"``).
    distance_m:
        Horizontal transmitter-receiver separation in metres.
    tx_depth_m, rx_depth_m:
        Device depths; ``rx_depth_m=None`` mirrors the transmitter depth.
    orientation_deg:
        Azimuth offset between the devices.
    motion:
        Motion model (object or ``MOTION_PRESETS`` key).
    tx_device, rx_device:
        Device models (objects or ``DEVICE_CATALOG`` keys).
    case:
        Waterproof case used on both ends (object or ``CASE_CATALOG`` key).
    scheme:
        ``"adaptive"``, a ``SCHEME_CATALOG`` key (``"fixed-3k"`` ...), or a
        :class:`~repro.core.baselines.FixedBandScheme`.
    modem:
        Modem build options (:class:`ModemSpec`).
    num_packets:
        Number of protocol exchanges to run.
    seed:
        Base seed; the channel pair uses ``seed`` and the link session
        ``seed + 1``, exactly like the original benchmark harness.
    use_fast_path:
        Whether the channels run the frequency-domain fast path
        (default) or the retained ``fftconvolve`` reference pipeline.
        Seed-paired scenarios differing only in this flag are how the
        validation harness confirms fast-path equivalence end-to-end.
    label:
        Optional human-readable tag carried through to records and tables.
    """

    site: Site | str = LAKE
    distance_m: float = 5.0
    tx_depth_m: float = 1.0
    rx_depth_m: float | None = None
    orientation_deg: float = 0.0
    motion: MotionModel | str = STATIC_MOTION
    tx_device: DeviceModel | str = GALAXY_S9
    rx_device: DeviceModel | str = GALAXY_S9
    case: WaterproofCase | str = SOFT_POUCH
    scheme: FixedBandScheme | str = "adaptive"
    modem: ModemSpec = field(default_factory=ModemSpec)
    num_packets: int = 25
    seed: int = 0
    use_fast_path: bool = True
    label: str = ""

    def __post_init__(self) -> None:
        set_ = lambda name, value: object.__setattr__(self, name, value)
        set_("site", _resolve(self.site, SITE_CATALOG, "site"))
        set_("motion", _resolve(self.motion, MOTION_PRESETS, "motion preset"))
        set_("tx_device", _resolve(self.tx_device, DEVICE_CATALOG, "device"))
        set_("rx_device", _resolve(self.rx_device, DEVICE_CATALOG, "device"))
        set_("case", _resolve(self.case, CASE_CATALOG, "case"))
        if isinstance(self.scheme, str):
            set_("scheme", _resolve(self.scheme, SCHEME_CATALOG, "scheme"))
        if self.distance_m <= 0:
            raise ValueError("distance_m must be positive")
        if self.distance_m > self.site.max_range_m:
            raise ValueError(
                f"distance {self.distance_m} m exceeds the usable range of the "
                f"{self.site.name} site ({self.site.max_range_m} m)"
            )
        if self.num_packets <= 0:
            raise ValueError("num_packets must be positive")

    # ----------------------------------------------------------- identity
    @property
    def scheme_key(self) -> str:
        """Canonical scheme spelling (``"adaptive"``, ``"fixed-3k"``, ...)."""
        key = _catalog_key(self.scheme, SCHEME_CATALOG)
        return key if key is not None else self.scheme.name

    def replace(self, **changes) -> "Scenario":
        """Return a copy with some fields changed (strings are resolved)."""
        return dataclasses.replace(self, **changes)

    def matches(self, **criteria) -> bool:
        """Whether this scenario matches every given field value.

        Catalog keys are accepted for ``site``, ``motion``, ``tx_device``,
        ``rx_device``, ``case`` and ``scheme``, so
        ``scenario.matches(site="lake", scheme="adaptive")`` works without
        importing the catalog objects.
        """
        catalogs = {
            "site": SITE_CATALOG,
            "motion": MOTION_PRESETS,
            "tx_device": DEVICE_CATALOG,
            "rx_device": DEVICE_CATALOG,
            "case": CASE_CATALOG,
            "scheme": SCHEME_CATALOG,
        }
        for name, wanted in criteria.items():
            if not hasattr(self, name):
                raise AttributeError(f"Scenario has no field {name!r}")
            if name in catalogs and isinstance(wanted, str):
                wanted = _resolve(wanted, catalogs[name], name)
            if getattr(self, name) != wanted:
                return False
        return True

    # ------------------------------------------------------ serialization
    def to_dict(self) -> dict:
        """JSON-safe dictionary form; catalog objects become their keys."""
        return {
            "site": _serialize_catalog_value(self.site, SITE_CATALOG),
            "distance_m": self.distance_m,
            "tx_depth_m": self.tx_depth_m,
            "rx_depth_m": self.rx_depth_m,
            "orientation_deg": self.orientation_deg,
            "motion": _serialize_catalog_value(self.motion, MOTION_PRESETS),
            "tx_device": _serialize_catalog_value(self.tx_device, DEVICE_CATALOG),
            "rx_device": _serialize_catalog_value(self.rx_device, DEVICE_CATALOG),
            "case": _serialize_catalog_value(self.case, CASE_CATALOG),
            "scheme": _serialize_catalog_value(self.scheme, SCHEME_CATALOG),
            "modem": self.modem.to_dict(),
            "num_packets": self.num_packets,
            "seed": self.seed,
            "use_fast_path": self.use_fast_path,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        data = dict(data)
        data["site"] = _deserialize_catalog_value(data["site"], SITE_CATALOG, Site, "site")
        data["motion"] = _deserialize_catalog_value(
            data["motion"], MOTION_PRESETS, MotionModel, "motion preset"
        )
        data["tx_device"] = _device_from_dict(data["tx_device"])
        data["rx_device"] = _device_from_dict(data["rx_device"])
        data["case"] = _case_from_dict(data["case"])
        data["scheme"] = _deserialize_catalog_value(
            data["scheme"], SCHEME_CATALOG, FixedBandScheme, "scheme"
        )
        data["modem"] = ModemSpec.from_dict(data["modem"])
        return cls(**data)

    def scenario_hash(self) -> str:
        """Stable content hash of this scenario (cache key)."""
        return content_hash(self.to_dict())

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [
            self.label or None,
            self.site.name,
            f"{self.distance_m:g} m",
            f"depth {self.tx_depth_m:g} m",
            self.motion.name if self.motion.name != "static" else None,
            f"{self.orientation_deg:g} deg" if self.orientation_deg else None,
            self.scheme_key,
            f"{self.num_packets} pkt",
            f"seed {self.seed}",
            None if self.use_fast_path else "ref-path",
            None if self.modem.equalizer_solver == "levinson"
            else f"eq-{self.modem.equalizer_solver}",
        ]
        return " | ".join(p for p in parts if p)

    # ------------------------------------------------------------ running
    def build_session(self, modem: AquaModem | None = None) -> LinkSession:
        """Construct the channel pair and link session for this scenario.

        ``modem`` overrides the modem built from :attr:`modem`; callers that
        need a pre-built :class:`AquaModem` (outside what
        :class:`ModemSpec` can describe) pass it here so the channel/session
        wiring stays in one place.
        """
        forward, backward = build_link_pair(
            site=self.site,
            distance_m=self.distance_m,
            seed=self.seed,
            tx_depth_m=self.tx_depth_m,
            rx_depth_m=self.rx_depth_m,
            motion=self.motion,
            orientation_deg=self.orientation_deg,
            tx_device=self.tx_device,
            rx_device=self.rx_device,
            tx_case=self.case,
            rx_case=self.case,
        )
        forward.use_fast_path = self.use_fast_path
        backward.use_fast_path = self.use_fast_path
        return LinkSession(
            forward,
            backward,
            modem=modem if modem is not None else self.modem.build(),
            scheme=self.scheme,
            seed=self.seed + 1,
        )

    def run(self) -> LinkStatistics:
        """Run the scenario in this process and return its statistics."""
        return self.build_session().run_packets(self.num_packets)


def run_scenario(scenario: Scenario) -> LinkStatistics:
    """Run one scenario and return its :class:`LinkStatistics`.

    Module-level function (rather than a bound method) so it can be shipped
    to :class:`concurrent.futures.ProcessPoolExecutor` workers by name.
    """
    return scenario.run()
