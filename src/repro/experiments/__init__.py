"""Declarative experiment API: scenarios, sweeps and a parallel runner.

This package is the experiment-orchestration layer of the reproduction.
Instead of hand-rolling loops around ``build_link_pair`` + ``LinkSession``,
an evaluation point is declared as a :class:`Scenario`, families of points
are expanded with :class:`Sweep`, and :class:`ExperimentRunner` executes
them -- across processes when that pays off -- returning a serializable
:class:`ResultSet`.

Worked example -- the paper's range sweep (Fig. 12) in a few lines::

    from repro.experiments import ExperimentRunner, Scenario, Sweep

    base = Scenario(site="lake", num_packets=25)
    sweep = (
        Sweep(base)
        .paired(distance_m=[5.0, 10.0, 20.0, 30.0], seed=[80, 81, 82, 83])
        .over(scheme=["adaptive", "fixed-3k", "fixed-1.5k", "fixed-0.5k"])
    )                                   # 16 scenarios
    results = ExperimentRunner(max_workers=4).run(sweep)

    adaptive_30m = results.lookup(distance_m=30.0, scheme="adaptive")
    print(adaptive_30m.packet_error_rate, adaptive_30m.median_bitrate_bps)
    print(results.where(scheme="adaptive").to_table())
    results.save("range_sweep.json")

Every scenario carries its own seed, so a parallel run is bit-identical
to a serial run of the same sweep, and the runner's optional on-disk JSON
cache (``cache_dir=...``) makes re-running a partially finished campaign
free for the points already computed.
"""

from repro.experiments.columnar import ColumnarResultSet
from repro.experiments.net_scenario import NetScenario, run_net_scenario
from repro.experiments.records import DEFAULT_TABLE_COLUMNS, ResultSet, RunRecord
from repro.experiments.runner import CacheMissWarning, ExperimentRunner
from repro.experiments.scenario import SCHEME_CATALOG, ModemSpec, Scenario, run_scenario
from repro.experiments.service import SweepJob, SweepService
from repro.experiments.sweep import Sweep

__all__ = [
    "CacheMissWarning",
    "ColumnarResultSet",
    "DEFAULT_TABLE_COLUMNS",
    "ExperimentRunner",
    "ModemSpec",
    "NetScenario",
    "ResultSet",
    "RunRecord",
    "SCHEME_CATALOG",
    "Scenario",
    "Sweep",
    "SweepJob",
    "SweepService",
    "run_net_scenario",
    "run_scenario",
]
