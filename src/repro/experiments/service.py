"""Streaming sweep service: submit -> job handle -> poll/stream -> fetch.

:class:`SweepService` wraps :class:`~repro.experiments.runner.\
ExperimentRunner` in a small simulation-as-a-service front end, the shape
SRMCA-style serving systems use for long-running simulation campaigns:

* :meth:`~SweepService.submit` registers a sweep as a *job* -- a
  content-addressed directory holding a JSON manifest with the full
  scenario descriptions, so the job is re-runnable from any process --
  and returns a :class:`SweepJob` handle;
* :meth:`~SweepService.stream` drives the runner's
  :meth:`~repro.experiments.runner.ExperimentRunner.iter_run` and yields
  records as they complete, updating the manifest's progress counters
  after every record so a concurrent :meth:`~SweepService.poll` sees the
  job advance;
* on completion the service writes two artifacts beside the manifest --
  ``results.npz`` (the columnar form) and ``results.json`` (the legacy
  form) -- and later submissions of the same sweep are served from the
  artifact without simulating anything.

Everything is content-addressed by the existing scenario hash: the job id
is the hash of the ordered scenario-hash list (plus the package version,
so artifacts can never leak across simulation-code changes), and the
per-scenario JSON cache under ``<root>/cache`` is the same cache
:class:`ExperimentRunner` uses everywhere else, so a sweep run through
the CLI warms the service and vice versa.

The service is deliberately synchronous and single-process: determinism
is the point (a streamed job equals a blocking run byte for byte), and
callers that want concurrency run several service processes against the
same root -- the manifest and artifacts are plain files.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.experiments.columnar import ColumnarResultSet
from repro.experiments.records import ResultSet, RunRecord
from repro.experiments.runner import ExperimentRunner, warn_cache_miss
from repro.experiments.scenario import Scenario, content_hash

#: Manifest schema version (bump on layout changes).
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class SweepJob:
    """Handle to one submitted sweep.

    Attributes
    ----------
    job_id:
        Content hash of the ordered scenario hashes + package version.
    state:
        ``"submitted"`` (work remains), ``"done"`` (artifacts on disk) or
        ``"failed"`` (a scenario raised; see :attr:`error`).
    total, completed, cache_hits:
        Progress counters; ``cache_hits`` counts per-scenario JSON cache
        hits observed while the job streamed.
    label:
        Optional human-readable tag from submission time.
    error:
        Failure description when :attr:`state` is ``"failed"``.
    """

    job_id: str
    state: str
    total: int
    completed: int
    cache_hits: int
    label: str = ""
    error: str = ""

    @property
    def done(self) -> bool:
        """Whether the job's artifacts are complete and on disk."""
        return self.state == "done"


class SweepService:
    """File-backed submit/poll/stream/fetch front end over the runner.

    Parameters
    ----------
    root:
        Service directory; gets a ``cache/`` (shared per-scenario JSON
        cache) and a ``jobs/`` (one directory per job id) subtree.
    max_workers:
        Forwarded to :class:`ExperimentRunner`.
    """

    def __init__(
        self,
        root: str | pathlib.Path,
        max_workers: int | None = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.cache_dir = self.root / "cache"
        self.jobs_dir = self.root / "jobs"
        self.max_workers = max_workers
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------- plumbing
    def _job_dir(self, job_id: str) -> pathlib.Path:
        return self.jobs_dir / job_id

    def _manifest_path(self, job_id: str) -> pathlib.Path:
        return self._job_dir(job_id) / "manifest.json"

    def artifact_path(self, job_id: str, kind: str = "npz") -> pathlib.Path:
        """Path of a job's result artifact (``"npz"`` or ``"json"``)."""
        if kind not in ("npz", "json"):
            raise ValueError(f"artifact kind must be 'npz' or 'json', got {kind!r}")
        return self._job_dir(job_id) / f"results.{kind}"

    @staticmethod
    def job_id_for(scenarios: list[Scenario]) -> str:
        """Content-addressed job id of a scenario list (order-sensitive)."""
        from repro import __version__

        return content_hash({
            "scenario_hashes": [s.scenario_hash() for s in scenarios],
            "version": __version__,
        })

    def _read_manifest(self, job_id: str) -> dict:
        path = self._manifest_path(job_id)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise KeyError(f"unknown job {job_id!r}") from None
        if data.get("manifest_version") != MANIFEST_VERSION:
            raise ValueError(
                f"job {job_id}: unsupported manifest version "
                f"{data.get('manifest_version')!r}"
            )
        return data

    def _write_manifest(self, job_id: str, data: dict) -> None:
        path = self._manifest_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(data, indent=2), encoding="utf-8")

    @staticmethod
    def _handle(data: dict) -> SweepJob:
        return SweepJob(
            job_id=data["job_id"],
            state=data["state"],
            total=int(data["total"]),
            completed=int(data["completed"]),
            cache_hits=int(data["cache_hits"]),
            label=data.get("label", ""),
            error=data.get("error", ""),
        )

    def _load_artifact(self, job_id: str) -> ColumnarResultSet | None:
        """The job's columnar artifact, or ``None`` when absent/corrupt."""
        path = self.artifact_path(job_id, "npz")
        if not path.exists():
            return None
        try:
            return ColumnarResultSet.load_npz(path)
        except ValueError as error:
            warn_cache_miss(path, "npz-corrupt", str(error))
            return None

    # ------------------------------------------------------------ lifecycle
    def submit(self, scenarios, label: str = "") -> SweepJob:
        """Register a sweep as a job and return its handle.

        Submission is idempotent: the job id is content-addressed, so
        resubmitting the same sweep returns the existing job -- already
        ``done`` when its artifacts are on disk (a completed job with a
        corrupt artifact is reset to ``submitted`` with a warning, and
        streaming it re-runs the sweep).
        """
        ordered = list(scenarios)
        job_id = self.job_id_for(ordered)
        try:
            data = self._read_manifest(job_id)
        except KeyError:
            data = None
        if data is not None and data["state"] == "done":
            if self._load_artifact(job_id) is not None:
                return self._handle(data)
            data["state"] = "submitted"  # artifact rotted: force a re-run
            data["completed"] = 0
            self._write_manifest(job_id, data)
            return self._handle(data)
        if data is not None and data["state"] == "submitted":
            return self._handle(data)
        from repro import __version__

        data = {
            "manifest_version": MANIFEST_VERSION,
            "job_id": job_id,
            "state": "submitted",
            "label": label,
            "version": __version__,
            "total": len(ordered),
            "completed": 0,
            "cache_hits": 0,
            "error": "",
            "scenario_hashes": [s.scenario_hash() for s in ordered],
            "scenarios": [s.to_dict() for s in ordered],
        }
        self._write_manifest(job_id, data)
        return self._handle(data)

    def poll(self, job_id: str) -> SweepJob:
        """The job's current state, straight from its manifest."""
        return self._handle(self._read_manifest(job_id))

    def list_jobs(self) -> list[SweepJob]:
        """Handles of every job under the service root, by job id."""
        jobs = []
        for manifest in sorted(self.jobs_dir.glob("*/manifest.json")):
            jobs.append(self._handle(self._read_manifest(manifest.parent.name)))
        return jobs

    def stream(
        self,
        job_id: str,
        progress: bool | Callable[[str], None] | None = None,
    ) -> Iterator[RunRecord]:
        """Yield the job's records in order, executing what is missing.

        A ``done`` job streams straight from its on-disk artifact (no
        simulation).  Otherwise the runner's ``iter_run`` drives the
        sweep -- per-scenario cache hits included -- the manifest's
        ``completed`` counter advances after every yielded record, and
        the ``results.npz`` / ``results.json`` artifacts are written when
        the last record lands.  On an execution error the job is marked
        ``failed`` (with the error recorded) and the exception re-raised.
        """
        data = self._read_manifest(job_id)
        if data["state"] == "done":
            artifact = self._load_artifact(job_id)
            if artifact is not None:
                yield from artifact
                return
            data["state"] = "submitted"
            data["completed"] = 0
            self._write_manifest(job_id, data)
        scenarios = [Scenario.from_dict(entry) for entry in data["scenarios"]]
        runner = ExperimentRunner(
            max_workers=self.max_workers, cache_dir=self.cache_dir
        )
        results = ColumnarResultSet()
        data["state"] = "submitted"
        data["completed"] = 0
        data["error"] = ""
        self._write_manifest(job_id, data)
        try:
            stream = runner.iter_run(scenarios, progress=progress)
            data["cache_hits"] = runner.last_cache_hits
            for record in stream:
                results.append(record)
                data["completed"] = len(results)
                self._write_manifest(job_id, data)
                yield record
        except Exception as error:
            data["state"] = "failed"
            data["error"] = f"{type(error).__name__}: {error}"
            self._write_manifest(job_id, data)
            raise
        results.save_npz(self.artifact_path(job_id, "npz"))
        results.save(self.artifact_path(job_id, "json"), include_timing=True)
        data["state"] = "done"
        self._write_manifest(job_id, data)

    def result(self, job_id: str) -> ColumnarResultSet:
        """The job's full result set, running the sweep if needed."""
        data = self._read_manifest(job_id)
        if data["state"] == "done":
            artifact = self._load_artifact(job_id)
            if artifact is not None:
                return artifact
        results = ColumnarResultSet()
        for record in self.stream(job_id):
            results.append(record)
        return results

    def fetch(self, job_id: str, out: str | pathlib.Path) -> pathlib.Path:
        """Export a finished job's artifact to ``out``.

        The format follows the suffix: ``.npz`` copies the columnar
        artifact, anything else gets the legacy JSON form.  The job must
        be ``done``.
        """
        job = self.poll(job_id)
        if not job.done:
            raise RuntimeError(
                f"job {job_id} is {job.state}; stream it to completion first"
            )
        out = pathlib.Path(out)
        results = self.result(job_id)
        if out.suffix == ".npz":
            return results.save_npz(out)
        return results.save(out, include_timing=True)
