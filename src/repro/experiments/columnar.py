"""Columnar storage for experiment results.

:class:`ColumnarResultSet` holds the same information as a
:class:`~repro.experiments.records.ResultSet` -- one
:class:`~repro.experiments.records.RunRecord` per executed scenario --
but stores it in grow-by-doubling numpy arenas instead of per-record
Python objects:

* every scalar metric (packet error rate, delivered counts, ...) is one
  contiguous column, so aggregating a 100k-record sweep is a handful of
  numpy reductions instead of 100k attribute lookups;
* the per-packet series (bitrates, band edges, in-band SNRs, delivery
  flags) live in CSR-style ragged columns (one flat value arena plus an
  offsets arena per series);
* scenarios are interned: each distinct scenario is serialized once into
  a string table (canonical sorted-key JSON) alongside its content hash,
  and records carry only an integer id.  Filter-relevant scenario fields
  (site, scheme, distance, seed, ...) are kept as small per-unique
  columns so :meth:`where` vectorizes without materializing a single
  :class:`~repro.experiments.scenario.Scenario`.

The round trip to the object representation is lossless --
``ColumnarResultSet.from_result_set(rs).to_result_set() == rs`` holds for
any result set, including NaN/inf metric values and unicode scenario
labels -- and :meth:`where` / :meth:`to_table` / :meth:`metric` agree
with the object path by construction (the equivalence-oracle property
suite in ``tests/test_columnar.py`` enforces this on randomized inputs).

On disk a columnar result set is a ``.npz`` artifact
(:meth:`save_npz` / :meth:`load_npz`) written beside the runner's JSON
cache; the format is versioned and a truncated or foreign file raises a
:class:`ValueError` so callers can treat it as a cache miss.
"""

from __future__ import annotations

import json
import pathlib
import zipfile
from typing import Callable, Iterator

import numpy as np

from repro.analysis.metrics import format_table
from repro.channel.motion import MOTION_PRESETS
from repro.devices.case import CASE_CATALOG
from repro.devices.models import DEVICE_CATALOG
from repro.environments.sites import SITE_CATALOG
from repro.experiments.records import DEFAULT_TABLE_COLUMNS, ResultSet, RunRecord
from repro.experiments.scenario import (
    SCHEME_CATALOG,
    ModemSpec,
    Scenario,
    _resolve,
    _serialize_catalog_value,
    content_hash,
)

#: ``.npz`` artifact format marker and version (bump on layout changes).
NPZ_FORMAT = "repro.columnar-results"
NPZ_VERSION = 1

#: Scalar float columns, in serialization order.
_FLOAT_FIELDS = (
    "packet_error_rate",
    "payload_bit_error_rate",
    "coded_bit_error_rate",
    "preamble_detection_rate",
    "feedback_error_rate",
    "elapsed_s",
)
#: Scalar integer columns.
_INT_FIELDS = ("num_packets", "delivered")
#: Ragged per-packet float series.
_SERIES_FIELDS = (
    "bitrates_bps",
    "band_starts_hz",
    "band_ends_hz",
    "min_band_snrs_db",
)
#: Scenario fields kept as vectorizable per-unique-scenario columns.
_SCENARIO_FLOAT_FIELDS = ("distance_m", "tx_depth_m", "orientation_deg")
_SCENARIO_INT_FIELDS = ("num_packets", "seed")
_SCENARIO_BOOL_FIELDS = ("use_fast_path",)
#: Scenario fields matched through their canonical serialized form
#: (object equality for these frozen dataclasses is field equality, which
#: the sorted-key JSON of their serialized form captures exactly).
_SCENARIO_INTERNED_FIELDS = (
    "site", "motion", "tx_device", "rx_device", "case", "scheme", "modem",
    "label",
)
#: Catalogs backing the string spellings ``where``/``matches`` accept.
_CATALOGS = {
    "site": SITE_CATALOG,
    "motion": MOTION_PRESETS,
    "tx_device": DEVICE_CATALOG,
    "rx_device": DEVICE_CATALOG,
    "case": CASE_CATALOG,
    "scheme": SCHEME_CATALOG,
}


class _Arena:
    """A 1-D numpy array that grows by doubling."""

    __slots__ = ("_data", "_size")

    def __init__(self, dtype, capacity: int = 16) -> None:
        self._data = np.empty(max(int(capacity), 1), dtype=dtype)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        if needed <= self._data.size:
            return
        capacity = self._data.size
        while capacity < needed:
            capacity *= 2
        grown = np.empty(capacity, dtype=self._data.dtype)
        grown[: self._size] = self._data[: self._size]
        self._data = grown

    def append(self, value) -> None:
        self._reserve(1)
        self._data[self._size] = value
        self._size += 1

    def extend(self, values) -> None:
        values = np.asarray(values, dtype=self._data.dtype)
        self._reserve(values.size)
        self._data[self._size : self._size + values.size] = values
        self._size += values.size

    def view(self) -> np.ndarray:
        """Zero-copy read-only view of the filled prefix."""
        out = self._data[: self._size]
        out.flags.writeable = False
        return out


class _RaggedColumn:
    """CSR-style ragged column: flat values plus per-row offsets."""

    __slots__ = ("values", "offsets")

    def __init__(self, dtype) -> None:
        self.values = _Arena(dtype)
        self.offsets = _Arena(np.int64)
        self.offsets.append(0)

    def append(self, sequence) -> None:
        self.values.extend(sequence)
        self.offsets.append(len(self.values))

    def segment(self, index: int) -> np.ndarray:
        offsets = self.offsets.view()
        return self.values.view()[offsets[index] : offsets[index + 1]]


class StringTable:
    """Append-only interning table mapping strings to dense integer ids."""

    __slots__ = ("_ids", "strings")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self.strings: list[str] = []

    def __len__(self) -> int:
        return len(self.strings)

    def intern(self, value: str) -> int:
        """Return the id of ``value``, adding it on first sight."""
        found = self._ids.get(value)
        if found is not None:
            return found
        new_id = len(self.strings)
        self._ids[value] = new_id
        self.strings.append(value)
        return new_id

    def lookup(self, value: str) -> int | None:
        """The id of ``value`` or ``None`` when never interned."""
        return self._ids.get(value)

    def __getitem__(self, index: int) -> str:
        return self.strings[index]


def _canonical(value) -> str:
    """Canonical JSON spelling used for interned scenario-field matching."""
    return json.dumps(value, sort_keys=True, default=str)


def _equals_mask(column: np.ndarray, wanted) -> np.ndarray:
    """Elementwise ``column == wanted`` as a boolean mask.

    Comparing a numpy column to an incomparable type yields a scalar
    ``False``; broadcast it so callers always get a per-row mask (the
    object path's ``getattr(...) != wanted`` likewise fails everywhere).
    """
    result = column == wanted
    if np.ndim(result) == 0:
        return np.full(column.shape, bool(result))
    return np.asarray(result, dtype=np.bool_)


def _segment_median_finite(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment median of the finite entries (NaN for empty segments).

    The vectorized equivalent of reading
    :attr:`RunRecord.median_bitrate_bps` per record: entries are grouped
    by segment, non-finite values dropped, and every group's median comes
    out of one global ``lexsort`` instead of one ``np.median`` per record.
    """
    n = offsets.size - 1
    out = np.full(n, np.nan)
    if values.size == 0 or n == 0:
        return out
    segment_ids = np.repeat(np.arange(n), np.diff(offsets))
    finite = np.isfinite(values)
    segment_ids = segment_ids[finite]
    kept = values[finite]
    if kept.size == 0:
        return out
    order = np.lexsort((kept, segment_ids))
    kept = kept[order]
    segment_ids = segment_ids[order]
    counts = np.bincount(segment_ids, minlength=n)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    nonempty = counts > 0
    low = starts[nonempty] + (counts[nonempty] - 1) // 2
    high = starts[nonempty] + counts[nonempty] // 2
    # Odd counts pick the middle element directly, exactly as np.median
    # does -- averaging it with itself would overflow for |v| > ~9e307.
    median = kept[low]
    even = low != high
    median[even] = 0.5 * (kept[high[even]] + median[even])
    out[nonempty] = median
    return out


class ColumnarResultSet:
    """Ordered experiment results in grow-by-doubling numpy arenas.

    Behaves like :class:`~repro.experiments.records.ResultSet` -- same
    :meth:`where` / :meth:`lookup` / :meth:`metric` / :meth:`to_table` /
    :meth:`save` surface, same iteration order -- while storing columns
    instead of objects.  Records materialize lazily via :meth:`record`;
    aggregation never touches per-record Python objects.
    """

    def __init__(self, records=None) -> None:
        self._float_cols = {name: _Arena(np.float64) for name in _FLOAT_FIELDS}
        self._int_cols = {name: _Arena(np.int64) for name in _INT_FIELDS}
        self._series = {name: _RaggedColumn(np.float64) for name in _SERIES_FIELDS}
        self._flags = _RaggedColumn(np.bool_)
        # Scenario interning: per-record id into the per-unique tables.
        self._scenario_ids = _Arena(np.int64)
        self._scenario_table = StringTable()  # canonical scenario JSON
        self._scenario_hashes: list[str] = []  # parallel to the table
        self._scenario_cache: dict[int, Scenario] = {}
        # Equality-keyed fast path around the serialize-then-intern step:
        # scenarios are frozen/hashable, so repeat appends of the same
        # (or an equal) scenario skip to_dict + json.dumps entirely.
        self._scenario_memo: dict[Scenario, int] = {}
        self._describe_cache: dict[int, str] = {}
        # Per-unique-scenario filter columns (python lists while growing;
        # ``_unique_array`` caches the ndarray form until the next intern).
        self._unique_float = {name: [] for name in _SCENARIO_FLOAT_FIELDS}
        self._unique_int = {name: [] for name in _SCENARIO_INT_FIELDS}
        self._unique_bool = {name: [] for name in _SCENARIO_BOOL_FIELDS}
        self._unique_interned = {name: [] for name in _SCENARIO_INTERNED_FIELDS}
        self._interned_tables = {
            name: StringTable() for name in _SCENARIO_INTERNED_FIELDS
        }
        # rx_depth_m is Optional: NaN stands in for None, with a mask beside.
        self._unique_rx_depth: list[float] = []
        self._unique_rx_depth_none: list[bool] = []
        self._unique_arrays: dict[str, np.ndarray] = {}
        for record in records or ():
            self.append(record)

    # ------------------------------------------------------------- protocol
    def __len__(self) -> int:
        return len(self._scenario_ids)

    def __iter__(self) -> Iterator[RunRecord]:
        for index in range(len(self)):
            yield self.record(index)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._gather(np.arange(len(self))[index])
        return self.record(int(index))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ColumnarResultSet):
            other = other.to_result_set()
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.to_result_set() == other

    # ------------------------------------------------------------ ingestion
    def _intern_scenario(self, scenario: Scenario) -> int:
        memoized = self._scenario_memo.get(scenario)
        if memoized is not None:
            return memoized
        data = scenario.to_dict()
        key = json.dumps(data, sort_keys=True)
        known = self._scenario_table.lookup(key)
        if known is not None:
            self._scenario_memo[scenario] = known
            return known
        sid = self._scenario_table.intern(key)
        self._scenario_hashes.append(content_hash(data))
        self._scenario_cache[sid] = scenario
        for name in _SCENARIO_FLOAT_FIELDS:
            self._unique_float[name].append(float(getattr(scenario, name)))
        for name in _SCENARIO_INT_FIELDS:
            self._unique_int[name].append(int(getattr(scenario, name)))
        for name in _SCENARIO_BOOL_FIELDS:
            self._unique_bool[name].append(bool(getattr(scenario, name)))
        for name in _SCENARIO_INTERNED_FIELDS:
            self._unique_interned[name].append(
                self._interned_tables[name].intern(_canonical(data[name]))
            )
        rx_depth = scenario.rx_depth_m
        self._unique_rx_depth.append(
            float("nan") if rx_depth is None else float(rx_depth)
        )
        self._unique_rx_depth_none.append(rx_depth is None)
        self._unique_arrays.clear()
        self._scenario_memo[scenario] = sid
        return sid

    def append(self, record: RunRecord) -> None:
        """Add one record's fields to the arenas."""
        self._scenario_ids.append(self._intern_scenario(record.scenario))
        for name in _FLOAT_FIELDS:
            self._float_cols[name].append(float(getattr(record, name)))
        for name in _INT_FIELDS:
            self._int_cols[name].append(int(getattr(record, name)))
        for name in _SERIES_FIELDS:
            self._series[name].append(
                np.asarray(getattr(record, name), dtype=np.float64)
            )
        self._flags.append(np.asarray(record.delivered_flags, dtype=np.bool_))

    def extend(self, records) -> None:
        """Append every record of an iterable."""
        for record in records:
            self.append(record)

    # -------------------------------------------------------- reconstruction
    def scenario_for_id(self, sid: int) -> Scenario:
        """The unique scenario behind an interned id (cached)."""
        scenario = self._scenario_cache.get(sid)
        if scenario is None:
            scenario = Scenario.from_dict(json.loads(self._scenario_table[sid]))
            self._scenario_cache[sid] = scenario
        return scenario

    def scenario(self, index: int) -> Scenario:
        """The scenario of record ``index``."""
        return self.scenario_for_id(int(self._scenario_ids.view()[index]))

    def scenario_hash(self, index: int) -> str:
        """Content hash of record ``index``'s scenario (no recomputation)."""
        return self._scenario_hashes[int(self._scenario_ids.view()[index])]

    def record(self, index: int) -> RunRecord:
        """Materialize record ``index`` as a :class:`RunRecord`."""
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"record index {index} out of range ({len(self)})")
        floats = {
            name: float(self._float_cols[name].view()[index])
            for name in _FLOAT_FIELDS
        }
        series = {
            name: tuple(float(v) for v in self._series[name].segment(index))
            for name in _SERIES_FIELDS
        }
        return RunRecord(
            scenario=self.scenario(index),
            num_packets=int(self._int_cols["num_packets"].view()[index]),
            delivered=int(self._int_cols["delivered"].view()[index]),
            packet_error_rate=floats["packet_error_rate"],
            payload_bit_error_rate=floats["payload_bit_error_rate"],
            coded_bit_error_rate=floats["coded_bit_error_rate"],
            preamble_detection_rate=floats["preamble_detection_rate"],
            feedback_error_rate=floats["feedback_error_rate"],
            bitrates_bps=series["bitrates_bps"],
            band_starts_hz=series["band_starts_hz"],
            band_ends_hz=series["band_ends_hz"],
            min_band_snrs_db=series["min_band_snrs_db"],
            delivered_flags=tuple(bool(v) for v in self._flags.segment(index)),
            elapsed_s=floats["elapsed_s"],
        )

    def to_result_set(self) -> ResultSet:
        """Materialize every record (the lossless inverse of ingestion)."""
        return ResultSet([self.record(i) for i in range(len(self))])

    @classmethod
    def from_result_set(cls, results: ResultSet) -> "ColumnarResultSet":
        """Build a columnar set from an object result set."""
        return cls(results.records)

    # ------------------------------------------------------------ selection
    def _unique_array(self, key: str, values, dtype) -> np.ndarray:
        cached = self._unique_arrays.get(key)
        if cached is None:
            cached = np.asarray(values, dtype=dtype)
            self._unique_arrays[key] = cached
        return cached

    def _criterion_mask(self, name: str, wanted) -> np.ndarray:
        """Per-unique-scenario boolean mask for one ``where`` criterion.

        Must agree exactly with :meth:`Scenario.matches` -- same catalog
        key resolution, same errors on unknown spellings/fields.
        """
        count = len(self._scenario_hashes)
        if name in _CATALOGS and isinstance(wanted, str):
            wanted = _resolve(wanted, _CATALOGS[name], name)
        if name in _SCENARIO_FLOAT_FIELDS:
            return _equals_mask(
                self._unique_array(name, self._unique_float[name], np.float64),
                wanted,
            )
        if name in _SCENARIO_INT_FIELDS:
            return _equals_mask(
                self._unique_array(name, self._unique_int[name], np.int64),
                wanted,
            )
        if name in _SCENARIO_BOOL_FIELDS:
            return _equals_mask(
                self._unique_array(name, self._unique_bool[name], np.bool_),
                wanted,
            )
        if name == "rx_depth_m":
            if wanted is None:
                return self._unique_array(
                    "rx_depth_m__none", self._unique_rx_depth_none, np.bool_
                ).copy()
            # NaN stands in for None and never equals a wanted value.
            return _equals_mask(
                self._unique_array(
                    "rx_depth_m", self._unique_rx_depth, np.float64
                ),
                wanted,
            )
        if name in _SCENARIO_INTERNED_FIELDS:
            serialized = self._serialize_criterion(name, wanted)
            if serialized is None:  # type can never equal the field
                return np.zeros(count, dtype=np.bool_)
            wanted_id = self._interned_tables[name].lookup(serialized)
            if wanted_id is None:
                return np.zeros(count, dtype=np.bool_)
            return _equals_mask(
                self._unique_array(
                    f"interned:{name}", self._unique_interned[name], np.int64
                ),
                wanted_id,
            )
        # No fast column (record properties such as ``scheme_key``, future
        # fields): object path per unique scenario.  Scenario.matches also
        # supplies the AttributeError for unknown names, keeping error
        # behavior identical to ResultSet.where.
        mask = np.zeros(count, dtype=np.bool_)
        for sid in range(count):
            mask[sid] = self.scenario_for_id(sid).matches(**{name: wanted})
        return mask

    @staticmethod
    def _serialize_criterion(name: str, wanted) -> str | None:
        """Canonical serialized spelling of one interned-field criterion.

        Returns ``None`` when ``wanted``'s type can never equal the field
        (mirroring the object path, where ``!=`` then holds everywhere).
        """
        if name == "label":
            return _canonical(wanted) if isinstance(wanted, str) else None
        if name == "modem":
            if not isinstance(wanted, ModemSpec):
                return None
            return _canonical(wanted.to_dict())
        try:
            return _canonical(_serialize_catalog_value(wanted, _CATALOGS[name]))
        except TypeError:  # not a dataclass and not a catalog entry
            return None

    def where(
        self,
        predicate: Callable[[RunRecord], bool] | None = None,
        **criteria,
    ) -> "ColumnarResultSet":
        """Records whose scenario matches the criteria (and predicate).

        Same semantics as :meth:`ResultSet.where` -- catalog keys are
        accepted for site/motion/device/case/scheme -- but criteria are
        evaluated on the per-unique-scenario columns, so filtering never
        materializes records (unless a ``predicate`` needs them).
        """
        if len(self) == 0:
            # The object path never evaluates criteria on an empty set;
            # neither do we (so an unknown spelling cannot raise here).
            return ColumnarResultSet()
        unique_mask = np.ones(len(self._scenario_hashes), dtype=np.bool_)
        for name, wanted in criteria.items():
            unique_mask &= self._criterion_mask(name, wanted)
        mask = unique_mask[self._scenario_ids.view()]
        indices = np.flatnonzero(mask)
        if predicate is not None:
            indices = np.asarray(
                [i for i in indices if predicate(self.record(int(i)))],
                dtype=np.int64,
            )
        return self._gather(indices)

    def lookup(self, **criteria) -> RunRecord:
        """The single record matching the criteria; raises otherwise."""
        picked = self.where(**criteria)
        if len(picked) != 1:
            raise LookupError(
                f"expected exactly one record for {criteria}, found {len(picked)}"
            )
        return picked.record(0)

    def _gather(self, indices: np.ndarray) -> "ColumnarResultSet":
        """A new columnar set holding the given record indices, in order."""
        out = ColumnarResultSet()
        for index in indices:
            index = int(index)
            out._scenario_ids.append(out._intern_scenario(self.scenario(index)))
            for name in _FLOAT_FIELDS:
                out._float_cols[name].append(self._float_cols[name].view()[index])
            for name in _INT_FIELDS:
                out._int_cols[name].append(self._int_cols[name].view()[index])
            for name in _SERIES_FIELDS:
                out._series[name].append(self._series[name].segment(index))
            out._flags.append(self._flags.segment(index))
        return out

    # ---------------------------------------------------------- aggregation
    def metric(self, name: str) -> np.ndarray:
        """One metric across records, as an array.

        Scalar columns come back as zero-copy read-only views; derived
        metrics (``median_bitrate_bps``) are computed vectorized over the
        ragged arenas.  Unknown names fall back to the object path so any
        :class:`RunRecord` attribute stays reachable.
        """
        if name in _FLOAT_FIELDS:
            return self._float_cols[name].view()
        if name in _INT_FIELDS:
            return self._int_cols[name].view()
        if name == "median_bitrate_bps":
            column = self._series["bitrates_bps"]
            return _segment_median_finite(
                column.values.view(), column.offsets.view()
            )
        return np.asarray(
            [getattr(self.record(i), name) for i in range(len(self))],
            dtype=float,
        )

    def mean(self, name: str) -> float:
        """Mean of one metric (NaN-propagating, like ``np.mean``)."""
        values = np.asarray(self.metric(name), dtype=float)
        return float(np.mean(values)) if values.size else float("nan")

    def sum(self, name: str) -> float:
        """Sum of one metric."""
        return float(np.sum(np.asarray(self.metric(name), dtype=float)))

    def percentile(self, name: str, q):
        """Percentile(s) of one metric across records."""
        values = np.asarray(self.metric(name), dtype=float)
        if values.size == 0:
            return np.full(np.shape(q), float("nan")) if np.ndim(q) else float("nan")
        return np.percentile(values, q)

    def delivery_ratio(self) -> float:
        """Pooled delivered/offered packets over the whole set."""
        offered = int(np.sum(self._int_cols["num_packets"].view()))
        if offered == 0:
            return float("nan")
        return float(np.sum(self._int_cols["delivered"].view())) / offered

    @property
    def total_elapsed_s(self) -> float:
        """Sum of the per-record execution times.

        Summed sequentially (not ``np.sum``'s pairwise order) so the
        result is bit-identical to :attr:`ResultSet.total_elapsed_s`.
        """
        return float(sum(self._float_cols["elapsed_s"].view().tolist()))

    # --------------------------------------------------------------- export
    def to_table(self, columns=DEFAULT_TABLE_COLUMNS) -> str:
        """Fixed-width text table, identical to :meth:`ResultSet.to_table`."""
        n = len(self)
        rendered: dict[str, list[str]] = {}
        for column in columns:
            if column == "scenario":
                ids = self._scenario_ids.view()
                for sid in {int(s) for s in ids}:
                    if sid not in self._describe_cache:
                        self._describe_cache[sid] = (
                            self.scenario_for_id(sid).describe()
                        )
                rendered[column] = [self._describe_cache[int(s)] for s in ids]
            elif column == "packets":
                rendered[column] = [
                    str(int(v)) for v in self._int_cols["num_packets"].view()
                ]
            elif column == "per":
                rendered[column] = [
                    f"{v:.2f}" for v in self._float_cols["packet_error_rate"].view()
                ]
            elif column == "coded_ber":
                rendered[column] = [
                    f"{v:.3f}"
                    for v in self._float_cols["coded_bit_error_rate"].view()
                ]
            elif column == "median_bps":
                rendered[column] = [
                    f"{v:.0f}" for v in self.metric("median_bitrate_bps")
                ]
            elif column == "detect":
                rendered[column] = [
                    f"{v:.1%}"
                    for v in self._float_cols["preamble_detection_rate"].view()
                ]
            elif column == "feedback_err":
                rendered[column] = [
                    f"{v:.1%}"
                    for v in self._float_cols["feedback_error_rate"].view()
                ]
            elif column == "elapsed_s":
                rendered[column] = [
                    f"{v:.2f}" for v in self._float_cols["elapsed_s"].view()
                ]
            else:
                rendered[column] = [
                    str(getattr(self.record(i), column)) for i in range(n)
                ]
        rows = [[rendered[c][i] for c in columns] for i in range(n)]
        return format_table(list(columns), rows)

    def to_json(self, indent: int | None = None, include_timing: bool = False) -> str:
        """JSON form, identical to the object path's."""
        return self.to_result_set().to_json(
            indent=indent, include_timing=include_timing
        )

    def save(self, path, include_timing: bool = False) -> pathlib.Path:
        """Write the legacy JSON form (``ResultSet.load`` compatible)."""
        return self.to_result_set().save(path, include_timing=include_timing)

    # ----------------------------------------------------------- npz format
    def save_npz(self, path) -> pathlib.Path:
        """Write the columnar arenas to a versioned ``.npz`` artifact."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        strings = self._scenario_table.strings
        arrays: dict[str, np.ndarray] = {
            "format": np.asarray(NPZ_FORMAT),
            "version": np.asarray(NPZ_VERSION, dtype=np.int64),
            "num_records": np.asarray(len(self), dtype=np.int64),
            "scenario_ids": np.asarray(self._scenario_ids.view()),
            # Empty "U0" arrays round-trip badly; force a 1-char dtype.
            "scenario_json": np.asarray(strings)
            if strings else np.empty(0, dtype="U1"),
            "scenario_hash": np.asarray(self._scenario_hashes)
            if self._scenario_hashes else np.empty(0, dtype="U1"),
            "delivered_flags__values": np.asarray(self._flags.values.view()),
            "delivered_flags__offsets": np.asarray(self._flags.offsets.view()),
        }
        for name in _FLOAT_FIELDS:
            arrays[name] = np.asarray(self._float_cols[name].view())
        for name in _INT_FIELDS:
            arrays[name] = np.asarray(self._int_cols[name].view())
        for name in _SERIES_FIELDS:
            arrays[f"{name}__values"] = np.asarray(self._series[name].values.view())
            arrays[f"{name}__offsets"] = np.asarray(self._series[name].offsets.view())
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        return path

    @classmethod
    def load_npz(cls, path) -> "ColumnarResultSet":
        """Load a :meth:`save_npz` artifact.

        Raises :class:`ValueError` on any corruption -- truncated zip,
        missing arrays, inconsistent offsets, undecodable scenarios --
        so callers can uniformly treat a bad artifact as a cache miss.
        """
        path = pathlib.Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                arrays = {key: data[key] for key in data.files}
        except (OSError, EOFError, KeyError, zipfile.BadZipFile, ValueError) as error:
            raise ValueError(
                f"corrupt or unreadable columnar artifact {path}: {error}"
            ) from error
        return cls._from_npz_arrays(arrays, source=str(path))

    @classmethod
    def _from_npz_arrays(cls, arrays: dict, source: str = "") -> "ColumnarResultSet":
        def fail(reason: str):
            raise ValueError(f"corrupt columnar artifact {source}: {reason}")

        if "format" not in arrays or str(arrays["format"]) != NPZ_FORMAT:
            fail("missing or foreign format marker")
        if int(arrays.get("version", -1)) != NPZ_VERSION:
            fail(f"unsupported version {arrays.get('version')}")
        required = (
            ["num_records", "scenario_ids", "scenario_json", "scenario_hash",
             "delivered_flags__values", "delivered_flags__offsets"]
            + list(_FLOAT_FIELDS)
            + list(_INT_FIELDS)
            + [f"{name}__{part}" for name in _SERIES_FIELDS
               for part in ("values", "offsets")]
        )
        missing = [key for key in required if key not in arrays]
        if missing:
            fail(f"missing arrays: {', '.join(missing)}")
        n = int(arrays["num_records"])
        scenario_ids = np.asarray(arrays["scenario_ids"], dtype=np.int64)
        scenario_json = [str(s) for s in arrays["scenario_json"]]
        scenario_hash = [str(s) for s in arrays["scenario_hash"]]
        if n < 0 or scenario_ids.size != n:
            fail("scenario_ids length mismatch")
        if len(scenario_hash) != len(scenario_json):
            fail("scenario hash/json tables differ in length")
        if n and (scenario_ids.min() < 0 or scenario_ids.max() >= len(scenario_json)):
            fail("scenario id out of range")
        for name in _FLOAT_FIELDS + _INT_FIELDS:
            if np.asarray(arrays[name]).shape != (n,):
                fail(f"column {name} length mismatch")
        out = cls()
        # Rebuild the interning state from the unique scenarios, then bulk
        # copy the columns.
        for text in scenario_json:
            try:
                scenario = Scenario.from_dict(json.loads(text))
            except (TypeError, KeyError, ValueError) as error:
                fail(f"undecodable scenario entry: {error}")
            out._intern_scenario(scenario)
        if out._scenario_hashes != scenario_hash:
            fail("scenario hashes disagree with scenario contents")
        out._scenario_ids.extend(scenario_ids)
        for name in _FLOAT_FIELDS:
            out._float_cols[name].extend(np.asarray(arrays[name], dtype=np.float64))
        for name in _INT_FIELDS:
            out._int_cols[name].extend(np.asarray(arrays[name], dtype=np.int64))
        ragged = [(name, out._series[name], np.float64) for name in _SERIES_FIELDS]
        ragged.append(("delivered_flags", out._flags, np.bool_))
        for name, column, dtype in ragged:
            offsets = np.asarray(arrays[f"{name}__offsets"], dtype=np.int64)
            values = np.asarray(arrays[f"{name}__values"], dtype=dtype)
            if (
                offsets.size != n + 1
                or offsets[0] != 0
                or np.any(np.diff(offsets) < 0)
                or offsets[-1] != values.size
            ):
                fail(f"ragged column {name} has inconsistent offsets")
            column.values = _Arena(dtype)
            column.values.extend(values)
            column.offsets = _Arena(np.int64)
            column.offsets.extend(offsets)
        return out


__all__ = [
    "ColumnarResultSet",
    "NPZ_FORMAT",
    "NPZ_VERSION",
    "StringTable",
]
