"""Hooking a :class:`~repro.faults.schedule.FaultSchedule` into one run.

:class:`FaultInjector` is the bridge between the declarative schedule
and a live :class:`~repro.net.simulator.NetworkSimulator`.  At install
time it schedules every expanded fault event on the simulator's own
scheduler (under ``"~fault"`` tie-break keys, which sort after all node
names) and registers itself as the simulator's ``_fault_hooks``.  An
*empty* schedule installs nothing: no attribute is touched, no event is
queued, and the run is byte-identical to one built without a faults
argument.

Two determinism rules shape everything here:

* The injector draws from its **own** generator (seeded with
  ``schedule.seed``), never from the simulation's.  Link-degradation
  draws therefore do not shift the delivery/jitter stream, and the same
  (scenario seed, schedule) pair replays bit-identically.
* Physical death and routing knowledge are **separate**.  A crash only
  flips the node's ``alive`` flag -- it stays in every neighbour table,
  soaking up wasted transmissions, until the beacon-liveness tracker
  observes enough silence to evict it (repair on) or forever (repair
  off).  Time-to-repair is the gap between those two moments.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.faults.liveness import NeighborLivenessTracker
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.net.metrics import RX_POWER_W, TX_POWER_W


class FaultInjector:
    """Applies one :class:`FaultSchedule` to one simulator run."""

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self._sim = None
        self._rng: np.random.Generator | None = None
        self._tracker: NeighborLivenessTracker | None = None
        #: Physically-down node set (ground truth, not network belief).
        self._down: set[str] = set()
        self._crash_time: dict[str, float] = {}
        #: Nodes the liveness layer has evicted from the topology.
        self._observed_dead: set[str] = set()
        #: name -> remaining budget for nodes on an energy-deplete clock.
        self._budgets: dict[str, float] = {}
        self._spent: dict[str, float] = {}
        #: window id -> (frozenset pair | None for all-links, inflation).
        self._active_windows: dict[int, tuple[frozenset | None, float]] = {}
        self._horizon = 0.0
        self._ticking = False

    # ---------------------------------------------------------------- install
    def install(self, sim) -> None:
        """Arm the schedule on ``sim`` (a no-op for empty schedules)."""
        schedule = self.schedule
        if schedule.is_empty:
            return
        self._sim = sim
        self._rng = np.random.default_rng(schedule.seed)
        names = tuple(sim.topology.names)
        schedule.validate_names(names)
        events = schedule.expand(names)
        sim._metrics.resilience_enabled = True
        sim._fault_hooks = self
        scheduler = sim._scheduler
        horizon = 0.0
        for i, event in enumerate(events):
            key = ("~fault", i)
            if event.kind == "crash":
                scheduler.at(
                    event.time_s,
                    lambda name=event.node: self._on_crash(name),
                    key=key,
                )
                if event.duration_s > 0.0:
                    scheduler.at(
                        event.end_s,
                        lambda name=event.node: self._on_recover(name),
                        key=key,
                    )
                horizon = max(horizon, event.end_s)
            elif event.kind == "recover":
                scheduler.at(
                    event.time_s,
                    lambda name=event.node: self._on_recover(name),
                    key=key,
                )
                horizon = max(horizon, event.time_s)
            elif event.kind == "energy-deplete":
                scheduler.at(
                    event.time_s,
                    lambda e=event: self._arm_budget(e),
                    key=key,
                )
                horizon = max(horizon, event.time_s)
            else:  # link-blackout / link-degrade / noise-burst windows
                pair = (
                    frozenset((event.node, event.peer))
                    if event.kind != "noise-burst"
                    else None
                )
                inflation = event.inflation
                scheduler.at(
                    event.time_s,
                    lambda i=i, pair=pair, p=inflation: (
                        self._active_windows.__setitem__(i, (pair, p))
                    ),
                    key=key,
                )
                scheduler.at(
                    event.end_s,
                    lambda i=i: self._active_windows.pop(i, None),
                    key=key,
                )
                horizon = max(horizon, event.end_s)
        if schedule.repair:
            self._tracker = NeighborLivenessTracker(
                names, schedule.beacon_interval_s, schedule.miss_threshold
            )
            # Keep ticking one detection delay past the last scheduled
            # fault so late crashes are still noticed and late
            # recoveries rediscovered.
            self._horizon = horizon + (
                (schedule.miss_threshold + 1) * schedule.beacon_interval_s
            )
            self._ticking = True
            scheduler.at(
                schedule.beacon_interval_s, self._on_tick, key=("~beacon",)
            )

    # ------------------------------------------------------------ sim queries
    @property
    def any_down(self) -> bool:
        """Whether any node is physically down right now."""
        return bool(self._down)

    def observed_dead(self, name: str) -> bool:
        """Whether the liveness layer currently believes ``name`` dead."""
        return name in self._observed_dead

    # ------------------------------------------------------------- transitions
    def _on_crash(self, name: str) -> None:
        if name in self._down:
            return
        sim = self._sim
        self._down.add(name)
        self._crash_time[name] = sim._scheduler.now_s
        sim.fail_node(name)
        sim._metrics.node_crashes += 1
        self._extend_ticks()

    def _on_recover(self, name: str) -> None:
        if name not in self._down:
            return
        sim = self._sim
        self._down.discard(name)
        sim.recover_node(name)
        sim._metrics.node_recoveries += 1
        # Re-flooding waits for tracker rediscovery (see _on_tick): with
        # repair on, the recovered node is still evicted from its
        # neighbours' tables at this instant, so an immediate re-flood
        # could not reach it anyway.
        self._extend_ticks()

    def _arm_budget(self, event: FaultEvent) -> None:
        if event.node in self._down:
            return
        self._budgets[event.node] = event.energy_budget_j
        self._spent[event.node] = 0.0

    # -------------------------------------------------------------- transmit
    def on_transmit(
        self, sender: str, receivers, outcome_row, airtime_s: float, now_s: float
    ) -> None:
        """Per-transmission hook: degradation windows + energy ledger.

        ``outcome_row`` is mutated in place; forced failures become
        ordinary link drops in the simulator's fan-out loop.
        """
        if self._active_windows:
            rng = self._rng
            for slot, outcome in enumerate(outcome_row):
                if outcome is None or not outcome.delivered:
                    continue
                p = self._inflation(sender, receivers[slot].name)
                if p <= 0.0:
                    continue
                # A certain failure (blackout) skips the draw, so pure
                # blackout windows consume no injector randomness.
                if p >= 1.0 or rng.random() < p:
                    outcome_row[slot] = dataclasses.replace(
                        outcome, delivered=False
                    )
        if self._budgets:
            self._charge(sender, TX_POWER_W * airtime_s, now_s, airtime_s)
            for receiver in receivers:
                if receiver.name in self._budgets and receiver.alive:
                    self._charge(
                        receiver.name, RX_POWER_W * airtime_s, now_s, airtime_s
                    )

    def _inflation(self, sender: str, receiver: str) -> float:
        """Combined loss probability over all windows covering the link."""
        pair = None
        survive = 1.0
        for window_pair, p in self._active_windows.values():
            if window_pair is not None:
                if pair is None:
                    pair = frozenset((sender, receiver))
                if window_pair != pair:
                    continue
            survive *= 1.0 - p
        return 1.0 - survive

    def _charge(
        self, name: str, joules: float, now_s: float, airtime_s: float
    ) -> None:
        budget = self._budgets.get(name)
        if budget is None:
            return
        self._spent[name] += joules
        if self._spent[name] >= budget:
            # One shutdown per budget, at the end of the depleting
            # transmission (the modem finishes the symbol, then dies).
            del self._budgets[name]
            self._sim._scheduler.at(
                now_s + airtime_s,
                lambda: self._on_crash(name),
                key=("~fault-energy", name),
            )

    # ------------------------------------------------------------------ repair
    def _on_tick(self) -> None:
        sim = self._sim
        now = sim._scheduler.now_s
        newly_dead, newly_alive = self._tracker.tick(now, self._down)
        for name in newly_dead:
            sim.topology.deactivate(name)
            self._observed_dead.add(name)
            sim._metrics.record_repair(now - self._crash_time[name])
            sim.abort_flows_to(name, "dest-dead")
        for name in newly_alive:
            sim.topology.reactivate(name)
            self._observed_dead.discard(name)
        if newly_dead or newly_alive:
            sim.routing.prepare(sim.topology)
        # After reactivation + route recompute, so the recovered node is
        # back in its neighbours' fan-out tables and can hear the flood.
        for name in newly_alive:
            sim.reflood_broadcasts(name)
        if self._horizon - now > 1e-9:
            sim._scheduler.at(
                now + self.schedule.beacon_interval_s,
                self._on_tick,
                key=("~beacon",),
            )
        else:
            self._ticking = False

    def _extend_ticks(self) -> None:
        """Keep the beacon clock running long enough to observe a
        just-happened transition (e.g. an energy death past the last
        scheduled event)."""
        if self._tracker is None:
            return
        schedule = self.schedule
        now = self._sim._scheduler.now_s
        self._horizon = max(
            self._horizon,
            now + (schedule.miss_threshold + 2) * schedule.beacon_interval_s,
        )
        if not self._ticking:
            self._ticking = True
            self._sim._scheduler.at(
                now + schedule.beacon_interval_s,
                self._on_tick,
                key=("~beacon",),
            )
