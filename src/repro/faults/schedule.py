"""Declarative, versioned fault schedules.

A :class:`FaultSchedule` is the portable description of *everything bad
that happens* during one network run: explicit timed
:class:`FaultEvent` entries, plus an optional seeded
:class:`ChurnProcess` that expands into crash/recovery events when the
node population is known.  Schedules serialize to canonical JSON
(``sort_keys``, stable field order) so a committed schedule file is a
reproducible experiment artifact: the same schedule and scenario seed
replay bit-identically.

Event kinds
-----------
``crash``
    Node ``node`` goes down at ``time_s``; ``duration_s > 0`` schedules
    its recovery, ``0`` crashes it permanently.
``recover``
    Explicitly bring ``node`` back up (for crashes recorded without a
    duration).
``link-blackout``
    The (``node``, ``peer``) pair delivers nothing during the window --
    severed mooring line, a vessel anchored across the path.
``link-degrade``
    The pair's packet error rate is inflated during the window, either
    directly (``per_inflation``) or via an SNR penalty in dB
    (``snr_penalty_db``, mapped through ``1 - 10**(-dB/10)`` -- the
    fraction of packet energy lost, a deliberately simple proxy).
``noise-burst``
    A wideband interferer degrades *every* link for the window (same
    inflation parameters as ``link-degrade``).
``energy-deplete``
    From ``time_s`` on, ``node`` pays the modem energy proxy
    (:data:`~repro.net.metrics.TX_POWER_W` /
    :data:`~repro.net.metrics.RX_POWER_W` times airtime) against
    ``energy_budget_j`` and shuts down for good when it runs out.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

import numpy as np

from repro.utils.validation import require_positive

#: Format marker written into every serialized schedule.
FAULTS_FORMAT = "repro.faults"

#: Schema version of the serialized form.
FAULTS_VERSION = 1

#: Recognized fault event kinds.
FAULT_KINDS = (
    "crash",
    "recover",
    "link-blackout",
    "link-degrade",
    "noise-burst",
    "energy-deplete",
)

#: Kinds that name a single node / a node pair / a link window.
_NODE_KINDS = ("crash", "recover", "energy-deplete")
_PAIR_KINDS = ("link-blackout", "link-degrade")
_WINDOW_KINDS = ("link-blackout", "link-degrade", "noise-burst")


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault (see the module docstring for kind semantics)."""

    kind: str
    time_s: float
    node: str = ""
    peer: str = ""
    duration_s: float = 0.0
    per_inflation: float = 0.0
    snr_penalty_db: float = 0.0
    energy_budget_j: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )
        if self.time_s < 0.0:
            raise ValueError(f"time_s must be >= 0, got {self.time_s}")
        if self.duration_s < 0.0:
            raise ValueError(f"duration_s must be >= 0, got {self.duration_s}")
        if not 0.0 <= self.per_inflation <= 1.0:
            raise ValueError(
                f"per_inflation must be in [0, 1], got {self.per_inflation}"
            )
        if self.snr_penalty_db < 0.0:
            raise ValueError(
                f"snr_penalty_db must be >= 0, got {self.snr_penalty_db}"
            )
        if self.kind in _NODE_KINDS and not self.node:
            raise ValueError(f"{self.kind} events need a node")
        if self.kind in _PAIR_KINDS and (not self.node or not self.peer):
            raise ValueError(f"{self.kind} events need a node and a peer")
        if self.kind in _WINDOW_KINDS and self.duration_s <= 0.0:
            raise ValueError(f"{self.kind} events need duration_s > 0")
        if self.kind == "energy-deplete" and self.energy_budget_j <= 0.0:
            raise ValueError("energy-deplete events need energy_budget_j > 0")

    @property
    def end_s(self) -> float:
        """End of the event's effect window."""
        return self.time_s + self.duration_s

    @property
    def inflation(self) -> float:
        """Effective per-transmission loss probability of the window.

        Blackouts sever the link outright; degradations use the direct
        ``per_inflation`` when given, else the SNR-penalty proxy.
        """
        if self.kind == "link-blackout":
            return 1.0
        if self.per_inflation > 0.0:
            return self.per_inflation
        return 1.0 - 10.0 ** (-self.snr_penalty_db / 10.0)

    def to_dict(self) -> dict:
        """Compact JSON form (zero-valued optionals omitted)."""
        data: dict = {"kind": self.kind, "time_s": self.time_s}
        if self.node:
            data["node"] = self.node
        if self.peer:
            data["peer"] = self.peer
        if self.duration_s:
            data["duration_s"] = self.duration_s
        if self.per_inflation:
            data["per_inflation"] = self.per_inflation
        if self.snr_penalty_db:
            data["snr_penalty_db"] = self.snr_penalty_db
        if self.energy_budget_j:
            data["energy_budget_j"] = self.energy_budget_j
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            kind=str(data["kind"]),
            time_s=float(data["time_s"]),
            node=str(data.get("node", "")),
            peer=str(data.get("peer", "")),
            duration_s=float(data.get("duration_s", 0.0)),
            per_inflation=float(data.get("per_inflation", 0.0)),
            snr_penalty_db=float(data.get("snr_penalty_db", 0.0)),
            energy_budget_j=float(data.get("energy_budget_j", 0.0)),
        )


@dataclass(frozen=True)
class ChurnProcess:
    """Seeded stochastic node churn: exponential up/down times per node.

    Each eligible node alternates between up periods (mean
    ``1 / rate_per_node_per_s``) and down periods (mean
    ``mean_downtime_s``) inside the ``[start_s, end_s)`` window.  The
    draws come from the process's *own* generator seeded with ``seed``,
    so expansion is a pure function of (seed, node names): the same
    schedule expands identically on every run and machine.
    """

    rate_per_node_per_s: float
    mean_downtime_s: float
    end_s: float
    start_s: float = 0.0
    seed: int = 0
    #: Restrict churn to these nodes (``None`` = all).
    nodes: tuple[str, ...] | None = None
    #: Nodes exempt from churn (sources/sinks the scenario must keep).
    protect: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        require_positive(self.rate_per_node_per_s, "rate_per_node_per_s")
        require_positive(self.mean_downtime_s, "mean_downtime_s")
        if self.end_s <= self.start_s:
            raise ValueError("end_s must be after start_s")

    def expand(self, names: tuple[str, ...]) -> tuple[FaultEvent, ...]:
        """Expand into crash events (with recovery durations) for ``names``."""
        rng = np.random.default_rng(self.seed)
        eligible = [
            name
            for name in (self.nodes if self.nodes is not None else names)
            if name not in self.protect
        ]
        mean_up = 1.0 / self.rate_per_node_per_s
        events: list[FaultEvent] = []
        # Per-node alternating renewal process, nodes in deterministic
        # order: the draw sequence is a pure function of the seed.
        for name in eligible:
            t = self.start_s + float(rng.exponential(mean_up))
            while t < self.end_s:
                downtime = float(rng.exponential(self.mean_downtime_s))
                events.append(
                    FaultEvent("crash", t, node=name, duration_s=downtime)
                )
                t += downtime + float(rng.exponential(mean_up))
        events.sort(key=lambda event: (event.time_s, event.node))
        return tuple(events)

    def to_dict(self) -> dict:
        """JSON form."""
        data: dict = {
            "rate_per_node_per_s": self.rate_per_node_per_s,
            "mean_downtime_s": self.mean_downtime_s,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "seed": self.seed,
        }
        if self.nodes is not None:
            data["nodes"] = list(self.nodes)
        if self.protect:
            data["protect"] = list(self.protect)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ChurnProcess":
        """Rebuild from :meth:`to_dict` output."""
        nodes = data.get("nodes")
        return cls(
            rate_per_node_per_s=float(data["rate_per_node_per_s"]),
            mean_downtime_s=float(data["mean_downtime_s"]),
            start_s=float(data.get("start_s", 0.0)),
            end_s=float(data["end_s"]),
            seed=int(data.get("seed", 0)),
            nodes=tuple(str(n) for n in nodes) if nodes is not None else None,
            protect=tuple(str(n) for n in data.get("protect", ())),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """Everything that goes wrong in one run, plus the repair policy.

    ``repair`` enables the resilience response (liveness tracking,
    topology eviction, route recomputation, proactive aborts, SOS
    re-flooding); with it off the same faults strike an oblivious
    network -- the A/B pair the ``resilience_vs_churn`` validation
    figure compares.  ``beacon_interval_s`` and ``miss_threshold``
    parameterize the liveness tracker; ``seed`` feeds the injector's own
    generator (degradation draws), independent of both the scenario seed
    and the churn seed.
    """

    events: tuple[FaultEvent, ...] = ()
    churn: ChurnProcess | None = None
    repair: bool = True
    beacon_interval_s: float = 10.0
    miss_threshold: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        require_positive(self.beacon_interval_s, "beacon_interval_s")
        if self.miss_threshold < 1:
            raise ValueError("miss_threshold must be at least 1")
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def is_empty(self) -> bool:
        """Whether the schedule injects nothing at all."""
        return not self.events and self.churn is None

    @property
    def detection_delay_s(self) -> float:
        """Silence needed before the tracker declares a node dead."""
        return self.miss_threshold * self.beacon_interval_s

    def validate_names(self, names: tuple[str, ...]) -> None:
        """Raise if the schedule targets a node absent from ``names``."""
        known = set(names)
        for event in self.events:
            if event.node and event.node not in known:
                raise ValueError(
                    f"fault event names unknown node {event.node!r}"
                )
            if event.peer and event.peer not in known:
                raise ValueError(
                    f"fault event names unknown node {event.peer!r}"
                )
        if self.churn is not None and self.churn.nodes is not None:
            for name in self.churn.nodes:
                if name not in known:
                    raise ValueError(
                        f"churn process names unknown node {name!r}"
                    )

    def expand(self, names: tuple[str, ...]) -> tuple[FaultEvent, ...]:
        """Explicit events plus expanded churn, in deterministic order."""
        events = list(self.events)
        if self.churn is not None:
            events.extend(self.churn.expand(names))
        events.sort(
            key=lambda event: (event.time_s, event.kind, event.node, event.peer)
        )
        return tuple(events)

    # ------------------------------------------------------------------ (de)ser
    def to_dict(self) -> dict:
        """Versioned JSON form."""
        return {
            "format": FAULTS_FORMAT,
            "version": FAULTS_VERSION,
            "repair": self.repair,
            "beacon_interval_s": self.beacon_interval_s,
            "miss_threshold": self.miss_threshold,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
            "churn": self.churn.to_dict() if self.churn is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        """Rebuild from :meth:`to_dict` output (format/version checked)."""
        if data.get("format") != FAULTS_FORMAT:
            raise ValueError(
                f"not a {FAULTS_FORMAT} document (format={data.get('format')!r})"
            )
        version = int(data.get("version", -1))
        if version != FAULTS_VERSION:
            raise ValueError(
                f"unsupported fault-schedule version {version} "
                f"(supported: {FAULTS_VERSION})"
            )
        churn = data.get("churn")
        return cls(
            events=tuple(
                FaultEvent.from_dict(event) for event in data.get("events", ())
            ),
            churn=ChurnProcess.from_dict(churn) if churn is not None else None,
            repair=bool(data.get("repair", True)),
            beacon_interval_s=float(data.get("beacon_interval_s", 10.0)),
            miss_threshold=int(data.get("miss_threshold", 3)),
            seed=int(data.get("seed", 0)),
        )

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) -- the committed-artifact form."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Parse :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def with_repair(self, repair: bool) -> "FaultSchedule":
        """Same faults, different repair policy (the A/B toggle)."""
        return replace(self, repair=bool(repair))

    def save(self, path) -> str:
        """Write canonical JSON to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
        return str(path)

    @classmethod
    def load(cls, path) -> "FaultSchedule":
        """Read a schedule written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def load_schedule(path) -> FaultSchedule:
    """Module-level convenience alias of :meth:`FaultSchedule.load`."""
    return FaultSchedule.load(path)
