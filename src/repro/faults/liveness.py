"""Beacon-style neighbor liveness tracking.

Real AquaApp-class deployments learn about dead neighbors the only way
an underwater network can: silence.  Nodes beacon periodically; a
neighbor that misses ``miss_threshold`` consecutive beacon intervals is
declared dead, and one that is heard again after an outage is
rediscovered.  :class:`NeighborLivenessTracker` models exactly that
threshold mechanic -- detection latency, eviction, rediscovery -- so
route repair is driven by *observed* silence rather than oracle
knowledge of crash events.

The beacon packets themselves are abstracted out: the tracker is fed
the physically-down set at each beacon tick instead of simulating
beacon traffic in-band.  Injecting real beacon packets would perturb
the shared acoustic channel (and therefore every golden signature);
the out-of-band form keeps the detection-latency behavior while leaving
the deterministic event stream of the data plane untouched.
"""

from __future__ import annotations

from collections.abc import Iterable, Set


class NeighborLivenessTracker:
    """Tracks which nodes the network *believes* are alive.

    The tracker starts with every node freshly heard at time zero.  Each
    :meth:`tick` represents one beacon interval: nodes in the ``down``
    set stay silent (their last-heard time ages), everyone else beacons
    (last-heard refreshes).  A node silent for at least
    ``miss_threshold * beacon_interval_s`` is declared dead; a dead node
    that beacons again is rediscovered.
    """

    def __init__(
        self,
        names: Iterable[str],
        beacon_interval_s: float,
        miss_threshold: int,
    ) -> None:
        if beacon_interval_s <= 0.0:
            raise ValueError("beacon_interval_s must be positive")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be at least 1")
        self.beacon_interval_s = float(beacon_interval_s)
        self.miss_threshold = int(miss_threshold)
        # Insertion order == node order: iteration (and therefore the
        # order of declared deaths/rediscoveries) is deterministic.
        self._last_heard: dict[str, float] = {name: 0.0 for name in names}
        self._dead: set[str] = set()

    @property
    def detection_delay_s(self) -> float:
        """Silence required before a node is declared dead."""
        return self.miss_threshold * self.beacon_interval_s

    @property
    def suspected_dead(self) -> frozenset[str]:
        """Nodes currently believed dead."""
        return frozenset(self._dead)

    def record_beacon(self, name: str, time_s: float) -> None:
        """Note a beacon from ``name`` at ``time_s`` (does not rediscover)."""
        if name in self._last_heard:
            self._last_heard[name] = float(time_s)

    def tick(
        self, now_s: float, down: Set[str]
    ) -> tuple[list[str], list[str]]:
        """Advance one beacon interval.

        ``down`` is the physically-down set at this instant; everyone
        else is assumed to have beaconed.  Returns
        ``(newly_dead, newly_alive)`` in deterministic node order.
        """
        newly_dead: list[str] = []
        newly_alive: list[str] = []
        for name, last in self._last_heard.items():
            if name in down:
                if (
                    name not in self._dead
                    and now_s - last >= self.detection_delay_s
                ):
                    self._dead.add(name)
                    newly_dead.append(name)
            else:
                self._last_heard[name] = now_s
                if name in self._dead:
                    self._dead.discard(name)
                    newly_alive.append(name)
        return newly_dead, newly_alive
