"""Deterministic fault injection and resilience for :mod:`repro.net`.

The package splits the problem into three pieces:

* :mod:`repro.faults.schedule` -- the *what*: a versioned,
  JSON-serializable :class:`FaultSchedule` of explicit timed fault
  events plus a seeded stochastic :class:`ChurnProcess` generator.
* :mod:`repro.faults.liveness` -- the *observation*: a beacon-style
  :class:`NeighborLivenessTracker` that declares nodes dead only after a
  miss-threshold of silence and rediscovers them when they speak again.
* :mod:`repro.faults.injector` -- the *how*: a :class:`FaultInjector`
  that hooks one :class:`~repro.net.simulator.NetworkSimulator` run,
  drives crashes/recoveries/link windows from its own seeded generator
  (the simulation's RNG stream is never touched), and -- when the
  schedule enables repair -- feeds observed silence into topology
  eviction, route recomputation, proactive flow aborts and SOS
  re-flooding.

Determinism guarantee: the same (scenario seed, schedule) pair replays
bit-identically, and an *empty* schedule installs nothing at all, so a
fault-free run is byte-identical to one built without the faults layer.
"""

from repro.faults.injector import FaultInjector
from repro.faults.liveness import NeighborLivenessTracker
from repro.faults.schedule import (
    FAULT_KINDS,
    FAULTS_FORMAT,
    FAULTS_VERSION,
    ChurnProcess,
    FaultEvent,
    FaultSchedule,
    load_schedule,
)

__all__ = [
    "FAULT_KINDS",
    "FAULTS_FORMAT",
    "FAULTS_VERSION",
    "ChurnProcess",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "NeighborLivenessTracker",
    "load_schedule",
]
