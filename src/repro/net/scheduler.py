"""Generic discrete-event scheduler.

Everything time-ordered in the network simulator -- transmissions
completing, packets arriving after their propagation delay, ARQ timers
firing, traffic sources emitting messages, mobility steps -- is an
:class:`Event` on one :class:`Scheduler`.  The heap holds plain
``(time, key, sequence, event)`` tuples (native tuple comparison is what
makes pushing and popping tens of thousands of events cheap; an orderable
dataclass pays a generated ``__lt__`` per comparison), ties are broken by
an optional stable *key* and then by insertion order so runs are fully
deterministic -- per-flow ARQ timers pass their (source, destination)
names as the key, making many-flow runs reproducible even if flows are
created in a different order -- and cancellation is
*lazy* (a cancelled event stays in the heap but is skipped when popped),
which keeps :meth:`Scheduler.cancel` O(1) -- ARQ timers are rescheduled
far more often than they fire.  A skip-cancel counter tracks how many
cancelled entries remain queued so :attr:`Scheduler.num_pending` is O(1)
instead of a heap scan.
"""

from __future__ import annotations

import heapq
from typing import Callable


class Event:
    """One scheduled action.

    Attributes
    ----------
    time_s:
        Absolute simulation time at which the action runs.
    key:
        Stable tie-break applied before the insertion counter: same-time
        events order by ``key`` first, so callers with a natural identity
        (e.g. a flow's endpoint names) are ordered by *what* they are,
        not by when they happened to be scheduled.  Defaults to ``()``,
        which sorts before every non-empty key.
    sequence:
        Insertion counter; orders events scheduled for the same instant
        and key.
    action:
        Zero-argument callable executed when the event fires.
    cancelled:
        Lazily-cancelled events are skipped when they reach the heap top.
    """

    __slots__ = ("time_s", "key", "sequence", "action", "cancelled", "_done")

    def __init__(
        self,
        time_s: float,
        sequence: int,
        action: Callable[[], None],
        key: tuple = (),
    ) -> None:
        self.time_s = time_s
        self.key = key
        self.sequence = sequence
        self.action = action
        self.cancelled = False
        self._done = False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cancelled" if self.cancelled else ("done" if self._done else "pending")
        return f"Event(time_s={self.time_s}, sequence={self.sequence}, {state})"


class Scheduler:
    """Time-ordered event queue driving one simulation run."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, tuple, int, Event]] = []
        self._sequence = 0
        self._now_s = 0.0
        self._num_processed = 0
        self._num_cancelled_pending = 0

    # ------------------------------------------------------------- properties
    @property
    def now_s(self) -> float:
        """Current simulation time (start time of the last processed event)."""
        return self._now_s

    @property
    def num_processed(self) -> int:
        """Events executed so far."""
        return self._num_processed

    @property
    def num_pending(self) -> int:
        """Events still queued (cancelled ones excluded)."""
        return len(self._heap) - self._num_cancelled_pending

    # ------------------------------------------------------------- scheduling
    def at(
        self, time_s: float, action: Callable[[], None], key: tuple = ()
    ) -> Event:
        """Schedule ``action`` at absolute time ``time_s``.

        ``key`` is a stable same-time tie-break (compared before the
        insertion counter); it must be a tuple of mutually comparable
        elements across all callers that can collide in time.  The
        default empty tuple preserves pure insertion ordering.
        """
        time_s = float(time_s)
        if time_s < self._now_s:
            raise ValueError(
                f"cannot schedule at {time_s} s: simulation time is already "
                f"{self._now_s} s"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time_s, sequence, action, key)
        heapq.heappush(self._heap, (time_s, key, sequence, event))
        return event

    def after(
        self, delay_s: float, action: Callable[[], None], key: tuple = ()
    ) -> Event:
        """Schedule ``action`` ``delay_s`` seconds from the current time."""
        if delay_s < 0:
            raise ValueError(f"delay_s must be non-negative, got {delay_s}")
        return self.at(self._now_s + float(delay_s), action, key)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already ran)."""
        if event.cancelled or event._done:
            return
        event.cancelled = True
        self._num_cancelled_pending += 1

    # ---------------------------------------------------------------- running
    def _discard_cancelled_top(self) -> None:
        """Drop lazily-cancelled entries from the heap top."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            event = heapq.heappop(heap)[3]
            event._done = True
            self._num_cancelled_pending -= 1

    def step(self) -> bool:
        """Run the next pending event; return ``False`` when none remain."""
        self._discard_cancelled_top()
        if not self._heap:
            return False
        time_s, _, _, event = heapq.heappop(self._heap)
        event._done = True
        self._now_s = time_s
        self._num_processed += 1
        event.action()
        return True

    def run(self, until_s: float | None = None, max_events: int | None = None) -> int:
        """Process events in time order.

        Pops directly off the heap (no per-event re-entry through
        :meth:`step`, which would scan for cancelled tops a second time)
        and drains *cohorts* of same-time events in one sweep: the heap
        is consulted once per distinct timestamp, not once per event.
        Events an earlier cohort member schedules for the same instant
        carry larger sequence numbers and form the next cohort, so
        execution order is identical to the one-at-a-time loop.

        Parameters
        ----------
        until_s:
            Stop once the next event lies strictly beyond this time (the
            event stays queued and the clock advances to ``until_s``).
        max_events:
            Safety valve: stop after this many events.

        Returns
        -------
        int
            Number of events processed by this call.
        """
        heap = self._heap
        processed = 0
        while heap:
            if max_events is not None and processed >= max_events:
                break
            top = heap[0][3]
            if top.cancelled:
                heapq.heappop(heap)
                top._done = True
                self._num_cancelled_pending -= 1
                continue
            time_s = heap[0][0]
            if until_s is not None and time_s > until_s:
                self._now_s = max(self._now_s, float(until_s))
                break
            first = heapq.heappop(heap)[3]
            if not (heap and heap[0][0] == time_s):
                # Lone event at this instant (the common case under
                # jittered continuous time): dispatch without building a
                # cohort list.
                self._now_s = time_s
                first._done = True
                self._num_processed += 1
                processed += 1
                first.action()
                continue
            # Collect the cohort scheduled for exactly this instant,
            # bounded by the remaining event budget.
            budget = None if max_events is None else max_events - processed
            cohort: list[Event] = [first]
            while heap and heap[0][0] == time_s:
                if budget is not None and len(cohort) >= budget:
                    break
                event = heapq.heappop(heap)[3]
                if event.cancelled:
                    event._done = True
                    self._num_cancelled_pending -= 1
                    continue
                cohort.append(event)
            self._now_s = time_s
            for event in cohort:
                if event.cancelled:
                    # Cancelled by an earlier event in this same cohort.
                    event._done = True
                    self._num_cancelled_pending -= 1
                    continue
                event._done = True
                self._num_processed += 1
                processed += 1
                event.action()
        return processed
