"""Generic discrete-event scheduler.

Everything time-ordered in the network simulator -- transmissions
completing, packets arriving after their propagation delay, ARQ timers
firing, traffic sources emitting messages, mobility steps -- is an
:class:`Event` on one :class:`Scheduler`.  The scheduler is a plain heap
of ``(time, sequence, event)`` entries: ties are broken by insertion
order, so runs are fully deterministic, and cancellation is *lazy* (a
cancelled event stays in the heap but is skipped when popped), which
keeps :meth:`Scheduler.cancel` O(1) -- ARQ timers are rescheduled far
more often than they fire.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """One scheduled action.

    Attributes
    ----------
    time_s:
        Absolute simulation time at which the action runs.
    sequence:
        Insertion counter; orders events scheduled for the same instant.
    action:
        Zero-argument callable executed when the event fires.
    cancelled:
        Lazily-cancelled events are skipped when they reach the heap top.
    """

    time_s: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Scheduler:
    """Time-ordered event queue driving one simulation run."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now_s = 0.0
        self._num_processed = 0

    # ------------------------------------------------------------- properties
    @property
    def now_s(self) -> float:
        """Current simulation time (start time of the last processed event)."""
        return self._now_s

    @property
    def num_processed(self) -> int:
        """Events executed so far."""
        return self._num_processed

    @property
    def num_pending(self) -> int:
        """Events still queued (cancelled ones excluded)."""
        return sum(not event.cancelled for event in self._heap)

    # ------------------------------------------------------------- scheduling
    def at(self, time_s: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute time ``time_s``."""
        time_s = float(time_s)
        if time_s < self._now_s:
            raise ValueError(
                f"cannot schedule at {time_s} s: simulation time is already "
                f"{self._now_s} s"
            )
        event = Event(time_s=time_s, sequence=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay_s: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` ``delay_s`` seconds from the current time."""
        if delay_s < 0:
            raise ValueError(f"delay_s must be non-negative, got {delay_s}")
        return self.at(self._now_s + float(delay_s), action)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already ran)."""
        event.cancelled = True

    # ---------------------------------------------------------------- running
    def step(self) -> bool:
        """Run the next pending event; return ``False`` when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now_s = event.time_s
            self._num_processed += 1
            event.action()
            return True
        return False

    def run(self, until_s: float | None = None, max_events: int | None = None) -> int:
        """Process events in time order.

        Parameters
        ----------
        until_s:
            Stop once the next event lies strictly beyond this time (the
            event stays queued and the clock advances to ``until_s``).
        max_events:
            Safety valve: stop after this many events.

        Returns
        -------
        int
            Number of events processed by this call.
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                break
            # Peek past lazily-cancelled entries to find the real next event.
            while self._heap and self._heap[0].cancelled:
                heapq.heappop(self._heap)
            if not self._heap:
                break
            if until_s is not None and self._heap[0].time_s > until_s:
                self._now_s = max(self._now_s, float(until_s))
                break
            if self.step():
                processed += 1
        return processed
