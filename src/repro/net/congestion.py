"""Congestion control and relay-queue modeling for the acoustic transport.

The sliding-window ARQ of :mod:`repro.net.transport` historically sent at
a fixed window -- fine for the paper's two-device link, collapse-prone
once dozens of flows share relays.  This module makes the window
*pluggable*:

* :class:`CongestionController` -- the protocol the
  :class:`~repro.net.transport.ArqSender` drives: how many segments may
  be in flight, what the retransmission timeout currently is, and hooks
  for ACKs, duplicate ACKs, fast retransmits, timeouts and RTT samples.
* :class:`FixedWindow` -- the bit-exact legacy behaviour: the configured
  window, the configured constant timeout, every hook a no-op.  An
  :class:`~repro.net.transport.ArqSender` without an explicit controller
  builds one of these, so pre-congestion scenarios replay identically.
* :class:`RenoController` -- a TCP-Reno-style AIMD state machine (slow
  start, congestion avoidance, fast recovery on duplicate ACKs, timeout
  collapse to one segment) driving the existing Go-Back-N / selective
  repeat windows, paired with an :class:`AdaptiveRto` (SRTT/RTTVAR
  smoothing per RFC 6298, Karn's rule enforced by the sender, exponential
  backoff) whose floors are tuned for *second-scale* acoustic RTTs
  rather than the millisecond internet.
* :class:`RelayQueueConfig` -- a bounded per-node FIFO with tail drop
  and optional RED-style probabilistic early drop, applied by the
  simulator wherever packets queue for transmission.

The controllers are pure state machines fed explicit time, like the ARQ
endpoints themselves: no scheduler dependency, directly unit-testable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

#: Registered congestion-controller kinds (``build_controller`` keys).
CC_KINDS = ("fixed", "reno")

#: Hard cap on recorded cwnd trajectory samples per flow.  Long congested
#: runs change cwnd on nearly every ACK; beyond this many samples the
#: trajectory stops growing (the counters still update) so metrics stay
#: bounded.  The cap is recorded via :attr:`CwndTrajectory.truncated`.
MAX_CWND_SAMPLES = 4096


class CwndTrajectory:
    """Bounded (time, cwnd) sample log of one flow's congestion window."""

    __slots__ = ("times_s", "cwnds", "truncated")

    def __init__(self) -> None:
        self.times_s: list[float] = []
        self.cwnds: list[float] = []
        self.truncated = False

    def record(self, time_s: float, cwnd: float) -> None:
        """Append one sample, honouring the global cap."""
        if len(self.times_s) >= MAX_CWND_SAMPLES:
            self.truncated = True
            return
        self.times_s.append(time_s)
        self.cwnds.append(cwnd)

    def __len__(self) -> int:
        return len(self.times_s)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Columnar view ``(times_s, cwnds)``."""
        return (
            np.asarray(self.times_s, dtype=float),
            np.asarray(self.cwnds, dtype=float),
        )


class AdaptiveRto:
    """RFC 6298-style retransmission timeout for second-scale RTTs.

    SRTT/RTTVAR smoothing with the standard gains (``alpha=1/8``,
    ``beta=1/4``), ``RTO = SRTT + max(granularity, 4 * RTTVAR)``, clamped
    to ``[min_rto_s, max_rto_s]``, with exponential backoff on timeout
    (doubling, capped) that resets on the next valid RTT sample.  Karn's
    rule -- never sample a retransmitted segment -- is the *sender's*
    responsibility: it simply does not call :meth:`on_sample` for them.

    The floors differ from the internet defaults because underwater
    acoustic RTTs are seconds: the minimum RTO is 1 s (not 200 ms) and
    the clock granularity term is 100 ms.
    """

    ALPHA = 0.125
    BETA = 0.25
    GRANULARITY_S = 0.1

    __slots__ = ("initial_rto_s", "min_rto_s", "max_rto_s", "max_backoff",
                 "srtt_s", "rttvar_s", "_rto_s", "backoff")

    def __init__(
        self,
        initial_rto_s: float,
        min_rto_s: float = 1.0,
        max_rto_s: float = 120.0,
        max_backoff: int = 64,
    ) -> None:
        if initial_rto_s <= 0:
            raise ValueError("initial_rto_s must be positive")
        if not 0 < min_rto_s <= max_rto_s:
            raise ValueError("need 0 < min_rto_s <= max_rto_s")
        self.initial_rto_s = float(initial_rto_s)
        self.min_rto_s = float(min_rto_s)
        self.max_rto_s = float(max_rto_s)
        self.max_backoff = int(max_backoff)
        self.srtt_s: float | None = None
        self.rttvar_s = 0.0
        self._rto_s = float(initial_rto_s)
        self.backoff = 1

    def on_sample(self, rtt_s: float) -> None:
        """Fold one valid (non-retransmitted) RTT measurement in."""
        rtt_s = float(rtt_s)
        if rtt_s < 0:
            return
        if self.srtt_s is None:
            self.srtt_s = rtt_s
            self.rttvar_s = rtt_s / 2.0
        else:
            self.rttvar_s = (
                (1.0 - self.BETA) * self.rttvar_s
                + self.BETA * abs(self.srtt_s - rtt_s)
            )
            self.srtt_s = (1.0 - self.ALPHA) * self.srtt_s + self.ALPHA * rtt_s
        self._rto_s = self.srtt_s + max(self.GRANULARITY_S, 4.0 * self.rttvar_s)
        self.backoff = 1  # fresh evidence ends the backoff episode

    def on_timeout(self) -> None:
        """Exponential backoff: double the effective RTO, capped."""
        self.backoff = min(self.backoff * 2, self.max_backoff)

    def current_s(self) -> float:
        """The RTO a segment transmitted now should be armed with."""
        base = max(self.min_rto_s, min(self._rto_s, self.max_rto_s))
        return min(base * self.backoff, self.max_rto_s)


class CongestionController(ABC):
    """What the ARQ sender asks of a congestion-control algorithm.

    Controllers are per-flow and stateful; every hook receives the
    caller's explicit ``now_s`` so the state machines stay pure and the
    simulator's scheduler remains the only clock.
    """

    #: Catalog key / report label of the algorithm.
    name: str = "abstract"

    @abstractmethod
    def window(self) -> int:
        """Segments currently allowed in flight (at least 1)."""

    @abstractmethod
    def rto_s(self) -> float:
        """Retransmission timeout for segments (re)transmitted now."""

    def on_ack(self, newly_acked: int, now_s: float) -> None:
        """``newly_acked`` segments left the window (cumulative or SACK)."""

    def on_duplicate_ack(self, now_s: float) -> None:
        """A genuine duplicate ACK of the current window base arrived."""

    def on_fast_retransmit(self, now_s: float) -> None:
        """The duplicate-ACK threshold fired one fast retransmit."""

    def on_timeout(self, now_s: float) -> None:
        """The retransmission timer expired."""

    def on_rtt_sample(self, rtt_s: float, now_s: float) -> None:
        """A Karn-valid RTT measurement (never from a retransmission)."""

    @property
    def trajectory(self) -> CwndTrajectory | None:
        """Recorded (time, cwnd) samples, if the controller keeps any."""
        return None

    @property
    def state(self) -> str:
        """Human-readable phase label for reports."""
        return self.name


class FixedWindow(CongestionController):
    """The legacy fixed-window behaviour as a controller.

    ``window()`` is the configured ARQ window, ``rto_s()`` the configured
    constant timeout, and every event hook is a no-op -- an
    :class:`~repro.net.transport.ArqSender` driving this controller is
    bit-identical to the pre-congestion-control sender, which is what
    keeps the committed golden scenario signatures and trace fixtures
    valid with ``cc="fixed"`` (the default).
    """

    name = "fixed"

    __slots__ = ("_window", "_timeout_s")

    def __init__(self, window_size: int, timeout_s: float) -> None:
        if window_size < 1:
            raise ValueError("window_size must be at least 1")
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self._window = int(window_size)
        self._timeout_s = float(timeout_s)

    def window(self) -> int:
        return self._window

    def rto_s(self) -> float:
        return self._timeout_s


class RenoController(CongestionController):
    """TCP-Reno-style AIMD congestion window over the ARQ flow.

    The classic state machine, re-based on segments (the ARQ's unit)
    and second-scale acoustic timing:

    * **Slow start** -- ``cwnd += 1`` per newly-acked segment
      (exponential per RTT) until ``ssthresh``.
    * **Congestion avoidance** -- ``cwnd += n / cwnd`` per ``n`` acked
      segments (one segment per RTT).
    * **Fast recovery** -- at the sender's duplicate-ACK threshold:
      ``ssthresh = max(cwnd / 2, 2)``, ``cwnd = ssthresh + 3``, inflating
      by one per further duplicate ACK (each names a segment that left
      the network), deflating to ``ssthresh`` on the next new ACK.
    * **Timeout** -- ``ssthresh = max(cwnd / 2, 2)``, ``cwnd = 1``, back
      to slow start, and the :class:`AdaptiveRto` backs off
      exponentially.

    ``max_window`` (the ARQ window, i.e. the peer's buffer) caps the
    effective window throughout, exactly like the advertised window caps
    cwnd in TCP.
    """

    name = "reno"

    def __init__(
        self,
        max_window: int,
        timeout_s: float,
        initial_cwnd: float = 1.0,
        initial_ssthresh: float | None = None,
        min_rto_s: float = 1.0,
        max_rto_s: float = 120.0,
    ) -> None:
        if max_window < 1:
            raise ValueError("max_window must be at least 1")
        if initial_cwnd < 1.0:
            raise ValueError("initial_cwnd must be at least 1")
        self.max_window = int(max_window)
        self.cwnd = float(initial_cwnd)
        self.ssthresh = (
            float(initial_ssthresh)
            if initial_ssthresh is not None
            else float(max_window)
        )
        self.rto = AdaptiveRto(
            initial_rto_s=timeout_s, min_rto_s=min_rto_s, max_rto_s=max_rto_s
        )
        self.in_fast_recovery = False
        self._trajectory = CwndTrajectory()
        self._trajectory.record(0.0, self.cwnd)

    # --------------------------------------------------------------- queries
    def window(self) -> int:
        return max(1, min(int(self.cwnd), self.max_window))

    def rto_s(self) -> float:
        return self.rto.current_s()

    @property
    def trajectory(self) -> CwndTrajectory:
        return self._trajectory

    @property
    def state(self) -> str:
        if self.in_fast_recovery:
            return "fast-recovery"
        if self.cwnd < self.ssthresh:
            return "slow-start"
        return "congestion-avoidance"

    # ----------------------------------------------------------------- hooks
    def _set_cwnd(self, cwnd: float, now_s: float) -> None:
        self.cwnd = min(max(1.0, cwnd), float(self.max_window))
        self._trajectory.record(now_s, self.cwnd)

    def on_ack(self, newly_acked: int, now_s: float) -> None:
        if newly_acked <= 0:
            return
        if self.in_fast_recovery:
            # New data acked: deflate back to ssthresh and resume linear
            # growth (plain Reno; no NewReno partial-ACK staydown).
            self.in_fast_recovery = False
            self._set_cwnd(self.ssthresh, now_s)
            return
        if self.cwnd < self.ssthresh:
            self._set_cwnd(self.cwnd + newly_acked, now_s)
        else:
            self._set_cwnd(self.cwnd + newly_acked / self.cwnd, now_s)

    def on_duplicate_ack(self, now_s: float) -> None:
        if self.in_fast_recovery:
            # Window inflation: each further duplicate ACK means one more
            # segment left the pipe.
            self._set_cwnd(self.cwnd + 1.0, now_s)

    def on_fast_retransmit(self, now_s: float) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.in_fast_recovery = True
        self._set_cwnd(self.ssthresh + 3.0, now_s)

    def on_timeout(self, now_s: float) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.in_fast_recovery = False
        self.rto.on_timeout()
        self._set_cwnd(1.0, now_s)

    def on_rtt_sample(self, rtt_s: float, now_s: float) -> None:
        del now_s
        self.rto.on_sample(rtt_s)


def build_controller(kind: str, config) -> CongestionController:
    """Construct a controller for one flow from an ``ArqConfig``-like.

    ``config`` only needs ``window_size`` and ``timeout_s`` attributes,
    which keeps this module free of transport imports.
    """
    if kind == "fixed":
        return FixedWindow(config.window_size, config.timeout_s)
    if kind == "reno":
        return RenoController(
            max_window=config.window_size, timeout_s=config.timeout_s
        )
    raise ValueError(
        f"unknown congestion controller {kind!r}; known: {', '.join(CC_KINDS)}"
    )


@dataclass(frozen=True)
class RelayQueueConfig:
    """Bounded per-node transmit buffer with tail drop or RED.

    Every node (source or relay) queues packets while its transducer is
    busy; this config bounds that queue.  ``capacity_packets`` is the
    hard limit (tail drop beyond it, accounted as the ``queue_drops``
    cause).  Setting ``red_min_fraction`` enables RED-style early drop:
    below ``red_min_fraction * capacity`` everything is admitted, between
    the min and max fractions the drop probability ramps linearly up to
    ``red_max_p``, and at or above ``red_max_fraction * capacity`` (or
    the hard capacity) the packet is dropped.  RED consumes one RNG draw
    per packet *in the ramp region only*, so pure-FIFO configurations
    stay draw-free.

    Attributes
    ----------
    capacity_packets:
        Hard buffer bound (packets), at least 1.
    red_min_fraction, red_max_fraction:
        RED thresholds as fractions of capacity; ``red_min_fraction=None``
        (default) disables RED, leaving pure tail drop.
    red_max_p:
        Drop probability at the max threshold.
    """

    capacity_packets: int
    red_min_fraction: float | None = None
    red_max_fraction: float = 1.0
    red_max_p: float = 0.1

    def __post_init__(self) -> None:
        if self.capacity_packets < 1:
            raise ValueError("capacity_packets must be at least 1")
        if self.red_min_fraction is not None:
            if not 0.0 <= self.red_min_fraction < self.red_max_fraction:
                raise ValueError(
                    "need 0 <= red_min_fraction < red_max_fraction"
                )
            if self.red_max_fraction > 1.0:
                raise ValueError("red_max_fraction must be at most 1")
            if not 0.0 < self.red_max_p <= 1.0:
                raise ValueError("red_max_p must be in (0, 1]")

    def admit(self, queue_length: int, rng: np.random.Generator) -> bool:
        """Whether a packet arriving at a queue of this length enters it."""
        if queue_length >= self.capacity_packets:
            return False  # tail drop
        if self.red_min_fraction is None:
            return True
        fill = queue_length / self.capacity_packets
        if fill < self.red_min_fraction:
            return True
        if fill >= self.red_max_fraction:
            return False
        ramp = (fill - self.red_min_fraction) / (
            self.red_max_fraction - self.red_min_fraction
        )
        return float(rng.random()) >= ramp * self.red_max_p


def jain_fairness_index(values) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly equal shares; ``1/n`` means one flow starved all
    others.  Returns ``nan`` for empty input or all-zero allocations.
    """
    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        return float("nan")
    x = np.where(np.isfinite(x), x, 0.0)
    denominator = x.size * float(np.sum(x * x))
    if denominator == 0.0:
        return float("nan")
    return float(np.sum(x)) ** 2 / denominator


__all__ = [
    "AdaptiveRto",
    "CC_KINDS",
    "CongestionController",
    "CwndTrajectory",
    "FixedWindow",
    "MAX_CWND_SAMPLES",
    "RelayQueueConfig",
    "RenoController",
    "build_controller",
    "jain_fairness_index",
]
