"""Reliable transport: sliding-window ARQ over lossy multi-hop paths.

This generalizes the single-packet stop-and-wait retry of
:mod:`repro.link.network` into proper windowed ARQ, in two flavours
selected by :attr:`ArqConfig.mode`:

``"go-back-n"``
    Cumulative ACKs ("next expected sequence"), a single retransmission
    timer on the window base, and full-window retransmission on timeout.
    Duplicate cumulative ACKs are counted and *suppressed*: only the
    third consecutive duplicate triggers one fast retransmit of the base
    segment, further duplicates are ignored until the window moves.

``"selective-repeat"``
    Individual ACKs plus a SACK list of out-of-order segments buffered by
    the receiver, per-segment timers, and per-segment retransmission.

Sequence numbers on the wire are ``absolute_index % seq_modulus``; the
sender and receiver keep absolute counters internally, so window
*wraparound* is exercised constantly rather than being a special case.
Both state machines are pure (no scheduler dependency): the caller feeds
them time explicitly, which is what makes the retransmission/timeout
paths directly unit-testable and lets :class:`~repro.net.simulator.\
NetworkSimulator` drive them from scheduler events.

A segment whose retries exceed :attr:`ArqConfig.max_retries` aborts its
flow (``sender.failed``), mirroring how the messaging network gives up on
a packet after ``max_retransmissions``.

The *rate* at which a sender fills its window is delegated to a
:class:`~repro.net.congestion.CongestionController`: the effective
window is ``min(config.window_size, controller.window())`` and segment
deadlines are armed with ``controller.rto_s()``.  The default controller
is :class:`~repro.net.congestion.FixedWindow`, whose window and timeout
are the configured constants and whose hooks are no-ops -- bit-identical
to the pre-congestion-control sender.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.congestion import CongestionController, FixedWindow


@dataclass(frozen=True)
class ArqConfig:
    """Sliding-window parameters of one reliable flow.

    Attributes
    ----------
    window_size:
        Segments allowed in flight.
    seq_modulus:
        Wire sequence-number space.  Go-Back-N needs ``> window_size``;
        selective repeat needs ``>= 2 * window_size`` so a wire sequence
        is unambiguous between the send and receive windows.
    timeout_s:
        Retransmission timeout.
    max_retries:
        Retransmissions allowed per segment before the flow aborts.
    mode:
        ``"go-back-n"`` or ``"selective-repeat"``.
    dup_ack_threshold:
        Consecutive duplicate ACKs that trigger one fast retransmit
        (Go-Back-N only).
    """

    window_size: int = 4
    seq_modulus: int = 16
    timeout_s: float = 3.0
    max_retries: int = 4
    mode: str = "go-back-n"
    dup_ack_threshold: int = 3

    def __post_init__(self) -> None:
        if self.mode not in ("go-back-n", "selective-repeat"):
            raise ValueError(
                f"mode must be 'go-back-n' or 'selective-repeat', got {self.mode!r}"
            )
        if self.window_size < 1:
            raise ValueError("window_size must be at least 1")
        if self.mode == "go-back-n" and self.seq_modulus <= self.window_size:
            raise ValueError("go-back-n needs seq_modulus > window_size")
        if self.mode == "selective-repeat" and self.seq_modulus < 2 * self.window_size:
            raise ValueError("selective repeat needs seq_modulus >= 2 * window_size")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.dup_ack_threshold < 1:
            raise ValueError("dup_ack_threshold must be at least 1")


@dataclass(frozen=True)
class Segment:
    """One transport segment (data or acknowledgement) on the wire.

    Attributes
    ----------
    flow_id:
        Identifies the (source, destination) flow.
    seq:
        Wire sequence number (``absolute_index % seq_modulus``).  For
        ACKs: cumulative "next expected" (Go-Back-N) or the individual
        sequence being acknowledged (selective repeat).
    kind:
        ``"data"`` or ``"ack"``.
    payload:
        Opaque application payload carried by data segments.
    sack:
        Selective repeat only: wire sequences buffered out of order at
        the receiver, acknowledged alongside ``seq``.
    ack_abs:
        Absolute counterpart of an ACK's ``seq`` (next-expected index for
        Go-Back-N, the acknowledged index for selective repeat).  A
        multi-hop network reorders ACKs, so a stale cumulative ACK can
        alias onto the current window when only ``seq mod modulus`` is
        known; carrying the absolute index stands in for the large
        sequence spaces/timestamps real protocols use to disambiguate.
        Senders fall back to wire arithmetic when it is absent.
    sack_abs:
        Absolute counterparts of ``sack``.
    """

    flow_id: str
    seq: int
    kind: str = "data"
    payload: object = None
    sack: tuple[int, ...] = ()
    ack_abs: int | None = None
    sack_abs: tuple[int, ...] = ()


@dataclass
class FlowStats:
    """Counters of one flow endpoint (sender or receiver side)."""

    offered: int = 0
    data_transmissions: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    acks_received: int = 0
    duplicate_acks: int = 0
    fast_retransmits: int = 0
    acks_sent: int = 0
    delivered_in_order: int = 0
    duplicates_received: int = 0
    out_of_order_discarded: int = 0
    out_of_window_dropped: int = 0


@dataclass
class _InFlight:
    """Sender-side bookkeeping of one transmitted, unacknowledged segment."""

    payload: object
    deadline_s: float = 0.0
    retries: int = 0
    acked: bool = False
    #: First-transmission time, for RTT sampling (Karn's rule excludes
    #: segments with ``retries > 0``).
    sent_s: float = 0.0


class ArqSender:
    """Sliding-window sender of one reliable flow.

    ``controller`` plugs a congestion-control algorithm into the window
    and timer arithmetic; without one, a bit-exact
    :class:`~repro.net.congestion.FixedWindow` is built from the config.
    """

    def __init__(
        self,
        flow_id: str,
        config: ArqConfig,
        controller: CongestionController | None = None,
    ) -> None:
        self.flow_id = flow_id
        self.config = config
        self.controller = (
            controller
            if controller is not None
            else FixedWindow(config.window_size, config.timeout_s)
        )
        self.stats = FlowStats()
        self.failed = False
        self._payloads: list[object] = []
        self._base = 0  # absolute index of the oldest unacked segment
        self._next = 0  # absolute index of the next never-sent segment
        self._in_flight: dict[int, _InFlight] = {}
        self._dup_acks = 0
        self._fast_retransmitted = False

    # ------------------------------------------------------------- properties
    @property
    def done(self) -> bool:
        """All offered payloads acknowledged."""
        return not self.failed and self._base == len(self._payloads)

    @property
    def in_flight(self) -> int:
        """Unacknowledged segments currently outstanding."""
        return sum(not state.acked for state in self._in_flight.values())

    @property
    def base_seq(self) -> int:
        """Wire sequence of the window base."""
        return self._base % self.config.seq_modulus

    @property
    def effective_window(self) -> int:
        """Segments the flow may currently have in flight.

        The configured ARQ window (the receive buffer / sequence-space
        bound) caps the controller's congestion window, exactly like the
        advertised window caps cwnd in TCP.
        """
        return min(self.config.window_size, self.controller.window())

    def _wire(self, absolute: int) -> int:
        return absolute % self.config.seq_modulus

    # ------------------------------------------------------------------ offer
    def offer(self, payload: object) -> None:
        """Queue one application payload for reliable delivery."""
        self._payloads.append(payload)
        self.stats.offered += 1

    def offer_many(self, payloads) -> None:
        """Queue several payloads."""
        for payload in payloads:
            self.offer(payload)

    # ------------------------------------------------------------ transmitting
    def window_transmissions(self, now_s: float) -> list[Segment]:
        """First transmissions newly allowed by the window, oldest first."""
        if self.failed:
            return []
        segments: list[Segment] = []
        limit = self._base + self.effective_window
        rto_s = self.controller.rto_s()
        while self._next < min(limit, len(self._payloads)):
            absolute = self._next
            self._in_flight[absolute] = _InFlight(
                payload=self._payloads[absolute],
                deadline_s=now_s + rto_s,
                sent_s=now_s,
            )
            segments.append(
                Segment(self.flow_id, self._wire(absolute), "data",
                        self._payloads[absolute])
            )
            self.stats.data_transmissions += 1
            self._next += 1
        return segments

    def fail(self) -> None:
        """Abort the flow from outside the ARQ state machine.

        Used by the fault layer when the peer is observed dead: the flow
        stops exactly as if its retry budget had been exhausted (no more
        transmissions, no timer deadlines), without burning the budget.
        """
        self.failed = True
        self._in_flight.clear()

    def _retransmit(self, absolute: int, now_s: float) -> Segment | None:
        """Retransmit one in-flight segment, aborting the flow when spent."""
        state = self._in_flight[absolute]
        if state.retries >= self.config.max_retries:
            self.failed = True
            return None
        state.retries += 1
        state.deadline_s = now_s + self.controller.rto_s()
        self.stats.retransmissions += 1
        return Segment(self.flow_id, self._wire(absolute), "data", state.payload)

    # ------------------------------------------------------------------- acks
    def on_ack(self, segment: Segment, now_s: float) -> list[Segment]:
        """Process an ACK; returns any immediate (fast) retransmissions."""
        if self.failed or segment.kind != "ack":
            return []
        self.stats.acks_received += 1
        if self.config.mode == "go-back-n":
            return self._on_cumulative_ack(segment, now_s)
        return self._on_selective_ack(segment, now_s)

    def _on_cumulative_ack(self, segment: Segment, now_s: float) -> list[Segment]:
        outstanding = self._next - self._base
        if segment.ack_abs is not None:
            advance = segment.ack_abs - self._base
        else:
            advance = (segment.seq - self.base_seq) % self.config.seq_modulus
        if 0 < advance <= outstanding:
            # Karn's rule: sample the RTT off the newest acked segment
            # that was never retransmitted (a retransmitted segment's ACK
            # is ambiguous between the transmissions).
            for absolute in range(self._base + advance - 1, self._base - 1, -1):
                state = self._in_flight.get(absolute)
                if state is not None and state.retries == 0:
                    self.controller.on_rtt_sample(now_s - state.sent_s, now_s)
                    break
            for absolute in range(self._base, self._base + advance):
                self._in_flight.pop(absolute, None)
            self._base += advance
            self._dup_acks = 0
            self._fast_retransmitted = False
            self.controller.on_ack(advance, now_s)
            # Restart the single Go-Back-N timer for the new base.
            rto_s = self.controller.rto_s()
            for state in self._in_flight.values():
                state.deadline_s = now_s + rto_s
            return []
        # Duplicate cumulative ACK: count it, suppress all but the one
        # fast retransmit of the base segment at the threshold.
        self.stats.duplicate_acks += 1
        if segment.ack_abs is not None and segment.ack_abs < self._base:
            # A reordered *stale* ACK (older than the cumulative point) is
            # not a loss signal; only true duplicates of the current base
            # count towards fast retransmit.
            return []
        self._dup_acks += 1
        self.controller.on_duplicate_ack(now_s)
        if (
            self._dup_acks >= self.config.dup_ack_threshold
            and not self._fast_retransmitted
            and self._base in self._in_flight
        ):
            self._fast_retransmitted = True
            self.stats.fast_retransmits += 1
            self.controller.on_fast_retransmit(now_s)
            segment = self._retransmit(self._base, now_s)
            return [segment] if segment is not None else []
        return []

    def _resolve_wire(self, seq: int) -> int | None:
        """Map a wire sequence to the unacked absolute index it names."""
        for absolute in range(self._base, self._next):
            state = self._in_flight.get(absolute)
            if state is not None and not state.acked and self._wire(absolute) == seq:
                return absolute
        return None

    def _on_selective_ack(self, segment: Segment, now_s: float) -> list[Segment]:
        newly_acked = 0
        if segment.ack_abs is not None:
            acked_absolutes = (segment.ack_abs,) + tuple(segment.sack_abs)
        else:
            acked_absolutes = tuple(
                absolute
                for absolute in map(
                    self._resolve_wire, (segment.seq,) + tuple(segment.sack)
                )
                if absolute is not None
            )
        for absolute in acked_absolutes:
            state = self._in_flight.get(absolute)
            if state is not None and not state.acked:
                state.acked = True
                newly_acked += 1
                if state.retries == 0:
                    # Karn-valid sample per newly acked first transmission.
                    self.controller.on_rtt_sample(now_s - state.sent_s, now_s)
        if not newly_acked:
            self.stats.duplicate_acks += 1
            self.controller.on_duplicate_ack(now_s)
            return []
        self.controller.on_ack(newly_acked, now_s)
        while self._base < self._next:
            state = self._in_flight.get(self._base)
            if state is None or not state.acked:
                break
            del self._in_flight[self._base]
            self._base += 1
        return []

    # ---------------------------------------------------------------- timeouts
    def next_timeout_s(self) -> float | None:
        """Earliest retransmission deadline, or ``None`` when idle."""
        deadlines = [
            state.deadline_s
            for state in self._in_flight.values()
            if not state.acked
        ]
        if self.failed or not deadlines:
            return None
        return min(deadlines)

    def on_timeout(self, now_s: float) -> list[Segment]:
        """Retransmissions due at ``now_s`` (empty when none are due)."""
        if self.failed:
            return []
        due = [
            absolute
            for absolute, state in sorted(self._in_flight.items())
            if not state.acked and state.deadline_s <= now_s + 1e-12
        ]
        if not due:
            return []
        self.stats.timeouts += 1
        self.controller.on_timeout(now_s)
        segments: list[Segment] = []
        if self.config.mode == "go-back-n":
            # One timer, whole *allowed* window: resend the oldest
            # outstanding segments up to the post-timeout window.  With
            # the fixed controller that window equals the configured one,
            # which always covers everything outstanding -- the legacy
            # resend-all behaviour.  A Reno controller collapses to one
            # segment, so a timeout retransmits only the base (classic
            # TCP) instead of re-flooding a congested channel.
            allowed = max(1, self.effective_window)
            for absolute in sorted(self._in_flight)[:allowed]:
                segment = self._retransmit(absolute, now_s)
                if segment is None:
                    return segments
                segments.append(segment)
            return segments
        for absolute in due:
            segment = self._retransmit(absolute, now_s)
            if segment is None:
                return segments
            segments.append(segment)
        return segments


class ArqReceiver:
    """Receive-side state machine of one reliable flow."""

    def __init__(self, flow_id: str, config: ArqConfig) -> None:
        self.flow_id = flow_id
        self.config = config
        self.stats = FlowStats()
        self.delivered: list[object] = []
        self._expected = 0  # absolute index of the next in-order segment
        self._buffer: dict[int, object] = {}  # selective repeat reordering

    @property
    def expected_seq(self) -> int:
        """Wire sequence the receiver needs next."""
        return self._expected % self.config.seq_modulus

    def on_data(self, segment: Segment) -> tuple[list[object], Segment]:
        """Process a data segment; returns (newly delivered payloads, ACK)."""
        if segment.kind != "data":
            raise ValueError(f"expected a data segment, got {segment.kind!r}")
        if self.config.mode == "go-back-n":
            delivered = self._on_data_gbn(segment)
            ack = Segment(
                self.flow_id, self.expected_seq, "ack", ack_abs=self._expected
            )
        else:
            delivered, ack = self._on_data_sr(segment)
        self.stats.acks_sent += 1
        return delivered, ack

    def _on_data_gbn(self, segment: Segment) -> list[object]:
        if segment.seq == self.expected_seq:
            self._expected += 1
            self.delivered.append(segment.payload)
            self.stats.delivered_in_order += 1
            return [segment.payload]
        behind = (self.expected_seq - segment.seq) % self.config.seq_modulus
        ahead = (segment.seq - self.expected_seq) % self.config.seq_modulus
        if 0 < behind <= self.config.window_size:
            # Within one window behind: a retransmission of old data.
            self.stats.duplicates_received += 1
        elif 0 < ahead < self.config.window_size:
            # A gap ahead of the expected segment: ordinary Go-Back-N
            # discard of out-of-order (but in-window) data.
            self.stats.out_of_order_discarded += 1
        else:
            self.stats.out_of_window_dropped += 1
        return []

    def _resolve_wire(self, seq: int) -> int | None:
        """Absolute index in the receive window matching a wire sequence."""
        for absolute in range(self._expected, self._expected + self.config.window_size):
            if absolute % self.config.seq_modulus == seq:
                return absolute
        return None

    def _resolve_behind(self, seq: int) -> int | None:
        """Absolute index of an already-delivered wire sequence, if any."""
        low = max(0, self._expected - self.config.window_size)
        for absolute in range(low, self._expected):
            if absolute % self.config.seq_modulus == seq:
                return absolute
        return None

    def _ack(self, seq: int, absolute: int | None) -> Segment:
        buffered = sorted(self._buffer)
        return Segment(
            self.flow_id, seq, "ack",
            sack=tuple(a % self.config.seq_modulus for a in buffered),
            ack_abs=absolute,
            sack_abs=tuple(buffered),
        )

    def _on_data_sr(self, segment: Segment) -> tuple[list[object], Segment]:
        absolute = self._resolve_wire(segment.seq)
        if absolute is None:
            # Behind the window: an already-delivered segment whose ACK was
            # lost; re-ACK it so the sender can advance.
            self.stats.duplicates_received += 1
            return [], self._ack(segment.seq, self._resolve_behind(segment.seq))
        if absolute in self._buffer:
            self.stats.duplicates_received += 1
            return [], self._ack(segment.seq, absolute)
        self._buffer[absolute] = segment.payload
        delivered: list[object] = []
        while self._expected in self._buffer:
            payload = self._buffer.pop(self._expected)
            self.delivered.append(payload)
            delivered.append(payload)
            self.stats.delivered_in_order += 1
            self._expected += 1
        return delivered, self._ack(segment.seq, absolute)
