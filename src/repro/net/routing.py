"""Pluggable routing protocols for the network simulator.

Three families, behind the common :class:`RoutingProtocol` interface:

* :class:`FloodingRouting` -- every packet is rebroadcast to all
  neighbours except the one it came from; the simulator suppresses
  duplicates by packet ``uid``.  Delivery is maximal, cost is maximal.
* :class:`StaticShortestPathRouting` -- Dijkstra over the topology at
  :meth:`~RoutingProtocol.prepare` time (edge weight = distance, i.e.
  proportional to propagation delay), then fixed next-hop forwarding.
* :class:`GreedyForwarding` -- stateless geographic forwarding in the
  style of the uwoarouting simulators: relay to the neighbour that is
  strictly closest to the destination (``mode="distance"``) or, for
  networks draining to a surface sink, the neighbour with the smallest
  depth (``mode="depth"``).  Packets reaching a local minimum (a "void")
  are dropped -- the classic failure mode the literature documents.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod

import numpy as np

from repro.net.packet import NetPacket
from repro.net.topology import AcousticNetTopology


class RoutingProtocol(ABC):
    """Decides which neighbours a node relays a packet to."""

    #: Catalog key / report name.
    name: str = "routing"

    #: Whether an empty :meth:`next_hops` is a routing *failure* worth
    #: counting.  Flooding returns empty at every leaf of the flood --
    #: healthy termination, not a void.
    reports_voids: bool = True

    def prepare(self, topology: AcousticNetTopology) -> None:
        """Precompute routing state (called once before the run and after
        every mobility step)."""

    @abstractmethod
    def next_hops(
        self, node: str, packet: NetPacket, topology: AcousticNetTopology
    ) -> tuple[str, ...]:
        """Neighbours ``node`` should relay ``packet`` to (may be empty)."""


class FloodingRouting(RoutingProtocol):
    """Relay to every neighbour except the previous hop."""

    name = "flooding"
    reports_voids = False

    def next_hops(
        self, node: str, packet: NetPacket, topology: AcousticNetTopology
    ) -> tuple[str, ...]:
        previous = packet.previous_hop
        return tuple(
            neighbor for neighbor in topology.neighbors(node) if neighbor != previous
        )


class StaticShortestPathRouting(RoutingProtocol):
    """Distance-weighted shortest paths, fixed until :meth:`prepare` reruns."""

    name = "shortest-path"

    def __init__(self) -> None:
        self._next_hop: dict[tuple[str, str], str] = {}

    def prepare(self, topology: AcousticNetTopology) -> None:
        """Run Dijkstra from every live node (the grids here are small).

        Re-invoked on membership change (fault repair) as well as after
        mobility; dead nodes are skipped as sources and, because they
        are absent from every neighbour table, never appear as relays
        or reachable destinations.
        """
        self._next_hop.clear()
        for source in topology.names:
            if not topology.is_active(source):
                continue
            self._single_source(source, topology)

    def _single_source(self, source: str, topology: AcousticNetTopology) -> None:
        distances: dict[str, float] = {source: 0.0}
        first_hop: dict[str, str] = {}
        heap: list[tuple[float, str]] = [(0.0, source)]
        visited: set[str] = set()
        while heap:
            cost, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            table = topology.neighbor_table(node)
            for neighbor, edge in zip(table.names, table.distances_m):
                candidate = cost + edge
                if candidate < distances.get(neighbor, float("inf")):
                    distances[neighbor] = candidate
                    first_hop[neighbor] = neighbor if node == source else first_hop[node]
                    heapq.heappush(heap, (candidate, neighbor))
        for destination, hop in first_hop.items():
            self._next_hop[(source, destination)] = hop

    def has_route(self, source: str, destination: str) -> bool:
        """Whether a path from ``source`` to ``destination`` exists."""
        return (source, destination) in self._next_hop

    def next_hops(
        self, node: str, packet: NetPacket, topology: AcousticNetTopology
    ) -> tuple[str, ...]:
        hop = self._next_hop.get((node, packet.destination))
        return (hop,) if hop is not None else ()


class GreedyForwarding(RoutingProtocol):
    """Geographic greedy forwarding (distance- or depth-based).

    ``mode="distance"``: relay to the neighbour strictly closer (3-D) to
    the destination than this node; direct delivery wins when the
    destination is itself in range.  ``mode="depth"``: relay to the
    neighbour with the smallest depth that is shallower than this node --
    the depth-based routing used by underwater sensor networks whose sink
    floats at the surface.

    Depth mode is strictly *upward*: it cannot carry anything back down,
    so it only suits unacknowledged convergecast traffic.  Pairing it
    with ARQ leaves every ACK stranded at the sink (the scenario layer
    rejects that combination).
    """

    def __init__(self, mode: str = "distance") -> None:
        if mode not in ("distance", "depth"):
            raise ValueError(f"mode must be 'distance' or 'depth', got {mode!r}")
        self.mode = mode
        self.name = "greedy" if mode == "distance" else "greedy-depth"
        # Greedy is a pure function of (node, destination, geometry), so
        # hop choices are memoized against the topology's version counter
        # -- a static deployment computes each (node, destination) pair's
        # relay once per run instead of once per transmission.
        self._memo: dict[tuple[str, str], tuple[object, int, tuple[str, ...]]] = {}

    def next_hops(
        self, node: str, packet: NetPacket, topology: AcousticNetTopology
    ) -> tuple[str, ...]:
        destination = packet.destination
        key = (node, destination)
        cached = self._memo.get(key)
        version = topology.version
        if (
            cached is not None
            and cached[0] is topology
            and cached[1] == version
        ):
            return cached[2]
        result = self._next_hops_compute(node, destination, topology)
        self._memo[key] = (topology, version, result)
        return result

    def _next_hops_compute(
        self, node: str, destination: str, topology: AcousticNetTopology
    ) -> tuple[str, ...]:
        table = topology.neighbor_table(node)
        if not table.names:
            return ()
        if destination in table.slot:
            return (destination,)
        if self.mode == "distance":
            if destination not in topology or not topology.is_active(destination):
                return ()
            own = topology.distance_m(node, destination)
            # One vectorized distance sweep over the cached neighbour set;
            # argmin takes the first minimum, matching ``min`` over the
            # same (nearest-first) neighbour order.
            dist = topology.distances_to(table.indices, destination)
            best = int(np.argmin(dist))
            if dist[best] < own:
                return (table.names[best],)
            return ()
        # Depth mode: move strictly shallower, toward a surface sink.
        own_depth = topology.position(node).depth_m
        depths = topology.depths_of(table.indices)
        best = int(np.argmin(depths))
        if depths[best] < own_depth:
            return (table.names[best],)
        return ()

    def next_hops_reference(
        self, node: str, packet: NetPacket, topology: AcousticNetTopology
    ) -> tuple[str, ...]:
        """Pre-vectorization greedy hop choice (per-neighbour scalar calls).

        Kept as the parity oracle for :meth:`next_hops` and as the
        baseline leg of the ``greedy_next_hops`` micro-benchmark pair.
        """
        destination = packet.destination
        neighbors = topology.neighbors(node)
        if not neighbors:
            return ()
        if destination in neighbors:
            return (destination,)
        if self.mode == "distance":
            if destination not in topology or not topology.is_active(destination):
                return ()
            own = topology.distance_m(node, destination)
            best = min(neighbors, key=lambda n: topology.distance_m(n, destination))
            if topology.distance_m(best, destination) < own:
                return (best,)
            return ()
        own_depth = topology.position(node).depth_m
        best = min(neighbors, key=lambda n: topology.position(n).depth_m)
        if topology.position(best).depth_m < own_depth:
            return (best,)
        return ()


#: Routing protocols by CLI/catalog key (factories, so instances are fresh).
ROUTING_CATALOG = {
    "flooding": FloodingRouting,
    "shortest-path": StaticShortestPathRouting,
    "greedy": lambda: GreedyForwarding("distance"),
    "greedy-depth": lambda: GreedyForwarding("depth"),
}


def build_routing(name: str) -> RoutingProtocol:
    """Instantiate a routing protocol by catalog key."""
    try:
        factory = ROUTING_CATALOG[name]
    except KeyError:
        raise ValueError(
            f"unknown routing {name!r}; known: {', '.join(sorted(ROUTING_CATALOG))}"
        ) from None
    return factory()
