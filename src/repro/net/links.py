"""Interchangeable per-hop link models.

The network simulator resolves every hop through a :class:`LinkModel`:

* :class:`PhysicalLink` runs the full physical layer -- a
  :class:`~repro.link.session.LinkSession` protocol exchange over the
  simulated channel pair for the hop's distance.  Faithful, but costs a
  full OFDM encode/channel/decode per packet.
* :class:`CalibratedLink` replays a :class:`LinkCalibration` -- a packet
  error rate and bitrate versus distance table measured *from* the
  physical layer (:func:`calibrate_from_phy`) -- so scenarios with
  thousands of nodes and packets run in seconds while matching the PHY's
  delivery statistics.

The default calibration shipped here (:data:`DEFAULT_LAKE_CALIBRATION`)
was produced by running ``calibrate_from_phy`` at the lake site; the
agreement between the two models on identical scenarios is covered by the
tier-1 tests.
"""

from __future__ import annotations

import math
import sys
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.environments.sites import LAKE, SITE_CATALOG, Site
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_positive

#: Fixed per-packet protocol overhead (preamble, feedback, training) used
#: to convert payload size into airtime, matching the packet duration the
#: MAC experiments assume for a 16-bit message at the median bitrate.
DEFAULT_OVERHEAD_S = 0.45


@dataclass(frozen=True)
class LinkOutcome:
    """Result of resolving one hop transmission.

    Attributes
    ----------
    delivered:
        Whether the packet decoded without error at the far end.
    bitrate_bps:
        Coded bitrate used (selected band for the PHY, interpolated for
        the calibrated model).
    packet_error_rate:
        The PER the model drew from (``nan`` for the physical link,
        which decides by actually decoding).
    """

    delivered: bool
    bitrate_bps: float
    packet_error_rate: float = float("nan")


class LinkModel(ABC):
    """Resolves per-hop deliveries and airtimes for the simulator."""

    #: Report/catalog name.
    name: str = "link"

    #: Bitrate used for airtime estimates when no outcome is available.
    nominal_bitrate_bps: float = 1000.0

    @abstractmethod
    def deliver(
        self,
        distance_m: float,
        rng: np.random.Generator,
        size_bits: int = 16,
    ) -> LinkOutcome:
        """Resolve one transmission over ``distance_m``."""

    def deliver_many(
        self,
        distances_m: np.ndarray,
        rng: np.random.Generator,
        size_bits: int = 16,
    ) -> list[LinkOutcome]:
        """Resolve one transmission to each of ``distances_m`` receivers.

        The distances describe a single broadcast's fan-out, resolved in
        array order.  The base implementation loops over
        :meth:`deliver`, so every model keeps its exact per-receiver RNG
        draw sequence; table-driven models override this with a
        vectorized path that consumes the identical generator stream.
        """
        return [self.deliver(float(d), rng, size_bits) for d in distances_m]

    def airtime_s(self, size_bits: int, distance_m: float) -> float:
        """Time the channel is occupied by one packet of ``size_bits``."""
        bitrate = self.expected_bitrate_bps(distance_m)
        if not math.isfinite(bitrate) or bitrate <= 0:
            bitrate = self.nominal_bitrate_bps
        return DEFAULT_OVERHEAD_S + size_bits / bitrate

    def expected_bitrate_bps(self, distance_m: float) -> float:
        """Expected coded bitrate at ``distance_m`` (for airtime estimates)."""
        return self.nominal_bitrate_bps


@dataclass(frozen=True)
class LinkCalibration:
    """PER/bitrate-versus-distance table measured from the physical layer.

    Attributes
    ----------
    site_name:
        Site the table was measured at.
    distances_m:
        Strictly increasing measurement distances.
    packet_error_rate:
        PER observed at each distance.
    bitrate_bps:
        Median selected coded bitrate at each distance.
    packets_per_point:
        Sample size behind each table row.
    """

    site_name: str
    distances_m: tuple[float, ...]
    packet_error_rate: tuple[float, ...]
    bitrate_bps: tuple[float, ...]
    packets_per_point: int = 0

    def __post_init__(self) -> None:
        if not self.distances_m:
            raise ValueError("calibration needs at least one distance")
        lengths = {len(self.distances_m), len(self.packet_error_rate), len(self.bitrate_bps)}
        if len(lengths) != 1:
            raise ValueError("calibration columns must have equal lengths")
        if any(a >= b for a, b in zip(self.distances_m, self.distances_m[1:])):
            raise ValueError("distances_m must be sorted ascending")
        if any(not 0.0 <= p <= 1.0 for p in self.packet_error_rate):
            raise ValueError("packet_error_rate entries must lie in [0, 1]")

    def per_at(self, distance_m: float) -> float:
        """Interpolated packet error rate at ``distance_m`` (clipped)."""
        require_positive(distance_m, "distance_m")
        return float(
            np.interp(distance_m, self.distances_m, self.packet_error_rate)
        )

    def bitrate_at(self, distance_m: float) -> float:
        """Interpolated median coded bitrate at ``distance_m``."""
        require_positive(distance_m, "distance_m")
        return float(np.interp(distance_m, self.distances_m, self.bitrate_bps))

    def to_dict(self) -> dict:
        """JSON-safe dictionary form."""
        return {
            "site_name": self.site_name,
            "distances_m": list(self.distances_m),
            "packet_error_rate": list(self.packet_error_rate),
            "bitrate_bps": list(self.bitrate_bps),
            "packets_per_point": self.packets_per_point,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LinkCalibration":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            site_name=data["site_name"],
            distances_m=tuple(float(d) for d in data["distances_m"]),
            packet_error_rate=tuple(float(p) for p in data["packet_error_rate"]),
            bitrate_bps=tuple(float(b) for b in data["bitrate_bps"]),
            packets_per_point=int(data.get("packets_per_point", 0)),
        )


def calibrate_from_phy(
    site: Site | str = LAKE,
    distances_m: tuple[float, ...] = (2.0, 5.0, 10.0, 15.0, 20.0, 25.0),
    packets_per_point: int = 12,
    seed: int = 0,
    progress: bool | Callable[[str], None] = False,
) -> LinkCalibration:
    """Measure a :class:`LinkCalibration` by running the full PHY.

    For each distance a fresh channel pair and
    :class:`~repro.link.session.LinkSession` (seeds derived from ``seed``)
    runs ``packets_per_point`` adaptive exchanges through the batched
    packet pipeline (:meth:`~repro.link.session.LinkSession.run_packets`);
    the observed packet error rate and median selected bitrate become one
    table row.

    ``progress`` enables per-distance progress/ETA lines (``True`` prints
    to stderr; a callable receives each line), which makes interactive
    table rebuilds via ``python -m repro.cli net --packets-per-point N``
    followable now that the frequency-domain fast path has made them
    quick.
    """
    from repro.environments.factory import build_link_pair
    from repro.link.session import LinkSession

    if isinstance(site, str):
        site = SITE_CATALOG[site]
    if packets_per_point < 1:
        raise ValueError("packets_per_point must be at least 1")
    if progress is True:
        emit: Callable[[str], None] | None = lambda line: print(line, file=sys.stderr)
    elif callable(progress):
        emit = progress
    else:
        emit = None
    started = time.perf_counter()
    pers: list[float] = []
    bitrates: list[float] = []
    last_bitrate = LinkModel.nominal_bitrate_bps
    for index, distance in enumerate(distances_m):
        forward, backward = build_link_pair(
            site=site, distance_m=distance, seed=seed + 101 * index
        )
        session = LinkSession(forward, backward, seed=seed + 101 * index + 1)
        stats = session.run_packets(packets_per_point)
        pers.append(float(stats.packet_error_rate))
        bitrate = stats.median_bitrate_bps
        # All-failure rows have no selected band; reuse the previous row's
        # bitrate so airtime estimates stay finite.
        if np.isfinite(bitrate):
            last_bitrate = float(bitrate)
        bitrates.append(last_bitrate)
        if emit is not None:
            done = index + 1
            elapsed = time.perf_counter() - started
            eta = elapsed / done * (len(distances_m) - done)
            emit(
                f"calibrate[{site.name}] {distance:g} m: PER {pers[-1]:.1%}, "
                f"{last_bitrate:.0f} bps ({done}/{len(distances_m)}, "
                f"{elapsed:.1f}s elapsed, eta {eta:.1f}s)"
            )
    return LinkCalibration(
        site_name=site.name,
        distances_m=tuple(float(d) for d in distances_m),
        packet_error_rate=tuple(pers),
        bitrate_bps=tuple(bitrates),
        packets_per_point=packets_per_point,
    )


#: Table measured with ``calibrate_from_phy(LAKE, packets_per_point=24,
#: seed=2022)``; regenerate with that call after changing the PHY.  The PER
#: is not monotonic in distance: at 10 m the lake's dense multipath bites
#: hardest, while further out the band adaptation has already retreated to
#: narrow low-rate bands (see the falling bitrate column) that decode
#: reliably again -- the same rate-vs-distance trade the paper's Fig. 12
#: shows.
DEFAULT_LAKE_CALIBRATION = LinkCalibration(
    site_name="lake",
    distances_m=(2.0, 5.0, 10.0, 15.0, 20.0, 25.0),
    packet_error_rate=(0.0, 0.0, 0.125, 0.0833, 0.0417, 0.0417),
    bitrate_bps=(1083.3, 950.0, 400.0, 333.3, 300.0, 266.7),
    packets_per_point=24,
)


class CalibratedLink(LinkModel):
    """Fast link model replaying a PHY-measured PER/bitrate table."""

    name = "calibrated"

    #: Cap on the per-distance interpolation memo.  Static topologies see
    #: a handful of distinct hop distances; mobility churns new ones each
    #: step, so the memo is bounded to stay O(1) memory.
    _LOOKUP_CACHE_MAX = 65536

    def __init__(self, calibration: LinkCalibration = DEFAULT_LAKE_CALIBRATION) -> None:
        self.calibration = calibration
        # Array views of the table columns so the batched fan-out path
        # interpolates without re-converting the tuples per broadcast.
        self._table_distances = np.asarray(calibration.distances_m, dtype=float)
        self._table_per = np.asarray(calibration.packet_error_rate, dtype=float)
        self._table_bitrate = np.asarray(calibration.bitrate_bps, dtype=float)
        #: distance -> (per, bitrate, delivered-outcome, dropped-outcome).
        #: Hop distances repeat constantly (static grids have a handful of
        #: values), np.interp costs microseconds per call, and LinkOutcome
        #: is frozen -- so both the interpolation *and* the two possible
        #: outcome objects per distance are memoized.
        self._lookup_cache: dict[
            float, tuple[float, float, LinkOutcome, LinkOutcome]
        ] = {}
        #: (size_bits, distance) -> airtime; same bounded-memo rationale.
        self._airtime_cache: dict[tuple[int, float], float] = {}

    def _lookup(self, distance_m: float) -> tuple[float, float, LinkOutcome, LinkOutcome]:
        """Memoized ``(per, bitrate, ok, dropped)`` at ``distance_m``."""
        cached = self._lookup_cache.get(distance_m)
        if cached is None:
            per = float(np.interp(distance_m, self._table_distances, self._table_per))
            bitrate = float(
                np.interp(distance_m, self._table_distances, self._table_bitrate)
            )
            cached = (
                per,
                bitrate,
                LinkOutcome(True, bitrate, per),
                LinkOutcome(False, bitrate, per),
            )
            if len(self._lookup_cache) >= self._LOOKUP_CACHE_MAX:
                self._lookup_cache.clear()
            self._lookup_cache[distance_m] = cached
        return cached

    def expected_bitrate_bps(self, distance_m: float) -> float:
        return self._lookup(float(distance_m))[1]

    def airtime_s(self, size_bits: int, distance_m: float) -> float:
        """Memoized airtime (deterministic per size/distance pair)."""
        key = (size_bits, distance_m)
        cached = self._airtime_cache.get(key)
        if cached is None:
            cached = LinkModel.airtime_s(self, size_bits, distance_m)
            if len(self._airtime_cache) >= self._LOOKUP_CACHE_MAX:
                self._airtime_cache.clear()
            self._airtime_cache[key] = cached
        return cached

    def deliver(
        self,
        distance_m: float,
        rng: np.random.Generator,
        size_bits: int = 16,
    ) -> LinkOutcome:
        del size_bits  # the table is per-packet; payload size sets airtime only
        per, _, ok, dropped = self._lookup(float(distance_m))
        return ok if rng.random() >= per else dropped

    def deliver_many(
        self,
        distances_m: np.ndarray,
        rng: np.random.Generator,
        size_bits: int = 16,
    ) -> list[LinkOutcome]:
        del size_bits  # the table is per-packet; payload size sets airtime only
        lookup = self._lookup
        resolved = [lookup(float(d)) for d in distances_m]
        # One batched draw consumes the generator stream exactly as the
        # per-receiver scalar ``rng.random()`` loop would, so outcomes are
        # bit-identical to LinkModel.deliver_many.
        draws = rng.random(len(resolved))
        return [
            entry[2] if draw >= entry[0] else entry[3]
            for draw, entry in zip(draws, resolved)
        ]


class PhysicalLink(LinkModel):
    """Link model that runs the full PHY protocol exchange per packet.

    Sessions are cached per quantized distance so a static topology pays
    channel construction once per hop, not once per packet -- and because
    the per-session packet-pipeline state (preamble header, template
    spectra, channel transfer functions) lives on the cached
    :class:`~repro.link.session.LinkSession`, every delivery after the
    first at a given distance rides the batched fast path.
    """

    name = "physical"

    def __init__(
        self,
        site: Site | str = LAKE,
        seed: int = 0,
        distance_quantum_m: float = 0.5,
    ) -> None:
        if isinstance(site, str):
            site = SITE_CATALOG[site]
        require_positive(distance_quantum_m, "distance_quantum_m")
        self.site = site
        self.seed = int(seed)
        self.distance_quantum_m = float(distance_quantum_m)
        self._sessions: dict[int, object] = {}

    def _session_for(self, distance_m: float):
        from repro.environments.factory import build_link_pair
        from repro.link.session import LinkSession

        key = max(1, int(round(distance_m / self.distance_quantum_m)))
        session = self._sessions.get(key)
        if session is None:
            quantized = min(key * self.distance_quantum_m, self.site.max_range_m)
            forward, backward = build_link_pair(
                site=self.site, distance_m=quantized, seed=self.seed + 7919 * key
            )
            session = LinkSession(
                forward, backward, seed=self.seed + 7919 * key + 1
            )
            self._sessions[key] = session
        return session

    def deliver(
        self,
        distance_m: float,
        rng: np.random.Generator,
        size_bits: int = 16,
    ) -> LinkOutcome:
        del size_bits  # the PHY packet format fixes the payload size
        session = self._session_for(distance_m)
        result = session.run_packet(rng=rng)
        bitrate = result.coded_bitrate_bps
        return LinkOutcome(
            delivered=bool(result.delivered),
            bitrate_bps=float(bitrate) if np.isfinite(bitrate) else self.nominal_bitrate_bps,
        )
