"""The unit the network layer moves around.

A :class:`NetPacket` is immutable; forwarding produces a copy with the
hop appended (see :meth:`NetPacket.forwarded`), so every copy in flight
carries its own path while sharing the ``uid`` that identifies the
end-to-end packet (flooding dedup and delivery accounting key on it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.net.transport import Segment

#: Destination address meaning "every node" (SOS broadcasts).
BROADCAST = "*"

#: Default time-to-live in hops.
DEFAULT_TTL = 8


@dataclass(frozen=True)
class NetPacket:
    """One network-layer packet.

    Attributes
    ----------
    uid:
        End-to-end packet identity, shared by all forwarded copies.
    kind:
        ``"data"`` / ``"ack"`` for ARQ segments, ``"raw"`` for
        unacknowledged datagrams (flooding, broadcasts).
    source, destination:
        End-to-end addresses; ``destination`` may be :data:`BROADCAST`.
    created_s:
        Simulation time the packet entered the network at its source.
    ttl:
        Remaining hop budget; decremented on every forward.
    size_bits:
        Payload size used for airtime and goodput accounting.
    segment:
        The ARQ segment carried by ``data``/``ack`` packets.
    path:
        Every node that transmitted this copy, source first.
    """

    uid: int
    kind: str
    source: str
    destination: str
    created_s: float
    ttl: int = DEFAULT_TTL
    size_bits: int = 16
    segment: "Segment | None" = None
    path: tuple[str, ...] = field(default_factory=tuple)

    @property
    def hop_count(self) -> int:
        """Hops taken so far (one per transmission recorded in ``path``)."""
        return len(self.path)

    @property
    def previous_hop(self) -> str | None:
        """The node this copy was last transmitted by."""
        return self.path[-1] if self.path else None

    def forwarded(self, via: str) -> "NetPacket":
        """Copy of this packet after being relayed by ``via``."""
        # One per-hop copy per transmission makes this a hot path:
        # cloning the field dict directly skips both dataclasses.replace
        # (which re-introspects the field list per call) and the
        # generated __init__'s per-field frozen setattr.
        clone = object.__new__(NetPacket)
        clone.__dict__.update(
            self.__dict__, ttl=self.ttl - 1, path=self.path + (via,)
        )
        return clone
