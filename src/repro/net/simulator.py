"""Discrete-event simulation of an N-node underwater acoustic network.

:class:`NetworkSimulator` drives one scenario: application messages from
a :class:`~repro.net.traffic.TrafficGenerator` enter at their sources,
a :class:`~repro.net.routing.RoutingProtocol` picks relays hop by hop, a
:class:`~repro.net.links.LinkModel` resolves each hop's delivery, and --
when an :class:`~repro.net.transport.ArqConfig` is given -- sliding-window
ARQ flows provide end-to-end reliability.  Every action is an event on
one :class:`~repro.net.scheduler.Scheduler`, so propagation delays
(distance over the shared sound speed), transmission airtimes, ARQ timers
and mobility steps interleave exactly once, in time order, per seed.

The acoustic medium semantics mirror the MAC layer's: a transmission is a
local broadcast heard by every in-range neighbour, a node is half-duplex
(it cannot receive while transmitting), and two receptions overlapping in
time at the same node collide and destroy each other -- which is what
makes the "collision, then ARQ retry" sequence of the tests physical
rather than scripted.
"""

from __future__ import annotations

import dataclasses
import itertools
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.net.congestion import (
    CC_KINDS,
    CongestionController,
    RelayQueueConfig,
    build_controller,
)
from repro.net.links import CalibratedLink, LinkModel
from repro.net.metrics import DeliveryRecord, NetworkMetrics
from repro.net.packet import BROADCAST, DEFAULT_TTL, NetPacket
from repro.net.routing import FloodingRouting, RoutingProtocol
from repro.net.scheduler import Event, Scheduler
from repro.net.topology import AcousticNetTopology
from repro.net.traffic import AppMessage, TrafficGenerator
from repro.net.transport import ArqConfig, ArqReceiver, ArqSender, FlowStats, Segment
from repro.utils.rng import ensure_rng

#: Size of an ACK packet on the wire (bits).
ACK_SIZE_BITS = 8

#: Events between two progress emissions of :meth:`NetworkSimulator.run`.
PROGRESS_CHUNK_EVENTS = 20_000


class NetObserver:
    """App-layer instrumentation hooks on :class:`NetworkSimulator`.

    Subclass and override the hooks of interest; the base class is a
    no-op, so observers only pay for what they watch.  The concrete
    trace recorder lives in :mod:`repro.trace.capture` -- this base stays
    in :mod:`repro.net` so the simulator depends on nothing above it.
    """

    def on_send(self, time_s: float, uid: int, message: AppMessage, kind: str) -> None:
        """An application message entered the network as payload ``uid``."""

    def on_delivery(self, record: DeliveryRecord) -> None:
        """A payload reached (one of) its destination(s)."""

    def on_drop(self, record: DeliveryRecord, time_s: float, reason: str = "") -> None:
        """A payload was finalized as lost when the run drained.

        ``reason`` names the first cause observed for the payload
        (``ttl``, ``void``, ``queue-drop``, ``dest-dead``,
        ``source-dead``; ``expired`` when nothing more specific was
        seen).
        """

    def on_flow_abort(self, time_s: float, flow_id: str, reason: str = "") -> None:
        """An ARQ flow was aborted (``max-retry``, ``dest-dead``,
        ``source-dead`` or ``no-route``)."""


@dataclass
class _NodeState:
    """Runtime state of one node."""

    name: str
    queue: deque = field(default_factory=deque)
    tx_busy_until_s: float = 0.0
    seen_uids: set = field(default_factory=set)
    #: Pending/recent reception intervals: [start, end, event-or-None].
    receptions: list = field(default_factory=list)
    #: Physical liveness (fault injection); a dead node neither receives
    #: nor transmits, but stays in routing views until *observed* dead.
    alive: bool = True


@dataclass
class _PendingDelivery:
    """A payload awaiting its delivery record."""

    uid: int
    source: str
    destination: str
    created_s: float
    kind: str
    #: First observed cause of loss ("" until a copy dies with a cause).
    reason: str = ""
    #: Whether the payload was offered while some node was down.
    churn: bool = False


@dataclass
class NetworkResult:
    """Everything one :meth:`NetworkSimulator.run` produced."""

    metrics: NetworkMetrics
    duration_s: float
    num_nodes: int
    routing_name: str
    link_name: str
    num_events: int
    sender_stats: dict[str, FlowStats] = field(default_factory=dict)
    receiver_stats: dict[str, FlowStats] = field(default_factory=dict)
    aborted_flows: int = 0

    @property
    def total_retransmissions(self) -> int:
        """ARQ retransmissions summed over all flows."""
        return sum(stats.retransmissions for stats in self.sender_stats.values())

    def describe(self) -> str:
        """Human-readable report of the run."""
        header = (
            f"{self.num_nodes} nodes | routing {self.routing_name} | "
            f"link {self.link_name} | {self.duration_s:.1f} s simulated | "
            f"{self.num_events} events"
        )
        lines = [header, self.metrics.summary()]
        if self.sender_stats:
            lines.append(
                f"  arq retransmissions      : {self.total_retransmissions} over "
                f"{len(self.sender_stats)} flow(s)"
            )
        if self.aborted_flows:
            lines.append(
                f"  arq flows aborted        : {self.aborted_flows} "
                f"(max retries exhausted)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe summary."""
        data = self.metrics.to_dict()
        data.update(
            duration_s=self.duration_s,
            num_nodes=self.num_nodes,
            routing=self.routing_name,
            link=self.link_name,
            num_events=self.num_events,
            total_retransmissions=self.total_retransmissions,
            aborted_flows=self.aborted_flows,
        )
        return data


class NetworkSimulator:
    """One multi-hop network scenario, run event by event.

    Parameters
    ----------
    topology:
        Node deployment (positions, ranges, mobility).
    routing:
        Relay selection protocol.
    link_model:
        Per-hop delivery model (defaults to the fast calibrated table).
    arq:
        Enable end-to-end reliable transport with this configuration;
        ``None`` sends unacknowledged datagrams.
    ttl:
        Hop budget per packet copy.
    collisions:
        Model receiver-side collisions of overlapping receptions.
    forward_jitter_s:
        Relays wait a uniform random delay up to this bound before
        re-transmitting.  Without it, equidistant relays of the same
        flood rebroadcast at the identical instant and their copies
        collide deterministically (the broadcast-storm pathology).
    mobility_interval_s:
        When set, apply one topology mobility step (and re-prepare the
        routing tables) at this period.
    seed:
        Master seed; a given (topology, traffic, seed) triple replays
        bit-identically.
    observer:
        Optional :class:`NetObserver` receiving app-layer hooks (sends,
        deliveries, drops, flow aborts) -- how :mod:`repro.trace`
        captures a run without the simulator knowing about traces.
    cc:
        Congestion controller per ARQ flow: a kind name from
        :data:`~repro.net.congestion.CC_KINDS` or a zero-argument factory
        returning a fresh
        :class:`~repro.net.congestion.CongestionController`.  The default
        ``"fixed"`` is bit-identical to the pre-congestion simulator.
    relay_queue:
        Bounded per-node transmit buffer
        (:class:`~repro.net.congestion.RelayQueueConfig`); packets
        refused admission are counted as ``queue_drops``.  ``None``
        (default) keeps the legacy unbounded queues.
    flow_accounting:
        Force per-flow metrics on/off; ``None`` enables them
        automatically when ``cc`` is non-fixed or a relay queue is set.
    faults:
        Optional fault injector (duck-typed: anything with an
        ``install(simulator)`` method, canonically
        :class:`repro.faults.FaultInjector`).  An injector whose
        schedule is empty installs nothing, keeping the run bit-identical
        to ``faults=None``.
    """

    def __init__(
        self,
        topology: AcousticNetTopology,
        routing: RoutingProtocol,
        link_model: LinkModel | None = None,
        arq: ArqConfig | None = None,
        ttl: int = DEFAULT_TTL,
        collisions: bool = True,
        forward_jitter_s: float = 0.15,
        mobility_interval_s: float | None = None,
        seed: int | np.random.Generator | None = None,
        observer: NetObserver | None = None,
        cc: str | Callable[[], CongestionController] = "fixed",
        relay_queue: RelayQueueConfig | None = None,
        flow_accounting: bool | None = None,
        faults: object | None = None,
    ) -> None:
        if topology.num_nodes < 2:
            raise ValueError("the network needs at least two nodes")
        self.topology = topology
        self.routing = routing
        self.link_model = link_model if link_model is not None else CalibratedLink()
        self.arq = arq
        self.ttl = int(ttl)
        self.collisions = bool(collisions)
        self.forward_jitter_s = float(forward_jitter_s)
        self.mobility_interval_s = mobility_interval_s
        if not callable(cc) and cc not in CC_KINDS:
            raise ValueError(f"cc must be one of {CC_KINDS} or a factory, got {cc!r}")
        self.cc = cc
        self.relay_queue = relay_queue
        cc_is_fixed = not callable(cc) and cc == "fixed"
        if flow_accounting is None:
            flow_accounting = not cc_is_fixed or relay_queue is not None
        self._flow_accounting = bool(flow_accounting) and arq is not None
        self._cc_is_fixed = cc_is_fixed
        self.observer = observer if observer is not None else NetObserver()
        # Delivery/drop hooks need row objects; without an observer the
        # metrics arena is appended to directly (no per-payload object).
        self._observed = type(self.observer) is not NetObserver
        self._rng = ensure_rng(seed)
        self._scheduler = Scheduler()
        self._nodes = {name: _NodeState(name) for name in topology.names}
        # Per-sender fan-out cache: the neighbour table's receiver states
        # in table order, keyed by table identity (a mobility step yields
        # a new table object, invalidating the entry).
        self._fanout: dict[str, tuple[object, list[_NodeState]]] = {}
        # (sender, target, size_bits) -> cached unicast transmit plan
        # (see _transmit); validated against the topology version.
        self._txplans: dict[tuple[str, str, int], tuple] = {}
        self._uids = itertools.count()
        self._metrics = NetworkMetrics()
        self._metrics.congestion_enabled = (
            self._flow_accounting or relay_queue is not None
        )
        self._pending: dict[tuple[str, int], _PendingDelivery] = {}
        self._payload_sizes: dict[int, int] = {}
        # payload uid -> metrics flow slot (only under flow accounting).
        self._payload_flow: dict[int, int] = {}
        self._broadcast_routing = FloodingRouting()
        # Current-epoch sender per (source, destination); an aborted flow is
        # replaced by a fresh epoch (new flow_id) on the next message, like a
        # connection reset.  Receivers and stats are keyed by flow_id.
        self._senders: dict[tuple[str, str], ArqSender] = {}
        self._senders_by_id: dict[str, ArqSender] = {}
        self._receivers: dict[str, ArqReceiver] = {}
        self._flow_epochs: dict[tuple[str, str], int] = {}
        self._flow_timers: dict[tuple[str, str], Event] = {}
        self.faults = faults
        #: Set by a non-empty injector at install time; ``None`` keeps
        #: every fault-path branch a single attribute test, so the
        #: fault-free run is bit-identical to the pre-faults simulator.
        self._fault_hooks = None
        #: Broadcast payloads kept for recovery re-flooding (faults only).
        self._broadcast_store: dict[int, NetPacket] = {}
        self._ran = False

    # -------------------------------------------------------------- injection
    def send_message(
        self, source: str, destination: str, time_s: float = 0.0, size_bits: int = 16
    ) -> None:
        """Schedule one application message (callable before :meth:`run`)."""
        message = AppMessage(float(time_s), source, destination, int(size_bits))
        if message.source not in self.topology:
            raise ValueError(f"unknown source {message.source!r}")
        if message.destination != BROADCAST and message.destination not in self.topology:
            raise ValueError(f"unknown destination {message.destination!r}")
        self._scheduler.at(message.time_s, lambda: self._on_app_message(message))

    # ------------------------------------------------------------------- run
    def run(
        self,
        traffic: TrafficGenerator | None = None,
        until_s: float | None = None,
        max_events: int = 2_000_000,
        progress: bool | Callable[[str], None] = False,
    ) -> NetworkResult:
        """Execute the scenario and return its metrics.

        The event queue drains naturally: traffic is finite, every packet
        copy carries a TTL, and ARQ flows stop once done or aborted, so
        ``until_s`` is a cap, not a requirement.

        ``progress`` enables periodic progress/ETA lines while the event
        queue drains (``True`` prints to stderr; a callable receives each
        line), mirroring the ``calibrate_from_phy`` idiom so long runs
        are followable from the CLI.
        """
        if self._ran:
            raise RuntimeError(
                "NetworkSimulator.run is one-shot; build a new simulator "
                "(same seed) to replay the scenario"
            )
        self._ran = True
        if traffic is not None:
            # Traffic expansion draws from its own stream, derived with a
            # single draw from the master generator.  The simulation's
            # draw sequence is therefore independent of how many draws
            # the generator consumed -- which is what lets a replayed
            # trace (zero draws, see repro.trace) reproduce the original
            # run's event interleaving bit for bit.
            traffic_rng = np.random.default_rng(
                int(self._rng.integers(0, 2 ** 63 - 1))
            )
            for message in traffic.messages(self.topology, traffic_rng):
                self.send_message(
                    message.source, message.destination, message.time_s,
                    message.size_bits,
                )
        self.routing.prepare(self.topology)
        if self.faults is not None:
            self.faults.install(self)
        if self.mobility_interval_s is not None:
            self._scheduler.after(self.mobility_interval_s, self._on_mobility_step)
        self._drain(until_s, max_events, progress)
        self._finalize_lost()
        self._metrics.duration_s = self._scheduler.now_s
        if self._flow_accounting:
            for flow_id, sender in self._senders_by_id.items():
                slot = self._metrics.flow_slot(flow_id)
                if slot is not None:
                    self._metrics.finalize_flow(
                        slot,
                        sender.stats.retransmissions,
                        sender.stats.timeouts,
                        sender.failed,
                        sender.controller.trajectory,
                    )
        sender_stats = {
            flow_id: sender.stats for flow_id, sender in self._senders_by_id.items()
        }
        receiver_stats = {
            flow_id: receiver.stats for flow_id, receiver in self._receivers.items()
        }
        return NetworkResult(
            metrics=self._metrics,
            duration_s=self._scheduler.now_s,
            num_nodes=self.topology.num_nodes,
            routing_name=self.routing.name,
            link_name=self.link_model.name,
            num_events=self._scheduler.num_processed,
            sender_stats=sender_stats,
            receiver_stats=receiver_stats,
            aborted_flows=sum(
                sender.failed for sender in self._senders_by_id.values()
            ),
        )

    def _drain(
        self,
        until_s: float | None,
        max_events: int,
        progress: bool | Callable[[str], None],
    ) -> None:
        """Run the event queue, optionally emitting progress/ETA lines."""
        if progress is True:
            emit: Callable[[str], None] | None = (
                lambda line: print(line, file=sys.stderr)
            )
        elif callable(progress):
            emit = progress
        else:
            emit = None
        if emit is None:
            self._scheduler.run(until_s=until_s, max_events=max_events)
            return
        started = time.perf_counter()
        processed = 0
        while processed < max_events:
            chunk = min(PROGRESS_CHUNK_EVENTS, max_events - processed)
            ran = self._scheduler.run(until_s=until_s, max_events=chunk)
            processed += ran
            elapsed = time.perf_counter() - started
            now = self._scheduler.now_s
            if until_s is not None and now > 0:
                # Sim-time fraction gives the honest ETA when a horizon
                # is known; otherwise fall back to the queue's backlog.
                remaining = elapsed / now * max(0.0, until_s - now)
            elif processed > 0:
                remaining = elapsed / processed * self._scheduler.num_pending
            else:
                remaining = 0.0
            emit(
                f"net run: {processed} events, t={now:.1f} s sim, "
                f"{self._scheduler.num_pending} pending "
                f"({elapsed:.1f}s elapsed, eta {remaining:.1f}s)"
            )
            if ran < chunk:
                break

    def _finalize_lost(self) -> None:
        now = self._scheduler.now_s
        metrics = self._metrics
        hooks = self._fault_hooks
        for pending in self._pending.values():
            # In-flight payloads are charged to their flow as losses, not
            # leaked as forever-pending epoch state: a destination that
            # disappeared mid-flight still settles its flow's books.
            slot = self._payload_flow.pop(pending.uid, None)
            if slot is not None:
                metrics.flow_lost(slot)
            self._payload_sizes.pop(pending.uid, None)
            reason = pending.reason
            if not reason:
                if hooks is not None and not self._nodes[pending.destination].alive:
                    reason = "dest-dead"
                else:
                    reason = "expired"
            metrics.record_drop_reason(reason)
            if self._observed:
                record = DeliveryRecord(
                    uid=pending.uid,
                    source=pending.source,
                    destination=pending.destination,
                    created_s=pending.created_s,
                    kind=pending.kind,
                )
                metrics.add(record)
                self.observer.on_drop(record, now, reason)
            else:
                metrics.record_delivery(
                    pending.uid, pending.source, pending.destination,
                    pending.created_s, kind=pending.kind,
                )
        self._pending.clear()

    # -------------------------------------------------------------- app layer
    def _on_app_message(self, message: AppMessage) -> None:
        now = self._scheduler.now_s
        hooks = self._fault_hooks
        churn = hooks is not None and hooks.any_down
        base_reason = ""
        if hooks is not None and not self._nodes[message.source].alive:
            base_reason = "source-dead"
        if message.destination == BROADCAST:
            uid = next(self._uids)
            # One pending record per potential receiver: broadcast PDR is
            # the fraction of the group the beacon reaches.
            for name in self.topology.names:
                if name != message.source:
                    self._pending[(name, uid)] = _PendingDelivery(
                        uid, message.source, name, now, "broadcast",
                        reason=base_reason, churn=churn,
                    )
                    if churn:
                        self._metrics.churn_offered += 1
            packet = NetPacket(
                uid=uid, kind="raw", source=message.source,
                destination=BROADCAST, created_s=now, ttl=self.ttl,
                size_bits=message.size_bits,
            )
            if hooks is not None:
                # Remembered for re-flooding toward recovered nodes.
                self._broadcast_store[uid] = packet
            self.observer.on_send(now, uid, message, "broadcast")
            self._enqueue(message.source, packet)
            return
        if self.arq is None:
            uid = next(self._uids)
            self._pending[(message.destination, uid)] = _PendingDelivery(
                uid, message.source, message.destination, now, "raw",
                reason=base_reason, churn=churn,
            )
            if churn:
                self._metrics.churn_offered += 1
            packet = NetPacket(
                uid=uid, kind="raw", source=message.source,
                destination=message.destination, created_s=now, ttl=self.ttl,
                size_bits=message.size_bits,
            )
            self.observer.on_send(now, uid, message, "raw")
            self._enqueue(message.source, packet)
            return
        # Reliable flow: the payload *is* the delivery-record uid.
        if base_reason or (
            hooks is not None and hooks.observed_dead(message.destination)
        ):
            # Graceful degradation: a dead source cannot open a flow, and
            # a source that has *observed* its destination dead refuses
            # the payload up front instead of burning a retry budget.
            uid = next(self._uids)
            self._pending[(message.destination, uid)] = _PendingDelivery(
                uid, message.source, message.destination, now, "data",
                reason=base_reason or "dest-dead", churn=churn,
            )
            if churn:
                self._metrics.churn_offered += 1
            self.observer.on_send(now, uid, message, "data")
            return
        key = (message.source, message.destination)
        sender = self._senders.get(key)
        if sender is None or sender.failed:
            epoch = self._flow_epochs.get(key, -1) + 1
            self._flow_epochs[key] = epoch
            sender = ArqSender(
                f"{key[0]}>{key[1]}#{epoch}", self.arq, self._make_controller()
            )
            self._senders[key] = sender
            self._senders_by_id[sender.flow_id] = sender
            if self._flow_accounting:
                self._metrics.register_flow(sender.flow_id, key[0], key[1])
        uid = next(self._uids)
        self._pending[(message.destination, uid)] = _PendingDelivery(
            uid, message.source, message.destination, now, "data", churn=churn
        )
        if churn:
            self._metrics.churn_offered += 1
        self._payload_sizes[uid] = message.size_bits
        if self._flow_accounting:
            slot = self._metrics.flow_slot(sender.flow_id)
            self._metrics.flow_offered(slot, message.size_bits)
            self._payload_flow[uid] = slot
        self.observer.on_send(now, uid, message, "data")
        sender.offer(uid)
        self._pump_flow(key)

    def _make_controller(self) -> CongestionController | None:
        """Fresh controller for a new flow epoch (``None`` = legacy fixed)."""
        if callable(self.cc):
            return self.cc()
        if self._cc_is_fixed:
            # ArqSender builds its own FixedWindow: the bit-exact default.
            return None
        return build_controller(self.cc, self.arq)

    # -------------------------------------------------------------- transport
    def _segment_packet(self, key: tuple[str, str], segment: Segment) -> NetPacket:
        source, destination = key
        # The segment payload is the delivery-record uid; look its size up
        # so ARQ airtime/energy accounting honours AppMessage.size_bits.
        size_bits = self._payload_sizes.get(segment.payload, 16)
        return NetPacket(
            uid=next(self._uids), kind="data", source=source,
            destination=destination, created_s=self._scheduler.now_s,
            ttl=self.ttl, size_bits=size_bits, segment=segment,
        )

    def _pump_flow(self, key: tuple[str, str]) -> None:
        """Send whatever the flow's window newly allows, then arm its timer."""
        sender = self._senders[key]
        now = self._scheduler.now_s
        for segment in sender.window_transmissions(now):
            self._enqueue(key[0], self._segment_packet(key, segment))
        self._arm_flow_timer(key)

    def _arm_flow_timer(self, key: tuple[str, str]) -> None:
        sender = self._senders[key]
        existing = self._flow_timers.pop(key, None)
        if existing is not None:
            self._scheduler.cancel(existing)
        deadline = sender.next_timeout_s()
        if deadline is None:
            return
        # Random jitter desynchronizes flows whose packets collided: with
        # deterministic timers two synchronized losers would re-collide on
        # every retry forever.
        jitter = float(self._rng.uniform(0.0, 0.25 * self.arq.timeout_s))
        deadline = max(deadline, self._scheduler._now_s) + jitter
        # The (source, destination) names are the timer's scheduler
        # tie-break: same-instant timers of different flows fire in name
        # order, not flow-creation order, keeping many-flow runs
        # bit-reproducible across traffic insertion order.
        self._flow_timers[key] = self._scheduler.at(
            deadline, lambda: self._on_flow_timeout(key), key=key
        )

    def _on_flow_timeout(self, key: tuple[str, str]) -> None:
        self._flow_timers.pop(key, None)
        sender = self._senders[key]
        was_failed = sender.failed
        for segment in sender.on_timeout(self._scheduler.now_s):
            self._enqueue(key[0], self._segment_packet(key, segment))
        if sender.failed and not was_failed:
            reason = self._abort_reason(key)
            self._metrics.record_abort_reason(reason)
            self.observer.on_flow_abort(
                self._scheduler.now_s, sender.flow_id, reason
            )
        self._arm_flow_timer(key)

    def _abort_reason(self, key: tuple[str, str]) -> str:
        """Classify a flow abort; fault context refines plain max-retry."""
        if self._fault_hooks is not None:
            source, destination = key
            if not self._nodes[destination].alive:
                return "dest-dead"
            if not self._nodes[source].alive:
                return "source-dead"
            if not self._route_exists(source, destination):
                return "no-route"
        return "max-retry"

    def _route_exists(self, source: str, destination: str) -> bool:
        routing = self.routing
        has_route = getattr(routing, "has_route", None)
        if has_route is not None:
            return bool(has_route(source, destination))
        probe = NetPacket(
            uid=-1, kind="data", source=source, destination=destination,
            created_s=self._scheduler.now_s, ttl=self.ttl,
        )
        return bool(routing.next_hops(source, probe, self.topology))

    # ----------------------------------------------------------------- faults
    def fail_node(self, name: str) -> None:
        """Physically crash a node: no reception, relaying or sending.

        Deliberately *not* a topology change -- the dead node stays in
        every neighbour table and route until the liveness layer observes
        its silence (or forever, with repair disabled), so senders keep
        wasting airtime into it exactly as a real network would.
        """
        node = self._nodes[name]
        if not node.alive:
            return
        node.alive = False
        node.queue.clear()
        for entry in node.receptions:
            event = entry[2]
            if event is not None and not event.cancelled:
                self._scheduler.cancel(event)
        node.receptions.clear()

    def recover_node(self, name: str) -> None:
        """Bring a crashed node back up (with an empty queue and no
        memory of in-flight receptions)."""
        node = self._nodes[name]
        node.alive = True

    def reflood_broadcasts(self, name: str) -> None:
        """Ask an informed live neighbour to re-flood each broadcast the
        recovered node ``name`` is still missing (SOS recovery path)."""
        node = self._nodes[name]
        if not node.alive or not self._broadcast_store:
            return
        table = self.topology.neighbor_table(name)
        for uid, packet in self._broadcast_store.items():
            if (name, uid) not in self._pending or uid in node.seen_uids:
                continue
            for neighbor in table.names:
                helper = self._nodes[neighbor]
                if helper.alive and uid in helper.seen_uids:
                    self._enqueue(
                        neighbor, dataclasses.replace(packet, ttl=self.ttl)
                    )
                    break

    def abort_flows_to(self, destination: str, reason: str) -> None:
        """Proactively abort live flows toward an observed-dead
        destination instead of letting them burn their retry budgets."""
        now = self._scheduler.now_s
        for key, sender in self._senders.items():
            if key[1] != destination or sender.failed or sender.done:
                continue
            sender.fail()
            timer = self._flow_timers.pop(key, None)
            if timer is not None:
                self._scheduler.cancel(timer)
            self._metrics.record_abort_reason(reason)
            self.observer.on_flow_abort(now, sender.flow_id, reason)

    # --------------------------------------------------------------- mobility
    def _on_mobility_step(self) -> None:
        self.topology.step_mobility(self.mobility_interval_s, self._rng)
        self.routing.prepare(self.topology)
        if self._scheduler.num_pending > 0:
            self._scheduler.after(self.mobility_interval_s, self._on_mobility_step)

    # ------------------------------------------------------------ transmitting
    def _enqueue(self, node_name: str, packet: NetPacket) -> None:
        node = self._nodes[node_name]
        if not node.alive:
            return
        if self.relay_queue is not None and not self.relay_queue.admit(
            len(node.queue), self._rng
        ):
            self._metrics.queue_drops += 1
            self._note_copy_drop(packet, "queue-drop")
            if self._flow_accounting and packet.segment is not None:
                slot = self._metrics.flow_slot(packet.segment.flow_id)
                if slot is not None:
                    self._metrics.flow_queue_drop(slot)
            return
        node.queue.append(packet)
        self._service(node)

    def _note_copy_drop(self, packet: NetPacket, cause: str) -> None:
        """Attribute a dying packet copy to its payload's pending record,
        so the eventual lost record carries a cause, not just "expired"."""
        if packet.kind == "ack" or packet.destination == BROADCAST:
            return
        segment = packet.segment
        uid = segment.payload if segment is not None else packet.uid
        pending = self._pending.get((packet.destination, uid))
        if pending is not None and not pending.reason:
            pending.reason = cause

    def _targets_for(self, node_name: str, packet: NetPacket) -> tuple[str, ...]:
        if packet.destination == BROADCAST:
            # Broadcasts always flood, whatever unicast routing is in use.
            return self._broadcast_routing.next_hops(node_name, packet, self.topology)
        return self.routing.next_hops(node_name, packet, self.topology)

    def _service(self, node: _NodeState) -> None:
        """Start transmitting the head-of-queue packet if the node is idle.

        Mirrors the carrier-sense MAC below this layer: while another
        node's packet is audibly arriving, the transmission is deferred
        until the channel falls silent (plus a short sensing jitter).
        Hidden terminals -- nodes out of range of each other -- cannot
        hear one another and may still collide at a common receiver.
        """
        scheduler = self._scheduler
        now = scheduler._now_s
        if not node.alive:
            return
        if node.tx_busy_until_s > now:
            return  # _on_tx_done will call back
        queue = node.queue
        if self.collisions and queue:
            # Find the latest-ending audible reception without building a
            # list (this runs once per queue touch).  Expired intervals
            # (end <= now) can never test audible; the transmit fan-out
            # compacts them away, so the list stays short here.
            busiest = None
            for start, end, _ in node.receptions:
                if start <= now < end and (busiest is None or end > busiest):
                    busiest = end
            if busiest is not None:
                defer = busiest + float(self._rng.uniform(0.0, 0.08))
                scheduler.at(defer, lambda: self._service(node))
                return
        metrics = self._metrics
        routing = self.routing
        topology = self.topology
        while queue:
            packet = queue.popleft()
            if packet.ttl <= 0:
                metrics.ttl_drops += 1
                self._note_copy_drop(packet, "ttl")
                continue
            # _targets_for, inlined (this loop runs once per queued packet).
            if packet.destination == BROADCAST:
                targets = self._broadcast_routing.next_hops(
                    node.name, packet, topology
                )
            else:
                targets = routing.next_hops(node.name, packet, topology)
            if not targets:
                if packet.destination != BROADCAST and routing.reports_voids:
                    metrics.routing_voids += 1
                    self._note_copy_drop(packet, "void")
                continue
            self._transmit(node, packet, targets)
            return

    def _transmit(
        self, node: _NodeState, packet: NetPacket, targets: tuple[str, ...]
    ) -> None:
        scheduler = self._scheduler
        now = scheduler._now_s
        copy = packet.forwarded(node.name)
        link_model = self.link_model
        topology = self.topology
        metrics = self._metrics
        # ARQ traffic re-transmits the same (sender, relay, size) hop over
        # and over, so the geometry-derived parts of a unicast transmit --
        # receiver states in table order, delays, the target's slot and
        # distance, the airtime -- are cached as a *plan* validated
        # against the topology version.  Only the delivery draw (which
        # must consume the RNG stream per transmission) stays live.
        plan = None
        if len(targets) == 1:
            plan_key = (node.name, targets[0], packet.size_bits)
            plan = self._txplans.get(plan_key)
            if plan is not None and plan[0] != topology._version:
                plan = None
        else:
            plan_key = None
        if plan is not None:
            _, receivers, delays, target_slot, farthest, airtime = plan
            outcome_row: list = [None] * len(receivers)
            outcome_row[target_slot] = link_model.deliver(
                farthest, self._rng, size_bits=packet.size_bits
            )
        else:
            table = topology.neighbor_table(node.name)
            slot = table.slot
            distances = table.distances_m
            names = table.names
            delays = table.delays_list
            fanout = self._fanout.get(node.name)
            if fanout is None or fanout[0] is not table:
                nodes = self._nodes
                receivers = [nodes[name] for name in names]
                self._fanout[node.name] = (table, receivers)
            else:
                receivers = fanout[1]
            outcome_row = [None] * len(names)
            target_slot = None
            if plan_key is not None:
                # Routing targets are in-range neighbours, so the cached
                # table answers their distances; the scalar fallback only
                # covers a target that left range between route choice and
                # transmission.  A single scalar deliver consumes the RNG
                # stream identically to a batch of one.
                target = targets[0]
                target_slot = slot.get(target)
                if target_slot is not None:
                    farthest = float(distances[target_slot])
                    outcome_row[target_slot] = link_model.deliver(
                        farthest, self._rng, size_bits=packet.size_bits
                    )
                else:
                    farthest = topology.distance_m(node.name, target)
            else:
                target_set = set(targets)
                farthest = max(
                    float(distances[slot[t]])
                    if t in slot
                    else topology.distance_m(node.name, t)
                    for t in targets
                )
                target_slots = [
                    position for position, name in enumerate(names)
                    if name in target_set
                ]
                if target_slots:
                    resolved = link_model.deliver_many(
                        distances[target_slots], self._rng,
                        size_bits=packet.size_bits,
                    )
                    for position, outcome in zip(target_slots, resolved):
                        outcome_row[position] = outcome
            # airtime_s draws no RNG and is a pure function of
            # (size, distance) for every link model, so the plan may
            # carry its value.
            airtime = link_model.airtime_s(packet.size_bits, farthest)
            if target_slot is not None:
                self._txplans[plan_key] = (
                    topology._version, receivers, delays, target_slot,
                    farthest, airtime,
                )
        if self._fault_hooks is not None:
            # Link blackout/degradation windows, noise bursts and the
            # per-node energy ledger all live behind this one call; the
            # injector draws from its *own* generator, leaving the
            # simulation stream untouched.
            self._fault_hooks.on_transmit(
                node.name, receivers, outcome_row, airtime, now
            )
        node.tx_busy_until_s = now + airtime
        metrics.transmissions += 1
        metrics.tx_airtime_s += airtime
        scheduler.at(node.tx_busy_until_s, lambda: self._service(node))
        # Acoustic transmissions are local broadcasts: *every* in-range
        # neighbour hears the energy.  Routing targets may capture the
        # packet; everyone else just gets jammed for its duration (which is
        # what carrier sense defers on and hidden terminals collide with).
        collisions_on = self.collisions
        # Per-neighbour accumulation (not ``airtime * k``): the committed
        # energy proxy is compared bit-for-bit in fixture replays, and
        # float addition order changes the low bits.
        rx_airtime = metrics.rx_airtime_s
        for receiver, delay, outcome in zip(receivers, delays, outcome_row):
            start = now + delay
            end = start + airtime
            rx_airtime += airtime
            deliverable = None
            if outcome is not None:
                if outcome.delivered:
                    deliverable = copy
                else:
                    metrics.link_drops += 1
            # Register the arrival at the receiver (inlined reception
            # scheduling -- this fan-out loop dominates the transmit
            # profile).  ``deliverable=None`` means the energy arrives but
            # carries nothing for this node (not a routing target, or the
            # link model dropped it); the interval still participates in
            # carrier sensing and collisions.
            if not collisions_on:
                if deliverable is not None:
                    scheduler.at(
                        end,
                        lambda r=receiver, p=deliverable, s=start: (
                            self._on_receive(r, p, s)
                        ),
                    )
                continue
            receptions = receiver.receptions
            collided = False
            # One pass does double duty: expired intervals (end <= now,
            # which can never overlap an arrival starting at or after now)
            # are compacted out in place, and live ones are tested for
            # overlap.  Lists therefore stay at live-interval size --
            # typically zero to two entries.
            write = 0
            for entry in receptions:
                entry_end = entry[1]
                if entry_end <= now:
                    continue
                receptions[write] = entry
                write += 1
                if start < entry_end and entry[0] < end:
                    collided = True
                    other_event = entry[2]
                    if other_event is not None and not other_event.cancelled:
                        scheduler.cancel(other_event)
                        entry[2] = None
                        metrics.collisions += 1
            if write != len(receptions):
                del receptions[write:]
            event = None
            if deliverable is not None:
                if receiver.tx_busy_until_s > start:
                    # Half duplex: a node transmitting when the packet
                    # starts arriving cannot capture it (energy still
                    # jams).
                    metrics.collisions += 1
                elif collided:
                    metrics.collisions += 1
                else:
                    event = scheduler.at(
                        end,
                        lambda r=receiver, p=deliverable, s=start: (
                            self._on_receive(r, p, s)
                        ),
                    )
            receptions.append([start, end, event])
        metrics.rx_airtime_s = rx_airtime

    # --------------------------------------------------------------- receiving
    def _on_receive(
        self, node: _NodeState, packet: NetPacket, start_s: float = float("-inf")
    ) -> None:
        if not node.alive:
            return  # crashed while the packet was in flight
        # Half duplex, re-checked at reception end: the node may have begun
        # transmitting *after* this reception was scheduled but before (or
        # while) the packet arrived; any own transmission overlapping
        # [start_s, now] wipes the capture.
        if self.collisions and node.tx_busy_until_s > start_s:
            self._metrics.collisions += 1
            return
        if packet.uid in node.seen_uids:
            self._metrics.duplicates_suppressed += 1
            return
        node.seen_uids.add(packet.uid)
        now = self._scheduler._now_s
        is_for_me = packet.destination == node.name
        is_broadcast = packet.destination == BROADCAST
        if is_broadcast:
            self._record_delivery(node.name, packet.uid, packet.hop_count, now)
            self._relay(node, packet)  # keep flooding outwards
            return
        if not is_for_me:
            self._relay(node, packet)
            return
        if packet.kind == "raw":
            self._record_delivery(node.name, packet.uid, packet.hop_count, now)
            return
        if packet.kind == "data":
            self._on_data_segment(node, packet, now)
            return
        if packet.kind == "ack":
            self._on_ack_segment(node, packet)

    def _relay(self, node: _NodeState, packet: NetPacket) -> None:
        """Re-queue a packet for forwarding, after the de-sync jitter."""
        if self.forward_jitter_s > 0.0:
            scheduler = self._scheduler
            delay = float(self._rng.uniform(0.0, self.forward_jitter_s))
            scheduler.at(
                scheduler._now_s + delay, lambda: self._enqueue(node.name, packet)
            )
        else:
            self._enqueue(node.name, packet)

    def _record_delivery(
        self, node_name: str, uid: int, hop_count: int, now: float
    ) -> None:
        pending = self._pending.pop((node_name, uid), None)
        if pending is None:
            return
        if pending.churn:
            self._metrics.churn_delivered += 1
        slot = self._payload_flow.pop(uid, None)
        if slot is not None:
            self._metrics.flow_delivered(slot, self._payload_sizes.get(uid, 16))
        if self._observed:
            record = DeliveryRecord(
                uid=uid,
                source=pending.source,
                destination=pending.destination,
                created_s=pending.created_s,
                delivered_s=now,
                hop_count=hop_count,
                kind=pending.kind,
            )
            self._metrics.add(record)
            self.observer.on_delivery(record)
        else:
            self._metrics.record_delivery(
                uid, pending.source, pending.destination, pending.created_s,
                now, hop_count, pending.kind,
            )

    def _on_data_segment(
        self, node: _NodeState, packet: NetPacket, now: float
    ) -> None:
        flow_id = packet.segment.flow_id
        receiver = self._receivers.get(flow_id)
        if receiver is None:
            receiver = ArqReceiver(flow_id, self.arq)
            self._receivers[flow_id] = receiver
        delivered, ack = receiver.on_data(packet.segment)
        for payload_uid in delivered:
            self._record_delivery(node.name, payload_uid, packet.hop_count, now)
        ack_packet = NetPacket(
            uid=next(self._uids), kind="ack", source=node.name,
            destination=packet.source, created_s=now, ttl=self.ttl,
            size_bits=ACK_SIZE_BITS, segment=ack,
        )
        self._enqueue(node.name, ack_packet)

    def _on_ack_segment(self, node: _NodeState, packet: NetPacket) -> None:
        # The ACK travels dst -> src, so the flow key is reversed.
        key = (node.name, packet.source)
        sender = self._senders_by_id.get(packet.segment.flow_id)
        if sender is None or sender is not self._senders.get(key):
            return  # ACK for an abandoned epoch
        now = self._scheduler.now_s
        for segment in sender.on_ack(packet.segment, now):
            self._enqueue(key[0], self._segment_packet(key, segment))
        self._pump_flow(key)
