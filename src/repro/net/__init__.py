"""Multi-hop underwater acoustic network simulator.

The paper's evaluation stops at single-hop links plus a 2-3 transmitter
carrier-sense MAC; its stated vision, however, is group messaging among
divers *beyond direct acoustic range*.  This package provides the network
layer that vision needs, as a discrete-event simulation stacked on top of
the existing channel/link machinery:

* :mod:`~repro.net.scheduler` -- a generic discrete-event :class:`Scheduler`;
* :mod:`~repro.net.topology` -- :class:`AcousticNetTopology`: node
  positions, mobility, per-pair distances and propagation delays derived
  from :mod:`repro.channel.physics`;
* :mod:`~repro.net.routing` -- pluggable :class:`RoutingProtocol`
  implementations (flooding, static shortest path, distance/depth greedy
  forwarding);
* :mod:`~repro.net.transport` -- sliding-window ARQ (Go-Back-N and
  selective repeat) generalizing the single-packet retry logic of
  :mod:`repro.link.network`;
* :mod:`~repro.net.links` -- interchangeable link models:
  :class:`PhysicalLink` runs the full PHY per packet, while
  :class:`CalibratedLink` replays a PER/bitrate-vs-distance table
  calibrated from the PHY so thousand-node scenarios run in seconds;
* :mod:`~repro.net.traffic` -- Poisson/CBR/SOS-broadcast generators;
* :mod:`~repro.net.congestion` -- pluggable congestion control
  (:class:`FixedWindow`, Reno-style AIMD with adaptive RTO) and bounded
  relay-queue modeling for many-flow scenarios;
* :mod:`~repro.net.metrics` -- PDR, end-to-end latency, hop counts,
  goodput, per-flow accounting with Jain fairness, and an energy proxy;
* :mod:`~repro.net.simulator` -- :class:`NetworkSimulator` gluing it all
  together.
"""

from repro.net.congestion import (
    CC_KINDS,
    AdaptiveRto,
    CongestionController,
    CwndTrajectory,
    FixedWindow,
    RelayQueueConfig,
    RenoController,
    build_controller,
    jain_fairness_index,
)
from repro.net.links import (
    CalibratedLink,
    LinkCalibration,
    LinkModel,
    LinkOutcome,
    PhysicalLink,
    calibrate_from_phy,
)
from repro.net.metrics import DeliveryRecord, NetworkMetrics
from repro.net.packet import BROADCAST, NetPacket
from repro.net.routing import (
    ROUTING_CATALOG,
    FloodingRouting,
    GreedyForwarding,
    RoutingProtocol,
    StaticShortestPathRouting,
    build_routing,
)
from repro.net.scheduler import Event, Scheduler
from repro.net.simulator import NetObserver, NetworkResult, NetworkSimulator
from repro.net.topology import AcousticNetTopology, NodePosition
from repro.net.traffic import (
    AppMessage,
    CBRTraffic,
    PoissonTraffic,
    SosBroadcastTraffic,
    TrafficGenerator,
)
from repro.net.transport import ArqConfig, ArqReceiver, ArqSender, FlowStats, Segment

__all__ = [
    "AcousticNetTopology",
    "AdaptiveRto",
    "AppMessage",
    "ArqConfig",
    "ArqReceiver",
    "ArqSender",
    "BROADCAST",
    "CBRTraffic",
    "CC_KINDS",
    "CalibratedLink",
    "CongestionController",
    "CwndTrajectory",
    "DeliveryRecord",
    "Event",
    "FixedWindow",
    "FloodingRouting",
    "FlowStats",
    "GreedyForwarding",
    "LinkCalibration",
    "LinkModel",
    "LinkOutcome",
    "NetObserver",
    "NetPacket",
    "NetworkMetrics",
    "NetworkResult",
    "NetworkSimulator",
    "NodePosition",
    "PhysicalLink",
    "PoissonTraffic",
    "ROUTING_CATALOG",
    "RelayQueueConfig",
    "RenoController",
    "RoutingProtocol",
    "Scheduler",
    "Segment",
    "SosBroadcastTraffic",
    "StaticShortestPathRouting",
    "TrafficGenerator",
    "build_controller",
    "build_routing",
    "calibrate_from_phy",
    "jain_fairness_index",
]
