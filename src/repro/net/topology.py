"""Node positions, mobility and acoustic geometry of a network.

:class:`AcousticNetTopology` is the shared map every other net component
consults: routing asks for neighbours and distances, the link models ask
for per-pair distance, the simulator asks for propagation delays (distance
over the canonical :data:`~repro.channel.physics.SOUND_SPEED_M_S`) and a
rough per-pair SNR derived from the same transmission-loss physics the
channel simulator uses.  Mobility is modelled as per-node velocities plus
a site-current jitter applied in discrete steps, mirroring how the
single-link :mod:`repro.channel.motion` models drift within a packet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.channel.physics import SOUND_SPEED_M_S, transmission_loss_db
from repro.environments.sites import LAKE, Site
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class NodePosition:
    """A node's location: horizontal coordinates plus depth (all metres)."""

    x_m: float
    y_m: float
    depth_m: float = 1.0

    def distance_to(self, other: "NodePosition") -> float:
        """Euclidean 3-D distance to another position."""
        return math.sqrt(
            (self.x_m - other.x_m) ** 2
            + (self.y_m - other.y_m) ** 2
            + (self.depth_m - other.depth_m) ** 2
        )


class AcousticNetTopology:
    """Positions and acoustic geometry of an N-node deployment.

    Parameters
    ----------
    site:
        Evaluation site providing water depth, noise level and currents.
    comm_range_m:
        Maximum distance at which two nodes are considered neighbours.
        Defaults to the site's usable range.
    """

    def __init__(self, site: Site = LAKE, comm_range_m: float | None = None) -> None:
        self.site = site
        range_m = site.max_range_m if comm_range_m is None else float(comm_range_m)
        require_positive(range_m, "comm_range_m")
        self.comm_range_m = range_m
        self._positions: dict[str, NodePosition] = {}
        self._velocities: dict[str, tuple[float, float, float]] = {}
        # Per-node neighbour lists, rebuilt lazily after any position
        # change; neighbour lookup sits on the per-transmission hot path.
        self._neighbor_cache: dict[str, tuple[str, ...]] = {}

    # ------------------------------------------------------------------ nodes
    def add_node(
        self,
        name: str,
        x_m: float,
        y_m: float,
        depth_m: float = 1.0,
        velocity_m_s: tuple[float, float, float] = (0.0, 0.0, 0.0),
    ) -> None:
        """Place a node; ``velocity_m_s`` drives :meth:`step_mobility`."""
        if name in self._positions:
            raise ValueError(f"node {name!r} already exists")
        self._positions[name] = NodePosition(
            float(x_m), float(y_m), self._clamp_depth(depth_m)
        )
        self._velocities[name] = tuple(float(v) for v in velocity_m_s)
        self._neighbor_cache.clear()

    @property
    def names(self) -> tuple[str, ...]:
        """Node names in insertion order."""
        return tuple(self._positions)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._positions)

    def __contains__(self, name: str) -> bool:
        return name in self._positions

    def position(self, name: str) -> NodePosition:
        """Current position of ``name``."""
        try:
            return self._positions[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    # --------------------------------------------------------------- geometry
    def distance_m(self, a: str, b: str) -> float:
        """3-D distance between two nodes."""
        return self.position(a).distance_to(self.position(b))

    def propagation_delay_s(self, a: str, b: str) -> float:
        """Acoustic propagation delay between two nodes."""
        return self.distance_m(a, b) / SOUND_SPEED_M_S

    def are_neighbors(self, a: str, b: str) -> bool:
        """Whether two distinct nodes are within communication range."""
        return a != b and self.distance_m(a, b) <= self.comm_range_m

    def neighbors(self, name: str) -> tuple[str, ...]:
        """Names of all nodes within range of ``name``, nearest first."""
        cached = self._neighbor_cache.get(name)
        if cached is not None:
            return cached
        position = self.position(name)
        reachable = sorted(
            (distance, other)
            for other, other_pos in self._positions.items()
            if other != name
            for distance in (position.distance_to(other_pos),)
            if distance <= self.comm_range_m
        )
        result = tuple(other for _, other in reachable)
        self._neighbor_cache[name] = result
        return result

    def link_snr_db(self, a: str, b: str, frequency_hz: float = 2500.0) -> float:
        """Rough per-pair SNR from transmission loss and site noise (dB).

        Diagnostic figure used by link models and routing heuristics; the
        full channel simulator makes its own per-bin estimate.
        """
        distance = max(self.distance_m(a, b), 1e-3)
        loss_db = float(transmission_loss_db(distance, frequency_hz))
        return -loss_db - self.site.noise_level_db

    # --------------------------------------------------------------- mobility
    def _clamp_depth(self, depth_m: float) -> float:
        return float(np.clip(depth_m, 0.2, self.site.water_depth_m - 0.2))

    def step_mobility(
        self, dt_s: float, rng: int | np.random.Generator | None = None
    ) -> None:
        """Advance every node by its velocity plus site-current jitter."""
        require_positive(dt_s, "dt_s")
        rng = ensure_rng(rng)
        jitter = self.site.current_speed_m_s
        for name, position in list(self._positions.items()):
            vx, vy, vz = self._velocities[name]
            dx = (vx + jitter * float(rng.normal(0.0, 0.3))) * dt_s
            dy = (vy + jitter * float(rng.normal(0.0, 0.3))) * dt_s
            dz = vz * dt_s
            self._positions[name] = NodePosition(
                position.x_m + dx,
                position.y_m + dy,
                self._clamp_depth(position.depth_m + dz),
            )
        self._neighbor_cache.clear()

    # --------------------------------------------------------------- builders
    @classmethod
    def line(
        cls,
        num_nodes: int,
        spacing_m: float,
        site: Site = LAKE,
        comm_range_m: float | None = None,
        depth_m: float = 1.0,
        prefix: str = "n",
    ) -> "AcousticNetTopology":
        """Evenly spaced chain ``n0 .. n{N-1}`` along the x axis."""
        require_positive(spacing_m, "spacing_m")
        if num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        topology = cls(site=site, comm_range_m=comm_range_m)
        for index in range(num_nodes):
            topology.add_node(f"{prefix}{index}", index * spacing_m, 0.0, depth_m)
        return topology

    @classmethod
    def grid(
        cls,
        rows: int,
        cols: int,
        spacing_m: float,
        site: Site = LAKE,
        comm_range_m: float | None = None,
        depth_m: float = 1.0,
        prefix: str = "n",
    ) -> "AcousticNetTopology":
        """``rows x cols`` lattice; node ``n{i}`` in row-major order."""
        require_positive(spacing_m, "spacing_m")
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be at least 1")
        topology = cls(site=site, comm_range_m=comm_range_m)
        for row in range(rows):
            for col in range(cols):
                index = row * cols + col
                topology.add_node(
                    f"{prefix}{index}", col * spacing_m, row * spacing_m, depth_m
                )
        return topology

    @classmethod
    def random_deployment(
        cls,
        num_nodes: int,
        area_m: tuple[float, float],
        site: Site = LAKE,
        comm_range_m: float | None = None,
        depth_range_m: tuple[float, float] = (0.5, 2.0),
        seed: int | np.random.Generator | None = None,
        prefix: str = "n",
    ) -> "AcousticNetTopology":
        """Uniform random deployment over ``area_m`` = (width, height)."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        width, height = (float(v) for v in area_m)
        require_positive(width, "area width")
        require_positive(height, "area height")
        rng = ensure_rng(seed)
        topology = cls(site=site, comm_range_m=comm_range_m)
        low, high = depth_range_m
        for index in range(num_nodes):
            topology.add_node(
                f"{prefix}{index}",
                float(rng.uniform(0.0, width)),
                float(rng.uniform(0.0, height)),
                float(rng.uniform(low, high)),
            )
        return topology
