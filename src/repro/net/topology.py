"""Node positions, mobility and acoustic geometry of a network.

:class:`AcousticNetTopology` is the shared map every other net component
consults: routing asks for neighbours and distances, the link models ask
for per-pair distance, the simulator asks for propagation delays (distance
over the canonical :data:`~repro.channel.physics.SOUND_SPEED_M_S`) and a
rough per-pair SNR derived from the same transmission-loss physics the
channel simulator uses.  Mobility is modelled as per-node velocities plus
a site-current jitter applied in discrete steps, mirroring how the
single-link :mod:`repro.channel.motion` models drift within a packet.

The geometry core is *array-backed*: positions and velocities live in
persistent ``(N, 3)`` float64 arrays behind an interned name<->index
table, neighbour lookup runs through a spatial-hash grid (cell size =
``comm_range_m``, so a 3x3 cell neighbourhood covers the range ball) and
every node's active neighbour set is cached as a :class:`NeighborTable`
of aligned distance/delay arrays.  Mobility bumps a version counter --
cached tables invalidate lazily, O(1), instead of a dict-wide clear --
and only moves nodes between grid buckets when they actually cross a
cell boundary, so a 1000-node deployment pays O(changed) per step, not
O(N^2).  All distances are computed with the same operation order as the
original per-node loops, so results are bit-identical to the scalar path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.channel.physics import SOUND_SPEED_M_S, transmission_loss_db
from repro.environments.sites import LAKE, Site
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_positive

#: Draw-order modes for :meth:`AcousticNetTopology.step_mobility`.
MOBILITY_DRAW_MODES = ("batched", "legacy")

#: Initial node-array capacity; grows by doubling.
_INITIAL_CAPACITY = 8


@dataclass(frozen=True)
class NodePosition:
    """A node's location: horizontal coordinates plus depth (all metres)."""

    x_m: float
    y_m: float
    depth_m: float = 1.0

    def distance_to(self, other: "NodePosition") -> float:
        """Euclidean 3-D distance to another position."""
        return math.sqrt(
            (self.x_m - other.x_m) ** 2
            + (self.y_m - other.y_m) ** 2
            + (self.depth_m - other.depth_m) ** 2
        )


class NeighborTable:
    """The cached active neighbour set of one node.

    All fields are aligned: slot ``i`` describes the ``i``-th in-range
    neighbour, sorted nearest first (ties broken by name, matching the
    original per-node sorted scan).  ``distances_m``/``delays_s`` are
    read-only float64 views the simulator and routing consume without
    re-deriving geometry per packet; ``delays_list`` is the same delay
    column as plain floats so the event scheduler never sees numpy
    scalars.
    """

    __slots__ = ("names", "indices", "distances_m", "delays_s", "delays_list", "slot", "_snr_db")

    def __init__(
        self,
        names: tuple[str, ...],
        indices: np.ndarray,
        distances_m: np.ndarray,
        delays_s: np.ndarray,
    ) -> None:
        self.names = names
        self.indices = indices
        self.distances_m = distances_m
        self.delays_s = delays_s
        self.delays_list = delays_s.tolist()
        self.slot = {name: position for position, name in enumerate(names)}
        self._snr_db: dict[float, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.names)


class AcousticNetTopology:
    """Positions and acoustic geometry of an N-node deployment.

    Parameters
    ----------
    site:
        Evaluation site providing water depth, noise level and currents.
    comm_range_m:
        Maximum distance at which two nodes are considered neighbours.
        Defaults to the site's usable range.
    mobility_draws:
        ``"batched"`` (default) draws every node's mobility jitter in one
        ``(N, 2)`` call; ``"legacy"`` replays the original two scalar
        draws per node.  Both consume the generator stream identically
        (numpy fills arrays element by element), so they are
        bit-identical -- the legacy mode is the committed escape hatch
        that keeps old VALID envelopes and trace fixtures reproducible
        even if the batched path ever changes shape.
    """

    def __init__(
        self,
        site: Site = LAKE,
        comm_range_m: float | None = None,
        mobility_draws: str = "batched",
    ) -> None:
        self.site = site
        range_m = site.max_range_m if comm_range_m is None else float(comm_range_m)
        require_positive(range_m, "comm_range_m")
        if mobility_draws not in MOBILITY_DRAW_MODES:
            raise ValueError(
                f"mobility_draws must be one of {MOBILITY_DRAW_MODES}, "
                f"got {mobility_draws!r}"
            )
        self.comm_range_m = range_m
        self.mobility_draws = mobility_draws
        self._count = 0
        self._names: list[str] = []
        self._index: dict[str, int] = {}
        self._xyz = np.empty((_INITIAL_CAPACITY, 3), dtype=float)
        self._vel = np.empty((_INITIAL_CAPACITY, 3), dtype=float)
        #: Liveness mask: inactive nodes keep their slot (positions still
        #: advance under mobility) but vanish from the spatial grid and
        #: every neighbour table until :meth:`reactivate`.
        self._active = np.ones(_INITIAL_CAPACITY, dtype=bool)
        self._names_tuple: tuple[str, ...] | None = ()
        #: Name array for vectorized tie-breaking; rebuilt lazily.
        self._name_keys: np.ndarray | None = None
        #: Spatial hash: (cell_x, cell_y) -> list of node indices.  Built
        #: lazily on first neighbour query; nodes move between buckets
        #: only when mobility carries them across a cell boundary.
        self._buckets: dict[tuple[int, int], list[int]] | None = None
        self._cells: np.ndarray | None = None
        #: Geometry version; bumped on any position change.  Cached
        #: neighbour tables carry the version they were built at, so
        #: invalidation is an O(1) counter bump, not a dict clear.
        self._version = 0
        self._tables: dict[str, tuple[int, NeighborTable]] = {}

    # ------------------------------------------------------------------ nodes
    def add_node(
        self,
        name: str,
        x_m: float,
        y_m: float,
        depth_m: float = 1.0,
        velocity_m_s: tuple[float, float, float] = (0.0, 0.0, 0.0),
    ) -> None:
        """Place a node; ``velocity_m_s`` drives :meth:`step_mobility`."""
        if name in self._index:
            raise ValueError(f"node {name!r} already exists")
        index = self._count
        if index == self._xyz.shape[0]:
            self._xyz = np.concatenate([self._xyz, np.empty_like(self._xyz)])
            self._vel = np.concatenate([self._vel, np.empty_like(self._vel)])
            self._active = np.concatenate([self._active, np.ones_like(self._active)])
            if self._cells is not None:
                self._cells = np.concatenate([self._cells, np.empty_like(self._cells)])
        self._xyz[index] = (float(x_m), float(y_m), self._clamp_depth(depth_m))
        self._vel[index] = tuple(float(v) for v in velocity_m_s)
        self._active[index] = True
        self._names.append(name)
        self._index[name] = index
        self._count = index + 1
        self._names_tuple = None
        self._name_keys = None
        if self._buckets is not None:
            cell = self._cell_of(index)
            self._cells[index] = cell
            self._buckets.setdefault(cell, []).append(index)
        self._version += 1

    def remove_node(self, name: str) -> None:
        """Permanently delete a node, compacting the position arrays.

        O(N): the remaining rows shift down one slot and every lazy
        cache (grid, name keys, neighbour tables) rebuilds on next use.
        For transient outages prefer :meth:`deactivate`, which is O(1)
        and keeps the slot for :meth:`reactivate`.
        """
        index = self.index_of(name)
        count = self._count
        for attr in ("_xyz", "_vel", "_active"):
            old = getattr(self, attr)
            new = np.empty_like(old)
            new[:index] = old[:index]
            new[index : count - 1] = old[index + 1 : count]
            setattr(self, attr, new)
        del self._names[index]
        self._count = count - 1
        self._index = {node: slot for slot, node in enumerate(self._names)}
        self._names_tuple = None
        self._name_keys = None
        self._buckets = None
        self._cells = None
        self._tables.pop(name, None)
        self._version += 1

    def deactivate(self, name: str) -> None:
        """Take a node out of the network without forgetting its slot.

        The node disappears from the spatial grid, every neighbour table
        and routing view; its position keeps advancing under mobility so
        :meth:`reactivate` resumes from wherever it drifted.  Idempotent.
        """
        index = self.index_of(name)
        if not self._active[index]:
            return
        self._active[index] = False
        if self._buckets is not None:
            cell = (int(self._cells[index, 0]), int(self._cells[index, 1]))
            bucket = self._buckets.get(cell)
            if bucket is not None and index in bucket:
                bucket.remove(index)
                if not bucket:
                    del self._buckets[cell]
        self._version += 1

    def reactivate(self, name: str) -> None:
        """Return a deactivated node to the network at its current position."""
        index = self.index_of(name)
        if self._active[index]:
            return
        self._active[index] = True
        if self._buckets is not None:
            cell = self._cell_of(index)
            self._cells[index] = cell
            self._buckets.setdefault(cell, []).append(index)
        self._version += 1

    def is_active(self, name: str) -> bool:
        """Whether ``name`` is a live member of the network."""
        return bool(self._active[self.index_of(name)])

    @property
    def active_names(self) -> tuple[str, ...]:
        """Names of live nodes, insertion order."""
        active = self._active
        return tuple(name for slot, name in enumerate(self._names) if active[slot])

    @property
    def names(self) -> tuple[str, ...]:
        """Node names in insertion order."""
        if self._names_tuple is None:
            self._names_tuple = tuple(self._names)
        return self._names_tuple

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._count

    @property
    def version(self) -> int:
        """Geometry version; changes whenever any position changes.

        Consumers (neighbour tables, routing memos) cache derived state
        against this counter instead of subscribing to invalidation.
        """
        return self._version

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        """Array index of ``name`` in the position/velocity arrays."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def position(self, name: str) -> NodePosition:
        """Current position of ``name``."""
        row = self._xyz[self.index_of(name)]
        return NodePosition(float(row[0]), float(row[1]), float(row[2]))

    def positions_m(self) -> np.ndarray:
        """Read-only ``(N, 3)`` view of all positions (x, y, depth)."""
        view = self._xyz[: self._count]
        view.flags.writeable = False
        return view

    # --------------------------------------------------------------- geometry
    def distance_m(self, a: str, b: str) -> float:
        """3-D distance between two nodes."""
        xyz = self._xyz
        pa = xyz[self.index_of(a)]
        pb = xyz[self.index_of(b)]
        return math.sqrt(
            (pa[0] - pb[0]) ** 2 + (pa[1] - pb[1]) ** 2 + (pa[2] - pb[2]) ** 2
        )

    def propagation_delay_s(self, a: str, b: str) -> float:
        """Acoustic propagation delay between two nodes."""
        return self.distance_m(a, b) / SOUND_SPEED_M_S

    def are_neighbors(self, a: str, b: str) -> bool:
        """Whether two distinct *live* nodes are within communication range."""
        return (
            a != b
            and self.is_active(a)
            and self.is_active(b)
            and self.distance_m(a, b) <= self.comm_range_m
        )

    def neighbors(self, name: str) -> tuple[str, ...]:
        """Names of all nodes within range of ``name``, nearest first."""
        return self.neighbor_table(name).names

    def neighbor_table(self, name: str) -> NeighborTable:
        """Cached :class:`NeighborTable` of ``name`` (nearest first)."""
        cached = self._tables.get(name)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        table = self._build_table(self.index_of(name))
        self._tables[name] = (self._version, table)
        return table

    def distances_to(self, indices: np.ndarray, target: str) -> np.ndarray:
        """Distances from the nodes at ``indices`` to ``target`` (vector).

        Same operation order as :meth:`distance_m`, so each entry is
        bit-identical to the scalar computation.
        """
        xyz = self._xyz
        tx, ty, tz = xyz[self.index_of(target)]
        dx = xyz[indices, 0] - tx
        dy = xyz[indices, 1] - ty
        dz = xyz[indices, 2] - tz
        return np.sqrt(dx * dx + dy * dy + dz * dz)

    def depths_of(self, indices: np.ndarray) -> np.ndarray:
        """Depths (m) of the nodes at ``indices``."""
        return self._xyz[indices, 2]

    def link_snr_db(self, a: str, b: str, frequency_hz: float = 2500.0) -> float:
        """Rough per-pair SNR from transmission loss and site noise (dB).

        Diagnostic figure used by link models and routing heuristics; the
        full channel simulator makes its own per-bin estimate.
        """
        distance = max(self.distance_m(a, b), 1e-3)
        loss_db = float(transmission_loss_db(distance, frequency_hz))
        return -loss_db - self.site.noise_level_db

    def neighbor_snr_db(self, name: str, frequency_hz: float = 2500.0) -> np.ndarray:
        """SNR toward each entry of :meth:`neighbor_table`, cached (dB)."""
        table = self.neighbor_table(name)
        cached = table._snr_db.get(frequency_hz)
        if cached is None:
            distances = np.maximum(table.distances_m, 1e-3)
            loss_db = np.asarray(
                transmission_loss_db(distances, frequency_hz), dtype=float
            )
            cached = -loss_db - self.site.noise_level_db
            table._snr_db[frequency_hz] = cached
        return cached

    # ----------------------------------------------------------- spatial hash
    def _cell_of(self, index: int) -> tuple[int, int]:
        row = self._xyz[index]
        cell = self.comm_range_m
        return (int(row[0] // cell), int(row[1] // cell))

    def _ensure_grid(self) -> None:
        if self._buckets is not None:
            return
        count = self._count
        cells = np.floor_divide(
            self._xyz[: max(count, 1), :2], self.comm_range_m
        ).astype(np.int64)
        capacity = self._xyz.shape[0]
        self._cells = np.empty((capacity, 2), dtype=np.int64)
        self._cells[:count] = cells[:count]
        buckets: dict[tuple[int, int], list[int]] = {}
        for index in range(count):
            if not self._active[index]:
                continue
            buckets.setdefault(
                (int(cells[index, 0]), int(cells[index, 1])), []
            ).append(index)
        self._buckets = buckets

    def _refresh_grid(self) -> None:
        """Move nodes whose mobility crossed a cell boundary (incremental)."""
        if self._buckets is None:
            return
        count = self._count
        new_cells = np.floor_divide(
            self._xyz[:count, :2], self.comm_range_m
        ).astype(np.int64)
        changed = np.nonzero((new_cells != self._cells[:count]).any(axis=1))[0]
        for raw in changed:
            index = int(raw)
            if not self._active[index]:
                # Deactivated nodes are in no bucket; their cell record
                # still tracks drift (final assignment below) so
                # reactivation re-inserts at the right cell.
                continue
            old = (int(self._cells[index, 0]), int(self._cells[index, 1]))
            new = (int(new_cells[index, 0]), int(new_cells[index, 1]))
            bucket = self._buckets[old]
            bucket.remove(index)
            if not bucket:
                del self._buckets[old]
            self._buckets.setdefault(new, []).append(index)
        self._cells[:count] = new_cells

    def _build_table(self, index: int) -> NeighborTable:
        self._ensure_grid()
        if self._name_keys is None:
            self._name_keys = np.array(self._names)
        cx, cy = self._cells[index]
        buckets = self._buckets
        candidates: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                bucket = buckets.get((cx + dx, cy + dy))
                if bucket:
                    candidates.extend(bucket)
        cand = np.array(candidates, dtype=np.intp)
        xyz = self._xyz
        x0, y0, z0 = xyz[index]
        ddx = xyz[cand, 0] - x0
        ddy = xyz[cand, 1] - y0
        ddz = xyz[cand, 2] - z0
        distances = np.sqrt(ddx * ddx + ddy * ddy + ddz * ddz)
        mask = (distances <= self.comm_range_m) & (cand != index)
        cand = cand[mask]
        distances = distances[mask]
        # Nearest first, ties by name -- the exact order of the original
        # per-node ``sorted((distance, other) ...)`` generator.
        order = np.lexsort((self._name_keys[cand], distances))
        cand = cand[order]
        distances = distances[order]
        names = tuple(self._names[position] for position in cand)
        return NeighborTable(names, cand, distances, distances / SOUND_SPEED_M_S)

    # --------------------------------------------------------------- mobility
    def _clamp_depth(self, depth_m: float) -> float:
        return float(np.clip(depth_m, 0.2, self.site.water_depth_m - 0.2))

    def step_mobility(
        self, dt_s: float, rng: int | np.random.Generator | None = None
    ) -> None:
        """Advance every node by its velocity plus site-current jitter."""
        require_positive(dt_s, "dt_s")
        rng = ensure_rng(rng)
        jitter = self.site.current_speed_m_s
        count = self._count
        if self.mobility_draws == "legacy":
            # The committed per-node draw order: two scalar normals per
            # node, in insertion order.  Kept verbatim so old envelopes
            # and trace fixtures replay against a frozen reference path.
            draws = np.empty((count, 2))
            for index in range(count):
                draws[index, 0] = rng.normal(0.0, 0.3)
                draws[index, 1] = rng.normal(0.0, 0.3)
        else:
            draws = rng.normal(0.0, 0.3, size=(count, 2))
        xyz = self._xyz[:count]
        vel = self._vel[:count]
        xyz[:, 0] += (vel[:, 0] + jitter * draws[:, 0]) * dt_s
        xyz[:, 1] += (vel[:, 1] + jitter * draws[:, 1]) * dt_s
        xyz[:, 2] = np.clip(
            xyz[:, 2] + vel[:, 2] * dt_s, 0.2, self.site.water_depth_m - 0.2
        )
        self._version += 1
        self._refresh_grid()

    # --------------------------------------------------------------- builders
    @classmethod
    def line(
        cls,
        num_nodes: int,
        spacing_m: float,
        site: Site = LAKE,
        comm_range_m: float | None = None,
        depth_m: float = 1.0,
        prefix: str = "n",
    ) -> "AcousticNetTopology":
        """Evenly spaced chain ``n0 .. n{N-1}`` along the x axis."""
        require_positive(spacing_m, "spacing_m")
        if num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        topology = cls(site=site, comm_range_m=comm_range_m)
        for index in range(num_nodes):
            topology.add_node(f"{prefix}{index}", index * spacing_m, 0.0, depth_m)
        return topology

    @classmethod
    def grid(
        cls,
        rows: int,
        cols: int,
        spacing_m: float,
        site: Site = LAKE,
        comm_range_m: float | None = None,
        depth_m: float = 1.0,
        prefix: str = "n",
    ) -> "AcousticNetTopology":
        """``rows x cols`` lattice; node ``n{i}`` in row-major order."""
        require_positive(spacing_m, "spacing_m")
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be at least 1")
        topology = cls(site=site, comm_range_m=comm_range_m)
        for row in range(rows):
            for col in range(cols):
                index = row * cols + col
                topology.add_node(
                    f"{prefix}{index}", col * spacing_m, row * spacing_m, depth_m
                )
        return topology

    @classmethod
    def random_deployment(
        cls,
        num_nodes: int,
        area_m: tuple[float, float],
        site: Site = LAKE,
        comm_range_m: float | None = None,
        depth_range_m: tuple[float, float] = (0.5, 2.0),
        seed: int | np.random.Generator | None = None,
        prefix: str = "n",
    ) -> "AcousticNetTopology":
        """Uniform random deployment over ``area_m`` = (width, height)."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        width, height = (float(v) for v in area_m)
        require_positive(width, "area width")
        require_positive(height, "area height")
        rng = ensure_rng(seed)
        topology = cls(site=site, comm_range_m=comm_range_m)
        low, high = depth_range_m
        for index in range(num_nodes):
            topology.add_node(
                f"{prefix}{index}",
                float(rng.uniform(0.0, width)),
                float(rng.uniform(0.0, height)),
                float(rng.uniform(low, high)),
            )
        return topology
