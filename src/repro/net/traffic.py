"""Application traffic generators for network scenarios.

Each generator expands into a time-ordered list of :class:`AppMessage`
entries before the run starts, so the whole simulation stays
deterministic for a given seed regardless of event interleaving.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.net.packet import BROADCAST
from repro.net.topology import AcousticNetTopology
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class AppMessage:
    """One application send request entering the network."""

    time_s: float
    source: str
    destination: str
    size_bits: int = 16


class TrafficGenerator(ABC):
    """Produces the application messages of one scenario."""

    @abstractmethod
    def messages(
        self, topology: AcousticNetTopology, rng: np.random.Generator
    ) -> list[AppMessage]:
        """Expand into concrete messages (sorted by time)."""


def convergecast_sources(
    topology: AcousticNetTopology, num_flows: int, destination: str
) -> tuple[str, ...]:
    """Sources of an ``num_flows``-flow convergecast onto ``destination``.

    Picks the ``num_flows`` nodes *farthest* from the destination (ties
    broken by name for determinism), so flows traverse shared relays and
    actually contend -- the workload the congestion-control experiments
    need.  Raises when the deployment has too few other nodes.
    """
    if num_flows < 1:
        raise ValueError("num_flows must be at least 1")
    if destination not in topology:
        raise ValueError(f"unknown destination {destination!r}")
    candidates = [name for name in topology.names if name != destination]
    if num_flows > len(candidates):
        raise ValueError(
            f"num_flows={num_flows} needs that many non-destination nodes; "
            f"the deployment has {len(candidates)}"
        )
    candidates.sort(
        key=lambda name: (-topology.distance_m(name, destination), name)
    )
    return tuple(sorted(candidates[:num_flows]))


def _pick_destination(
    source: str,
    destination: str | None,
    topology: AcousticNetTopology,
    rng: np.random.Generator,
) -> str:
    if destination is not None:
        return destination
    candidates = [name for name in topology.names if name != source]
    if not candidates:
        raise ValueError("need at least two nodes for random destinations")
    return candidates[int(rng.integers(0, len(candidates)))]


class _PerSourceTraffic(TrafficGenerator):
    """Shared scaffolding of the steady per-source workloads.

    Subclasses only define the emission *timing* (first message and the
    gap between messages); source resolution, destination picking and
    the deterministic ``(time, source)`` ordering live here once.
    """

    def __init__(
        self,
        duration_s: float,
        sources: tuple[str, ...] | None,
        destination: str | None,
        size_bits: int,
    ) -> None:
        require_positive(duration_s, "duration_s")
        self.duration_s = float(duration_s)
        self.sources = sources
        self.destination = destination
        self.size_bits = int(size_bits)

    def _first_time_s(
        self, index: int, num_sources: int, rng: np.random.Generator
    ) -> float:
        raise NotImplementedError

    def _gap_s(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def messages(
        self, topology: AcousticNetTopology, rng: np.random.Generator
    ) -> list[AppMessage]:
        sources = self.sources if self.sources is not None else tuple(
            name for name in topology.names if name != self.destination
        )
        out: list[AppMessage] = []
        for index, source in enumerate(sources):
            time_s = self._first_time_s(index, len(sources), rng)
            while time_s < self.duration_s:
                out.append(
                    AppMessage(
                        time_s,
                        source,
                        _pick_destination(source, self.destination, topology, rng),
                        self.size_bits,
                    )
                )
                time_s += self._gap_s(rng)
        out.sort(key=lambda message: (message.time_s, message.source))
        return out


class PoissonTraffic(_PerSourceTraffic):
    """Memoryless messaging: each source emits at ``rate_msgs_per_s``.

    ``destination=None`` draws a uniform random peer per message (the
    group-messaging workload); a node name fixes a many-to-one workload
    (e.g. everyone reporting to the dive leader).
    """

    def __init__(
        self,
        rate_msgs_per_s: float,
        duration_s: float,
        sources: tuple[str, ...] | None = None,
        destination: str | None = None,
        size_bits: int = 16,
    ) -> None:
        require_positive(rate_msgs_per_s, "rate_msgs_per_s")
        super().__init__(duration_s, sources, destination, size_bits)
        self.rate_msgs_per_s = float(rate_msgs_per_s)

    def _first_time_s(
        self, index: int, num_sources: int, rng: np.random.Generator
    ) -> float:
        return float(rng.exponential(1.0 / self.rate_msgs_per_s))

    def _gap_s(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate_msgs_per_s))


class CBRTraffic(_PerSourceTraffic):
    """Constant bitrate: one message per source every ``interval_s``."""

    def __init__(
        self,
        interval_s: float,
        duration_s: float,
        sources: tuple[str, ...] | None = None,
        destination: str | None = None,
        size_bits: int = 16,
    ) -> None:
        require_positive(interval_s, "interval_s")
        super().__init__(duration_s, sources, destination, size_bits)
        self.interval_s = float(interval_s)

    def _first_time_s(
        self, index: int, num_sources: int, rng: np.random.Generator
    ) -> float:
        # Sources start phase-shifted so CBR does not synchronize.
        return (index / max(1, num_sources)) * self.interval_s

    def _gap_s(self, rng: np.random.Generator) -> float:
        return self.interval_s


class SosBroadcastTraffic(TrafficGenerator):
    """A diver in distress broadcasting SOS beacons to the whole group."""

    def __init__(
        self,
        source: str,
        times_s: tuple[float, ...] = (0.0,),
        size_bits: int = 6,
    ) -> None:
        if not times_s:
            raise ValueError("times_s must not be empty")
        self.source = source
        self.times_s = tuple(float(t) for t in times_s)
        self.size_bits = int(size_bits)

    def messages(
        self, topology: AcousticNetTopology, rng: np.random.Generator
    ) -> list[AppMessage]:
        del rng  # SOS beacons are deterministic repetitions
        if self.source not in topology:
            raise ValueError(f"unknown SOS source {self.source!r}")
        return [
            AppMessage(time_s, self.source, BROADCAST, self.size_bits)
            for time_s in sorted(self.times_s)
        ]
