"""End-to-end network metrics.

One :class:`DeliveryRecord` per application payload (or per reachable
node for broadcasts) plus network-wide counters, aggregated into the
numbers the evaluation reports: packet delivery ratio, end-to-end
latency, hop counts, goodput and an energy proxy based on the acoustic
modem power figures the underwater-routing literature uses.

Storage is *columnar*: payload fates land in preallocated numpy arenas
(uid/created/delivered/hop plus interned string ids) grown by doubling,
so million-message runs append without allocating a Python object per
message and the latency/hop aggregates reduce over the arrays directly.
:class:`DeliveryRecord` remains the row-level interchange type -- the
:attr:`NetworkMetrics.records` property materializes rows on demand for
observers and reports that want objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Transmit/receive power draw (W) of a small acoustic modem -- the
#: Evologics S2CR figures quoted by the uwoarouting simulators.  Used for
#: the energy *proxy*, not for a hardware-accurate budget.
TX_POWER_W = 2.8
RX_POWER_W = 1.3

#: Initial arena capacity; grows by doubling.
_INITIAL_CAPACITY = 64


@dataclass(frozen=True)
class DeliveryRecord:
    """Fate of one end-to-end payload.

    Attributes
    ----------
    uid:
        Network packet uid (shared by retransmitted copies).
    source, destination:
        End-to-end addresses (a concrete node even for broadcasts: one
        record per reached node).
    created_s:
        Time the payload entered the network.
    delivered_s:
        Delivery time, ``nan`` if lost.
    hop_count:
        Hops of the delivered copy (0 if lost).
    kind:
        ``"data"`` / ``"raw"`` / ``"broadcast"``.
    """

    uid: int
    source: str
    destination: str
    created_s: float
    delivered_s: float = float("nan")
    hop_count: int = 0
    kind: str = "data"

    @property
    def delivered(self) -> bool:
        """Whether the payload arrived."""
        return bool(np.isfinite(self.delivered_s))

    @property
    def latency_s(self) -> float:
        """End-to-end latency (``nan`` if lost)."""
        return self.delivered_s - self.created_s if self.delivered else float("nan")


class NetworkMetrics:
    """Aggregate statistics of one network run (columnar storage)."""

    def __init__(
        self,
        records: list[DeliveryRecord] | None = None,
        transmissions: int = 0,
        collisions: int = 0,
        link_drops: int = 0,
        duplicates_suppressed: int = 0,
        ttl_drops: int = 0,
        routing_voids: int = 0,
        tx_airtime_s: float = 0.0,
        rx_airtime_s: float = 0.0,
    ) -> None:
        self.transmissions = transmissions
        self.collisions = collisions
        self.link_drops = link_drops
        self.duplicates_suppressed = duplicates_suppressed
        self.ttl_drops = ttl_drops
        self.routing_voids = routing_voids
        self.tx_airtime_s = tx_airtime_s
        self.rx_airtime_s = rx_airtime_s
        self._count = 0
        self._uid = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._created_s = np.empty(_INITIAL_CAPACITY, dtype=float)
        self._delivered_s = np.empty(_INITIAL_CAPACITY, dtype=float)
        self._hops = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._source_id = np.empty(_INITIAL_CAPACITY, dtype=np.int32)
        self._dest_id = np.empty(_INITIAL_CAPACITY, dtype=np.int32)
        self._kind_id = np.empty(_INITIAL_CAPACITY, dtype=np.int32)
        self._strings: list[str] = []
        self._string_ids: dict[str, int] = {}
        self._rows: list[DeliveryRecord] | None = None
        for record in records or ():
            self.add(record)

    # -------------------------------------------------------------- recording
    def _intern(self, value: str) -> int:
        interned = self._string_ids.get(value)
        if interned is None:
            interned = len(self._strings)
            self._string_ids[value] = interned
            self._strings.append(value)
        return interned

    def _grow(self) -> None:
        for name in (
            "_uid", "_created_s", "_delivered_s", "_hops",
            "_source_id", "_dest_id", "_kind_id",
        ):
            arena = getattr(self, name)
            setattr(self, name, np.concatenate([arena, np.empty_like(arena)]))

    def record_delivery(
        self,
        uid: int,
        source: str,
        destination: str,
        created_s: float,
        delivered_s: float = float("nan"),
        hop_count: int = 0,
        kind: str = "data",
    ) -> None:
        """Record the fate of one payload (columnar fast path)."""
        row = self._count
        if row == self._uid.shape[0]:
            self._grow()
        self._uid[row] = uid
        self._created_s[row] = created_s
        self._delivered_s[row] = delivered_s
        self._hops[row] = hop_count
        self._source_id[row] = self._intern(source)
        self._dest_id[row] = self._intern(destination)
        self._kind_id[row] = self._intern(kind)
        self._count = row + 1
        self._rows = None

    def add(self, record: DeliveryRecord) -> None:
        """Record the fate of one payload."""
        self.record_delivery(
            record.uid,
            record.source,
            record.destination,
            record.created_s,
            record.delivered_s,
            record.hop_count,
            record.kind,
        )

    @property
    def records(self) -> list[DeliveryRecord]:
        """Row-object view of the columnar store (materialized on demand)."""
        if self._rows is None:
            strings = self._strings
            self._rows = [
                DeliveryRecord(
                    uid=int(self._uid[row]),
                    source=strings[self._source_id[row]],
                    destination=strings[self._dest_id[row]],
                    created_s=float(self._created_s[row]),
                    delivered_s=float(self._delivered_s[row]),
                    hop_count=int(self._hops[row]),
                    kind=strings[self._kind_id[row]],
                )
                for row in range(self._count)
            ]
        return self._rows

    # -------------------------------------------------------------- delivery
    @property
    def offered(self) -> int:
        """Payloads that entered the network."""
        return self._count

    @property
    def delivered(self) -> int:
        """Payloads that reached their destination."""
        return int(np.count_nonzero(np.isfinite(self._delivered_s[: self._count])))

    @property
    def packet_delivery_ratio(self) -> float:
        """Delivered over offered (PDR)."""
        if not self._count:
            return float("nan")
        return self.delivered / self.offered

    # --------------------------------------------------------------- latency
    def latencies_s(self) -> np.ndarray:
        """End-to-end latencies of delivered payloads."""
        count = self._count
        values = self._delivered_s[:count] - self._created_s[:count]
        return values[np.isfinite(values)]

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end latency of delivered payloads."""
        latencies = self.latencies_s()
        return float(np.mean(latencies)) if latencies.size else float("nan")

    @property
    def median_latency_s(self) -> float:
        """Median end-to-end latency of delivered payloads."""
        latencies = self.latencies_s()
        return float(np.median(latencies)) if latencies.size else float("nan")

    @property
    def p95_latency_s(self) -> float:
        """95th-percentile end-to-end latency of delivered payloads."""
        latencies = self.latencies_s()
        return float(np.percentile(latencies, 95.0)) if latencies.size else float("nan")

    def latency_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Empirical latency CDF over *offered* payloads.

        Returns ``(latencies, fraction)`` where ``fraction[i]`` is the
        share of all offered payloads delivered within ``latencies[i]``
        seconds.  Normalizing by offered (not delivered) payloads makes
        losses visible: the curve plateaus at the PDR instead of 1.0,
        which is the form QoE comparisons need -- a stack that delivers
        fast but drops half the traffic must not dominate one that
        delivers everything slowly.
        """
        latencies = np.sort(self.latencies_s())
        if not self.offered:
            return latencies, np.zeros(0)
        fraction = np.arange(1, latencies.size + 1, dtype=float) / self.offered
        return latencies, fraction

    # ------------------------------------------------------------------ hops
    def hop_counts(self) -> np.ndarray:
        """Hop counts of delivered payloads."""
        count = self._count
        mask = np.isfinite(self._delivered_s[:count])
        return self._hops[:count][mask].astype(int)

    @property
    def mean_hop_count(self) -> float:
        """Mean hops of delivered payloads."""
        hops = self.hop_counts()
        return float(np.mean(hops)) if hops.size else float("nan")

    @property
    def max_hop_count(self) -> int:
        """Longest delivered path."""
        hops = self.hop_counts()
        return int(hops.max()) if hops.size else 0

    # -------------------------------------------------------------- goodput
    def goodput_bps(self, duration_s: float, size_bits: int = 16) -> float:
        """Delivered payload bits per second over ``duration_s``."""
        if duration_s <= 0:
            return float("nan")
        return self.delivered * size_bits / duration_s

    # --------------------------------------------------------------- energy
    @property
    def energy_proxy_j(self) -> float:
        """Transmit plus receive energy consumed by the whole network."""
        return TX_POWER_W * self.tx_airtime_s + RX_POWER_W * self.rx_airtime_s

    # --------------------------------------------------------------- reports
    def to_dict(self) -> dict:
        """JSON-safe summary (scalars only)."""
        return {
            "offered": self.offered,
            "delivered": self.delivered,
            "packet_delivery_ratio": self.packet_delivery_ratio,
            "mean_latency_s": self.mean_latency_s,
            "median_latency_s": self.median_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "mean_hop_count": self.mean_hop_count,
            "max_hop_count": self.max_hop_count,
            "transmissions": self.transmissions,
            "collisions": self.collisions,
            "link_drops": self.link_drops,
            "duplicates_suppressed": self.duplicates_suppressed,
            "ttl_drops": self.ttl_drops,
            "routing_voids": self.routing_voids,
            "energy_proxy_j": self.energy_proxy_j,
        }

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"  delivered                : {self.delivered}/{self.offered} "
            f"(PDR {self.packet_delivery_ratio:.1%})",
            f"  end-to-end latency       : mean {self.mean_latency_s:.2f} s, "
            f"median {self.median_latency_s:.2f} s, p95 {self.p95_latency_s:.2f} s",
            f"  hop count                : mean {self.mean_hop_count:.2f}, "
            f"max {self.max_hop_count}",
            f"  transmissions            : {self.transmissions} "
            f"({self.collisions} collided, {self.link_drops} channel losses)",
            f"  duplicates suppressed    : {self.duplicates_suppressed}",
            f"  ttl drops / voids        : {self.ttl_drops} / {self.routing_voids}",
            f"  energy proxy             : {self.energy_proxy_j:.1f} J",
        ]
        return "\n".join(lines)
