"""End-to-end network metrics.

One :class:`DeliveryRecord` per application payload (or per reachable
node for broadcasts) plus network-wide counters, aggregated into the
numbers the evaluation reports: packet delivery ratio, end-to-end
latency, hop counts, goodput and an energy proxy based on the acoustic
modem power figures the underwater-routing literature uses.

Storage is *columnar*: payload fates land in preallocated numpy arenas
(uid/created/delivered/hop plus interned string ids) grown by doubling,
so million-message runs append without allocating a Python object per
message and the latency/hop aggregates reduce over the arrays directly.
:class:`DeliveryRecord` remains the row-level interchange type -- the
:attr:`NetworkMetrics.records` property materializes rows on demand for
observers and reports that want objects.

When the congestion-control subsystem is engaged (a non-fixed
controller, a relay-queue bound, or explicit flow accounting), metrics
additionally keep a *per-flow* columnar arena -- goodput, retransmission
and queue-drop counts, abort flags and sampled cwnd trajectories per ARQ
flow epoch -- plus the :meth:`NetworkMetrics.jain_fairness` aggregate.
Reports only include these fields while :attr:`NetworkMetrics.\
congestion_enabled` is set, so legacy ``cc="fixed"`` runs keep their
committed report schema byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.congestion import CwndTrajectory, jain_fairness_index

#: Transmit/receive power draw (W) of a small acoustic modem -- the
#: Evologics S2CR figures quoted by the uwoarouting simulators.  Used for
#: the energy *proxy*, not for a hardware-accurate budget.
TX_POWER_W = 2.8
RX_POWER_W = 1.3

#: Initial arena capacity; grows by doubling.
_INITIAL_CAPACITY = 64


@dataclass(frozen=True)
class DeliveryRecord:
    """Fate of one end-to-end payload.

    Attributes
    ----------
    uid:
        Network packet uid (shared by retransmitted copies).
    source, destination:
        End-to-end addresses (a concrete node even for broadcasts: one
        record per reached node).
    created_s:
        Time the payload entered the network.
    delivered_s:
        Delivery time, ``nan`` if lost.
    hop_count:
        Hops of the delivered copy (0 if lost).
    kind:
        ``"data"`` / ``"raw"`` / ``"broadcast"``.
    """

    uid: int
    source: str
    destination: str
    created_s: float
    delivered_s: float = float("nan")
    hop_count: int = 0
    kind: str = "data"

    @property
    def delivered(self) -> bool:
        """Whether the payload arrived."""
        return bool(np.isfinite(self.delivered_s))

    @property
    def latency_s(self) -> float:
        """End-to-end latency (``nan`` if lost)."""
        return self.delivered_s - self.created_s if self.delivered else float("nan")


class NetworkMetrics:
    """Aggregate statistics of one network run (columnar storage)."""

    def __init__(
        self,
        records: list[DeliveryRecord] | None = None,
        transmissions: int = 0,
        collisions: int = 0,
        link_drops: int = 0,
        duplicates_suppressed: int = 0,
        ttl_drops: int = 0,
        routing_voids: int = 0,
        tx_airtime_s: float = 0.0,
        rx_airtime_s: float = 0.0,
        queue_drops: int = 0,
    ) -> None:
        self.transmissions = transmissions
        self.collisions = collisions
        self.link_drops = link_drops
        self.duplicates_suppressed = duplicates_suppressed
        self.ttl_drops = ttl_drops
        self.routing_voids = routing_voids
        self.tx_airtime_s = tx_airtime_s
        self.rx_airtime_s = rx_airtime_s
        #: Packets refused by a bounded node buffer (tail drop / RED).
        self.queue_drops = queue_drops
        #: Whether the congestion subsystem's extra report fields (queue
        #: drops, per-flow counters, fairness) are included in
        #: to_dict()/summary().  Off by default: legacy fixed-window runs
        #: must keep their committed report schema bit for bit.
        self.congestion_enabled = False
        #: Whether the fault-injection subsystem's extra report fields
        #: (drop/abort reasons, churn delivery, repair times) are
        #: included in to_dict()/summary().  Set by a non-empty
        #: FaultInjector at install time; off by default for the same
        #: schema-stability reason as :attr:`congestion_enabled`.
        self.resilience_enabled = False
        #: Lost payloads by first observed cause (ttl/void/queue-drop/
        #: dest-dead/source-dead/expired).
        self.drop_reasons: dict[str, int] = {}
        #: Aborted ARQ flows by cause (max-retry/dest-dead/source-dead/
        #: no-route).
        self.abort_reasons: dict[str, int] = {}
        #: Payloads offered/delivered while at least one node was down.
        self.churn_offered = 0
        self.churn_delivered = 0
        #: Crash-to-observed-repair latencies (liveness detection).
        self.repair_times_s: list[float] = []
        self.node_crashes = 0
        self.node_recoveries = 0
        #: Run duration recorded by the simulator; per-flow goodputs need
        #: it (``None`` until a run finishes).
        self.duration_s: float | None = None
        self._count = 0
        # Per-flow columnar arena (grown by doubling, like deliveries).
        self._flow_count = 0
        self._flow_ids: list[str] = []
        self._flow_slots: dict[str, int] = {}
        self._flow_source_id = np.empty(_INITIAL_CAPACITY, dtype=np.int32)
        self._flow_dest_id = np.empty(_INITIAL_CAPACITY, dtype=np.int32)
        self._flow_offered = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._flow_delivered = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._flow_bits = np.zeros(_INITIAL_CAPACITY, dtype=float)
        self._flow_retrans = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._flow_timeouts = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._flow_queue_drops = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._flow_lost = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._flow_aborted = np.zeros(_INITIAL_CAPACITY, dtype=np.int8)
        self._flow_cwnd: list[CwndTrajectory | None] = []
        self._uid = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._created_s = np.empty(_INITIAL_CAPACITY, dtype=float)
        self._delivered_s = np.empty(_INITIAL_CAPACITY, dtype=float)
        self._hops = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._source_id = np.empty(_INITIAL_CAPACITY, dtype=np.int32)
        self._dest_id = np.empty(_INITIAL_CAPACITY, dtype=np.int32)
        self._kind_id = np.empty(_INITIAL_CAPACITY, dtype=np.int32)
        self._strings: list[str] = []
        self._string_ids: dict[str, int] = {}
        self._rows: list[DeliveryRecord] | None = None
        for record in records or ():
            self.add(record)

    # -------------------------------------------------------------- recording
    def _intern(self, value: str) -> int:
        interned = self._string_ids.get(value)
        if interned is None:
            interned = len(self._strings)
            self._string_ids[value] = interned
            self._strings.append(value)
        return interned

    def _grow(self) -> None:
        for name in (
            "_uid", "_created_s", "_delivered_s", "_hops",
            "_source_id", "_dest_id", "_kind_id",
        ):
            arena = getattr(self, name)
            setattr(self, name, np.concatenate([arena, np.empty_like(arena)]))

    def record_delivery(
        self,
        uid: int,
        source: str,
        destination: str,
        created_s: float,
        delivered_s: float = float("nan"),
        hop_count: int = 0,
        kind: str = "data",
    ) -> None:
        """Record the fate of one payload (columnar fast path)."""
        row = self._count
        if row == self._uid.shape[0]:
            self._grow()
        self._uid[row] = uid
        self._created_s[row] = created_s
        self._delivered_s[row] = delivered_s
        self._hops[row] = hop_count
        self._source_id[row] = self._intern(source)
        self._dest_id[row] = self._intern(destination)
        self._kind_id[row] = self._intern(kind)
        self._count = row + 1
        self._rows = None

    def add(self, record: DeliveryRecord) -> None:
        """Record the fate of one payload."""
        self.record_delivery(
            record.uid,
            record.source,
            record.destination,
            record.created_s,
            record.delivered_s,
            record.hop_count,
            record.kind,
        )

    @property
    def records(self) -> list[DeliveryRecord]:
        """Row-object view of the columnar store (materialized on demand)."""
        if self._rows is None:
            strings = self._strings
            self._rows = [
                DeliveryRecord(
                    uid=int(self._uid[row]),
                    source=strings[self._source_id[row]],
                    destination=strings[self._dest_id[row]],
                    created_s=float(self._created_s[row]),
                    delivered_s=float(self._delivered_s[row]),
                    hop_count=int(self._hops[row]),
                    kind=strings[self._kind_id[row]],
                )
                for row in range(self._count)
            ]
        return self._rows

    # -------------------------------------------------------------- delivery
    @property
    def offered(self) -> int:
        """Payloads that entered the network."""
        return self._count

    @property
    def delivered(self) -> int:
        """Payloads that reached their destination."""
        return int(np.count_nonzero(np.isfinite(self._delivered_s[: self._count])))

    @property
    def packet_delivery_ratio(self) -> float:
        """Delivered over offered (PDR)."""
        if not self._count:
            return float("nan")
        return self.delivered / self.offered

    # --------------------------------------------------------------- latency
    def latencies_s(self) -> np.ndarray:
        """End-to-end latencies of delivered payloads."""
        count = self._count
        values = self._delivered_s[:count] - self._created_s[:count]
        return values[np.isfinite(values)]

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end latency of delivered payloads."""
        latencies = self.latencies_s()
        return float(np.mean(latencies)) if latencies.size else float("nan")

    @property
    def median_latency_s(self) -> float:
        """Median end-to-end latency of delivered payloads."""
        latencies = self.latencies_s()
        return float(np.median(latencies)) if latencies.size else float("nan")

    @property
    def p95_latency_s(self) -> float:
        """95th-percentile end-to-end latency of delivered payloads."""
        latencies = self.latencies_s()
        return float(np.percentile(latencies, 95.0)) if latencies.size else float("nan")

    def latency_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Empirical latency CDF over *offered* payloads.

        Returns ``(latencies, fraction)`` where ``fraction[i]`` is the
        share of all offered payloads delivered within ``latencies[i]``
        seconds.  Normalizing by offered (not delivered) payloads makes
        losses visible: the curve plateaus at the PDR instead of 1.0,
        which is the form QoE comparisons need -- a stack that delivers
        fast but drops half the traffic must not dominate one that
        delivers everything slowly.
        """
        latencies = np.sort(self.latencies_s())
        if not self.offered:
            return latencies, np.zeros(0)
        fraction = np.arange(1, latencies.size + 1, dtype=float) / self.offered
        return latencies, fraction

    # ------------------------------------------------------------------ hops
    def hop_counts(self) -> np.ndarray:
        """Hop counts of delivered payloads."""
        count = self._count
        mask = np.isfinite(self._delivered_s[:count])
        return self._hops[:count][mask].astype(int)

    @property
    def mean_hop_count(self) -> float:
        """Mean hops of delivered payloads."""
        hops = self.hop_counts()
        return float(np.mean(hops)) if hops.size else float("nan")

    @property
    def max_hop_count(self) -> int:
        """Longest delivered path."""
        hops = self.hop_counts()
        return int(hops.max()) if hops.size else 0

    # -------------------------------------------------------------- goodput
    def goodput_bps(self, duration_s: float, size_bits: int = 16) -> float:
        """Delivered payload bits per second over ``duration_s``."""
        if duration_s <= 0:
            return float("nan")
        return self.delivered * size_bits / duration_s

    # ------------------------------------------------------------- per flow
    def _grow_flows(self) -> None:
        for name in (
            "_flow_source_id", "_flow_dest_id", "_flow_offered",
            "_flow_delivered", "_flow_bits", "_flow_retrans",
            "_flow_timeouts", "_flow_queue_drops", "_flow_lost",
            "_flow_aborted",
        ):
            arena = getattr(self, name)
            setattr(
                self, name, np.concatenate([arena, np.zeros_like(arena)])
            )

    def register_flow(self, flow_id: str, source: str, destination: str) -> int:
        """Open one flow epoch's accounting row; returns its slot."""
        existing = self._flow_slots.get(flow_id)
        if existing is not None:
            return existing
        slot = self._flow_count
        if slot == self._flow_offered.shape[0]:
            self._grow_flows()
        self._flow_ids.append(flow_id)
        self._flow_slots[flow_id] = slot
        self._flow_source_id[slot] = self._intern(source)
        self._flow_dest_id[slot] = self._intern(destination)
        self._flow_cwnd.append(None)
        self._flow_count = slot + 1
        return slot

    def flow_slot(self, flow_id: str) -> int | None:
        """Slot of a registered flow, or ``None``."""
        return self._flow_slots.get(flow_id)

    def flow_offered(self, slot: int, bits: int) -> None:
        """One payload entered this flow."""
        self._flow_offered[slot] += 1
        del bits  # offered bits are not currently aggregated

    def flow_delivered(self, slot: int, bits: int) -> None:
        """One payload of this flow reached its destination."""
        self._flow_delivered[slot] += 1
        self._flow_bits[slot] += bits

    def flow_queue_drop(self, slot: int) -> None:
        """A segment of this flow was refused by a full node buffer."""
        self._flow_queue_drops[slot] += 1

    def flow_lost(self, slot: int) -> None:
        """One payload of this flow was finalized as lost."""
        self._flow_lost[slot] += 1

    # ------------------------------------------------------------- resilience
    def record_drop_reason(self, reason: str) -> None:
        """Count one lost payload under its first observed cause."""
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1

    def record_abort_reason(self, reason: str) -> None:
        """Count one aborted ARQ flow under its cause."""
        self.abort_reasons[reason] = self.abort_reasons.get(reason, 0) + 1

    def record_repair(self, elapsed_s: float) -> None:
        """Record one crash-to-observed-eviction repair latency."""
        self.repair_times_s.append(float(elapsed_s))

    @property
    def mean_time_to_repair_s(self) -> float:
        """Mean latency from a crash to its neighbourhood evicting it."""
        if not self.repair_times_s:
            return float("nan")
        return float(np.mean(self.repair_times_s))

    @property
    def pdr_under_churn(self) -> float:
        """Delivery ratio of payloads offered while a node was down."""
        if not self.churn_offered:
            return float("nan")
        return self.churn_delivered / self.churn_offered

    def finalize_flow(
        self,
        slot: int,
        retransmissions: int,
        timeouts: int,
        aborted: bool,
        cwnd_trajectory: CwndTrajectory | None = None,
    ) -> None:
        """Copy one flow's end-of-run sender state into the arena."""
        self._flow_retrans[slot] = retransmissions
        self._flow_timeouts[slot] = timeouts
        self._flow_aborted[slot] = 1 if aborted else 0
        self._flow_cwnd[slot] = cwnd_trajectory

    @property
    def num_flows(self) -> int:
        """Registered ARQ flow epochs."""
        return self._flow_count

    def flow_delivered_bits(self) -> np.ndarray:
        """Delivered payload bits per registered flow."""
        return self._flow_bits[: self._flow_count].copy()

    def flow_goodputs_bps(self) -> np.ndarray:
        """Per-flow goodput over the recorded run duration."""
        bits = self._flow_bits[: self._flow_count]
        if not self.duration_s or self.duration_s <= 0:
            return np.full(bits.shape, float("nan"))
        return bits / self.duration_s

    @property
    def aggregate_goodput_bps(self) -> float:
        """Summed per-flow goodput over the recorded duration."""
        if not self.duration_s or self.duration_s <= 0:
            return float("nan")
        return float(np.sum(self._flow_bits[: self._flow_count])) / self.duration_s

    def pair_delivered_bits(self) -> np.ndarray:
        """Delivered bits per (source, destination) *pair*.

        An aborted flow restarts as a new epoch (new flow id) for the
        same pair; fairness is about the pair's total service, so epochs
        of one pair are summed rather than counted as separate flows.
        """
        totals: dict[tuple[int, int], float] = {}
        for slot in range(self._flow_count):
            pair = (
                int(self._flow_source_id[slot]),
                int(self._flow_dest_id[slot]),
            )
            totals[pair] = totals.get(pair, 0.0) + float(self._flow_bits[slot])
        return np.asarray(list(totals.values()), dtype=float)

    def jain_fairness(self, values=None) -> float:
        """Jain index over per-pair delivered bits (or explicit values).

        Scale-invariant, so delivered bits and goodput give the same
        index; 1.0 is a perfectly fair share, ``1/n`` total starvation
        of all but one flow.  Epochs of the same (source, destination)
        pair are pooled first -- see :meth:`pair_delivered_bits`.
        """
        if values is None:
            values = self.pair_delivered_bits()
        return jain_fairness_index(values)

    def cwnd_trajectory(self, flow_id: str) -> CwndTrajectory | None:
        """Sampled (time, cwnd) trajectory of one flow, if recorded."""
        slot = self._flow_slots.get(flow_id)
        if slot is None:
            return None
        return self._flow_cwnd[slot]

    def per_flow(self) -> dict[str, dict]:
        """JSON-safe per-flow counters keyed by flow id."""
        strings = self._strings
        out: dict[str, dict] = {}
        duration = self.duration_s if self.duration_s else None
        for slot, flow_id in enumerate(self._flow_ids):
            bits = float(self._flow_bits[slot])
            trajectory = self._flow_cwnd[slot]
            entry = {
                "source": strings[self._flow_source_id[slot]],
                "destination": strings[self._flow_dest_id[slot]],
                "offered": int(self._flow_offered[slot]),
                "delivered": int(self._flow_delivered[slot]),
                "delivered_bits": bits,
                "goodput_bps": (bits / duration) if duration else None,
                "retransmissions": int(self._flow_retrans[slot]),
                "timeouts": int(self._flow_timeouts[slot]),
                "queue_drops": int(self._flow_queue_drops[slot]),
                "aborted": bool(self._flow_aborted[slot]),
            }
            if self.resilience_enabled:
                entry["lost"] = int(self._flow_lost[slot])
            if trajectory is not None and len(trajectory):
                entry["final_cwnd"] = trajectory.cwnds[-1]
                entry["cwnd_samples"] = len(trajectory)
            out[flow_id] = entry
        return out

    # --------------------------------------------------------------- energy
    @property
    def energy_proxy_j(self) -> float:
        """Transmit plus receive energy consumed by the whole network."""
        return TX_POWER_W * self.tx_airtime_s + RX_POWER_W * self.rx_airtime_s

    # --------------------------------------------------------------- reports
    def to_dict(self) -> dict:
        """JSON-safe summary (scalars, plus per-flow rows when engaged).

        The congestion block (``queue_drops``, ``jain_fairness_index``,
        ``aggregate_goodput_bps``, ``flows``) only appears while
        :attr:`congestion_enabled` is set: committed golden signatures
        and trace fixtures of legacy fixed-window runs compare this dict
        exactly, so the disabled schema must never change.
        """
        data = {
            "offered": self.offered,
            "delivered": self.delivered,
            "packet_delivery_ratio": self.packet_delivery_ratio,
            "mean_latency_s": self.mean_latency_s,
            "median_latency_s": self.median_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "mean_hop_count": self.mean_hop_count,
            "max_hop_count": self.max_hop_count,
            "transmissions": self.transmissions,
            "collisions": self.collisions,
            "link_drops": self.link_drops,
            "duplicates_suppressed": self.duplicates_suppressed,
            "ttl_drops": self.ttl_drops,
            "routing_voids": self.routing_voids,
            "energy_proxy_j": self.energy_proxy_j,
        }
        if self.congestion_enabled:
            data["queue_drops"] = self.queue_drops
            data["jain_fairness_index"] = self.jain_fairness()
            data["aggregate_goodput_bps"] = self.aggregate_goodput_bps
            data["flows"] = self.per_flow()
        if self.resilience_enabled:
            data["drop_reasons"] = dict(sorted(self.drop_reasons.items()))
            data["abort_reasons"] = dict(sorted(self.abort_reasons.items()))
            data["node_crashes"] = self.node_crashes
            data["node_recoveries"] = self.node_recoveries
            data["repairs"] = len(self.repair_times_s)
            data["mean_time_to_repair_s"] = self.mean_time_to_repair_s
            data["churn_offered"] = self.churn_offered
            data["churn_delivered"] = self.churn_delivered
            data["pdr_under_churn"] = self.pdr_under_churn
        return data

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"  delivered                : {self.delivered}/{self.offered} "
            f"(PDR {self.packet_delivery_ratio:.1%})",
            f"  end-to-end latency       : mean {self.mean_latency_s:.2f} s, "
            f"median {self.median_latency_s:.2f} s, p95 {self.p95_latency_s:.2f} s",
            f"  hop count                : mean {self.mean_hop_count:.2f}, "
            f"max {self.max_hop_count}",
            f"  transmissions            : {self.transmissions} "
            f"({self.collisions} collided, {self.link_drops} channel losses)",
            f"  duplicates suppressed    : {self.duplicates_suppressed}",
            f"  ttl drops / voids        : {self.ttl_drops} / {self.routing_voids}",
            f"  energy proxy             : {self.energy_proxy_j:.1f} J",
        ]
        if self.congestion_enabled:
            lines.append(f"  queue drops              : {self.queue_drops}")
            if self._flow_count:
                aborted = int(np.sum(self._flow_aborted[: self._flow_count]))
                lines.append(
                    f"  flows                    : {self._flow_count} "
                    f"({aborted} aborted) | jain {self.jain_fairness():.3f} | "
                    f"aggregate goodput {self.aggregate_goodput_bps:.1f} bps"
                )
                # Per-flow rows stay readable for small deployments and
                # collapse to the aggregate line beyond that.
                if self._flow_count <= 8:
                    for flow_id, row in self.per_flow().items():
                        goodput = row["goodput_bps"]
                        goodput_text = (
                            f"{goodput:.1f} bps" if goodput is not None else "n/a"
                        )
                        lines.append(
                            f"    {flow_id:<16s}: {row['delivered']}/"
                            f"{row['offered']} delivered, {goodput_text}, "
                            f"{row['retransmissions']} rtx, "
                            f"{row['queue_drops']} queue drops"
                            + (" [ABORTED]" if row["aborted"] else "")
                        )
        if self.resilience_enabled:
            lines.append(
                f"  node churn               : {self.node_crashes} crashes, "
                f"{self.node_recoveries} recoveries"
            )
            if self.repair_times_s:
                lines.append(
                    f"  route repair             : {len(self.repair_times_s)} "
                    f"evictions, mean time-to-repair "
                    f"{self.mean_time_to_repair_s:.1f} s"
                )
            if self.churn_offered:
                lines.append(
                    f"  delivery under churn     : {self.churn_delivered}/"
                    f"{self.churn_offered} (PDR {self.pdr_under_churn:.1%})"
                )
            if self.drop_reasons:
                reasons = ", ".join(
                    f"{name} {count}"
                    for name, count in sorted(self.drop_reasons.items())
                )
                lines.append(f"  drop reasons             : {reasons}")
            if self.abort_reasons:
                reasons = ", ".join(
                    f"{name} {count}"
                    for name, count in sorted(self.abort_reasons.items())
                )
                lines.append(f"  abort reasons            : {reasons}")
        return "\n".join(lines)
