"""AquaApp reproduction: underwater acoustic messaging for mobile devices.

This package is a from-scratch Python reproduction of the system described in
"Underwater Messaging Using Mobile Devices" (Chen, Chan, Gollakota,
SIGCOMM 2022).  It contains:

* :mod:`repro.core` -- the paper's primary contribution: an OFDM acoustic
  modem for the 1-4 kHz band with a CAZAC preamble, per-subcarrier SNR
  estimation, frequency-band adaptation, two-tone feedback encoding,
  time-domain MMSE equalization, differential BPSK and rate-2/3
  convolutional coding, plus the FSK SoS beacon mode.
* :mod:`repro.dsp`, :mod:`repro.fec` -- signal processing and forward error
  correction substrates used by the modem.
* :mod:`repro.channel`, :mod:`repro.devices`, :mod:`repro.environments` --
  the simulated underwater acoustic testbed (multipath, noise, Doppler,
  device frequency responses, waterproof cases, evaluation sites).
* :mod:`repro.link` -- the post-preamble feedback protocol run end to end
  between a transmitter and a receiver over simulated channels.
* :mod:`repro.mac` -- the carrier-sense MAC protocol and a discrete-event
  multi-transmitter network simulator.
* :mod:`repro.app` -- the messaging application layer (240 hand-signal
  catalog, message codec, SoS beacons).
* :mod:`repro.analysis` -- BER/PER/CDF analysis helpers used by the
  benchmark harness.
* :mod:`repro.experiments` -- the declarative experiment layer: a frozen
  :class:`~repro.experiments.Scenario` describes one evaluation point, a
  :class:`~repro.experiments.Sweep` expands parameter grids, and an
  :class:`~repro.experiments.ExperimentRunner` executes them across worker
  processes (with deterministic per-scenario seeding and an optional
  on-disk result cache) into a serializable
  :class:`~repro.experiments.ResultSet`.
* :mod:`repro.net` -- the multi-hop network layer: a discrete-event
  simulator for N-node underwater topologies with pluggable routing
  (flooding, static shortest path, greedy geographic forwarding),
  sliding-window ARQ transport (Go-Back-N / selective repeat) and two
  interchangeable link models -- the full PHY per hop, or a fast
  PER-vs-distance table calibrated from it.
* :mod:`repro.perf` -- the microbenchmark harness behind
  ``python -m repro.cli bench``: suites over the FEC/OFDM/preamble/channel,
  end-to-end link and network-simulator hot paths, persisted as
  ``BENCH_<suite>.json`` for per-PR perf trajectories.
* :mod:`repro.validation` -- the Monte-Carlo figure validation harness
  behind ``python -m repro.cli validate``: declarative
  :class:`~repro.validation.FigureSpec` encodings of the paper's key
  figures run as seeded trials with Wilson confidence intervals, gated
  against committed ``VALID_<figure>.json`` envelopes, plus seed-paired
  fast-path-vs-reference equivalence reruns.
"""

from repro.core.config import OFDMConfig, ProtocolConfig
from repro.core.modem import AquaModem
from repro.experiments import (
    ColumnarResultSet,
    ExperimentRunner,
    ModemSpec,
    NetScenario,
    ResultSet,
    RunRecord,
    Scenario,
    Sweep,
    SweepService,
    run_net_scenario,
    run_scenario,
)
from repro.link.session import LinkSession, LinkStatistics, PacketResult
from repro.net import (
    AcousticNetTopology,
    ArqConfig,
    CalibratedLink,
    NetworkResult,
    NetworkSimulator,
    PhysicalLink,
)
from repro.perf import Benchmark, BenchResult
from repro.validation import (
    FigureSpec,
    MonteCarloRunner,
    ValidationReport,
    ab_compare,
)

__version__ = "1.5.0"

__all__ = [
    "OFDMConfig",
    "ProtocolConfig",
    "AquaModem",
    "LinkSession",
    "LinkStatistics",
    "PacketResult",
    "Scenario",
    "NetScenario",
    "ModemSpec",
    "Sweep",
    "ColumnarResultSet",
    "ExperimentRunner",
    "ResultSet",
    "RunRecord",
    "SweepService",
    "run_scenario",
    "run_net_scenario",
    "AcousticNetTopology",
    "ArqConfig",
    "CalibratedLink",
    "NetworkResult",
    "NetworkSimulator",
    "PhysicalLink",
    "Benchmark",
    "BenchResult",
    "FigureSpec",
    "MonteCarloRunner",
    "ValidationReport",
    "ab_compare",
    "__version__",
]
