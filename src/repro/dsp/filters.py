"""FIR filtering helpers.

The receiver applies a 128-order FIR band-pass filter with a 1-4 kHz
passband to the incoming audio before any further processing (paper
section 2.3.2); device and case frequency responses are also realized as
FIR filters designed by frequency sampling.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from repro.dsp.fastconv import convolve_full
from repro.utils.validation import require_positive


def design_bandpass_fir(
    low_hz: float,
    high_hz: float,
    sample_rate_hz: float,
    num_taps: int = 129,
) -> np.ndarray:
    """Design a linear-phase FIR band-pass filter.

    Parameters
    ----------
    low_hz, high_hz:
        Passband edges in Hz.
    sample_rate_hz:
        Sampling rate in Hz.
    num_taps:
        Number of filter taps.  The paper's "128 order" filter corresponds
        to 129 taps.  Must be odd so the band-pass response is realizable
        as a type-I linear phase filter.
    """
    require_positive(sample_rate_hz, "sample_rate_hz")
    require_positive(num_taps, "num_taps")
    if not 0 < low_hz < high_hz < sample_rate_hz / 2:
        raise ValueError(
            f"band edges must satisfy 0 < low < high < Nyquist, got "
            f"({low_hz}, {high_hz}) at fs={sample_rate_hz}"
        )
    if num_taps % 2 == 0:
        num_taps += 1
    return sp_signal.firwin(
        num_taps, [low_hz, high_hz], pass_zero=False, fs=sample_rate_hz
    )


def design_fir_from_response(
    freqs_hz: np.ndarray,
    gains_db: np.ndarray,
    sample_rate_hz: float,
    num_taps: int = 257,
) -> np.ndarray:
    """Design an FIR filter approximating an arbitrary magnitude response.

    Used to turn device speaker/microphone frequency-response curves and
    multipath transfer functions into time-domain filters.  The response is
    specified as gains in dB at the given frequencies and interpolated onto
    a dense frequency grid before the frequency-sampling design.
    """
    require_positive(sample_rate_hz, "sample_rate_hz")
    freqs_hz = np.asarray(freqs_hz, dtype=float)
    gains_db = np.asarray(gains_db, dtype=float)
    if freqs_hz.shape != gains_db.shape or freqs_hz.ndim != 1 or freqs_hz.size < 2:
        raise ValueError("freqs_hz and gains_db must be 1-D arrays of equal length >= 2")
    if np.any(np.diff(freqs_hz) <= 0):
        raise ValueError("freqs_hz must be strictly increasing")
    nyquist = sample_rate_hz / 2.0
    if num_taps % 2 == 0:
        num_taps += 1
    grid = np.linspace(0.0, nyquist, 512)
    gains_linear = 10.0 ** (np.interp(grid, freqs_hz, gains_db, left=gains_db[0], right=gains_db[-1]) / 20.0)
    # Force DC and Nyquist toward zero to keep the filter well behaved for
    # audio-band work; the communication band (1-4 kHz) is far from both.
    gains_linear[0] = 0.0
    gains_linear[-1] = 0.0
    return sp_signal.firwin2(num_taps, grid, gains_linear, fs=sample_rate_hz)


class FIRBandpassFilter:
    """Convenience wrapper bundling an FIR design with its application.

    Instances are reusable and stateless between calls (each call filters a
    complete buffer, mirroring the packet-at-a-time processing of the
    modem's receive path).
    """

    def __init__(
        self,
        low_hz: float = 1000.0,
        high_hz: float = 4000.0,
        sample_rate_hz: float = 48000.0,
        num_taps: int = 129,
    ) -> None:
        self.low_hz = float(low_hz)
        self.high_hz = float(high_hz)
        self.sample_rate_hz = float(sample_rate_hz)
        self.taps = design_bandpass_fir(low_hz, high_hz, sample_rate_hz, num_taps)

    @property
    def num_taps(self) -> int:
        """Number of taps in the designed filter."""
        return int(self.taps.size)

    @property
    def group_delay_samples(self) -> int:
        """Group delay of the linear-phase filter in samples."""
        return (self.taps.size - 1) // 2

    def apply(self, samples: np.ndarray, compensate_delay: bool = True) -> np.ndarray:
        """Filter ``samples`` and optionally remove the filter group delay.

        Compensating the delay keeps downstream symbol timing (established
        from the preamble position) valid after filtering.

        The convolution runs in the frequency domain against the cached
        spectrum of the taps (the receive path filters every captured buffer
        with the same filter), numerically equivalent to direct FIR
        filtering within ~1e-13 relative.
        """
        samples = np.asarray(samples, dtype=float)
        filtered = convolve_full(samples, self.taps)
        if compensate_delay:
            start = self.group_delay_samples
            return filtered[start:start + samples.size]
        return filtered[: samples.size]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"FIRBandpassFilter(low_hz={self.low_hz}, high_hz={self.high_hz}, "
            f"sample_rate_hz={self.sample_rate_hz}, num_taps={self.num_taps})"
        )
