"""Correlation primitives used by the preamble detector.

Two detectors are combined in the paper (section 2.2.1):

* a *coarse* detector that cross-correlates the received audio with the
  known preamble waveform and looks for a peak, and
* a *fine* detector based on a normalized sliding correlation that splits
  the candidate window into eight OFDM-symbol-long segments, removes the
  pseudo-noise signs, correlates neighbouring segments and normalizes by
  the window energy.  The normalized metric is close to 1 for a true
  preamble regardless of SNR, and small (< 0.2) for impulsive noise.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

_EPS = 1e-12


def normalized_cross_correlation(received: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Return the template-normalized cross-correlation of ``received``.

    The output has one value per alignment of the template inside the
    received buffer (``len(received) - len(template) + 1`` values).  Each
    value is normalized by the energy of the template and of the
    corresponding received window, so it lies in ``[-1, 1]``.
    """
    received = np.asarray(received, dtype=float)
    template = np.asarray(template, dtype=float)
    if template.size == 0 or received.size < template.size:
        raise ValueError("received signal must be at least as long as the template")
    # FFT-based correlation: much faster than np.correlate for the long
    # preamble templates used here.
    raw = sp_signal.fftconvolve(received, template[::-1], mode="valid")
    template_energy = float(np.sqrt(np.sum(template ** 2)))
    # Rolling energy of the received windows, via cumulative sums.
    squared = received ** 2
    cumulative = np.concatenate([[0.0], np.cumsum(squared)])
    window_energy = np.sqrt(cumulative[template.size:] - cumulative[: received.size - template.size + 1])
    return raw / (template_energy * np.maximum(window_energy, _EPS))


def normalized_sliding_correlation(
    window: np.ndarray,
    segment_length: int,
    pn_signs: np.ndarray,
) -> float:
    """Return the normalized sliding-correlation metric for one window.

    The window is divided into ``len(pn_signs)`` segments of
    ``segment_length`` samples.  Each segment is multiplied by its PN sign
    and neighbouring segments are correlated; the summed correlations are
    normalized by the window energy.  A true preamble (identical repeated
    symbols with those signs) yields a value near 1.
    """
    window = np.asarray(window, dtype=float)
    pn_signs = np.asarray(pn_signs, dtype=float)
    num_segments = pn_signs.size
    needed = segment_length * num_segments
    if window.size < needed:
        raise ValueError(
            f"window of {window.size} samples too short for {num_segments} "
            f"segments of {segment_length} samples"
        )
    segments = window[:needed].reshape(num_segments, segment_length) * pn_signs[:, None]
    correlation = 0.0
    for i in range(num_segments - 1):
        correlation += float(np.dot(segments[i], segments[i + 1]))
    energy = float(np.sum(window[:needed] ** 2)) * (num_segments - 1) / num_segments
    return correlation / max(energy, _EPS)


def sliding_correlation_curve(
    received: np.ndarray,
    start: int,
    stop: int,
    segment_length: int,
    pn_signs: np.ndarray,
    step: int = 8,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate the sliding-correlation metric on a range of offsets.

    Returns ``(offsets, metric)`` where ``offsets`` are the candidate start
    indices (spaced by ``step`` samples, matching the computational-cost
    compromise described in the paper) and ``metric`` the corresponding
    normalized sliding-correlation values.
    """
    received = np.asarray(received, dtype=float)
    pn_signs = np.asarray(pn_signs, dtype=float)
    window_length = segment_length * pn_signs.size
    start = max(0, int(start))
    stop = min(int(stop), received.size - window_length)
    if stop < start:
        return np.array([], dtype=int), np.array([], dtype=float)
    offsets = np.arange(start, stop + 1, max(1, int(step)))
    metric = np.empty(offsets.size, dtype=float)
    for i, offset in enumerate(offsets):
        metric[i] = normalized_sliding_correlation(
            received[offset:offset + window_length], segment_length, pn_signs
        )
    return offsets, metric


def sliding_correlation_peak(
    received: np.ndarray,
    start: int,
    stop: int,
    segment_length: int,
    pn_signs: np.ndarray,
    step: int = 8,
) -> tuple[int, float]:
    """Return ``(best_offset, best_metric)`` over the candidate range."""
    offsets, metric = sliding_correlation_curve(
        received, start, stop, segment_length, pn_signs, step
    )
    if offsets.size == 0:
        return -1, 0.0
    best = int(np.argmax(metric))
    return int(offsets[best]), float(metric[best])
