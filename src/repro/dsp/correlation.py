"""Correlation primitives used by the preamble detector.

Two detectors are combined in the paper (section 2.2.1):

* a *coarse* detector that cross-correlates the received audio with the
  known preamble waveform and looks for a peak, and
* a *fine* detector based on a normalized sliding correlation that splits
  the candidate window into eight OFDM-symbol-long segments, removes the
  pseudo-noise signs, correlates neighbouring segments and normalizes by
  the window energy.  The normalized metric is close to 1 for a true
  preamble regardless of SNR, and small (< 0.2) for impulsive noise.

Both stages have a fast path and a retained reference implementation:

* :class:`TemplateCorrelator` runs the coarse stage as overlap-save FFT
  cross-correlation against a cached conjugate spectrum of the template,
  equivalent to :func:`normalized_cross_correlation` within ~1e-10.
* :func:`sliding_correlation_curve` evaluates the fine metric for *all*
  candidate offsets at once from two cumulative sums (the windowed
  segment products telescope into prefix-sum differences), replacing the
  per-offset Python loop now kept as
  :func:`sliding_correlation_curve_reference`.  Agreement is ~1e-9
  relative (cumulative sums reassociate the additions); both are pinned
  by tests/test_fastpath_golden.py.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from repro.dsp.fastconv import irfft_n, next_fast_len, rfft_n

_EPS = 1e-12


def normalized_cross_correlation(received: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Return the template-normalized cross-correlation of ``received``.

    The output has one value per alignment of the template inside the
    received buffer (``len(received) - len(template) + 1`` values).  Each
    value is normalized by the energy of the template and of the
    corresponding received window, so it lies in ``[-1, 1]``.
    """
    received = np.asarray(received, dtype=float)
    template = np.asarray(template, dtype=float)
    if template.size == 0 or received.size < template.size:
        raise ValueError("received signal must be at least as long as the template")
    # FFT-based correlation: much faster than np.correlate for the long
    # preamble templates used here.
    raw = sp_signal.fftconvolve(received, template[::-1], mode="valid")
    template_energy = float(np.sqrt(np.sum(template ** 2)))
    # Rolling energy of the received windows, via cumulative sums.
    squared = received ** 2
    cumulative = np.concatenate([[0.0], np.cumsum(squared)])
    window_energy = np.sqrt(cumulative[template.size:] - cumulative[: received.size - template.size + 1])
    return raw / (template_energy * np.maximum(window_energy, _EPS))


class TemplateCorrelator:
    """Normalized FFT cross-correlation against one fixed template.

    The conjugate spectrum of the template (the rFFT of the time-reversed
    waveform) and the template energy are computed once; every
    :meth:`correlate` call then runs overlap-save block convolution, so the
    per-call cost is independent of how many times the same preamble is
    searched for.  Output matches :func:`normalized_cross_correlation`
    within ~1e-10 (same arithmetic, different FFT block sizes).
    """

    def __init__(self, template: np.ndarray, block_size: int | None = None) -> None:
        self._template = np.asarray(template, dtype=float).ravel()
        if self._template.size == 0:
            raise ValueError("template must be non-empty")
        m = self._template.size
        if block_size is None:
            # Blocks of ~2x the template keep single-search latency low for
            # packet-sized captures while amortizing well on long ones.
            block_size = 2 * m
        self._n_fft = next_fast_len(max(int(block_size), 2 * m))
        # Buffers up to ~4 template lengths are correlated in one shot (the
        # in-session packet captures); anything longer streams block-wise.
        self._single_shot_limit = next_fast_len(4 * m)
        #: Cached conjugate spectra (rfft of the reversed template) per FFT
        #: size: the overlap-save block size plus the single-shot sizes of
        #: the packet lengths this correlator has seen.
        self._spectra: dict[int, np.ndarray] = {}
        self._spectrum = self._spectrum_for(self._n_fft)
        self._energy = float(np.sqrt(np.sum(self._template ** 2)))

    def _spectrum_for(self, n_fft: int) -> np.ndarray:
        spectrum = self._spectra.get(n_fft)
        if spectrum is None:
            if len(self._spectra) > 16:
                self._spectra.clear()
            spectrum = rfft_n(self._template[::-1], n_fft)
            spectrum.setflags(write=False)
            self._spectra[n_fft] = spectrum
        return spectrum

    @property
    def template_length(self) -> int:
        """Number of samples in the template."""
        return self._template.size

    def raw_correlation(self, received: np.ndarray) -> np.ndarray:
        """Unnormalized valid-mode cross-correlation via overlap-save.

        Circular wrap-around only contaminates output indices below
        ``m - 1`` as long as the FFT size is at least the chunk length, so a
        buffer no longer than the block size is correlated in one shot at
        ``next_fast_len(len(received))``; longer buffers stream through
        fixed-size overlap-save blocks against the cached block spectrum.
        """
        received = np.asarray(received, dtype=float).ravel()
        m = self._template.size
        if received.size < m:
            raise ValueError("received signal must be at least as long as the template")
        num_valid = received.size - m + 1
        single_shot = next_fast_len(received.size)
        if single_shot <= self._single_shot_limit:
            segment = irfft_n(
                rfft_n(received, single_shot) * self._spectrum_for(single_shot),
                single_shot,
            )
            return segment[m - 1:m - 1 + num_valid]
        n_fft = self._n_fft
        spectrum = self._spectrum
        step = n_fft - m + 1
        out = np.empty(num_valid)
        position = 0
        while position < num_valid:
            chunk = received[position:position + n_fft]
            segment = irfft_n(rfft_n(chunk, n_fft) * spectrum, n_fft)
            take = min(step, num_valid - position)
            # The first m-1 outputs of each block are circular wrap-around;
            # the linear-convolution region starts at index m-1.
            out[position:position + take] = segment[m - 1:m - 1 + take]
            position += take
        return out

    def correlate(self, received: np.ndarray) -> np.ndarray:
        """Normalized cross-correlation (same output as the reference)."""
        received = np.asarray(received, dtype=float).ravel()
        raw = self.raw_correlation(received)
        squared = received ** 2
        cumulative = np.concatenate([[0.0], np.cumsum(squared)])
        m = self._template.size
        window_energy = np.sqrt(
            cumulative[m:] - cumulative[: received.size - m + 1]
        )
        return raw / (self._energy * np.maximum(window_energy, _EPS))


def normalized_sliding_correlation(
    window: np.ndarray,
    segment_length: int,
    pn_signs: np.ndarray,
) -> float:
    """Return the normalized sliding-correlation metric for one window.

    The window is divided into ``len(pn_signs)`` segments of
    ``segment_length`` samples.  Each segment is multiplied by its PN sign
    and neighbouring segments are correlated; the summed correlations are
    normalized by the window energy.  A true preamble (identical repeated
    symbols with those signs) yields a value near 1.
    """
    window = np.asarray(window, dtype=float)
    pn_signs = np.asarray(pn_signs, dtype=float)
    num_segments = pn_signs.size
    needed = segment_length * num_segments
    if window.size < needed:
        raise ValueError(
            f"window of {window.size} samples too short for {num_segments} "
            f"segments of {segment_length} samples"
        )
    segments = window[:needed].reshape(num_segments, segment_length) * pn_signs[:, None]
    correlation = 0.0
    for i in range(num_segments - 1):
        correlation += float(np.dot(segments[i], segments[i + 1]))
    energy = float(np.sum(window[:needed] ** 2)) * (num_segments - 1) / num_segments
    return correlation / max(energy, _EPS)


def _candidate_offsets(
    received_size: int,
    start: int,
    stop: int,
    window_length: int,
    step: int,
) -> np.ndarray:
    """Clamp the offset range like the reference loop does."""
    start = max(0, int(start))
    stop = min(int(stop), received_size - window_length)
    if stop < start:
        return np.array([], dtype=int)
    return np.arange(start, stop + 1, max(1, int(step)))


def sliding_correlation_curve(
    received: np.ndarray,
    start: int,
    stop: int,
    segment_length: int,
    pn_signs: np.ndarray,
    step: int = 8,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate the sliding-correlation metric on a range of offsets.

    Returns ``(offsets, metric)`` where ``offsets`` are the candidate start
    indices (spaced by ``step`` samples, matching the computational-cost
    compromise described in the paper) and ``metric`` the corresponding
    normalized sliding-correlation values.

    Vectorized: for offset ``o`` the metric numerator is
    ``sum_i s_i s_{i+1} <seg_i, seg_{i+1}>`` where ``<seg_i, seg_{i+1}>``
    is a length-L dot product of the signal against itself shifted by one
    segment.  All those dot products are windowed sums of the single
    product sequence ``r[n] * r[n+L]``, so one cumulative sum serves every
    offset and segment pair; the denominator telescopes the same way from
    the cumulative sum of ``r**2``.
    """
    received = np.asarray(received, dtype=float)
    pn_signs = np.asarray(pn_signs, dtype=float)
    num_segments = pn_signs.size
    segment_length = int(segment_length)
    window_length = segment_length * num_segments
    offsets = _candidate_offsets(received.size, start, stop, window_length, step)
    if offsets.size == 0:
        return offsets, np.array([], dtype=float)

    # Work on the smallest slice covering every window.
    low = int(offsets[0])
    high = int(offsets[-1]) + window_length
    region = received[low:high]
    lagged = region[:-segment_length] * region[segment_length:]
    lag_prefix = np.concatenate([[0.0], np.cumsum(lagged)])
    energy_prefix = np.concatenate([[0.0], np.cumsum(region ** 2)])

    relative = offsets - low
    pair_signs = pn_signs[:-1] * pn_signs[1:]
    starts = relative[:, None] + np.arange(num_segments - 1)[None, :] * segment_length
    pair_dots = lag_prefix[starts + segment_length] - lag_prefix[starts]
    correlation = pair_dots @ pair_signs
    energy = (
        (energy_prefix[relative + window_length] - energy_prefix[relative])
        * (num_segments - 1)
        / num_segments
    )
    metric = correlation / np.maximum(energy, _EPS)
    return offsets, metric


def sliding_correlation_curve_reference(
    received: np.ndarray,
    start: int,
    stop: int,
    segment_length: int,
    pn_signs: np.ndarray,
    step: int = 8,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-offset loop implementation, retained as the golden reference."""
    received = np.asarray(received, dtype=float)
    pn_signs = np.asarray(pn_signs, dtype=float)
    window_length = segment_length * pn_signs.size
    offsets = _candidate_offsets(received.size, start, stop, window_length, step)
    metric = np.empty(offsets.size, dtype=float)
    for i, offset in enumerate(offsets):
        metric[i] = normalized_sliding_correlation(
            received[offset:offset + window_length], segment_length, pn_signs
        )
    return offsets, metric


def sliding_correlation_peak(
    received: np.ndarray,
    start: int,
    stop: int,
    segment_length: int,
    pn_signs: np.ndarray,
    step: int = 8,
) -> tuple[int, float]:
    """Return ``(best_offset, best_metric)`` over the candidate range."""
    offsets, metric = sliding_correlation_curve(
        received, start, stop, segment_length, pn_signs, step
    )
    if offsets.size == 0:
        return -1, 0.0
    best = int(np.argmax(metric))
    return int(offsets[best]), float(metric[best])
