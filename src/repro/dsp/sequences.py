"""CAZAC (Zadoff-Chu) and pseudo-noise sequences.

The AquaApp preamble fills its OFDM subcarriers with a CAZAC sequence
because such sequences have constant amplitude (unit peak-to-average power
ratio in the frequency domain) and an ideal periodic autocorrelation, which
makes them well suited both for detection by correlation and for channel
estimation.  Eight identical preamble symbols are sign-modulated by the
pseudo-noise pattern ``[-1, 1, 1, 1, 1, 1, -1, 1]`` to sharpen the timing
metric of the sliding-correlation detector.
"""

from __future__ import annotations

import math

import numpy as np

#: Sign pattern applied to the eight preamble OFDM symbols (paper section 2.2.1).
PREAMBLE_PN_SIGNS: tuple[int, ...] = (-1, 1, 1, 1, 1, 1, -1, 1)


def zadoff_chu(length: int, root: int = 1) -> np.ndarray:
    """Return a Zadoff-Chu sequence of ``length`` complex samples.

    Parameters
    ----------
    length:
        Number of elements in the sequence.  Any positive integer is
        accepted; odd lengths give the classical ideal autocorrelation, but
        even lengths (used when the number of OFDM data bins is even) still
        provide constant amplitude and low autocorrelation sidelobes.
    root:
        Sequence root ``u``.  Must be coprime with ``length`` for the ideal
        autocorrelation property; if it is not, the nearest coprime root is
        used instead so callers never silently get a degenerate sequence.

    Returns
    -------
    numpy.ndarray
        Complex array of unit-magnitude samples.
    """
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if root <= 0:
        raise ValueError(f"root must be positive, got {root}")
    u = root % length
    if u == 0:
        u = 1
    # Walk to the nearest root that is coprime with the length.
    while math.gcd(u, length) != 1:
        u += 1
        if u >= length:
            u = 1
    n = np.arange(length)
    if length % 2 == 0:
        phase = -np.pi * u * n * n / length
    else:
        phase = -np.pi * u * n * (n + 1) / length
    return np.exp(1j * phase)


def pn_sign_sequence(length: int, seed: int = 0x5A) -> np.ndarray:
    """Return a deterministic +/-1 pseudo-noise sequence of ``length`` values.

    A small linear-feedback shift register (taps matching the x^7 + x^6 + 1
    maximal-length polynomial) generates the chips, so the same ``seed``
    always produces the same pattern on every platform.
    """
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    state = seed & 0x7F
    if state == 0:
        state = 0x5A
    chips = np.empty(length, dtype=float)
    for i in range(length):
        bit = ((state >> 6) ^ (state >> 5)) & 1
        state = ((state << 1) | bit) & 0x7F
        chips[i] = 1.0 if bit else -1.0
    return chips


def preamble_pn_signs() -> np.ndarray:
    """Return the paper's eight-element preamble sign pattern as an array."""
    return np.array(PREAMBLE_PN_SIGNS, dtype=float)


def periodic_autocorrelation(sequence: np.ndarray) -> np.ndarray:
    """Return the normalized periodic autocorrelation of a complex sequence.

    Used by tests to check the CAZAC property: the zero-lag value is 1 and
    every other lag is (close to) 0 for odd-length Zadoff-Chu sequences.
    """
    sequence = np.asarray(sequence, dtype=complex)
    n = sequence.size
    if n == 0:
        raise ValueError("sequence must be non-empty")
    energy = float(np.sum(np.abs(sequence) ** 2))
    lags = np.empty(n, dtype=complex)
    for lag in range(n):
        lags[lag] = np.sum(sequence * np.conj(np.roll(sequence, lag))) / energy
    return lags
