"""Linear frequency modulated (LFM) chirps.

Chirps are used by the characterization experiments in the paper (Fig. 3):
a 1-5 kHz chirp probes the end-to-end frequency response of a device pair
through the water, and a 1-3 kHz chirp probes channel reciprocity.  The
modem itself does *not* use chirps for its preamble (the paper found LFM
detection not robust enough and uses a CAZAC preamble instead), but the
characterization benchmarks need them.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require_positive


def lfm_chirp(
    f_start_hz: float,
    f_end_hz: float,
    duration_s: float,
    sample_rate_hz: float,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Return a real-valued linear frequency modulated chirp.

    Parameters
    ----------
    f_start_hz, f_end_hz:
        Start and end frequencies of the sweep in Hz.  A downward sweep
        (``f_end_hz < f_start_hz``) is allowed.
    duration_s:
        Sweep duration in seconds.
    sample_rate_hz:
        Sampling rate in Hz.
    amplitude:
        Peak amplitude of the generated waveform.
    """
    require_positive(duration_s, "duration_s")
    require_positive(sample_rate_hz, "sample_rate_hz")
    if f_start_hz < 0 or f_end_hz < 0:
        raise ValueError("chirp frequencies must be non-negative")
    num_samples = int(round(duration_s * sample_rate_hz))
    if num_samples < 2:
        raise ValueError("chirp too short for the given sample rate")
    t = np.arange(num_samples) / sample_rate_hz
    sweep_rate = (f_end_hz - f_start_hz) / duration_s
    phase = 2.0 * np.pi * (f_start_hz * t + 0.5 * sweep_rate * t * t)
    return amplitude * np.sin(phase)


def chirp_instantaneous_frequency(
    f_start_hz: float, f_end_hz: float, duration_s: float, times_s: np.ndarray
) -> np.ndarray:
    """Return the instantaneous frequency of the chirp at the given times."""
    require_positive(duration_s, "duration_s")
    times_s = np.asarray(times_s, dtype=float)
    return f_start_hz + (f_end_hz - f_start_hz) * times_s / duration_s
