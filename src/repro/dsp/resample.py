"""Fractional delay and Doppler resampling.

Motion of a diver holding the phone compresses or dilates the received
waveform.  At the speeds relevant to the paper (relative speeds below
2 m/s against a 1500 m/s sound speed) the Doppler factor is at most about
0.13 %, i.e. a few Hz of shift at 4 kHz, which is small compared with the
50 Hz subcarrier spacing -- exactly the argument made in section 2.3 of the
paper.  The channel simulator still models it so that the claim can be
verified rather than assumed.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require_positive

#: Nominal underwater sound speed used throughout the paper (m/s).
SOUND_SPEED_WATER_M_S = 1500.0

#: Read-only cached 0..n-1 ramps for the per-packet Doppler warp (the same
#: buffer lengths recur throughout a session).
_INDEX_RAMP_CACHE: dict[int, np.ndarray] = {}


def _index_ramp(n: int) -> np.ndarray:
    ramp = _INDEX_RAMP_CACHE.get(n)
    if ramp is None:
        if len(_INDEX_RAMP_CACHE) > 16:
            _INDEX_RAMP_CACHE.clear()
        ramp = np.arange(n, dtype=float)
        ramp.setflags(write=False)
        _INDEX_RAMP_CACHE[n] = ramp
    return ramp


def doppler_factor(relative_speed_m_s: float, sound_speed_m_s: float = SOUND_SPEED_WATER_M_S) -> float:
    """Return the time-scaling factor for a given closing speed.

    Positive ``relative_speed_m_s`` means the devices are approaching each
    other (received signal compressed, frequencies shifted up).
    """
    require_positive(sound_speed_m_s, "sound_speed_m_s")
    if abs(relative_speed_m_s) >= sound_speed_m_s:
        raise ValueError("relative speed must be below the sound speed")
    return 1.0 + relative_speed_m_s / sound_speed_m_s


def apply_doppler(
    samples: np.ndarray,
    factor: float,
) -> np.ndarray:
    """Resample ``samples`` by the Doppler ``factor`` (output keeps length).

    A factor of 1.0 returns the input unchanged.  Linear interpolation is
    sufficient here because the factor is always within a fraction of a
    percent of unity for human-speed motion.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        return samples.copy()
    require_positive(factor, "factor")
    if abs(factor - 1.0) < 1e-12:
        return samples.copy()
    original_index = _index_ramp(samples.size)
    warped_index = original_index * factor
    return np.interp(warped_index, original_index, samples, left=0.0, right=0.0)


def fractional_delay(samples: np.ndarray, delay_samples: float) -> np.ndarray:
    """Delay ``samples`` by a possibly fractional number of samples.

    Uses linear interpolation, which is adequate for building multipath
    impulse responses where tap positions do not fall on integer sample
    boundaries.
    """
    samples = np.asarray(samples, dtype=float)
    if delay_samples < 0:
        raise ValueError("delay must be non-negative")
    if samples.size == 0:
        return samples.copy()
    index = np.arange(samples.size) - delay_samples
    return np.interp(index, np.arange(samples.size), samples, left=0.0, right=0.0)
