"""Digital signal processing substrate for the AquaApp modem.

The modules here implement the generic building blocks the modem is
assembled from: constant-amplitude zero-autocorrelation (CAZAC) sequences,
pseudo-noise sign sequences, linear frequency modulated chirps, FIR filters,
correlation-based detection primitives, spectrum estimation helpers and
fractional resampling used to model Doppler.
"""

from repro.dsp.chirp import lfm_chirp
from repro.dsp.correlation import (
    normalized_cross_correlation,
    normalized_sliding_correlation,
    sliding_correlation_peak,
)
from repro.dsp.filters import FIRBandpassFilter, design_bandpass_fir
from repro.dsp.resample import apply_doppler, fractional_delay
from repro.dsp.sequences import pn_sign_sequence, zadoff_chu
from repro.dsp.spectrum import band_power, magnitude_spectrum_db, power_spectral_density

__all__ = [
    "zadoff_chu",
    "pn_sign_sequence",
    "lfm_chirp",
    "design_bandpass_fir",
    "FIRBandpassFilter",
    "normalized_cross_correlation",
    "normalized_sliding_correlation",
    "sliding_correlation_peak",
    "power_spectral_density",
    "band_power",
    "magnitude_spectrum_db",
    "apply_doppler",
    "fractional_delay",
]
