"""Levinson-Durbin solvers for symmetric Toeplitz systems.

The MMSE equalizer's normal equations ``R_yy g = r_xy`` have a symmetric
Toeplitz system matrix fully described by its first column ``r`` (the
autocorrelation of the received training).  A dense solve is O(n^3) --
noticeable at the paper's 480-tap channel length -- while the
Levinson-Durbin recursion exploits the Toeplitz structure to solve the
same system in O(n^2).

:func:`levinson_solve` is a pure-NumPy implementation of the recursion
(general right-hand side, i.e. the "Levinson recursion" rather than just
the reflection-coefficient "Durbin" special case).
:func:`solve_symmetric_toeplitz` is the entry point the equalizer uses:
it delegates to SciPy's compiled implementation of the same recursion
when available (identical algorithm, C speed) and falls back to
:func:`levinson_solve` otherwise.  The dense O(n^3) solve is retained in
:meth:`repro.core.equalizer.MMSEEqualizer` as the golden reference; the
golden equivalence tests pin all three against each other.
"""

from __future__ import annotations

import numpy as np

try:
    from scipy.linalg import solve_toeplitz as _scipy_solve_toeplitz
except ImportError:  # pragma: no cover - scipy is normally present
    _scipy_solve_toeplitz = None

try:
    # The compiled Levinson kernel behind scipy.linalg.solve_toeplitz;
    # calling it directly skips the public wrapper's generic validation on
    # the per-packet equalizer path.  Private API, so fall back to the
    # public wrapper (and ultimately the pure-NumPy recursion) if it moves.
    from scipy.linalg._solve_toeplitz import levinson as _scipy_levinson
except ImportError:  # pragma: no cover - depends on scipy internals
    _scipy_levinson = None


def levinson_solve(r: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``T x = b`` for symmetric Toeplitz ``T`` via Levinson-Durbin.

    Parameters
    ----------
    r:
        First column (= first row) of the symmetric Toeplitz matrix.
        ``r[0]`` must be non-zero and the matrix strongly regular (true
        for the equalizer's diagonally-loaded autocorrelation matrices).
    b:
        Right-hand side, same length as ``r``.

    Returns
    -------
    numpy.ndarray
        The solution ``x``, computed in O(n^2) operations.
    """
    r = np.asarray(r, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if r.size != b.size:
        raise ValueError("r and b must have the same length")
    if r.size == 0:
        raise ValueError("system must have at least one equation")
    if r[0] == 0.0:
        raise ValueError("r[0] must be non-zero for the Levinson recursion")

    n = r.size
    # ``forward`` solves T_k f = e_1 for the growing leading subsystem; for
    # a symmetric Toeplitz matrix the backward vector (T_k g = e_k) is just
    # the reversed forward vector, which halves the recursion's work.
    x = np.zeros(n)
    forward = np.zeros(n)
    forward[0] = 1.0 / r[0]
    x[0] = b[0] / r[0]
    for k in range(1, n):
        prev = forward[:k]
        reversed_lags = r[k:0:-1]  # [r[k], r[k-1], ..., r[1]]
        # Error of the zero-extended forward vector against the new last row.
        eps_f = float(reversed_lags @ prev)
        denominator = 1.0 - eps_f * eps_f
        if denominator == 0.0:
            raise np.linalg.LinAlgError(
                "Toeplitz matrix is singular at order %d" % (k + 1)
            )
        scale = 1.0 / denominator
        new_forward = np.empty(k + 1)
        new_forward[:k] = scale * prev
        new_forward[k] = 0.0
        new_forward[1:] -= (eps_f * scale) * prev[::-1]
        # Error of the zero-extended solution, then correct along the
        # backward vector (the reversed forward vector).
        eps_x = float(reversed_lags @ x[:k])
        x[:k + 1] += (b[k] - eps_x) * new_forward[::-1]
        forward[:k + 1] = new_forward
    return x


def solve_symmetric_toeplitz(r: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve a symmetric Toeplitz system with the Levinson recursion.

    Uses SciPy's compiled Levinson solver when available, otherwise the
    pure-NumPy :func:`levinson_solve`.
    """
    if _scipy_levinson is not None:
        r = np.asarray(r, dtype=float).ravel()
        b = np.asarray(b, dtype=float).ravel()
        # Same layout solve_toeplitz builds internally: reversed first row
        # (minus its head) concatenated with the first column.
        vals = np.concatenate((r[-1:0:-1], r))
        solution, _ = _scipy_levinson(vals, b)
        return np.asarray(solution, dtype=float)
    if _scipy_solve_toeplitz is not None:
        return np.asarray(_scipy_solve_toeplitz((r, r), b), dtype=float)
    return levinson_solve(r, b)
