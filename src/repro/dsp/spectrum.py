"""Spectrum estimation helpers.

Used by the characterization benchmarks (frequency selectivity, ambient
noise, reciprocity, air-in-case) and by the carrier-sense MAC energy
detector.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from repro.utils.units import power_ratio_to_db
from repro.utils.validation import require_positive


def power_spectral_density(
    samples: np.ndarray,
    sample_rate_hz: float,
    nperseg: int = 2048,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(frequencies, psd)`` via Welch's method."""
    require_positive(sample_rate_hz, "sample_rate_hz")
    samples = np.asarray(samples, dtype=float)
    if samples.size < 8:
        raise ValueError("need at least 8 samples to estimate a spectrum")
    nperseg = min(nperseg, samples.size)
    freqs, psd = sp_signal.welch(samples, fs=sample_rate_hz, nperseg=nperseg)
    return freqs, psd


def magnitude_spectrum_db(
    samples: np.ndarray,
    sample_rate_hz: float,
    nperseg: int = 2048,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(frequencies, magnitude_db)`` normalized to the peak bin."""
    freqs, psd = power_spectral_density(samples, sample_rate_hz, nperseg)
    db = power_ratio_to_db(psd / max(float(np.max(psd)), 1e-30))
    return freqs, db


def band_power(
    samples: np.ndarray,
    sample_rate_hz: float,
    low_hz: float,
    high_hz: float,
) -> float:
    """Return the mean power of ``samples`` restricted to a frequency band.

    This is the quantity the carrier-sense MAC measures every 80 ms over
    the 1-4 kHz communication band.
    """
    require_positive(sample_rate_hz, "sample_rate_hz")
    if not 0 <= low_hz < high_hz <= sample_rate_hz / 2:
        raise ValueError("invalid band edges")
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        return 0.0
    spectrum = np.fft.rfft(samples)
    freqs = np.fft.rfftfreq(samples.size, d=1.0 / sample_rate_hz)
    mask = (freqs >= low_hz) & (freqs <= high_hz)
    # Parseval: mean power contribution of the selected bins.
    total = np.sum(np.abs(spectrum[mask]) ** 2)
    if samples.size % 2 == 0 and mask[-1]:
        # Nyquist bin counted once.
        pass
    return float(2.0 * total / (samples.size ** 2))


def band_power_db(
    samples: np.ndarray,
    sample_rate_hz: float,
    low_hz: float,
    high_hz: float,
) -> float:
    """Return :func:`band_power` expressed in dB."""
    return power_ratio_to_db(max(band_power(samples, sample_rate_hz, low_hz, high_hz), 1e-30))


def frequency_response_from_probe(
    transmitted: np.ndarray,
    received: np.ndarray,
    sample_rate_hz: float,
    freqs_hz: np.ndarray,
    smoothing_bins: int = 5,
) -> np.ndarray:
    """Estimate an end-to-end magnitude response (dB) at the given frequencies.

    The estimate is the ratio of received to transmitted energy density,
    evaluated at ``freqs_hz`` and lightly smoothed.  This mirrors how the
    paper's Fig. 3 curves are produced from chirp probes.
    """
    require_positive(sample_rate_hz, "sample_rate_hz")
    transmitted = np.asarray(transmitted, dtype=float)
    received = np.asarray(received, dtype=float)
    n = max(transmitted.size, received.size)
    n_fft = int(2 ** np.ceil(np.log2(max(n, 16))))
    tx_spec = np.abs(np.fft.rfft(transmitted, n=n_fft)) ** 2
    rx_spec = np.abs(np.fft.rfft(received, n=n_fft)) ** 2
    grid = np.fft.rfftfreq(n_fft, d=1.0 / sample_rate_hz)
    if smoothing_bins > 1:
        kernel = np.ones(smoothing_bins) / smoothing_bins
        tx_spec = np.convolve(tx_spec, kernel, mode="same")
        rx_spec = np.convolve(rx_spec, kernel, mode="same")
    ratio = rx_spec / np.maximum(tx_spec, 1e-30)
    freqs_hz = np.asarray(freqs_hz, dtype=float)
    values = np.interp(freqs_hz, grid, ratio)
    return power_ratio_to_db(np.maximum(values, 1e-30))
