"""Cached-spectrum FFT convolution for the frequency-domain fast paths.

``scipy.signal.fftconvolve`` recomputes the forward FFT of *both* operands
on every call.  The simulator's hot paths convolve thousands of packets
against a small set of slowly-changing kernels (multipath impulse
responses, the cascaded device FIR, bandpass filters), so the kernel
spectra can be computed once and reused: a packet then costs one rFFT,
one complex multiply and one irFFT.

:class:`SpectrumCache` is a small LRU keyed by kernel *content* (a
BLAKE2 digest of the raw bytes plus the length) and FFT size, so two
arrays with equal values share one cached spectrum and a kernel that is
regenerated (e.g. after :meth:`UnderwaterAcousticChannel.randomize`)
naturally misses.  Cascades of two kernels cache the *product* spectrum,
which is what turns the channel's "multipath then device FIR" double
convolution into a single frequency-domain multiply.

All helpers return results numerically equivalent to
``scipy.signal.fftconvolve`` (same algorithm, same FFT sizes modulo
``next_fast_len`` padding); tiny differences (~1e-13 relative) come only
from reassociated floating-point rounding and are pinned by the golden
equivalence tests.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

try:  # scipy's pocketfft is bit-identical to numpy's and faster; the
    # next_fast_len helper finds 5-smooth sizes.  Fall back to numpy + powers
    # of two when scipy is unavailable.
    from scipy import fft as _fft
    from scipy.fft import next_fast_len as _next_fast_len

    def next_fast_len(n: int) -> int:
        """Smallest efficient real-FFT length >= ``n``."""
        return int(_next_fast_len(int(n), real=True))
except ImportError:  # pragma: no cover - scipy is a hard dependency elsewhere
    from numpy import fft as _fft

    def next_fast_len(n: int) -> int:
        """Smallest power of two >= ``n`` (scipy-free fallback)."""
        return 1 << max(int(n) - 1, 0).bit_length()

rfft = _fft.rfft
irfft = _fft.irfft

try:
    # Raw pocketfft bindings: bit-identical to scipy.fft.rfft/irfft but
    # without the per-call backend dispatch, shape fixing and dtype checks
    # (~10 us each, which matters at ~40 transforms per simulated packet).
    # Private API, so everything falls back to the public functions.
    from scipy.fft._pocketfft import pypocketfft as _ppf

    def rfft_n(x: np.ndarray, n_fft: int) -> np.ndarray:
        """``rfft(x, n_fft)`` for 1-D float input via raw pocketfft."""
        x = np.asarray(x, dtype=np.float64)
        if x.size != n_fft:
            buffer = np.zeros(n_fft)
            buffer[: min(x.size, n_fft)] = x[:n_fft]
            x = buffer
        return _ppf.r2c(x, axes=(0,), forward=True, inorm=0)

    def irfft_n(spectrum: np.ndarray, n_fft: int) -> np.ndarray:
        """``irfft(spectrum, n_fft)`` for 1-D complex input via raw pocketfft."""
        spectrum = np.ascontiguousarray(spectrum, dtype=np.complex128)
        return _ppf.c2r(spectrum, axes=(0,), lastsize=n_fft, forward=False, inorm=2)
except ImportError:  # pragma: no cover - depends on scipy internals
    def rfft_n(x: np.ndarray, n_fft: int) -> np.ndarray:
        """``rfft(x, n_fft)`` fallback through the public API."""
        return rfft(np.asarray(x, dtype=float), n_fft)

    def irfft_n(spectrum: np.ndarray, n_fft: int) -> np.ndarray:
        """``irfft(spectrum, n_fft)`` fallback through the public API."""
        return irfft(spectrum, n_fft)


def _kernel_key(kernel: np.ndarray) -> tuple:
    """Content key of a kernel array (length + BLAKE2 digest of its bytes)."""
    data = np.ascontiguousarray(kernel)
    return (data.size, hashlib.blake2b(data.tobytes(), digest_size=16).digest())


def conv_fft_len(out_len: int) -> int:
    """FFT size for a convolution producing ``out_len`` samples.

    Beyond 4096 samples the length is rounded up to the next 4096 multiple
    before ``next_fast_len``: packet lengths drift by a few hundred samples
    from packet to packet (the multipath tail changes with the drawn
    geometry), and quantizing the transform size means the cached kernel
    spectra (device FIR, receive bandpass) and pocketfft's internal plans
    are reused across packets instead of being rebuilt for every length.
    """
    if out_len <= 4096:
        return next_fast_len(out_len)
    return next_fast_len(-(-int(out_len) // 4096) * 4096)


class SpectrumCache:
    """LRU cache of kernel rFFT spectra and cascade product spectra.

    Parameters
    ----------
    max_entries:
        Bound on the number of cached spectra (single kernels and cascade
        products count separately).  Old entries are evicted LRU-first.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every cached spectrum and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def _get(self, key: tuple):
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        return entry

    def _put(self, key: tuple, spectrum: np.ndarray) -> np.ndarray:
        spectrum.setflags(write=False)
        self._entries[key] = spectrum
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return spectrum

    # ------------------------------------------------------------------ lookup
    def spectrum(self, kernel: np.ndarray, n_fft: int) -> np.ndarray:
        """Return (and cache) ``rfft(kernel, n_fft)``."""
        key = ("k", _kernel_key(kernel), int(n_fft))
        cached = self._get(key)
        if cached is not None:
            return cached
        return self._put(key, rfft_n(kernel, n_fft))

    def cascade_spectrum(
        self, first: np.ndarray, second: np.ndarray, n_fft: int
    ) -> np.ndarray:
        """Return (and cache) the product spectrum of two cascaded kernels."""
        key = ("c", _kernel_key(first), _kernel_key(second), int(n_fft))
        cached = self._get(key)
        if cached is not None:
            return cached
        product = rfft_n(first, n_fft) * rfft_n(second, n_fft)
        return self._put(key, product)


#: Shared process-wide cache used by the channel fast path.  Sessions,
#: benchmark suites and :class:`repro.net.links.PhysicalLink` instances all
#: draw from the same pool, so identical device FIRs across cached
#: per-distance sessions are only transformed once.
CHANNEL_SPECTRUM_CACHE = SpectrumCache()


def convolve_full(
    x: np.ndarray,
    kernel: np.ndarray,
    cache: SpectrumCache = CHANNEL_SPECTRUM_CACHE,
) -> np.ndarray:
    """Full linear convolution of ``x`` with a cached-spectrum kernel."""
    x = np.asarray(x, dtype=float)
    out_len = x.size + kernel.size - 1
    n_fft = conv_fft_len(out_len)
    spectrum = cache.spectrum(kernel, n_fft)
    return irfft_n(rfft_n(x, n_fft) * spectrum, n_fft)[:out_len]


def convolve_cascade(
    x: np.ndarray,
    first: np.ndarray,
    second: np.ndarray,
    cache: SpectrumCache = CHANNEL_SPECTRUM_CACHE,
) -> np.ndarray:
    """Convolve ``x`` with two cascaded kernels in one FFT round trip.

    Equivalent to ``fftconvolve(fftconvolve(x, first), second)`` but pays a
    single forward rFFT of ``x``, one complex multiply against the cached
    combined transfer function and one irFFT.
    """
    x = np.asarray(x, dtype=float)
    out_len = x.size + first.size + second.size - 2
    n_fft = conv_fft_len(out_len)
    spectrum = cache.cascade_spectrum(first, second, n_fft)
    return irfft_n(rfft_n(x, n_fft) * spectrum, n_fft)[:out_len]


def convolve_shared(
    x: np.ndarray,
    kernels: tuple[np.ndarray, ...],
) -> list[np.ndarray]:
    """Convolve one input against several kernels, sharing the forward FFT.

    Used by the channel's motion-drift path, which needs the same packet
    pushed through both the static and the drifted multipath responses
    before cross-fading them in the time domain.
    """
    x = np.asarray(x, dtype=float)
    longest = max(kernel.size for kernel in kernels)
    # Exact fast length and no spectrum caching: the drift-path kernels are
    # fresh every packet, so cached entries would never hit again -- they
    # would only pay a content hash and evict the genuinely reusable
    # device-FIR/cascade spectra from the shared LRU.
    n_fft = next_fast_len(x.size + longest - 1)
    forward = rfft_n(x, n_fft)
    results = []
    for kernel in kernels:
        spectrum = rfft_n(kernel, n_fft)
        out_len = x.size + kernel.size - 1
        results.append(irfft_n(forward * spectrum, n_fft)[:out_len])
    return results
