"""Validation reports and the committed ``VALID_*.json`` envelopes.

The envelope files follow the ``BENCH_*.json`` conventions of
:mod:`repro.perf`: one JSON file per figure at the repo root
(``VALID_<figure>.json``), a ``schema_version`` field, the settings the
reference run used, and per-point statistics.  A committed envelope is
the *expected* behaviour of the reproduction: a fresh Monte-Carlo run
passes a point when its headline confidence interval, widened by the
figure's declared tolerance, overlaps the envelope's interval.  Refactors
that preserve the physics therefore stay green across machine and
sampling noise, while a genuine behaviour change (a decoder regression, a
channel-model edit) pushes the intervals apart and fails the gate.

:class:`ValidationReport` aggregates figure results, per-point checks and
A/B equivalence rows into one object with JSON and markdown-table
rendering for the CLI and CI.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.validation.figures import FigureSpec, get_figure
from repro.validation.montecarlo import FigureResult, PointEstimate
from repro.validation.stats import MetricSummary, intervals_overlap, nan_to_none

SCHEMA_VERSION = 1


# ------------------------------------------------------------------ envelopes
def valid_json_path(figure: str, directory: str | Path = ".") -> Path:
    """The conventional ``VALID_<figure>.json`` path for a figure."""
    return Path(directory) / f"VALID_{figure}.json"


def write_envelope(
    result: FigureResult, directory: str | Path = "."
) -> Path:
    """Write a figure's Monte-Carlo result as its committed envelope."""
    spec = get_figure(result.figure)
    path = valid_json_path(result.figure, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "figure": result.figure,
        "headline": spec.headline,
        "tolerance": spec.tolerance,
        "created_unix": time.time(),
        "result": result.to_dict(),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_envelope(path: str | Path) -> FigureResult:
    """Load the reference :class:`FigureResult` from a ``VALID_*.json``."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "result" not in data:
        raise ValueError(f"{path} is not a VALID_*.json envelope")
    return FigureResult.from_dict(data["result"])


# --------------------------------------------------------------------- checks
@dataclass(frozen=True)
class PointCheck:
    """Gate outcome of one grid point against the committed envelope."""

    axis_value: float
    metric: str
    measured: MetricSummary
    expected: MetricSummary
    tolerance: float
    passed: bool

    def describe(self) -> str:
        status = "ok" if self.passed else "FAIL"
        return (
            f"{self.axis_value:g}: measured {self.measured.format_value()} vs "
            f"envelope {self.expected.format_value()} "
            f"(+/-{self.tolerance:g}) -> {status}"
        )


def check_against_envelope(
    result: FigureResult, envelope: FigureResult, spec: FigureSpec | None = None
) -> list[PointCheck]:
    """Gate a fresh result against the committed envelope, point by point.

    Only axis values present in both runs are compared (quick runs sweep
    a subset of the full grid); a fresh point missing from the envelope is
    a failure -- it means the committed reference predates the figure's
    current grid and must be regenerated.
    """
    spec = spec if spec is not None else get_figure(result.figure)
    envelope_points = {p.axis_value: p for p in envelope.points}
    checks = []
    for point in result.points:
        measured = point.summary(spec.headline)
        expected_point: PointEstimate | None = envelope_points.get(point.axis_value)
        if expected_point is None:
            checks.append(
                PointCheck(
                    axis_value=point.axis_value,
                    metric=spec.headline,
                    measured=measured,
                    expected=MetricSummary(
                        name=spec.headline, kind=measured.kind,
                        mean=float("nan"), std=float("nan"),
                        ci_low=float("nan"), ci_high=float("nan"), n_trials=0,
                    ),
                    tolerance=spec.tolerance,
                    passed=False,
                )
            )
            continue
        expected = expected_point.summary(spec.headline)
        passed = intervals_overlap(
            measured.ci_low, measured.ci_high,
            expected.ci_low, expected.ci_high,
            slack=spec.tolerance,
        )
        checks.append(
            PointCheck(
                axis_value=point.axis_value,
                metric=spec.headline,
                measured=measured,
                expected=expected,
                tolerance=spec.tolerance,
                passed=passed,
            )
        )
    return checks


# --------------------------------------------------------------------- report
@dataclass
class FigureReport:
    """One figure's contribution to a validation report."""

    result: FigureResult
    checks: list[PointCheck] = field(default_factory=list)
    compared: bool = False

    @property
    def passed(self) -> bool:
        """False only when an envelope comparison ran and failed."""
        return all(check.passed for check in self.checks)

    def to_dict(self) -> dict:
        return {
            "result": self.result.to_dict(),
            "compared": self.compared,
            "passed": self.passed,
            "checks": [
                {
                    "axis_value": c.axis_value,
                    "metric": c.metric,
                    "passed": c.passed,
                    "measured_mean": nan_to_none(c.measured.mean),
                    "measured_ci": [nan_to_none(c.measured.ci_low), nan_to_none(c.measured.ci_high)],
                    "expected_mean": nan_to_none(c.expected.mean),
                    "expected_ci": [nan_to_none(c.expected.ci_low), nan_to_none(c.expected.ci_high)],
                    "tolerance": c.tolerance,
                }
                for c in self.checks
            ],
        }


@dataclass
class ValidationReport:
    """Aggregate of every figure (and A/B comparison) of one run."""

    figures: list[FigureReport] = field(default_factory=list)
    ab_rows: list = field(default_factory=list)  # ABRow instances (repro.validation.ab)

    def add(self, report: FigureReport) -> None:
        self.figures.append(report)

    @property
    def passed(self) -> bool:
        """Every envelope check and every A/B row passed."""
        return all(f.passed for f in self.figures) and all(
            row.passed for row in self.ab_rows
        )

    @property
    def num_checks(self) -> int:
        return sum(len(f.checks) for f in self.figures)

    # ------------------------------------------------------------- rendering
    def to_markdown(self) -> str:
        """Markdown tables: one per figure, plus the A/B table."""
        lines: list[str] = []
        for fig in self.figures:
            spec = get_figure(fig.result.figure)
            mode = "quick" if fig.result.quick else "full"
            lines.append(
                f"### {spec.title} (`{fig.result.figure}`, {mode}, "
                f"{fig.result.trials} trials/point)"
            )
            lines.append("")
            header = [spec.axis] + [
                f"{m} (95% CI)" for m in spec.metrics
            ]
            if fig.compared:
                header.append("envelope gate")
            lines.append("| " + " | ".join(header) + " |")
            lines.append("|" + "---|" * len(header))
            checks_by_value = {c.axis_value: c for c in fig.checks}
            for point in fig.result.points:
                row = [f"{point.axis_value:g}"]
                for metric in spec.metrics:
                    row.append(point.summary(metric).format_value())
                if fig.compared:
                    check = checks_by_value.get(point.axis_value)
                    row.append(
                        "-" if check is None else ("pass" if check.passed else "**FAIL**")
                    )
                lines.append("| " + " | ".join(row) + " |")
            lines.append("")
        if self.ab_rows:
            lines.append("### Seed-paired fast-path equivalence (A/B)")
            lines.append("")
            lines.append(
                "| figure | variant | metric | mean delta | max abs delta | verdict |"
            )
            lines.append("|---|---|---|---|---|---|")
            for row in self.ab_rows:
                lines.append(row.to_markdown_row())
            lines.append("")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "passed": self.passed,
            "figures": [f.to_dict() for f in self.figures],
            "ab": [row.to_dict() for row in self.ab_rows],
        }

    def save(self, path: str | Path) -> Path:
        """Write the report as JSON and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path
