"""Statistical summaries for Monte-Carlo figure validation.

Two metric families cover everything the figures report:

* **proportions** (packet error rate, preamble detection rate, BER, PDR,
  SoS ID detection): Bernoulli successes pooled over all trials of a grid
  point, summarized with a Wilson score interval.  Wilson is the standard
  choice for simulation validation (ns-3's release checks use it too)
  because unlike the Wald interval it behaves at the boundaries -- a run
  with 0 errors out of 200 bits still yields a meaningful, non-degenerate
  upper bound.  Because pooled outcomes cluster (bits within a packet,
  packets within a trial's channel realization), the pooled sample size
  is first deflated by an estimated :func:`design_effect` so the claimed
  95% coverage survives whole-packet failure modes.
* **continuous values** (goodput, median bitrate, latency, tone margin):
  per-trial values summarized with a normal-approximation interval of the
  mean (t would need scipy.stats at import time; with the >=2 trials the
  harness runs, z at the same confidence is marginally narrower and we
  widen envelopes by an explicit tolerance anyway).

Both summarize into :class:`MetricSummary`, the JSON-safe unit the
reports and the committed ``VALID_*.json`` envelopes are built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.jsonsafe import nan_to_none, none_to_nan

#: z for the default 95% confidence level.
DEFAULT_Z = 1.959963984540054


def wilson_interval(
    successes: int, trials: int, z: float = DEFAULT_Z
) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Returns ``(low, high)``; both ``nan`` when ``trials`` is zero.
    """
    if successes < 0 or trials < 0:
        raise ValueError("successes and trials must be non-negative")
    if successes > trials:
        raise ValueError(f"successes ({successes}) exceed trials ({trials})")
    if z <= 0:
        raise ValueError("z must be positive")
    if trials == 0:
        return float("nan"), float("nan")
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / trials + z2 / (4 * trials * trials))
    return max(0.0, center - margin), min(1.0, center + margin)


def normal_interval(
    mean: float, std: float, n: int, z: float = DEFAULT_Z
) -> tuple[float, float]:
    """Normal-approximation confidence interval of a sample mean."""
    if n <= 0:
        return float("nan"), float("nan")
    if n == 1 or not math.isfinite(std):
        # A single trial (or undefined spread) carries no interval
        # information; degenerate interval at the point estimate.
        return mean, mean
    margin = z * std / math.sqrt(n)
    return mean - margin, mean + margin


def _mean_std(values: list[float]) -> tuple[float, float]:
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return float("nan"), float("nan")
    mean = sum(finite) / len(finite)
    var = sum((v - mean) ** 2 for v in finite) / len(finite)
    return mean, math.sqrt(var)


@dataclass(frozen=True)
class MetricSummary:
    """Monte-Carlo summary of one metric at one grid point.

    Attributes
    ----------
    name:
        Metric identifier (``"coded_ber"``, ``"goodput_bps"``, ...).
    kind:
        ``"proportion"`` (Wilson CI over pooled Bernoulli counts) or
        ``"continuous"`` (normal CI of the per-trial mean).
    mean:
        Point estimate: pooled proportion, or mean of the trial values.
    std:
        Population standard deviation of the per-trial values.
    ci_low, ci_high:
        95% confidence interval bounds.
    n_trials:
        Number of Monte-Carlo trials behind the summary.
    successes, total:
        Pooled Bernoulli counts (proportions only; 0/0 otherwise).
    """

    name: str
    kind: str
    mean: float
    std: float
    ci_low: float
    ci_high: float
    n_trials: int
    successes: int = 0
    total: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("proportion", "continuous"):
            raise ValueError(f"unknown metric kind {self.kind!r}")

    @property
    def ci_width(self) -> float:
        """Width of the confidence interval."""
        return self.ci_high - self.ci_low

    def format_value(self) -> str:
        """``mean [ci_low, ci_high]`` with kind-appropriate precision."""
        if self.kind == "proportion":
            return f"{self.mean:.4f} [{self.ci_low:.4f}, {self.ci_high:.4f}]"
        return f"{self.mean:.1f} [{self.ci_low:.1f}, {self.ci_high:.1f}]"

    def to_dict(self) -> dict:
        """JSON-safe dictionary form (NaN kept: json emits ``NaN`` tokens
        only with ``allow_nan``, so the writers replace them)."""
        data = {
            "name": self.name,
            "kind": self.kind,
            "mean": nan_to_none(self.mean),
            "std": nan_to_none(self.std),
            "ci_low": nan_to_none(self.ci_low),
            "ci_high": nan_to_none(self.ci_high),
            "n_trials": self.n_trials,
        }
        if self.kind == "proportion":
            data["successes"] = self.successes
            data["total"] = self.total
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MetricSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        return cls(
            name=str(data["name"]),
            kind=str(data["kind"]),
            mean=none_to_nan(data["mean"]),
            std=none_to_nan(data["std"]),
            ci_low=none_to_nan(data["ci_low"]),
            ci_high=none_to_nan(data["ci_high"]),
            n_trials=int(data["n_trials"]),
            successes=int(data.get("successes", 0)),
            total=int(data.get("total", 0)),
        )


def design_effect(counts: list[tuple[int, int]]) -> float:
    """Rao-Scott-style variance inflation for clustered Bernoulli counts.

    The pooled outcomes are *not* independent draws: bits share a packet
    (a failed packet flips all of its bits at once) and packets share a
    trial's channel realization.  Treating them as independent would make
    the Wilson interval far too narrow exactly where whole-packet loss
    dominates.  The design effect is estimated from the data itself as
    the ratio of the observed between-trial variance of the proportions
    to the variance a binomial of the same size would show; dividing the
    pooled sample size by it yields the effective number of independent
    draws.  Clamped to >= 1 so the corrected interval can never be
    narrower than the naive one, and to 1 when fewer than two trials (or
    a degenerate 0/1 proportion) leave nothing to estimate from.
    """
    trials = [(s, t) for s, t in counts if t > 0]
    successes = sum(s for s, _ in trials)
    total = sum(t for _, t in trials)
    if len(trials) < 2 or total == 0:
        return 1.0
    p = successes / total
    if p <= 0.0 or p >= 1.0:
        return 1.0
    per_trial = [s / t for s, t in trials]
    mean = sum(per_trial) / len(per_trial)
    observed = sum((v - mean) ** 2 for v in per_trial) / (len(per_trial) - 1)
    binomial = sum(p * (1 - p) / t for _, t in trials) / len(trials)
    if binomial <= 0.0 or observed <= 0.0:
        return 1.0
    return max(1.0, observed / binomial)


def summarize_proportion(
    name: str, counts: list[tuple[int, int]], z: float = DEFAULT_Z
) -> MetricSummary:
    """Summarize per-trial ``(successes, total)`` Bernoulli counts.

    The Wilson interval is computed over the pooled counts deflated by
    the :func:`design_effect` (bits cluster in packets, packets in
    trials; see there), while ``std`` reports the spread of the
    per-trial proportions so reports can show run-to-run variability
    alongside the pooled CI.
    """
    successes = sum(s for s, _ in counts)
    total = sum(t for _, t in counts)
    per_trial = [s / t for s, t in counts if t > 0]
    _, std = _mean_std(per_trial)
    mean = successes / total if total else float("nan")
    deff = design_effect(counts)
    effective_total = max(1, round(total / deff)) if total else 0
    effective_successes = min(effective_total, round(mean * effective_total)) if total else 0
    ci_low, ci_high = wilson_interval(effective_successes, effective_total, z=z)
    return MetricSummary(
        name=name,
        kind="proportion",
        mean=mean,
        std=std,
        ci_low=ci_low,
        ci_high=ci_high,
        n_trials=len(counts),
        successes=successes,
        total=total,
    )


def summarize_continuous(
    name: str, values: list[float], z: float = DEFAULT_Z
) -> MetricSummary:
    """Summarize per-trial continuous values (NaN trials dropped)."""
    mean, std = _mean_std(values)
    finite = sum(1 for v in values if math.isfinite(v))
    ci_low, ci_high = normal_interval(mean, std, finite, z=z)
    return MetricSummary(
        name=name,
        kind="continuous",
        mean=mean,
        std=std,
        ci_low=ci_low,
        ci_high=ci_high,
        n_trials=len(values),
    )


def intervals_overlap(
    low_a: float, high_a: float, low_b: float, high_b: float, slack: float = 0.0
) -> bool:
    """Whether ``[low_a, high_a]`` widened by ``slack`` meets ``[low_b, high_b]``.

    NaN bounds (no data) never overlap -- a point with no measurements
    must read as a failure, not a silent pass.
    """
    if any(math.isnan(v) for v in (low_a, high_a, low_b, high_b)):
        return False
    return (low_a - slack) <= high_b and (high_a + slack) >= low_b
