"""Monte-Carlo statistical validation of the paper-figure reproduction.

This package turns "does the reproduction still match the paper?" into a
CI-gated check, the way network simulators such as ns-3 validate
releases:

* :class:`~repro.validation.figures.FigureSpec` -- declarative registry
  of the paper's key figures (grid, metrics, headline metric, gate
  tolerance);
* :class:`~repro.validation.montecarlo.MonteCarloRunner` -- N seeded
  trials per grid point through :mod:`repro.experiments`, pooled into
  95% Wilson / normal confidence intervals per metric;
* :mod:`~repro.validation.report` -- committed ``VALID_<figure>.json``
  envelopes (the expected behaviour) plus JSON/markdown
  :class:`~repro.validation.report.ValidationReport` rendering, and the
  interval-overlap gate between a fresh run and the envelopes;
* :func:`~repro.validation.ab.ab_compare` -- seed-paired reruns of whole
  figures with ``use_fast_path=False`` or ``equalizer_solver="dense"``,
  confirming fast-path equivalence end to end rather than per kernel.

Driven by ``python -m repro.cli validate``.
"""

from repro.validation.ab import AB_TOLERANCES, AB_VARIANTS, ABRow, ab_compare
from repro.validation.figures import (
    FIGURE_REGISTRY,
    FigureSpec,
    TrialOutcome,
    available_figures,
    get_figure,
)
from repro.validation.montecarlo import (
    FigureResult,
    MonteCarloRunner,
    PointEstimate,
    summarize_point,
)
from repro.validation.report import (
    FigureReport,
    PointCheck,
    ValidationReport,
    check_against_envelope,
    load_envelope,
    valid_json_path,
    write_envelope,
)
from repro.validation.stats import (
    MetricSummary,
    intervals_overlap,
    normal_interval,
    summarize_continuous,
    summarize_proportion,
    wilson_interval,
)

__all__ = [
    "AB_TOLERANCES",
    "AB_VARIANTS",
    "ABRow",
    "FIGURE_REGISTRY",
    "FigureReport",
    "FigureResult",
    "FigureSpec",
    "MetricSummary",
    "MonteCarloRunner",
    "PointCheck",
    "PointEstimate",
    "TrialOutcome",
    "ValidationReport",
    "ab_compare",
    "available_figures",
    "check_against_envelope",
    "get_figure",
    "intervals_overlap",
    "load_envelope",
    "normal_interval",
    "summarize_continuous",
    "summarize_point",
    "summarize_proportion",
    "valid_json_path",
    "wilson_interval",
    "write_envelope",
]
