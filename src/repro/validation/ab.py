"""Seed-paired A/B comparison: fast paths vs reference paths, end to end.

The per-kernel golden tests (``tests/test_fastpath_golden.py``) pin each
fast implementation to its reference at the function level; this module
closes the remaining gap by rerunning *whole figures* seed-paired -- the
same scenarios, the same seeds, only the implementation flag flipped --
and comparing the resulting link metrics pairwise:

* ``"fast-path"``: ``Scenario.use_fast_path=False`` swaps every channel
  onto the retained ``fftconvolve`` pipeline.
* ``"solver"``: ``ModemSpec.equalizer_solver="dense"`` swaps the receive
  equalizer onto the retained O(n^3) Toeplitz solve.

Because both references agree with the fast paths to ~1e-9 of the signal
and bit decisions have margins orders of magnitude larger, a seed-paired
rerun is expected to make *identical* decisions packet for packet; the
default tolerances allow less than one flipped decision per hundred and
exist only so a single genuinely borderline packet cannot flake CI.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.experiments.scenario import Scenario
from repro.validation.figures import FigureSpec, get_figure, link_outcome
from repro.validation.montecarlo import MonteCarloRunner
from repro.validation.stats import nan_to_none

#: Scenario transforms selecting the reference implementation per variant.
AB_VARIANTS: dict[str, Callable[[Scenario], Scenario]] = {
    "fast-path": lambda s: s.replace(use_fast_path=False),
    "solver": lambda s: s.replace(
        modem=dataclasses.replace(s.modem, equalizer_solver="dense")
    ),
}

#: Default per-metric pass thresholds on the maximum absolute paired
#: difference of the metric's per-trial value.  Decisions are expected to
#: be identical (delta exactly 0.0); 0.01 tolerates a lone borderline
#: packet in a 100-packet campaign without masking real divergence.
AB_TOLERANCES: dict[str, float] = {
    "coded_ber": 0.01,
    "per": 0.01,
    "detection_rate": 0.01,
}


@dataclass(frozen=True)
class ABRow:
    """Paired comparison of one metric between fast and reference runs."""

    figure: str
    variant: str
    metric: str
    n_pairs: int
    mean_delta: float
    max_abs_delta: float
    tolerance: float

    @property
    def passed(self) -> bool:
        """Whether the paired runs agree within tolerance."""
        return self.max_abs_delta <= self.tolerance

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "variant": self.variant,
            "metric": self.metric,
            "n_pairs": self.n_pairs,
            "mean_delta": nan_to_none(self.mean_delta),
            "max_abs_delta": nan_to_none(self.max_abs_delta),
            "tolerance": self.tolerance,
            "passed": self.passed,
        }

    def to_markdown_row(self) -> str:
        verdict = "pass" if self.passed else "**FAIL**"
        return (
            f"| {self.figure} | {self.variant} | {self.metric} | "
            f"{self.mean_delta:+.2e} | {self.max_abs_delta:.2e} | {verdict} |"
        )

    def describe(self) -> str:
        status = "ok" if self.passed else "FAIL"
        return (
            f"{self.figure}/{self.variant}/{self.metric}: "
            f"max |delta| {self.max_abs_delta:.2e} over {self.n_pairs} pairs "
            f"(tol {self.tolerance:g}) -> {status}"
        )


def _metric_value(outcome, metric: str) -> float:
    if metric in outcome.counts:
        successes, total = outcome.counts[metric]
        return successes / total if total else float("nan")
    return float(outcome.values[metric])


def ab_compare(
    figure: FigureSpec | str,
    variant: str = "fast-path",
    trials: int = 3,
    base_seed: int = 0,
    quick: bool = False,
    max_workers: int | None = None,
    metrics: tuple[str, ...] = ("coded_ber", "per", "detection_rate"),
    tolerances: dict[str, float] | None = None,
    runner: MonteCarloRunner | None = None,
) -> list[ABRow]:
    """Rerun a link figure seed-paired with a reference variant.

    Both scenario sets (fast and reference) go through the runner's
    memoizing record executor, so the pairing stays trivially aligned,
    the pool is shared, and -- when ``runner`` is the same instance a
    Monte-Carlo pass already used -- the baseline records are reused
    instead of re-simulated (only the reference variant runs).  When
    ``runner`` is given it supplies trials/base_seed/max_workers and the
    corresponding arguments here are ignored.  Returns one
    :class:`ABRow` per metric.
    """
    spec = get_figure(figure) if isinstance(figure, str) else figure
    if spec.kind != "link":
        raise ValueError(
            f"ab_compare needs a link figure; {spec.name} is {spec.kind!r}"
        )
    try:
        transform = AB_VARIANTS[variant]
    except KeyError:
        raise ValueError(
            f"unknown variant {variant!r}; known: {', '.join(sorted(AB_VARIANTS))}"
        ) from None
    tolerances = dict(AB_TOLERANCES, **(tolerances or {}))

    mc = runner if runner is not None else MonteCarloRunner(
        trials=trials, base_seed=base_seed, max_workers=max_workers
    )
    baseline = mc.scenarios_for(spec, quick=quick)
    reference = [transform(scenario) for scenario in baseline]
    records = mc.run_link_records(baseline + reference)
    base_records = records[: len(baseline)]
    ref_records = records[len(baseline):]

    rows = []
    for metric in metrics:
        deltas = []
        for base_record, ref_record in zip(base_records, ref_records):
            base_value = _metric_value(link_outcome(base_record), metric)
            ref_value = _metric_value(link_outcome(ref_record), metric)
            deltas.append(base_value - ref_value)
        finite = [d for d in deltas if d == d]  # drop NaN pairs (no data)
        mean_delta = sum(finite) / len(finite) if finite else float("nan")
        max_abs = max((abs(d) for d in finite), default=float("nan"))
        rows.append(
            ABRow(
                figure=spec.name,
                variant=variant,
                metric=metric,
                n_pairs=len(deltas),
                mean_delta=mean_delta,
                max_abs_delta=max_abs,
                tolerance=tolerances.get(metric, 0.01),
            )
        )
    return rows
