"""Monte-Carlo execution of figure specs with confidence intervals.

:class:`MonteCarloRunner` turns a :class:`~repro.validation.figures.\
FigureSpec` into a :class:`FigureResult`: every grid point is simulated
``trials`` times with deterministic per-(point, trial) seeds, the raw
Bernoulli counts and continuous values are pooled, and each metric is
summarized into a :class:`~repro.validation.stats.MetricSummary` with a
95% Wilson (proportions) or normal (continuous) confidence interval.

Link figures expand into ordinary :class:`~repro.experiments.Scenario`
grids and run through :class:`~repro.experiments.ExperimentRunner`, so
they inherit its process-pool parallelism and on-disk result cache; SoS
and network figures run their trials in-process (each trial is already a
whole simulation, and both are cheap relative to the link PHY).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.experiments.runner import ExperimentRunner
from repro.validation.figures import (
    FigureSpec,
    TrialOutcome,
    get_figure,
    link_outcome,
    link_scenario,
    run_cc_trial,
    run_faults_trial,
    run_net_trial,
    run_sos_trial,
)
from repro.validation.stats import (
    MetricSummary,
    summarize_continuous,
    summarize_proportion,
)


@dataclass(frozen=True)
class PointEstimate:
    """Monte-Carlo summaries of every metric at one grid point."""

    axis_value: float
    n_trials: int
    summaries: dict[str, MetricSummary]

    def summary(self, metric: str) -> MetricSummary:
        """Summary of one metric; raises for unknown names."""
        try:
            return self.summaries[metric]
        except KeyError:
            raise KeyError(
                f"no metric {metric!r} at axis value {self.axis_value:g}; "
                f"have: {', '.join(sorted(self.summaries))}"
            ) from None

    def to_dict(self) -> dict:
        return {
            "axis_value": self.axis_value,
            "n_trials": self.n_trials,
            "summaries": {name: s.to_dict() for name, s in self.summaries.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PointEstimate":
        return cls(
            axis_value=float(data["axis_value"]),
            n_trials=int(data["n_trials"]),
            summaries={
                name: MetricSummary.from_dict(entry)
                for name, entry in data["summaries"].items()
            },
        )


@dataclass(frozen=True)
class FigureResult:
    """One figure's Monte-Carlo run: per-point metric summaries."""

    figure: str
    axis: str
    trials: int
    quick: bool
    points: tuple[PointEstimate, ...]
    elapsed_s: float = field(default=0.0, compare=False)

    def point(self, axis_value: float) -> PointEstimate:
        """The estimate at one axis value; raises if absent."""
        for point in self.points:
            if point.axis_value == axis_value:
                return point
        raise LookupError(
            f"figure {self.figure} has no point at {axis_value:g}; "
            f"axis values: {[p.axis_value for p in self.points]}"
        )

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "axis": self.axis,
            "trials": self.trials,
            "quick": self.quick,
            "points": [p.to_dict() for p in self.points],
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FigureResult":
        return cls(
            figure=str(data["figure"]),
            axis=str(data["axis"]),
            trials=int(data["trials"]),
            quick=bool(data["quick"]),
            points=tuple(PointEstimate.from_dict(p) for p in data["points"]),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )


def summarize_point(
    axis_value: float, outcomes: list[TrialOutcome]
) -> PointEstimate:
    """Pool one grid point's trial outcomes into metric summaries."""
    summaries: dict[str, MetricSummary] = {}
    if outcomes:
        for name in outcomes[0].counts:
            counts = [tuple(o.counts[name]) for o in outcomes]
            summaries[name] = summarize_proportion(name, counts)
        for name in outcomes[0].values:
            values = [float(o.values[name]) for o in outcomes]
            summaries[name] = summarize_continuous(name, values)
    return PointEstimate(
        axis_value=float(axis_value), n_trials=len(outcomes), summaries=summaries
    )


class MonteCarloRunner:
    """Runs figure specs as seeded Monte-Carlo campaigns.

    Parameters
    ----------
    trials:
        Monte-Carlo repetitions per grid point.
    base_seed:
        Offset added to every per-(point, trial) seed, so independent
        campaigns can be drawn without touching the specs.
    max_workers, cache_dir:
        Forwarded to the :class:`ExperimentRunner` behind link figures.
    progress:
        Optional callback ``progress(message)`` invoked per grid point
        (and per completed link scenario batch) for CLI feedback.
    """

    def __init__(
        self,
        trials: int = 5,
        base_seed: int = 0,
        max_workers: int | None = None,
        cache_dir=None,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        if trials < 1:
            raise ValueError("trials must be at least 1")
        self.trials = int(trials)
        self.base_seed = int(base_seed)
        self.max_workers = max_workers
        self.cache_dir = cache_dir
        self.progress = progress
        # In-process record memo keyed by scenario hash, shared across
        # every run()/ab_compare call on this runner: figures with
        # identical grids (ber_vs_snr and throughput_vs_distance sweep the
        # same scenarios) and the A/B baselines reuse records instead of
        # re-simulating the link PHY.
        self._memo: dict[str, object] = {}

    def _emit(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    # ---------------------------------------------------------------- running
    def run(self, figure: FigureSpec | str, quick: bool = False) -> FigureResult:
        """Execute one figure and summarize it per grid point."""
        spec = get_figure(figure) if isinstance(figure, str) else figure
        started = time.perf_counter()
        grid = spec.grid(quick=quick)
        if spec.kind == "link":
            points = self._run_link(spec, grid, quick)
        else:
            executor = {
                "sos": run_sos_trial,
                "net": run_net_trial,
                "cc": run_cc_trial,
                "faults": run_faults_trial,
            }[spec.kind]
            points = []
            for axis_value in grid:
                outcomes = [
                    executor(spec, axis_value, trial, self.base_seed, quick)
                    for trial in range(self.trials)
                ]
                points.append(summarize_point(axis_value, outcomes))
                self._emit(
                    f"{spec.name}: {spec.axis}={axis_value:g} done "
                    f"({self.trials} trials)"
                )
        return FigureResult(
            figure=spec.name,
            axis=spec.axis,
            trials=self.trials,
            quick=bool(quick),
            points=tuple(points),
            elapsed_s=time.perf_counter() - started,
        )

    def run_many(
        self, figures, quick: bool = False
    ) -> list[FigureResult]:
        """Run several figures (names or specs) in order."""
        return [self.run(figure, quick=quick) for figure in figures]

    # ------------------------------------------------------------------- link
    def scenarios_for(
        self, spec: FigureSpec, grid=None, quick: bool = False
    ):
        """The seeded scenario grid of a link figure (points x trials)."""
        if spec.kind != "link":
            raise ValueError(f"figure {spec.name} is not a link figure")
        grid = spec.grid(quick=quick) if grid is None else grid
        return [
            link_scenario(spec, axis_value, trial, self.base_seed, quick)
            for axis_value in grid
            for trial in range(self.trials)
        ]

    def run_link_records(self, scenarios) -> list:
        """Run link scenarios through the runner, reusing memoized records.

        Only scenarios whose hash is not in the in-process memo are
        simulated; results come back in input order.
        """
        pending = []
        seen = set()
        for scenario in scenarios:
            key = scenario.scenario_hash()
            if key not in self._memo and key not in seen:
                pending.append(scenario)
                seen.add(key)
        if pending:
            runner = ExperimentRunner(
                max_workers=self.max_workers, cache_dir=self.cache_dir
            )
            # Stream rather than block: each record enters the memo the
            # moment it completes, so a progress consumer (or an exception
            # later in the sweep) still leaves the finished prefix reusable.
            for record in runner.iter_run(pending, progress=self.progress):
                self._memo[record.scenario.scenario_hash()] = record
        return [self._memo[s.scenario_hash()] for s in scenarios]

    def _run_link(
        self, spec: FigureSpec, grid, quick: bool
    ) -> list[PointEstimate]:
        scenarios = self.scenarios_for(spec, grid, quick)
        known = sum(1 for s in scenarios if s.scenario_hash() in self._memo)
        records = self.run_link_records(scenarios)
        self._emit(
            f"{spec.name}: {len(scenarios)} scenarios "
            f"({known} reused from this run)"
        )
        points = []
        for index, axis_value in enumerate(grid):
            chunk = records[index * self.trials:(index + 1) * self.trials]
            outcomes = [link_outcome(record) for record in chunk]
            points.append(summarize_point(axis_value, outcomes))
        return points


__all__ = [
    "FigureResult",
    "MonteCarloRunner",
    "PointEstimate",
    "summarize_point",
]
