"""Declarative registry of the paper figures the validation harness gates.

A :class:`FigureSpec` encodes one figure as data: which simulation layer
produces it (``kind``), the swept axis and its grid, the fixed
parameters, which metrics are reported and which single *headline*
metric is gated against the committed envelope, plus the absolute
tolerance the gate adds around the envelope interval.

The registry deliberately mirrors the paper's key claims rather than
every panel:

``ber_vs_snr``
    Coded-stream BER (and the in-band SNR that drives it) versus range
    on the adaptive scheme -- the Fig. 8/12 family.
``throughput_vs_distance``
    Delivery-weighted goodput and selected bitrate versus range --
    the Fig. 12/13 family.
``sos_range``
    SoS beacon ID detection rate versus range at the beach site -- the
    section-3 claim that the 10 bps FSK beacon survives 100+ metres.
``net_pdr_vs_hops``
    End-to-end packet delivery ratio versus deployment length on a
    multi-hop line network with ARQ -- the repro.net extension of the
    link-layer claims.
``cc_fairness_vs_load``
    Jain fairness and horizon-normalized goodput versus offered load on
    the 24-flow shared-relay convergecast, under the fixed legacy window
    *and* the Reno controller in the same seeded trial -- the
    goodput-collapse-vs-stability claim of the congestion subsystem.
``resilience_vs_churn``
    Delivery-under-churn and SOS deadline-hit rate versus per-node crash
    rate, with the fault-repair machinery on vs off on the same seeded
    churn -- the resilience claim of the faults subsystem (repair must
    strictly dominate).

Each figure runs as ``trials`` seeded Monte-Carlo repetitions per grid
point; :mod:`repro.validation.montecarlo` owns the execution, this
module owns the specs and the per-kind trial executors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.experiments.scenario import ModemSpec, Scenario

#: Seed stride between grid points, so point seeds never collide with the
#: trial index range.  Prime to avoid aliasing against user base seeds.
SEED_STRIDE = 1009


@dataclass(frozen=True)
class TrialOutcome:
    """Raw metric samples produced by one Monte-Carlo trial.

    Attributes
    ----------
    counts:
        ``metric name -> (successes, total)`` Bernoulli counts for
        proportion metrics (pooled across trials by the runner).
    values:
        ``metric name -> value`` for continuous metrics.
    """

    counts: Mapping[str, tuple[int, int]]
    values: Mapping[str, float]

    def metric_names(self) -> tuple[str, ...]:
        return tuple(self.counts) + tuple(self.values)


@dataclass(frozen=True)
class FigureSpec:
    """One paper figure as a declarative Monte-Carlo specification.

    Attributes
    ----------
    name:
        Registry key; the committed envelope lives in ``VALID_<name>.json``.
    title:
        Human-readable figure title for reports.
    kind:
        ``"link"`` (scenario sweep through the experiment runner),
        ``"sos"`` (beacon broadcasts) or ``"net"`` (multi-hop runs).
    axis:
        Name of the swept parameter (``"distance_m"``, ``"num_nodes"``).
    values:
        Full grid of axis values.
    quick_values:
        Subset used by ``--quick``; must be a subset of ``values`` so
        quick runs reuse the same per-point seeds as full runs.
    params:
        Fixed parameters of the figure (site, scheme, packets per trial,
        ...); ``quick_*`` keys override their base key in quick mode.
    metrics:
        Metric names included in reports (must be produced by the
        executor of ``kind``).
    headline:
        The single metric gated against the committed envelope.
    tolerance:
        Absolute slack added around the envelope interval by the gate --
        in the headline metric's own units.
    """

    name: str
    title: str
    kind: str
    axis: str
    values: tuple
    quick_values: tuple
    metrics: tuple[str, ...]
    headline: str
    tolerance: float
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ("link", "sos", "net", "cc", "faults"):
            raise ValueError(f"unknown figure kind {self.kind!r}")
        if not set(self.quick_values) <= set(self.values):
            raise ValueError(
                f"quick_values of {self.name} must be a subset of values"
            )
        if self.headline not in self.metrics:
            raise ValueError(
                f"headline {self.headline!r} of {self.name} is not in metrics"
            )
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")

    def grid(self, quick: bool = False) -> tuple:
        """Axis values for a run (the quick subset in quick mode)."""
        return self.quick_values if quick else self.values

    def param(self, key: str, quick: bool = False):
        """Fixed parameter, honouring a ``quick_<key>`` override."""
        if quick and f"quick_{key}" in self.params:
            return self.params[f"quick_{key}"]
        return self.params[key]

    def point_seed(self, axis_value, trial: int, base_seed: int = 0) -> int:
        """Deterministic seed of one (grid point, trial) cell.

        Keyed by the value's index in the *full* grid so quick runs
        (which sweep a subset) land on the same seeds as full runs.
        """
        return base_seed + SEED_STRIDE * (self.values.index(axis_value) + 1) + trial


# ------------------------------------------------------------ link executor
def link_scenario(
    spec: FigureSpec, axis_value, trial: int, base_seed: int = 0, quick: bool = False
) -> Scenario:
    """Build the seeded :class:`Scenario` of one link-figure trial.

    The label deliberately names only the grid cell, not the figure:
    figures sweeping the same grid (``ber_vs_snr`` and
    ``throughput_vs_distance`` read different metrics off identical
    scenarios) then produce identical scenario hashes, so the Monte-Carlo
    runner's record memo and the on-disk cache simulate each cell once.
    """
    return Scenario(
        site=spec.param("site"),
        scheme=spec.param("scheme"),
        num_packets=int(spec.param("num_packets", quick=quick)),
        modem=ModemSpec(),
        seed=spec.point_seed(axis_value, trial, base_seed),
        label=f"mc:{spec.axis}={axis_value:g}#{trial}",
        **{spec.axis: axis_value},
    )


def link_outcome(record) -> TrialOutcome:
    """Extract metric samples from one link trial's :class:`RunRecord`.

    Bit totals are reconstructed from the protocol configuration (every
    packet of a scenario carries the same payload, and failed packets
    count all their bits as errors, exactly as ``LinkStatistics`` does),
    so Wilson intervals for the BER metrics run over genuine bit counts.
    """
    import math

    from repro.core.config import ProtocolConfig
    from repro.fec.convolutional import PuncturedConvolutionalCode

    scenario = record.scenario
    payload_bits = scenario.modem.payload_bits
    # Same code parameters as DataDecoder (ModemSpec keeps the protocol's
    # constraint length), so the reconstructed totals track any future
    # ProtocolConfig change instead of silently desynchronizing.
    code = PuncturedConvolutionalCode(
        constraint_length=ProtocolConfig().constraint_length
    )
    coded_per_packet = code.coded_length(payload_bits)
    packets = record.num_packets
    packet_errors = packets - record.delivered
    total_coded = packets * coded_per_packet
    total_payload = packets * payload_bits
    coded_errors = round(record.coded_bit_error_rate * total_coded)
    payload_errors = round(record.payload_bit_error_rate * total_payload)
    detections = round(record.preamble_detection_rate * packets)

    median_bps = record.median_bitrate_bps
    goodput = (
        median_bps * (1.0 - packet_errors / packets)
        if math.isfinite(median_bps)
        else float("nan")
    )
    snrs = [s for s in record.min_band_snrs_db if math.isfinite(s)]
    return TrialOutcome(
        counts={
            "per": (packet_errors, packets),
            "coded_ber": (coded_errors, total_coded),
            "payload_ber": (payload_errors, total_payload),
            "detection_rate": (detections, packets),
        },
        values={
            "median_bitrate_bps": median_bps,
            "goodput_bps": goodput,
            "min_band_snr_db": sum(snrs) / len(snrs) if snrs else float("nan"),
        },
    )


# ------------------------------------------------------------- sos executor
def run_sos_trial(
    spec: FigureSpec, axis_value, trial: int, base_seed: int = 0, quick: bool = False
) -> TrialOutcome:
    """Run one SoS-figure trial: repeated beacon broadcasts at one range."""
    from repro.app.sos import SosBeaconService
    from repro.environments.factory import build_channel
    from repro.environments.sites import SITE_CATALOG

    seed = spec.point_seed(axis_value, trial, base_seed)
    repetitions = int(spec.param("repetitions", quick=quick))
    user_id = int(spec.param("user_id"))
    channel = build_channel(
        site=SITE_CATALOG[spec.param("site")], distance_m=float(axis_value), seed=seed
    )
    service = SosBeaconService(
        channel, bit_rate_bps=int(spec.param("rate_bps")), seed=seed + 1
    )
    receptions = service.broadcast_many(user_id, repetitions)
    correct = sum(r.user_id == user_id for r in receptions)
    bit_errors = sum(r.bit_errors for r in receptions)
    confidence = sum(r.mean_confidence_db for r in receptions) / repetitions
    return TrialOutcome(
        counts={
            "id_detection_rate": (correct, repetitions),
            "sos_bit_error_rate": (bit_errors, 6 * repetitions),
        },
        values={"mean_confidence_db": confidence},
    )


# ------------------------------------------------------------- net executor
def run_net_trial(
    spec: FigureSpec, axis_value, trial: int, base_seed: int = 0, quick: bool = False
) -> TrialOutcome:
    """Run one network-figure trial: a full multi-hop simulation."""
    from repro.experiments.net_scenario import NetScenario

    num_nodes = int(axis_value)
    destination = spec.param("destination")
    if destination == "last":
        destination = f"n{num_nodes - 1}"
    scenario = NetScenario(
        site=spec.param("site"),
        topology=spec.param("topology"),
        num_nodes=num_nodes,
        spacing_m=float(spec.param("spacing_m")),
        comm_range_m=float(spec.param("comm_range_m")),
        routing=spec.param("routing"),
        link=spec.param("link"),
        arq=spec.param("arq"),
        traffic=spec.param("traffic"),
        rate_msgs_per_s=float(spec.param("rate_msgs_per_s")),
        duration_s=float(spec.param("duration_s", quick=quick)),
        destination=destination,
        seed=spec.point_seed(axis_value, trial, base_seed),
        label=f"{spec.name}@{axis_value}#{trial}",
    )
    result = scenario.run()
    metrics = result.metrics
    return TrialOutcome(
        counts={"pdr": (metrics.delivered, metrics.offered)},
        values={
            "mean_latency_s": metrics.mean_latency_s,
            "mean_hop_count": metrics.mean_hop_count,
        },
    )


# -------------------------------------------------------------- cc executor
def run_cc_trial(
    spec: FigureSpec, axis_value, trial: int, base_seed: int = 0, quick: bool = False
) -> TrialOutcome:
    """Run one congestion-control trial: fixed vs Reno on the same seed.

    Both controllers replay the identical seeded scenario (same topology,
    traffic arrivals and link draws schedule-permitting), so the paired
    metrics isolate the controller's effect.  Goodputs are normalized to
    the *longer* of the two run durations: a fixed-window run drains fast
    by aborting starved flows while Reno keeps pacing its backlog, and
    dividing each by its own duration would reward giving up early.
    """
    from repro.experiments.net_scenario import NetScenario

    scenario = NetScenario(
        site=spec.param("site"),
        topology=spec.param("topology"),
        num_nodes=int(spec.param("num_nodes")),
        spacing_m=float(spec.param("spacing_m")),
        comm_range_m=float(spec.param("comm_range_m")),
        routing=spec.param("routing"),
        link=spec.param("link"),
        arq=spec.param("arq"),
        window_size=int(spec.param("window_size")),
        timeout_s=float(spec.param("timeout_s")),
        max_retries=int(spec.param("max_retries")),
        num_flows=int(spec.param("num_flows")),
        queue_capacity=int(spec.param("queue_capacity")),
        traffic=spec.param("traffic"),
        rate_msgs_per_s=float(axis_value),
        duration_s=float(spec.param("duration_s", quick=quick)),
        seed=spec.point_seed(axis_value, trial, base_seed),
        label=f"{spec.name}@{axis_value}#{trial}",
    )
    results = {cc: scenario.replace(cc=cc).run() for cc in ("fixed", "reno")}
    horizon_s = max(result.duration_s for result in results.values())
    counts = {}
    values = {}
    for cc, result in results.items():
        metrics = result.metrics
        counts[f"pdr_{cc}"] = (metrics.delivered, metrics.offered)
        values[f"jain_{cc}"] = metrics.jain_fairness()
        delivered_bits = float(metrics.flow_delivered_bits().sum())
        values[f"goodput_{cc}_bps"] = delivered_bits / horizon_s
        values[f"retransmissions_{cc}"] = float(result.total_retransmissions)
    return TrialOutcome(counts=counts, values=values)


# ---------------------------------------------------------- faults executor
def run_faults_trial(
    spec: FigureSpec, axis_value, trial: int, base_seed: int = 0, quick: bool = False
) -> TrialOutcome:
    """Run one resilience trial: the same churn with repair on vs off.

    Both legs replay the identical seeded scenario and the identical
    expanded churn schedule; only the repair policy differs, so the
    paired metrics isolate the resilience machinery's effect.  Each leg
    runs twice -- a unicast data workload for delivery-under-churn and
    an SOS broadcast workload for deadline hits (an SOS that arrives
    after the deadline is counted as missed even though it was
    eventually delivered: a rescue that comes too late).
    """
    from repro.experiments.net_scenario import NetScenario
    from repro.faults import ChurnProcess, FaultSchedule

    seed = spec.point_seed(axis_value, trial, base_seed)
    duration = float(spec.param("duration_s", quick=quick))
    destination = spec.param("destination")
    deadline = float(spec.param("sos_deadline_s"))
    churn = ChurnProcess(
        rate_per_node_per_s=float(axis_value),
        mean_downtime_s=float(spec.param("mean_downtime_s")),
        end_s=duration,
        seed=seed + 17,
        # The SOS source and the data sink survive every trial, so the
        # A/B measures repair quality rather than endpoint luck.
        protect=("n0", destination),
    )
    base = NetScenario(
        site=spec.param("site"),
        topology=spec.param("topology"),
        num_nodes=int(spec.param("num_nodes")),
        spacing_m=float(spec.param("spacing_m")),
        comm_range_m=float(spec.param("comm_range_m")),
        routing=spec.param("routing"),
        link=spec.param("link"),
        arq=spec.param("arq"),
        traffic="poisson",
        rate_msgs_per_s=float(spec.param("rate_msgs_per_s")),
        duration_s=duration,
        destination=destination,
        seed=seed,
        label=f"{spec.name}@{axis_value}#{trial}",
    )
    counts: dict[str, tuple[int, int]] = {}
    values: dict[str, float] = {}
    for tag, repair in (("repair", True), ("norepair", False)):
        schedule = FaultSchedule(
            churn=churn,
            repair=repair,
            beacon_interval_s=float(spec.param("beacon_interval_s")),
            miss_threshold=int(spec.param("miss_threshold")),
        )
        data = base.with_faults(schedule).run().metrics
        counts[f"pdr_{tag}"] = (data.delivered, data.offered)
        if repair:
            values["mean_time_to_repair_s"] = data.mean_time_to_repair_s
        sos = (
            base.replace(traffic="sos", arq="none", destination=None)
            .with_faults(schedule)
            .run()
            .metrics
        )
        hits = sum(1 for record in sos.records if record.latency_s <= deadline)
        counts[f"sos_hit_{tag}"] = (hits, sos.offered)
    return TrialOutcome(counts=counts, values=values)


# ---------------------------------------------------------------- registry
FIGURE_REGISTRY: dict[str, FigureSpec] = {
    spec.name: spec
    for spec in (
        FigureSpec(
            name="ber_vs_snr",
            title="Coded BER vs in-band SNR (adaptive, lake, range sweep)",
            kind="link",
            axis="distance_m",
            values=(5.0, 10.0, 20.0, 30.0),
            quick_values=(5.0, 20.0),
            metrics=("coded_ber", "per", "detection_rate", "min_band_snr_db"),
            headline="coded_ber",
            tolerance=0.06,
            params={
                "site": "lake",
                "scheme": "adaptive",
                "num_packets": 10,
                "quick_num_packets": 4,
            },
        ),
        FigureSpec(
            name="throughput_vs_distance",
            title="Goodput vs distance (adaptive, lake)",
            kind="link",
            axis="distance_m",
            values=(5.0, 10.0, 20.0, 30.0),
            quick_values=(5.0, 20.0),
            metrics=("goodput_bps", "median_bitrate_bps", "per"),
            headline="goodput_bps",
            tolerance=120.0,
            params={
                "site": "lake",
                "scheme": "adaptive",
                "num_packets": 10,
                "quick_num_packets": 4,
            },
        ),
        FigureSpec(
            name="sos_range",
            title="SoS beacon ID detection vs range (beach, 10 bps FSK)",
            kind="sos",
            axis="distance_m",
            values=(40.0, 80.0, 110.0),
            quick_values=(40.0, 110.0),
            metrics=("id_detection_rate", "sos_bit_error_rate", "mean_confidence_db"),
            headline="id_detection_rate",
            tolerance=0.15,
            params={
                "site": "beach",
                "rate_bps": 10,
                "user_id": 27,
                "repetitions": 6,
                "quick_repetitions": 3,
            },
        ),
        FigureSpec(
            name="net_pdr_vs_hops",
            title="End-to-end PDR vs line-deployment length (multi-hop, ARQ)",
            kind="net",
            axis="num_nodes",
            values=(3, 5, 7),
            quick_values=(3, 5),
            metrics=("pdr", "mean_latency_s", "mean_hop_count"),
            headline="pdr",
            tolerance=0.15,
            params={
                "site": "lake",
                "topology": "line",
                "spacing_m": 6.0,
                "comm_range_m": 8.0,
                "routing": "shortest-path",
                "link": "calibrated",
                "arq": "go-back-n",
                "traffic": "cbr",
                "rate_msgs_per_s": 0.05,
                "duration_s": 120.0,
                "quick_duration_s": 60.0,
                "destination": "last",
            },
        ),
        FigureSpec(
            name="cc_fairness_vs_load",
            title="Jain fairness & goodput vs offered load "
                  "(24-flow convergecast, fixed vs Reno)",
            kind="cc",
            axis="rate_msgs_per_s",
            values=(0.005, 0.01, 0.02),
            quick_values=(0.01,),
            metrics=(
                "jain_reno", "jain_fixed",
                "goodput_reno_bps", "goodput_fixed_bps",
                "pdr_reno", "pdr_fixed",
                "retransmissions_reno", "retransmissions_fixed",
            ),
            headline="jain_reno",
            tolerance=0.15,
            params={
                "site": "lake",
                "topology": "grid",
                "num_nodes": 25,
                "spacing_m": 8.0,
                "comm_range_m": 12.0,
                "routing": "greedy",
                "link": "calibrated",
                "arq": "go-back-n",
                "window_size": 8,
                "timeout_s": 3.0,
                "max_retries": 20,
                "num_flows": 24,
                "queue_capacity": 6,
                "traffic": "poisson",
                "duration_s": 600.0,
                "quick_duration_s": 300.0,
            },
        ),
        FigureSpec(
            name="resilience_vs_churn",
            title="Delivery & SOS deadline hits vs churn rate "
                  "(repair on vs off, 25-node grid)",
            kind="faults",
            axis="churn_rate_per_s",
            values=(0.004, 0.008, 0.016),
            quick_values=(0.008,),
            metrics=(
                "pdr_repair", "pdr_norepair",
                "sos_hit_repair", "sos_hit_norepair",
                "mean_time_to_repair_s",
            ),
            headline="pdr_repair",
            tolerance=0.15,
            params={
                "site": "lake",
                "topology": "grid",
                "num_nodes": 25,
                "spacing_m": 8.0,
                "comm_range_m": 12.0,
                "routing": "shortest-path",
                "link": "calibrated",
                "arq": "go-back-n",
                "rate_msgs_per_s": 0.03,
                "duration_s": 600.0,
                "quick_duration_s": 300.0,
                # Outages (mean 120 s) are long against the 10 s
                # detection delay (5 s beacons x 2 misses), so most of
                # each outage is exploitable by repair; the 90 s SOS
                # deadline spans three 30 s broadcast periods, leaving
                # room for a recovery re-flood to still count as a hit.
                "destination": "n24",
                "mean_downtime_s": 120.0,
                "beacon_interval_s": 5.0,
                "miss_threshold": 2,
                "sos_deadline_s": 90.0,
            },
        ),
    )
}


def available_figures() -> tuple[str, ...]:
    """Registered figure names, sorted."""
    return tuple(sorted(FIGURE_REGISTRY))


def get_figure(name: str) -> FigureSpec:
    """Look up a figure spec, with a helpful error for typos."""
    try:
        return FIGURE_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown figure {name!r}; known: {', '.join(available_figures())}"
        ) from None
