"""The six real-world evaluation environments, as simulation presets.

Each :class:`~repro.environments.sites.Site` captures the acoustically
relevant attributes of one of the paper's locations (depth, bottom type,
reverberance, ambient noise, water activity), and
:func:`~repro.environments.factory.build_channel` turns a site plus a link
geometry into a ready-to-use :class:`~repro.channel.UnderwaterAcousticChannel`.
"""

from repro.environments.factory import build_channel, build_link_pair
from repro.environments.sites import (
    BAY,
    BEACH,
    BRIDGE,
    LAKE,
    MUSEUM,
    PARK,
    SITE_CATALOG,
    Site,
)

__all__ = [
    "Site",
    "SITE_CATALOG",
    "BRIDGE",
    "PARK",
    "LAKE",
    "BEACH",
    "MUSEUM",
    "BAY",
    "build_channel",
    "build_link_pair",
]
