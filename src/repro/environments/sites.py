"""Evaluation sites (Fig. 7 of the paper).

The paper evaluates in six environments; the parameters below encode what
the paper says about each (depth, activity, noise, reverberance) so the
simulated channels differ between sites in the same qualitative way the
measured ones do:

* **Bridge** -- quiet, still water; the cleanest channel and lowest noise.
* **Park** -- busy waterfront, boats and strong currents: more noise, more
  water motion.
* **Lake** -- fishing dock, 5 m deep, walls and pillars underwater: the
  most frequency-selective channel plus fishing/kayaking noise.
* **Beach** -- roughly 100 m of shallow water used for the long-range
  (low-rate FSK) experiments.
* **Museum** -- 9 m deep working dock with ships: deep-water experiments at
  different device depths, reverberant.
* **Bay** -- 15 m deep with waves; the deep-water hard-case experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_positive


@dataclass(frozen=True)
class Site:
    """Acoustic description of one evaluation environment.

    Attributes
    ----------
    name:
        Short identifier used in reports.
    description:
        The paper's characterization of the location.
    water_depth_m:
        Water-column depth at the measurement spot.
    max_range_m:
        Longest transmitter-receiver separation the site supports.
    noise_level_db:
        Ambient noise level (dB relative to the simulator reference).
    impulsive_noise_rate_hz:
        Rate of impulsive noise events (bubbles, boats, fishing activity).
    surface_loss_db, bottom_loss_db:
        Per-bounce reflection losses of the two boundaries.
    extra_reflectors:
        Number of additional discrete reflectors (walls, pillars, hulls).
    current_speed_m_s:
        Typical water-current speed, adding residual motion even for
        "static" experiments.
    """

    name: str
    description: str
    water_depth_m: float
    max_range_m: float
    noise_level_db: float
    impulsive_noise_rate_hz: float
    surface_loss_db: float
    bottom_loss_db: float
    extra_reflectors: int
    current_speed_m_s: float

    def __post_init__(self) -> None:
        require_positive(self.water_depth_m, "water_depth_m")
        require_positive(self.max_range_m, "max_range_m")


BRIDGE = Site(
    name="bridge",
    description="Under a bridge; quiet location with still waters (20 m span).",
    water_depth_m=3.0,
    max_range_m=20.0,
    noise_level_db=-40.0,
    impulsive_noise_rate_hz=0.2,
    surface_loss_db=1.5,
    bottom_loss_db=7.0,
    extra_reflectors=1,
    current_speed_m_s=0.02,
)

PARK = Site(
    name="park",
    description="Waterfront of a park (40 m); busy with boats and strong currents.",
    water_depth_m=4.0,
    max_range_m=40.0,
    noise_level_db=-34.0,
    impulsive_noise_rate_hz=1.5,
    surface_loss_db=1.5,
    bottom_loss_db=6.0,
    extra_reflectors=2,
    current_speed_m_s=0.15,
)

LAKE = Site(
    name="lake",
    description="Fishing dock by a lake (30 m, 5 m deep); busy with fishing and kayaking; "
                "underwater walls and pillars cause strong frequency selectivity.",
    water_depth_m=5.0,
    max_range_m=30.0,
    noise_level_db=-33.0,
    impulsive_noise_rate_hz=1.5,
    surface_loss_db=1.0,
    bottom_loss_db=3.0,
    extra_reflectors=6,
    current_speed_m_s=0.1,
)

BEACH = Site(
    name="beach",
    description="Waterfront roughly 100 m long, used for long-range experiments.",
    water_depth_m=3.5,
    max_range_m=115.0,
    noise_level_db=-40.0,
    impulsive_noise_rate_hz=0.5,
    surface_loss_db=1.0,
    bottom_loss_db=6.0,
    extra_reflectors=1,
    current_speed_m_s=0.08,
)

MUSEUM = Site(
    name="museum",
    description="Highly occupied dock for boats and ships, 9 m deep; depth experiments.",
    water_depth_m=9.0,
    max_range_m=20.0,
    noise_level_db=-34.0,
    impulsive_noise_rate_hz=1.0,
    surface_loss_db=1.0,
    bottom_loss_db=2.5,
    extra_reflectors=5,
    current_speed_m_s=0.05,
)

BAY = Site(
    name="bay",
    description="15 m deep bay with waves; deep-water experiments from a kayak.",
    water_depth_m=15.0,
    max_range_m=20.0,
    noise_level_db=-34.0,
    impulsive_noise_rate_hz=1.2,
    surface_loss_db=2.5,
    bottom_loss_db=5.0,
    extra_reflectors=2,
    current_speed_m_s=0.2,
)

#: All sites keyed by name.
SITE_CATALOG: dict[str, Site] = {
    site.name: site for site in (BRIDGE, PARK, LAKE, BEACH, MUSEUM, BAY)
}
