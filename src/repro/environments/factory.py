"""Build simulated channels for a site and link geometry."""

from __future__ import annotations

import numpy as np

from repro.channel.channel import UnderwaterAcousticChannel
from repro.channel.motion import STATIC_MOTION, MotionModel
from repro.channel.multipath import ImageMethodGeometry, MultipathModel
from repro.channel.noise import AmbientNoiseModel
from repro.devices.case import SOFT_POUCH, WaterproofCase
from repro.devices.models import GALAXY_S9, DeviceModel
from repro.environments.sites import LAKE, Site
from repro.utils.rng import ensure_rng


def build_noise_model(site: Site) -> AmbientNoiseModel:
    """Return the ambient noise model for a site."""
    return AmbientNoiseModel(
        level_db=site.noise_level_db,
        impulsive_rate_hz=site.impulsive_noise_rate_hz,
    )


def build_channel(
    site: Site = LAKE,
    distance_m: float = 5.0,
    tx_depth_m: float = 1.0,
    rx_depth_m: float | None = None,
    tx_device: DeviceModel = GALAXY_S9,
    rx_device: DeviceModel = GALAXY_S9,
    tx_case: WaterproofCase = SOFT_POUCH,
    rx_case: WaterproofCase = SOFT_POUCH,
    motion: MotionModel = STATIC_MOTION,
    orientation_deg: float = 0.0,
    seed: int | np.random.Generator | None = None,
) -> UnderwaterAcousticChannel:
    """Build the forward channel for one experiment configuration.

    Parameters mirror how the paper describes its deployments: devices are
    submerged to ``tx_depth_m`` / ``rx_depth_m`` (default 1 m, the most
    common configuration), separated horizontally by ``distance_m`` at the
    chosen ``site``, inside the chosen waterproof cases, possibly moving.
    """
    if distance_m <= 0:
        raise ValueError("distance_m must be positive")
    if distance_m > site.max_range_m:
        raise ValueError(
            f"distance {distance_m} m exceeds the usable range of the {site.name} "
            f"site ({site.max_range_m} m)"
        )
    rng = ensure_rng(seed)
    rx_depth = tx_depth_m if rx_depth_m is None else rx_depth_m
    clamp = lambda depth: float(np.clip(depth, 0.2, site.water_depth_m - 0.2))
    geometry = ImageMethodGeometry(
        water_depth_m=site.water_depth_m,
        tx_depth_m=clamp(tx_depth_m),
        rx_depth_m=clamp(rx_depth),
        horizontal_range_m=float(distance_m),
    )
    multipath = MultipathModel(
        geometry=geometry,
        surface_loss_db=site.surface_loss_db,
        bottom_loss_db=site.bottom_loss_db,
        extra_reflectors=site.extra_reflectors,
        seed=int(rng.integers(0, 2 ** 31 - 1)),
    )
    # Water currents add a small residual motion even in "static" setups.
    # Value equality, not identity: scenarios cross process boundaries
    # pickled (ExperimentRunner workers), and an unpickled STATIC_MOTION is
    # an equal-but-distinct object -- an ``is`` check here silently dropped
    # the currents substitution in pool workers, making parallel sweeps
    # differ from serial ones.
    effective_motion = motion
    if motion == STATIC_MOTION and site.current_speed_m_s > 0.05:
        effective_motion = MotionModel(
            name=f"{site.name} currents",
            acceleration_m_s2=site.current_speed_m_s,
            max_speed_m_s=site.current_speed_m_s,
            channel_drift_rate_per_s=0.05,
        )
    return UnderwaterAcousticChannel(
        multipath=multipath,
        noise=build_noise_model(site),
        tx_device=tx_device,
        rx_device=rx_device,
        tx_case=tx_case,
        rx_case=rx_case,
        motion=effective_motion,
        orientation_deg=orientation_deg,
        seed=rng,
    )


def build_link_pair(
    site: Site = LAKE,
    distance_m: float = 5.0,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> tuple[UnderwaterAcousticChannel, UnderwaterAcousticChannel]:
    """Return ``(forward, backward)`` channels for a full protocol exchange.

    The backward channel is derived with
    :meth:`~repro.channel.UnderwaterAcousticChannel.reverse`, so it shares
    the site characteristics but is deliberately *not* reciprocal.
    """
    rng = ensure_rng(seed)
    forward = build_channel(site=site, distance_m=distance_m, seed=rng, **kwargs)
    backward = forward.reverse(seed=rng)
    return forward, backward
