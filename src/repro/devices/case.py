"""Waterproof case models.

The paper uses two enclosures: a thin flexible PVC pouch (most
experiments) and a hard polycarbonate/TPU case rated to 15 m (the deep
water experiment of Fig. 11), noting that the hard case attenuates the
sound more.  Fig. 18 additionally compares a pouch with the air expelled
against one intentionally filled with air, finding the average 1-4 kHz
power not significantly different even though the fine structure of the
response changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.response import FrequencyResponse, ResponseNotch


@dataclass(frozen=True)
class WaterproofCase:
    """Acoustic model of a waterproof enclosure.

    Attributes
    ----------
    name:
        Label of the enclosure.
    attenuation_db:
        Broadband insertion loss of the case (applies to both transmit and
        receive directions).
    response:
        Additional frequency-dependent shaping (ripple caused by the case
        material and by any trapped air).
    rated_depth_m:
        Manufacturer depth rating; the simulator refuses to run a link with
        the devices deeper than their case rating.
    """

    name: str
    attenuation_db: float
    response: FrequencyResponse
    rated_depth_m: float

    def total_gain_db(self, frequencies_hz: np.ndarray | float) -> np.ndarray | float:
        """Return the case gain (negative = loss) at the given frequencies."""
        return self.response.gain_db(frequencies_hz) - self.attenuation_db

    def check_depth(self, depth_m: float) -> None:
        """Raise ``ValueError`` if ``depth_m`` exceeds the case rating."""
        if depth_m > self.rated_depth_m:
            raise ValueError(
                f"{self.name} is rated to {self.rated_depth_m} m but the device "
                f"is at {depth_m} m"
            )


def _ripple_response(label: str, ripple_db: float, period_hz: float, notch: float | None = None) -> FrequencyResponse:
    """A gently rippling response modelling case-induced comb effects."""
    freqs = tuple(float(f) for f in np.linspace(200.0, 8000.0, 14))
    gains = tuple(float(ripple_db * np.sin(2.0 * np.pi * f / period_hz)) for f in freqs)
    notches = (ResponseNotch(notch, 6.0, 300.0),) if notch else tuple()
    return FrequencyResponse(freqs, gains, notches, label=label)


#: No enclosure at all (used by in-air characterization).
NO_CASE = WaterproofCase(
    name="no case",
    attenuation_db=0.0,
    response=_ripple_response("no case", 0.0, 5000.0),
    rated_depth_m=0.5,
)

#: Thin flexible PVC pouch, air expelled (the default in the paper).
SOFT_POUCH = WaterproofCase(
    name="soft PVC pouch",
    attenuation_db=1.0,
    response=_ripple_response("soft pouch", 0.8, 2600.0),
    rated_depth_m=8.0,
)

#: The same pouch deliberately filled with air (Fig. 18).
AIR_FILLED_POUCH = WaterproofCase(
    name="air-filled PVC pouch",
    attenuation_db=1.6,
    response=_ripple_response("air-filled pouch", 2.2, 1400.0, notch=2850.0),
    rated_depth_m=8.0,
)

#: Hard polycarbonate/TPU diving case rated to 15 m (Fig. 11).
HARD_CASE = WaterproofCase(
    name="hard polycarbonate case",
    attenuation_db=5.0,
    response=_ripple_response("hard case", 1.5, 1900.0, notch=3400.0),
    rated_depth_m=15.0,
)

#: All modelled cases keyed by a short identifier.
CASE_CATALOG: dict[str, WaterproofCase] = {
    "none": NO_CASE,
    "soft_pouch": SOFT_POUCH,
    "air_filled_pouch": AIR_FILLED_POUCH,
    "hard_case": HARD_CASE,
}
