"""Mobile-device models: speakers, microphones and waterproof cases.

The paper evaluates four devices (Samsung Galaxy S9, Google Pixel 4,
OnePlus 8 Pro, Samsung Galaxy Watch 4) and two waterproof enclosures (a
thin PVC pouch and a hard polycarbonate case rated to 15 m).  The modules
here provide deterministic frequency-response models for each, so the
adaptation algorithm faces the same kind of device diversity the real
system does.
"""

from repro.devices.case import (
    AIR_FILLED_POUCH,
    HARD_CASE,
    NO_CASE,
    SOFT_POUCH,
    WaterproofCase,
)
from repro.devices.models import (
    DEVICE_CATALOG,
    GALAXY_S9,
    GALAXY_WATCH_4,
    ONEPLUS_8_PRO,
    PIXEL_4,
    DeviceModel,
)
from repro.devices.response import FrequencyResponse

__all__ = [
    "FrequencyResponse",
    "DeviceModel",
    "DEVICE_CATALOG",
    "GALAXY_S9",
    "PIXEL_4",
    "ONEPLUS_8_PRO",
    "GALAXY_WATCH_4",
    "WaterproofCase",
    "NO_CASE",
    "SOFT_POUCH",
    "HARD_CASE",
    "AIR_FILLED_POUCH",
]
