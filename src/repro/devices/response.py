"""Frequency-response curves for speakers, microphones and cases.

A :class:`FrequencyResponse` is a smooth magnitude response defined by
anchor points plus optional narrow notches.  Device speakers and
microphones are *not* designed for underwater use, so the paper observes
uneven responses with deep notches whose positions differ between device
models, plus a general roll-off above roughly 4 kHz (Fig. 3a).  The
response can be queried in dB, converted to an FIR filter, or applied
directly to a waveform.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import signal as sp_signal

from repro.dsp.filters import design_fir_from_response
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class ResponseNotch:
    """A narrow dip in a frequency response.

    Attributes
    ----------
    frequency_hz:
        Centre frequency of the notch.
    depth_db:
        Depth of the notch (positive number of dB *below* the surrounding
        response).
    width_hz:
        Approximate -3 dB width of the notch.
    """

    frequency_hz: float
    depth_db: float
    width_hz: float


@dataclass(frozen=True)
class FrequencyResponse:
    """A smooth magnitude response with optional notches.

    Parameters
    ----------
    anchor_frequencies_hz, anchor_gains_db:
        Control points of the smooth part of the response; values between
        anchors are interpolated linearly in the log-frequency domain.
    notches:
        Narrow Gaussian-shaped dips superimposed on the smooth response.
    label:
        Human-readable description used in reports.
    """

    anchor_frequencies_hz: tuple[float, ...]
    anchor_gains_db: tuple[float, ...]
    notches: tuple[ResponseNotch, ...] = field(default_factory=tuple)
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.anchor_frequencies_hz) != len(self.anchor_gains_db):
            raise ValueError("anchor frequencies and gains must have the same length")
        if len(self.anchor_frequencies_hz) < 2:
            raise ValueError("need at least two anchor points")
        freqs = np.asarray(self.anchor_frequencies_hz, dtype=float)
        if np.any(freqs <= 0) or np.any(np.diff(freqs) <= 0):
            raise ValueError("anchor frequencies must be positive and strictly increasing")

    def gain_db(self, frequencies_hz: np.ndarray | float) -> np.ndarray | float:
        """Return the response gain in dB at the given frequencies."""
        scalar = np.isscalar(frequencies_hz)
        freqs = np.atleast_1d(np.asarray(frequencies_hz, dtype=float))
        anchors = np.asarray(self.anchor_frequencies_hz, dtype=float)
        gains = np.asarray(self.anchor_gains_db, dtype=float)
        log_freqs = np.log10(np.maximum(freqs, 1.0))
        result = np.interp(log_freqs, np.log10(anchors), gains,
                           left=gains[0], right=gains[-1])
        for notch in self.notches:
            sigma = max(notch.width_hz / 2.355, 1.0)  # FWHM -> sigma
            result -= notch.depth_db * np.exp(-0.5 * ((freqs - notch.frequency_hz) / sigma) ** 2)
        if scalar:
            return float(result[0])
        return result

    def as_fir(self, sample_rate_hz: float = 48000.0, num_taps: int = 257) -> np.ndarray:
        """Return an FIR filter approximating this response."""
        require_positive(sample_rate_hz, "sample_rate_hz")
        grid = np.linspace(50.0, sample_rate_hz / 2.0 - 50.0, 256)
        return design_fir_from_response(grid, self.gain_db(grid), sample_rate_hz, num_taps)

    def apply(self, samples: np.ndarray, sample_rate_hz: float = 48000.0) -> np.ndarray:
        """Filter ``samples`` with this response (group delay compensated)."""
        taps = self.as_fir(sample_rate_hz)
        delay = (taps.size - 1) // 2
        padded = np.concatenate([np.asarray(samples, dtype=float), np.zeros(taps.size)])
        filtered = sp_signal.lfilter(taps, 1.0, padded)
        return filtered[delay:delay + len(samples)]

    def mean_gain_db(self, low_hz: float = 1000.0, high_hz: float = 4000.0) -> float:
        """Average gain over a band, used for power-budget calculations."""
        freqs = np.linspace(low_hz, high_hz, 64)
        return float(np.mean(self.gain_db(freqs)))

    def combined_with(self, other: "FrequencyResponse", label: str = "") -> "FrequencyResponse":
        """Return the cascade of two responses (gains added in dB)."""
        freqs = np.unique(np.concatenate([
            np.asarray(self.anchor_frequencies_hz), np.asarray(other.anchor_frequencies_hz)
        ]))
        gains = self.gain_db(freqs) + other.gain_db(freqs)
        return FrequencyResponse(
            anchor_frequencies_hz=tuple(float(f) for f in freqs),
            anchor_gains_db=tuple(float(g) for g in gains),
            notches=tuple(self.notches) + tuple(other.notches),
            label=label or f"{self.label}+{other.label}",
        )


def flat_response(gain_db: float = 0.0, label: str = "flat") -> FrequencyResponse:
    """Return a frequency-independent response with the given gain."""
    return FrequencyResponse(
        anchor_frequencies_hz=(20.0, 24000.0),
        anchor_gains_db=(gain_db, gain_db),
        label=label,
    )
