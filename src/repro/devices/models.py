"""Device catalog: the four mobile devices evaluated in the paper.

The responses below are *models*, not measurements: deterministic curves
chosen to reproduce the qualitative behaviour of Fig. 3a -- uneven in-band
gain, notches at device-specific frequencies, a roll-off above 4 kHz and a
lower output level for the smartwatch.  What matters for the reproduction
is that different transmit/receive device pairs see different frequency
selectivity, which is the condition the band-adaptation algorithm is
designed for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.devices.response import FrequencyResponse, ResponseNotch


@dataclass(frozen=True)
class DeviceModel:
    """A mobile device with a speaker, a microphone and a transmit budget.

    Attributes
    ----------
    name:
        Marketing name of the device.
    kind:
        ``"phone"`` or ``"watch"``.
    speaker_response, microphone_response:
        Frequency responses of the audio transducers (in water, inside the
        default pouch -- the case model adds its own attenuation on top).
    source_level_db:
        Transmit level at maximum volume, in dB relative to the simulator's
        reference amplitude at 1 m.
    microphone_noise_db:
        Self-noise floor of the microphone and ADC.
    directivity_loss_at_180_db:
        Additional loss when the devices face away from each other
        (azimuth 180 degrees); intermediate angles interpolate smoothly.
    """

    name: str
    kind: str
    speaker_response: FrequencyResponse
    microphone_response: FrequencyResponse
    source_level_db: float = 0.0
    microphone_noise_db: float = -60.0
    directivity_loss_at_180_db: float = 5.0

    def orientation_gain_db(self, azimuth_deg: float) -> float:
        """Return the gain penalty for a relative azimuth angle in degrees.

        0 degrees means speaker and microphone directly facing each other;
        180 degrees means facing away.  The penalty grows smoothly
        (raised-cosine) up to ``directivity_loss_at_180_db``.
        """
        azimuth = abs(float(azimuth_deg)) % 360.0
        if azimuth > 180.0:
            azimuth = 360.0 - azimuth
        fraction = 0.5 * (1.0 - np.cos(np.pi * azimuth / 180.0))
        return -self.directivity_loss_at_180_db * fraction

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _phone_response(label: str, notch_freqs: tuple[float, ...], tilt_db: float) -> FrequencyResponse:
    """Build a phone-class transducer response with device-specific notches."""
    notches = tuple(
        ResponseNotch(frequency_hz=f, depth_db=7.0 + 2.0 * (i % 3), width_hz=180.0 + 40.0 * i)
        for i, f in enumerate(notch_freqs)
    )
    return FrequencyResponse(
        anchor_frequencies_hz=(200.0, 800.0, 1200.0, 1800.0, 2500.0, 3500.0, 4000.0, 5000.0, 8000.0),
        anchor_gains_db=(
            -14.0,
            -7.0,
            -4.0,
            0.0 + tilt_db,
            1.0,
            -1.0 - tilt_db,
            -4.0,
            -14.0,
            -30.0,
        ),
        notches=notches,
        label=label,
    )


#: Samsung Galaxy S9 -- the workhorse device of the paper's evaluation.
GALAXY_S9 = DeviceModel(
    name="Samsung Galaxy S9",
    kind="phone",
    speaker_response=_phone_response("S9 speaker", (1850.0, 3100.0), tilt_db=0.5),
    microphone_response=_phone_response("S9 microphone", (2650.0,), tilt_db=0.0),
    source_level_db=0.0,
)

#: Google Pixel 4.
PIXEL_4 = DeviceModel(
    name="Google Pixel 4",
    kind="phone",
    speaker_response=_phone_response("Pixel 4 speaker", (1450.0, 2900.0), tilt_db=-0.5),
    microphone_response=_phone_response("Pixel 4 microphone", (3350.0,), tilt_db=0.5),
    source_level_db=-1.0,
)

#: OnePlus 8 Pro.
ONEPLUS_8_PRO = DeviceModel(
    name="OnePlus 8 Pro",
    kind="phone",
    speaker_response=_phone_response("OnePlus 8 Pro speaker", (2150.0, 3600.0), tilt_db=1.0),
    microphone_response=_phone_response("OnePlus 8 Pro microphone", (1700.0,), tilt_db=-0.5),
    source_level_db=-0.5,
)

#: Samsung Galaxy Watch 4 -- smaller transducers, lower output, earlier roll-off.
GALAXY_WATCH_4 = DeviceModel(
    name="Samsung Galaxy Watch 4",
    kind="watch",
    speaker_response=FrequencyResponse(
        anchor_frequencies_hz=(200.0, 800.0, 1500.0, 2500.0, 3200.0, 4000.0, 5000.0, 8000.0),
        anchor_gains_db=(-18.0, -8.0, -3.0, -2.0, -5.0, -10.0, -20.0, -36.0),
        notches=(ResponseNotch(2450.0, 9.0, 200.0),),
        label="Watch 4 speaker",
    ),
    microphone_response=_phone_response("Watch 4 microphone", (3050.0,), tilt_db=-1.0),
    source_level_db=-6.0,
)

#: All modelled devices, keyed by a short identifier.
DEVICE_CATALOG: dict[str, DeviceModel] = {
    "galaxy_s9": GALAXY_S9,
    "pixel_4": PIXEL_4,
    "oneplus_8_pro": ONEPLUS_8_PRO,
    "galaxy_watch_4": GALAXY_WATCH_4,
}
