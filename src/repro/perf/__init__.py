"""Microbenchmark harness and suites (``python -m repro.cli bench``).

The reproduction's north star includes running "as fast as the hardware
allows"; this package is how that stays measurable.  ``Benchmark`` /
``BenchResult`` time closures with warmup and repeats, suites cover the
FEC, OFDM, preamble, channel, end-to-end link and network-simulator hot
paths, and results persist as ``BENCH_<suite>.json`` files that CI uploads
per PR so the perf trajectory accumulates.
"""

from repro.perf.harness import (
    Benchmark,
    BenchResult,
    ComparisonRow,
    bench_json_path,
    compare_results,
    format_comparison,
    gate_comparison,
    format_results,
    load_results,
    write_results,
)
from repro.perf.suites import (
    SUITE_BUILDERS,
    available_suites,
    build_suite,
    run_suite,
)

__all__ = [
    "Benchmark",
    "BenchResult",
    "ComparisonRow",
    "SUITE_BUILDERS",
    "available_suites",
    "bench_json_path",
    "build_suite",
    "compare_results",
    "format_comparison",
    "gate_comparison",
    "format_results",
    "load_results",
    "run_suite",
    "write_results",
]
