"""Benchmark suites over the reproduction's hot paths.

Nine suites cover the layers every figure reproduction funnels through:

``fec``
    Viterbi decoding (vectorized and the retained loop reference, so the
    speedup is measured rather than asserted), punctured packet decoding
    and convolutional encoding.
``ofdm``
    OFDM symbol modulation and demodulation, single and batched.
``preamble``
    Two-stage preamble detection over a noisy capture: the FFT fast path
    (cached conjugate template spectrum + vectorized fine refinement) and
    the retained per-offset reference so the speedup stays measured.
``channel``
    The underwater channel propagation, both the frequency-domain fast
    path (cached transfer functions) and the retained ``fftconvolve``
    reference path.
``equalizer``
    MMSE equalizer fitting: Levinson fast path, the dense O(n^3)
    reference solve, and the batched ``fit_apply_many`` pipeline.
``link``
    End-to-end :class:`~repro.link.session.LinkSession` protocol
    exchanges, single-packet and through ``run_packets``.
``net``
    The multi-hop network simulator: raw scheduler churn plus complete
    50-node greedy-routing and 12-node flooding scenarios.
``trace``
    The trace pipeline: population-workload synthesis, captured network
    runs, trace replay, and JSONL/columnar (de)serialization round trips.
``records``
    The experiment-results pipeline: aggregating a synthetic 100k-record
    sweep through the columnar arenas vs the legacy per-record object
    path, plus ingestion and the ``.npz`` artifact round trip.

Each builder returns fully-constructed :class:`~repro.perf.harness.Benchmark`
closures: inputs are prepared at build time so the timed region contains
only the operation under test.  ``quick=True`` keeps workloads identical
(numbers stay comparable across modes) and only lowers the repeat counts.
"""

from __future__ import annotations

import numpy as np

from repro.perf.harness import Benchmark, BenchResult


def _repeats(quick: bool, full: int, fast: int = 2) -> int:
    return fast if quick else full


# ---------------------------------------------------------------------- suites
def fec_suite(quick: bool = False) -> list[Benchmark]:
    """FEC benchmarks: the 1024-bit decode the acceptance criteria track."""
    from repro.fec.convolutional import ConvolutionalCode, PuncturedConvolutionalCode
    from repro.fec.reference import reference_decode

    code = ConvolutionalCode()
    punctured = PuncturedConvolutionalCode()
    rng = np.random.default_rng(2022)
    num_data_bits = 506  # (506 + 6 tail) * 2 outputs = 1024 coded bits
    data = rng.integers(0, 2, num_data_bits)
    coded = code.encode(data)
    soft = (coded * 2.0 - 1.0) + rng.normal(0.0, 0.2, coded.size)
    packet_bits = rng.integers(0, 2, 16)
    packet_coded = punctured.encode(packet_bits).astype(float)

    benchmarks = [
        Benchmark(
            name="viterbi_decode_1024",
            func=lambda: code.decode(soft, num_data_bits=num_data_bits),
            items_per_call=coded.size,
            unit="coded bits",
            repeats=_repeats(quick, 20, 3),
            metadata={"coded_bits": int(coded.size), "implementation": "vectorized"},
        ),
        Benchmark(
            name="viterbi_decode_1024_reference",
            func=lambda: reference_decode(code, soft, num_data_bits=num_data_bits),
            items_per_call=coded.size,
            unit="coded bits",
            repeats=_repeats(quick, 5, 1),
            metadata={"coded_bits": int(coded.size), "implementation": "loop reference"},
        ),
        Benchmark(
            name="punctured_decode_packet",
            func=lambda: punctured.decode(packet_coded, num_data_bits=16),
            items_per_call=packet_coded.size,
            unit="coded bits",
            repeats=_repeats(quick, 20, 3),
            metadata={"payload_bits": 16, "coded_bits": int(packet_coded.size)},
        ),
        Benchmark(
            name="conv_encode_1024",
            func=lambda: code.encode(data),
            items_per_call=coded.size,
            unit="coded bits",
            repeats=_repeats(quick, 20, 3),
            metadata={"data_bits": num_data_bits},
        ),
    ]
    return benchmarks


def ofdm_suite(quick: bool = False) -> list[Benchmark]:
    """OFDM modulate/demodulate benchmarks (single symbol and batch)."""
    from repro.core.config import OFDMConfig
    from repro.core.ofdm import OFDMModulator

    config = OFDMConfig()
    modulator = OFDMModulator(config)
    rng = np.random.default_rng(7)
    bins = config.data_bins
    num_symbols = 32
    values = np.exp(2j * np.pi * rng.random((num_symbols, bins.size)))
    waveform = modulator.modulate_many(values, bins, add_cyclic_prefix=True).ravel()

    return [
        Benchmark(
            name="modulate_single_symbol",
            func=lambda: modulator.modulate(values[0], bins, add_cyclic_prefix=True),
            items_per_call=1,
            unit="symbols",
            repeats=_repeats(quick, 30, 3),
            metadata={"bins": int(bins.size)},
        ),
        Benchmark(
            name="modulate_batch",
            func=lambda: modulator.modulate_many(values, bins, add_cyclic_prefix=True),
            items_per_call=num_symbols,
            unit="symbols",
            repeats=_repeats(quick, 30, 3),
            metadata={"symbols": num_symbols, "bins": int(bins.size)},
        ),
        Benchmark(
            name="demodulate_batch",
            func=lambda: modulator.demodulate_many(waveform, num_symbols, bins),
            items_per_call=num_symbols,
            unit="symbols",
            repeats=_repeats(quick, 30, 3),
            metadata={"symbols": num_symbols, "bins": int(bins.size)},
        ),
    ]


def preamble_suite(quick: bool = False) -> list[Benchmark]:
    """Two-stage preamble detection over a noisy capture."""
    from repro.core.preamble import PreambleDetector, PreambleGenerator
    from repro.dsp.correlation import (
        normalized_cross_correlation,
        sliding_correlation_curve_reference,
    )

    generator = PreambleGenerator()
    detector = PreambleDetector(generator)
    # The generator memoizes its waveforms: detection loops must not pay a
    # fresh OFDM modulation (or even an allocation) per packet.
    template = generator.waveform()
    assert generator.waveform() is template, (
        "PreambleGenerator.waveform must return the cached array"
    )
    assert generator.base_symbol() is generator.base_symbol(), (
        "PreambleGenerator.base_symbol must return the cached array"
    )
    rng = np.random.default_rng(11)
    offset = 1500
    capture = rng.normal(0.0, 0.05, template.size * 3)
    capture[offset:offset + template.size] += template

    def detect_reference() -> None:
        """Seed detection pipeline: fresh template FFT + per-offset loop."""
        correlation = normalized_cross_correlation(capture, template)
        peak = int(np.argmax(correlation))
        half = detector.ofdm_config.symbol_length // 2
        sliding_correlation_curve_reference(
            capture, peak - half, peak + half,
            generator.symbol_length,
            detector.protocol_config.pn_signs_array,
            step=detector.protocol_config.sliding_correlation_step,
        )

    return [
        Benchmark(
            name="detect_preamble",
            func=lambda: detector.detect(capture),
            items_per_call=capture.size,
            unit="samples",
            repeats=_repeats(quick, 10, 2),
            metadata={"capture_samples": int(capture.size), "implementation": "fft fast path"},
        ),
        Benchmark(
            name="detect_preamble_reference",
            func=detect_reference,
            items_per_call=capture.size,
            unit="samples",
            repeats=_repeats(quick, 5, 1),
            metadata={"capture_samples": int(capture.size), "implementation": "loop reference"},
        ),
        Benchmark(
            name="extract_preamble_symbols",
            func=lambda: detector.extract_symbols(capture, offset),
            items_per_call=generator.num_symbols,
            unit="symbols",
            repeats=_repeats(quick, 30, 3),
            metadata={"symbols": int(generator.num_symbols)},
        ),
    ]


def channel_suite(quick: bool = False) -> list[Benchmark]:
    """Underwater channel propagation of a preamble-sized waveform."""
    from repro.core.preamble import PreambleGenerator
    from repro.environments.factory import build_channel
    from repro.environments.sites import SITE_CATALOG

    channel = build_channel(site=SITE_CATALOG["lake"], distance_m=10.0, seed=3)
    reference = build_channel(site=SITE_CATALOG["lake"], distance_m=10.0, seed=3)
    reference.use_fast_path = False
    waveform = PreambleGenerator().waveform()

    return [
        Benchmark(
            name="channel_transmit_preamble",
            func=lambda: channel.transmit(waveform, rng=np.random.default_rng(5)),
            items_per_call=waveform.size,
            unit="samples",
            repeats=_repeats(quick, 10, 2),
            metadata={"site": "lake", "distance_m": 10.0, "samples": int(waveform.size),
                      "implementation": "frequency-domain fast path"},
        ),
        Benchmark(
            name="channel_transmit_reference",
            func=lambda: reference.transmit(waveform, rng=np.random.default_rng(5)),
            items_per_call=waveform.size,
            unit="samples",
            repeats=_repeats(quick, 5, 1),
            metadata={"site": "lake", "distance_m": 10.0, "samples": int(waveform.size),
                      "implementation": "fftconvolve reference"},
        ),
    ]


def link_suite(quick: bool = False) -> list[Benchmark]:
    """End-to-end protocol exchange throughput (packets per second)."""
    from repro.environments.factory import build_link_pair
    from repro.environments.sites import SITE_CATALOG
    from repro.link.session import LinkSession

    forward, backward = build_link_pair(
        site=SITE_CATALOG["lake"], distance_m=5.0, seed=17
    )
    session = LinkSession(forward, backward, seed=18)
    batch_session = LinkSession(*build_link_pair(
        site=SITE_CATALOG["lake"], distance_m=5.0, seed=17
    ), seed=18)

    return [
        Benchmark(
            name="link_session_packet",
            func=lambda: session.run_packet(rng=np.random.default_rng(19)),
            items_per_call=1,
            unit="packets",
            repeats=_repeats(quick, 10, 2),
            metadata={"site": "lake", "distance_m": 5.0, "scheme": "adaptive"},
        ),
        Benchmark(
            name="link_session_packets_batch",
            func=lambda: batch_session.run_packets(8, rng=np.random.default_rng(19)),
            items_per_call=8,
            unit="packets",
            repeats=_repeats(quick, 5, 1),
            metadata={"site": "lake", "distance_m": 5.0, "scheme": "adaptive",
                      "packets_per_call": 8},
        ),
    ]


def equalizer_suite(quick: bool = False) -> list[Benchmark]:
    """MMSE equalizer fitting: Levinson fast path vs dense reference."""
    from repro.core.equalizer import MMSEEqualizer

    rng = np.random.default_rng(23)
    training = rng.normal(size=1027)
    reference = rng.normal(size=1027)
    bursts = [rng.normal(size=4135) for _ in range(8)]
    levinson = MMSEEqualizer(num_taps=480)
    dense = MMSEEqualizer(num_taps=480, solver="dense")
    batch = MMSEEqualizer(num_taps=480)

    return [
        Benchmark(
            name="equalizer_fit_480",
            func=lambda: levinson.fit(training, reference),
            items_per_call=480,
            unit="taps",
            repeats=_repeats(quick, 20, 3),
            metadata={"taps": 480, "training_samples": 1027, "solver": "levinson"},
        ),
        Benchmark(
            name="equalizer_fit_480_dense_reference",
            func=lambda: dense.fit(training, reference),
            items_per_call=480,
            unit="taps",
            repeats=_repeats(quick, 5, 1),
            metadata={"taps": 480, "training_samples": 1027, "solver": "dense"},
        ),
        Benchmark(
            name="equalizer_fit_apply_many_8",
            func=lambda: batch.fit_apply_many(bursts, slice(0, 1027), reference),
            items_per_call=8,
            unit="bursts",
            repeats=_repeats(quick, 10, 2),
            metadata={"taps": 480, "bursts": 8, "burst_samples": 4135},
        ),
    ]


def net_suite(quick: bool = False) -> list[Benchmark]:
    """Network-simulator benchmarks: scheduler churn and full scenarios.

    Scenario benchmarks rebuild the simulator inside the timed region on
    purpose -- a simulator is one-shot, and construction is part of the
    cost a sweep pays per point.
    """
    from repro.experiments.net_scenario import NetScenario
    from repro.net.packet import NetPacket
    from repro.net.routing import GreedyForwarding
    from repro.net.scheduler import Scheduler

    def scheduler_churn() -> None:
        scheduler = Scheduler()
        for index in range(20_000):
            scheduler.at(index * 1e-3, lambda: None)
        scheduler.run()

    fifty_node = NetScenario(
        num_nodes=50, topology="grid", routing="greedy", arq="go-back-n",
        duration_s=300.0, rate_msgs_per_s=0.01, destination="n0", seed=7,
    )
    flooding = NetScenario(
        num_nodes=12, topology="grid", routing="flooding", arq="none",
        traffic="sos", duration_s=90.0, seed=3,
    )
    # The headline scale target of the vectorized engine: 1000 nodes,
    # greedy convergecast to n0, no ARQ.  Pre-vectorization this scenario
    # was minutes; the acceptance bar is single-digit seconds.
    thousand_node = NetScenario(
        num_nodes=1000, topology="grid", routing="greedy", arq="none",
        rate_msgs_per_s=0.01, duration_s=60.0, destination="n0",
        ttl=80, seed=7,
    )
    # The committed 24-flow shared-relay convergecast under the Reno
    # controller (tests/data/net_multiflow_24flow.json): exercises the
    # per-flow controller hooks, adaptive RTO, relay-queue admission and
    # per-flow metrics accounting on every pump.
    multiflow = NetScenario(
        num_nodes=25, topology="grid", routing="greedy", traffic="poisson",
        num_flows=24, cc="reno", rate_msgs_per_s=0.01, duration_s=600.0,
        timeout_s=3.0, max_retries=20, window_size=8, queue_capacity=6,
        seed=1, label="multiflow-24flow",
    )
    # Churn-under-repair: a 24-node grid with seeded node churn and the
    # full resilience response (beacon ticks, topology eviction/re-entry,
    # route recomputation, proactive aborts).  Guards the cost of the
    # fault layer's hot hooks and of repeated routing.prepare calls; the
    # schedule is built inline so the benchmark stays self-contained.
    from repro.faults import ChurnProcess, FaultSchedule

    churn_repair = NetScenario(
        num_nodes=24, topology="grid", routing="shortest-path",
        arq="go-back-n", rate_msgs_per_s=0.03, duration_s=300.0,
        destination="n23", seed=7, label="churn-repair",
    ).with_faults(FaultSchedule(
        churn=ChurnProcess(
            rate_per_node_per_s=0.008, mean_downtime_s=60.0,
            end_s=300.0, seed=42, protect=("n0", "n23"),
        ),
        beacon_interval_s=5.0, miss_threshold=2,
    ))
    # Event-throughput probe: a mid-size ARQ scenario with a fixed event
    # count, reported as events/s so dispatch-layer regressions show up
    # independently of scenario shape.
    throughput_scenario = NetScenario(
        num_nodes=25, topology="grid", routing="greedy", arq="go-back-n",
        duration_s=240.0, rate_msgs_per_s=0.02, destination="n0", seed=13,
    )
    throughput_events = throughput_scenario.run().num_events

    # Micro-benchmark pair for the greedy hop choice: the production path
    # (vectorized distance sweep + memo against the topology version --
    # hop choices repeat constantly under ARQ traffic, which is exactly
    # what the memo exploits) vs the retained per-neighbour scalar
    # reference, on the same topology and (node, dest) pairs.
    hop_topology = NetScenario(num_nodes=100, topology="grid").build_topology()
    hop_nodes = hop_topology.names
    hop_packet = NetPacket(
        uid=0, kind="raw", source="n1", destination="n0", created_s=0.0
    )
    hop_routing = GreedyForwarding("distance")

    def greedy_hops_vectorized() -> None:
        for node in hop_nodes[1:]:
            hop_routing.next_hops(node, hop_packet, hop_topology)

    def greedy_hops_reference() -> None:
        for node in hop_nodes[1:]:
            hop_routing.next_hops_reference(node, hop_packet, hop_topology)

    return [
        Benchmark(
            name="scheduler_20k_events",
            func=scheduler_churn,
            items_per_call=20_000,
            unit="events",
            repeats=_repeats(quick, 10, 2),
            metadata={"events": 20_000},
        ),
        Benchmark(
            name="net_50node_greedy_calibrated",
            func=lambda: fifty_node.run(),
            items_per_call=1,
            unit="runs",
            repeats=_repeats(quick, 10, 2),
            metadata={"nodes": 50, "routing": "greedy", "link": "calibrated"},
        ),
        Benchmark(
            name="net_12node_flooding_sos",
            func=lambda: flooding.run(),
            items_per_call=1,
            unit="runs",
            repeats=_repeats(quick, 10, 2),
            metadata={"nodes": 12, "routing": "flooding", "traffic": "sos"},
        ),
        Benchmark(
            name="net_multiflow_24flow",
            func=lambda: multiflow.run(),
            items_per_call=1,
            unit="runs",
            repeats=_repeats(quick, 10, 2),
            metadata={
                "nodes": 25, "flows": 24, "cc": "reno",
                "queue_capacity": 6,
            },
        ),
        Benchmark(
            name="net_churn_repair",
            func=lambda: churn_repair.run(),
            items_per_call=1,
            unit="runs",
            repeats=_repeats(quick, 10, 2),
            metadata={
                "nodes": 24, "routing": "shortest-path",
                "churn_rate_per_s": 0.008, "repair": True,
            },
        ),
        Benchmark(
            name="net_1000node_greedy",
            func=lambda: thousand_node.run(),
            items_per_call=1,
            unit="runs",
            repeats=_repeats(quick, 5, 1),
            metadata={"nodes": 1000, "routing": "greedy", "arq": "none"},
        ),
        Benchmark(
            name="events_per_second",
            func=lambda: throughput_scenario.run(),
            items_per_call=throughput_events,
            unit="events",
            repeats=_repeats(quick, 10, 2),
            metadata={"nodes": 25, "events_per_run": throughput_events},
        ),
        Benchmark(
            name="greedy_next_hops_vectorized",
            func=greedy_hops_vectorized,
            items_per_call=len(hop_nodes) - 1,
            unit="hop choices",
            repeats=_repeats(quick, 20, 3),
            metadata={
                "nodes": 100, "destination": "n0",
                "implementation": "memoized+vectorized",
            },
        ),
        Benchmark(
            name="greedy_next_hops_reference",
            func=greedy_hops_reference,
            items_per_call=len(hop_nodes) - 1,
            unit="hop choices",
            repeats=_repeats(quick, 20, 3),
            metadata={"nodes": 100, "destination": "n0", "implementation": "scalar"},
        ),
    ]


def trace_suite(quick: bool = False) -> list[Benchmark]:
    """Trace pipeline benchmarks: synthesis, capture, replay, (de)serialization.

    The replay benchmark runs a pre-captured trace through a fresh stack
    each call (simulators are one-shot), so it measures exactly what a
    ``compare_stacks`` side or the CI round-trip smoke pays per replay.
    """
    from repro.experiments.net_scenario import NetScenario
    from repro.trace.capture import capture_scenario
    from repro.trace.events import Trace
    from repro.trace.population import PopulationWorkload, synthesize_trace
    from repro.trace.replay import replay_trace

    scenario = NetScenario(
        num_nodes=16, topology="grid", routing="greedy", arq="go-back-n",
        duration_s=240.0, rate_msgs_per_s=0.02, seed=11,
    )
    workload = PopulationWorkload(
        duration_s=1800.0, base_rate_msgs_per_s=0.05,
        diurnal_period_s=900.0,
    )
    topology = scenario.build_topology()
    population_trace = synthesize_trace(
        workload, topology, seed=11, meta={"scenario": scenario.to_dict()}
    )
    _, captured_trace = capture_scenario(scenario)
    jsonl = captured_trace.dumps()
    columns = population_trace.to_columns()

    return [
        Benchmark(
            name="population_synthesize_16user_1800s",
            func=lambda: synthesize_trace(workload, topology, seed=11),
            items_per_call=len(population_trace.events),
            unit="events",
            repeats=_repeats(quick, 10, 2),
            metadata={"users": 16, "duration_s": 1800.0,
                      "events": int(len(population_trace.events))},
        ),
        Benchmark(
            name="trace_capture_16node_240s",
            func=lambda: capture_scenario(scenario),
            items_per_call=1,
            unit="runs",
            repeats=_repeats(quick, 10, 2),
            metadata={"nodes": 16, "duration_s": 240.0},
        ),
        Benchmark(
            name="trace_replay_16node_240s",
            func=lambda: replay_trace(captured_trace),
            items_per_call=1,
            unit="runs",
            repeats=_repeats(quick, 10, 2),
            metadata={"nodes": 16, "duration_s": 240.0,
                      "sends": int(len(captured_trace.sends()))},
        ),
        Benchmark(
            name="trace_jsonl_roundtrip",
            func=lambda: Trace.loads(captured_trace.dumps()),
            items_per_call=len(captured_trace.events),
            unit="events",
            repeats=_repeats(quick, 20, 3),
            metadata={"events": int(len(captured_trace.events)),
                      "jsonl_bytes": len(jsonl)},
        ),
        Benchmark(
            name="trace_columnar_roundtrip",
            func=lambda: Trace.from_columns(population_trace.to_columns()),
            items_per_call=len(population_trace.events),
            unit="events",
            repeats=_repeats(quick, 20, 3),
            metadata={"events": int(len(population_trace.events)),
                      "arrays": len(columns)},
        ),
    ]


def records_suite(quick: bool = False) -> list[Benchmark]:
    """Result-pipeline benchmarks: columnar arenas vs per-record objects.

    A synthetic 100k-record sweep (200 unique scenarios, 8 packets each)
    is built once at suite-build time; the benchmark pairs then measure
    aggregation, per-record derived metrics, ingestion and the ``.npz``
    artifact round trip on identical data, so the columnar speedup is
    measured against the legacy object path rather than asserted.
    """
    import pathlib
    import tempfile

    from repro.experiments.columnar import ColumnarResultSet
    from repro.experiments.records import ResultSet, RunRecord
    from repro.experiments.scenario import Scenario

    rng = np.random.default_rng(2022)
    n_records = 100_000
    series_len = 8
    n_unique = 200
    base = Scenario(site="lake", num_packets=series_len, seed=0)
    uniques = [base.replace(seed=seed) for seed in range(n_unique)]

    bitrates = rng.uniform(500.0, 3000.0, (n_records, series_len))
    bitrates[rng.random((n_records, series_len)) < 0.05] = np.nan
    starts = rng.uniform(1000.0, 3000.0, (n_records, series_len))
    ends = starts + rng.uniform(500.0, 2000.0, (n_records, series_len))
    snrs = rng.normal(8.0, 4.0, (n_records, series_len))
    flags = rng.random((n_records, series_len)) < 0.9
    pers = rng.random(n_records)
    bers = rng.random(n_records) * 0.2
    delivered = flags.sum(axis=1)

    records = [
        RunRecord(
            scenario=uniques[i % n_unique],
            num_packets=series_len,
            delivered=int(delivered[i]),
            packet_error_rate=float(pers[i]),
            payload_bit_error_rate=float(bers[i]),
            coded_bit_error_rate=float(bers[i]) * 0.5,
            preamble_detection_rate=1.0,
            feedback_error_rate=0.0,
            bitrates_bps=tuple(bitrates[i]),
            band_starts_hz=tuple(starts[i]),
            band_ends_hz=tuple(ends[i]),
            min_band_snrs_db=tuple(snrs[i]),
            delivered_flags=tuple(bool(b) for b in flags[i]),
            elapsed_s=0.01,
        )
        for i in range(n_records)
    ]
    object_set = ResultSet(records)
    columnar_set = ColumnarResultSet(records)
    object_10k = ResultSet(records[:10_000])
    columnar_10k = ColumnarResultSet(records[:10_000])
    npz_path = pathlib.Path(tempfile.mkdtemp(prefix="bench-records-")) / "r.npz"
    columnar_10k.save_npz(npz_path)

    def aggregate_columnar():
        return (
            columnar_set.mean("packet_error_rate"),
            columnar_set.mean("coded_bit_error_rate"),
            columnar_set.sum("delivered"),
            columnar_set.delivery_ratio(),
            float(np.percentile(columnar_set.metric("payload_bit_error_rate"), 95)),
        )

    def aggregate_object():
        per = object_set.metric("packet_error_rate")
        ber = object_set.metric("coded_bit_error_rate")
        got = object_set.metric("delivered")
        offered = object_set.metric("num_packets")
        payload = object_set.metric("payload_bit_error_rate")
        return (
            float(np.mean(per)),
            float(np.mean(ber)),
            float(np.sum(got)),
            float(np.sum(got) / np.sum(offered)),
            float(np.percentile(payload, 95)),
        )

    return [
        Benchmark(
            name="records_aggregate_100k",
            func=aggregate_columnar,
            items_per_call=n_records,
            unit="records",
            repeats=_repeats(quick, 30, 3),
            metadata={"records": n_records, "implementation": "columnar"},
        ),
        Benchmark(
            name="records_aggregate_100k_object",
            func=aggregate_object,
            items_per_call=n_records,
            unit="records",
            repeats=_repeats(quick, 10, 2),
            metadata={"records": n_records, "implementation": "object path"},
        ),
        Benchmark(
            name="records_median_bitrate_10k",
            func=lambda: columnar_10k.metric("median_bitrate_bps"),
            items_per_call=10_000,
            unit="records",
            repeats=_repeats(quick, 20, 3),
            metadata={"records": 10_000, "implementation": "columnar"},
        ),
        Benchmark(
            name="records_median_bitrate_10k_object",
            func=lambda: object_10k.metric("median_bitrate_bps"),
            items_per_call=10_000,
            unit="records",
            repeats=_repeats(quick, 5, 1),
            metadata={"records": 10_000, "implementation": "object path"},
        ),
        Benchmark(
            name="records_ingest_10k",
            func=lambda: ColumnarResultSet(records[:10_000]),
            items_per_call=10_000,
            unit="records",
            repeats=_repeats(quick, 5, 2),
            metadata={"records": 10_000, "unique_scenarios": n_unique},
        ),
        Benchmark(
            name="records_npz_roundtrip_10k",
            func=lambda: ColumnarResultSet.load_npz(columnar_10k.save_npz(npz_path)),
            items_per_call=10_000,
            unit="records",
            repeats=_repeats(quick, 5, 2),
            metadata={"records": 10_000},
        ),
    ]


SUITE_BUILDERS = {
    "fec": fec_suite,
    "ofdm": ofdm_suite,
    "preamble": preamble_suite,
    "channel": channel_suite,
    "equalizer": equalizer_suite,
    "link": link_suite,
    "net": net_suite,
    "trace": trace_suite,
    "records": records_suite,
}


def available_suites() -> tuple[str, ...]:
    """Names of the registered benchmark suites."""
    return tuple(SUITE_BUILDERS)


def build_suite(name: str, quick: bool = False) -> list[Benchmark]:
    """Construct the benchmarks of one suite (inputs included)."""
    try:
        builder = SUITE_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown suite {name!r}; available: {', '.join(available_suites())}"
        ) from None
    return builder(quick=quick)


def run_suite(name: str, quick: bool = False) -> list[BenchResult]:
    """Build and execute one suite, returning its results."""
    return [benchmark.run(suite=name) for benchmark in build_suite(name, quick=quick)]
