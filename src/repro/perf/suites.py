"""Benchmark suites over the reproduction's hot paths.

Six suites cover the layers every figure reproduction funnels through:

``fec``
    Viterbi decoding (vectorized and the retained loop reference, so the
    speedup is measured rather than asserted), punctured packet decoding
    and convolutional encoding.
``ofdm``
    OFDM symbol modulation and demodulation, single and batched.
``preamble``
    Two-stage preamble detection over a noisy capture.
``channel``
    The underwater channel convolution (multipath + device chain + noise).
``link``
    End-to-end :class:`~repro.link.session.LinkSession` protocol exchanges.
``net``
    The multi-hop network simulator: raw scheduler churn plus complete
    50-node greedy-routing and 12-node flooding scenarios.

Each builder returns fully-constructed :class:`~repro.perf.harness.Benchmark`
closures: inputs are prepared at build time so the timed region contains
only the operation under test.  ``quick=True`` keeps workloads identical
(numbers stay comparable across modes) and only lowers the repeat counts.
"""

from __future__ import annotations

import numpy as np

from repro.perf.harness import Benchmark, BenchResult


def _repeats(quick: bool, full: int, fast: int = 2) -> int:
    return fast if quick else full


# ---------------------------------------------------------------------- suites
def fec_suite(quick: bool = False) -> list[Benchmark]:
    """FEC benchmarks: the 1024-bit decode the acceptance criteria track."""
    from repro.fec.convolutional import ConvolutionalCode, PuncturedConvolutionalCode
    from repro.fec.reference import reference_decode

    code = ConvolutionalCode()
    punctured = PuncturedConvolutionalCode()
    rng = np.random.default_rng(2022)
    num_data_bits = 506  # (506 + 6 tail) * 2 outputs = 1024 coded bits
    data = rng.integers(0, 2, num_data_bits)
    coded = code.encode(data)
    soft = (coded * 2.0 - 1.0) + rng.normal(0.0, 0.2, coded.size)
    packet_bits = rng.integers(0, 2, 16)
    packet_coded = punctured.encode(packet_bits).astype(float)

    benchmarks = [
        Benchmark(
            name="viterbi_decode_1024",
            func=lambda: code.decode(soft, num_data_bits=num_data_bits),
            items_per_call=coded.size,
            unit="coded bits",
            repeats=_repeats(quick, 20, 3),
            metadata={"coded_bits": int(coded.size), "implementation": "vectorized"},
        ),
        Benchmark(
            name="viterbi_decode_1024_reference",
            func=lambda: reference_decode(code, soft, num_data_bits=num_data_bits),
            items_per_call=coded.size,
            unit="coded bits",
            repeats=_repeats(quick, 5, 1),
            metadata={"coded_bits": int(coded.size), "implementation": "loop reference"},
        ),
        Benchmark(
            name="punctured_decode_packet",
            func=lambda: punctured.decode(packet_coded, num_data_bits=16),
            items_per_call=packet_coded.size,
            unit="coded bits",
            repeats=_repeats(quick, 20, 3),
            metadata={"payload_bits": 16, "coded_bits": int(packet_coded.size)},
        ),
        Benchmark(
            name="conv_encode_1024",
            func=lambda: code.encode(data),
            items_per_call=coded.size,
            unit="coded bits",
            repeats=_repeats(quick, 20, 3),
            metadata={"data_bits": num_data_bits},
        ),
    ]
    return benchmarks


def ofdm_suite(quick: bool = False) -> list[Benchmark]:
    """OFDM modulate/demodulate benchmarks (single symbol and batch)."""
    from repro.core.config import OFDMConfig
    from repro.core.ofdm import OFDMModulator

    config = OFDMConfig()
    modulator = OFDMModulator(config)
    rng = np.random.default_rng(7)
    bins = config.data_bins
    num_symbols = 32
    values = np.exp(2j * np.pi * rng.random((num_symbols, bins.size)))
    waveform = modulator.modulate_many(values, bins, add_cyclic_prefix=True).ravel()

    return [
        Benchmark(
            name="modulate_single_symbol",
            func=lambda: modulator.modulate(values[0], bins, add_cyclic_prefix=True),
            items_per_call=1,
            unit="symbols",
            repeats=_repeats(quick, 30, 3),
            metadata={"bins": int(bins.size)},
        ),
        Benchmark(
            name="modulate_batch",
            func=lambda: modulator.modulate_many(values, bins, add_cyclic_prefix=True),
            items_per_call=num_symbols,
            unit="symbols",
            repeats=_repeats(quick, 30, 3),
            metadata={"symbols": num_symbols, "bins": int(bins.size)},
        ),
        Benchmark(
            name="demodulate_batch",
            func=lambda: modulator.demodulate_many(waveform, num_symbols, bins),
            items_per_call=num_symbols,
            unit="symbols",
            repeats=_repeats(quick, 30, 3),
            metadata={"symbols": num_symbols, "bins": int(bins.size)},
        ),
    ]


def preamble_suite(quick: bool = False) -> list[Benchmark]:
    """Two-stage preamble detection over a noisy capture."""
    from repro.core.preamble import PreambleDetector, PreambleGenerator

    generator = PreambleGenerator()
    detector = PreambleDetector(generator)
    rng = np.random.default_rng(11)
    template = generator.waveform()
    offset = 1500
    capture = rng.normal(0.0, 0.05, template.size * 3)
    capture[offset:offset + template.size] += template

    return [
        Benchmark(
            name="detect_preamble",
            func=lambda: detector.detect(capture),
            items_per_call=capture.size,
            unit="samples",
            repeats=_repeats(quick, 10, 2),
            metadata={"capture_samples": int(capture.size)},
        ),
        Benchmark(
            name="extract_preamble_symbols",
            func=lambda: detector.extract_symbols(capture, offset),
            items_per_call=generator.num_symbols,
            unit="symbols",
            repeats=_repeats(quick, 30, 3),
            metadata={"symbols": int(generator.num_symbols)},
        ),
    ]


def channel_suite(quick: bool = False) -> list[Benchmark]:
    """Underwater channel convolution of a preamble-sized waveform."""
    from repro.core.preamble import PreambleGenerator
    from repro.environments.factory import build_channel
    from repro.environments.sites import SITE_CATALOG

    channel = build_channel(site=SITE_CATALOG["lake"], distance_m=10.0, seed=3)
    waveform = PreambleGenerator().waveform()

    def transmit() -> None:
        channel.transmit(waveform, rng=np.random.default_rng(5))

    return [
        Benchmark(
            name="channel_transmit_preamble",
            func=transmit,
            items_per_call=waveform.size,
            unit="samples",
            repeats=_repeats(quick, 10, 2),
            metadata={"site": "lake", "distance_m": 10.0, "samples": int(waveform.size)},
        ),
    ]


def link_suite(quick: bool = False) -> list[Benchmark]:
    """End-to-end protocol exchange throughput (packets per second)."""
    from repro.environments.factory import build_link_pair
    from repro.environments.sites import SITE_CATALOG
    from repro.link.session import LinkSession

    forward, backward = build_link_pair(
        site=SITE_CATALOG["lake"], distance_m=5.0, seed=17
    )
    session = LinkSession(forward, backward, seed=18)

    def run_packet() -> None:
        session.run_packet(rng=np.random.default_rng(19))

    return [
        Benchmark(
            name="link_session_packet",
            func=run_packet,
            items_per_call=1,
            unit="packets",
            repeats=_repeats(quick, 10, 2),
            metadata={"site": "lake", "distance_m": 5.0, "scheme": "adaptive"},
        ),
    ]


def net_suite(quick: bool = False) -> list[Benchmark]:
    """Network-simulator benchmarks: scheduler churn and full scenarios.

    Scenario benchmarks rebuild the simulator inside the timed region on
    purpose -- a simulator is one-shot, and construction is part of the
    cost a sweep pays per point.
    """
    from repro.experiments.net_scenario import NetScenario
    from repro.net.scheduler import Scheduler

    def scheduler_churn() -> None:
        scheduler = Scheduler()
        for index in range(20_000):
            scheduler.at(index * 1e-3, lambda: None)
        scheduler.run()

    fifty_node = NetScenario(
        num_nodes=50, topology="grid", routing="greedy", arq="go-back-n",
        duration_s=300.0, rate_msgs_per_s=0.01, destination="n0", seed=7,
    )
    flooding = NetScenario(
        num_nodes=12, topology="grid", routing="flooding", arq="none",
        traffic="sos", duration_s=90.0, seed=3,
    )

    return [
        Benchmark(
            name="scheduler_20k_events",
            func=scheduler_churn,
            items_per_call=20_000,
            unit="events",
            repeats=_repeats(quick, 10, 2),
            metadata={"events": 20_000},
        ),
        Benchmark(
            name="net_50node_greedy_calibrated",
            func=lambda: fifty_node.run(),
            items_per_call=1,
            unit="runs",
            repeats=_repeats(quick, 10, 2),
            metadata={"nodes": 50, "routing": "greedy", "link": "calibrated"},
        ),
        Benchmark(
            name="net_12node_flooding_sos",
            func=lambda: flooding.run(),
            items_per_call=1,
            unit="runs",
            repeats=_repeats(quick, 10, 2),
            metadata={"nodes": 12, "routing": "flooding", "traffic": "sos"},
        ),
    ]


SUITE_BUILDERS = {
    "fec": fec_suite,
    "ofdm": ofdm_suite,
    "preamble": preamble_suite,
    "channel": channel_suite,
    "link": link_suite,
    "net": net_suite,
}


def available_suites() -> tuple[str, ...]:
    """Names of the registered benchmark suites."""
    return tuple(SUITE_BUILDERS)


def build_suite(name: str, quick: bool = False) -> list[Benchmark]:
    """Construct the benchmarks of one suite (inputs included)."""
    try:
        builder = SUITE_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown suite {name!r}; available: {', '.join(available_suites())}"
        ) from None
    return builder(quick=quick)


def run_suite(name: str, quick: bool = False) -> list[BenchResult]:
    """Build and execute one suite, returning its results."""
    return [benchmark.run(suite=name) for benchmark in build_suite(name, quick=quick)]
