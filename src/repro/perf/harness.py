"""Microbenchmark harness with JSON persistence and baseline comparison.

A :class:`Benchmark` wraps a no-argument callable (all setup happens when
the suite builds the closure, outside the timed region) and produces a
:class:`BenchResult` holding the raw wall-clock samples plus derived
statistics.  Results serialize to ``BENCH_<suite>.json`` files at the repo
root so every PR leaves a perf trajectory behind, and
:func:`compare_results` turns a stored baseline plus a fresh run into a
percent-change report for the CLI and CI.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchResult:
    """Timing samples and throughput of one benchmark.

    Attributes
    ----------
    name:
        Benchmark identifier, unique within its suite.
    suite:
        Name of the suite the benchmark ran under.
    times_s:
        One wall-clock duration per (post-warmup) repeat.
    items_per_call:
        How many work items one call processes (coded bits, packets, ...).
    unit:
        Human label for those items, e.g. ``"coded bits"``.
    metadata:
        Free-form context (workload sizes, implementation flags).
    """

    name: str
    suite: str
    times_s: tuple[float, ...]
    warmup: int
    items_per_call: float = 1.0
    unit: str = "calls"
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def repeats(self) -> int:
        """Number of timed repeats."""
        return len(self.times_s)

    @property
    def mean_s(self) -> float:
        """Mean wall time per call."""
        return sum(self.times_s) / len(self.times_s) if self.times_s else float("nan")

    @property
    def median_s(self) -> float:
        """Median wall time per call (the headline statistic)."""
        if not self.times_s:
            return float("nan")
        ordered = sorted(self.times_s)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    @property
    def min_s(self) -> float:
        """Fastest repeat."""
        return min(self.times_s) if self.times_s else float("nan")

    @property
    def max_s(self) -> float:
        """Slowest repeat."""
        return max(self.times_s) if self.times_s else float("nan")

    @property
    def std_s(self) -> float:
        """Population standard deviation of the repeats."""
        if not self.times_s:
            return float("nan")
        mean = self.mean_s
        return math.sqrt(sum((t - mean) ** 2 for t in self.times_s) / len(self.times_s))

    @property
    def throughput_per_s(self) -> float:
        """Items processed per second, based on the median repeat."""
        median = self.median_s
        if not median or math.isnan(median):
            return float("nan")
        return self.items_per_call / median

    def to_dict(self) -> dict[str, Any]:
        """Serialize, including derived statistics for human readers."""
        return {
            "name": self.name,
            "suite": self.suite,
            "times_s": list(self.times_s),
            "warmup": self.warmup,
            "repeats": self.repeats,
            "items_per_call": self.items_per_call,
            "unit": self.unit,
            "mean_s": self.mean_s,
            "median_s": self.median_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "std_s": self.std_s,
            "throughput_per_s": self.throughput_per_s,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BenchResult":
        """Rebuild a result from :meth:`to_dict` output (derived stats ignored)."""
        return cls(
            name=str(data["name"]),
            suite=str(data.get("suite", "")),
            times_s=tuple(float(t) for t in data["times_s"]),
            warmup=int(data.get("warmup", 0)),
            items_per_call=float(data.get("items_per_call", 1.0)),
            unit=str(data.get("unit", "calls")),
            metadata=dict(data.get("metadata", {})),
        )


@dataclass
class Benchmark:
    """A named, repeatable timing target.

    Parameters
    ----------
    name:
        Identifier, unique within the suite.
    func:
        No-argument callable timed once per repeat.  Build inputs when
        constructing the benchmark so setup stays outside the timing.
    items_per_call, unit:
        Work-per-call accounting used for throughput reporting.
    repeats, warmup:
        Default repeat counts; :meth:`run` arguments override them.
    """

    name: str
    func: Callable[[], Any]
    items_per_call: float = 1.0
    unit: str = "calls"
    repeats: int = 5
    warmup: int = 1
    metadata: dict[str, Any] = field(default_factory=dict)

    def run(
        self,
        suite: str = "",
        repeats: int | None = None,
        warmup: int | None = None,
    ) -> BenchResult:
        """Execute warmup + timed repeats and return the result."""
        repeats = self.repeats if repeats is None else int(repeats)
        warmup = self.warmup if warmup is None else int(warmup)
        if repeats < 1:
            raise ValueError("repeats must be at least 1")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        for _ in range(warmup):
            self.func()
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            self.func()
            times.append(time.perf_counter() - start)
        return BenchResult(
            name=self.name,
            suite=suite,
            times_s=tuple(times),
            warmup=warmup,
            items_per_call=self.items_per_call,
            unit=self.unit,
            metadata=dict(self.metadata),
        )


# ------------------------------------------------------------------ persistence
def bench_json_path(suite: str, directory: str | Path = ".") -> Path:
    """Return the conventional ``BENCH_<suite>.json`` path for a suite."""
    return Path(directory) / f"BENCH_{suite}.json"


def write_results(
    suite: str,
    results: list[BenchResult],
    directory: str | Path = ".",
    quick: bool = False,
) -> Path:
    """Write a suite's results to ``BENCH_<suite>.json`` and return the path."""
    path = bench_json_path(suite, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "quick": bool(quick),
        "created_unix": time.time(),
        "results": [result.to_dict() for result in results],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def load_results(path: str | Path) -> tuple[str, list[BenchResult]]:
    """Load ``(suite_name, results)`` from a ``BENCH_*.json`` file."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path} is not a BENCH_*.json file (top level must be an object)")
    suite = str(data.get("suite", ""))
    results = [BenchResult.from_dict(entry) for entry in data.get("results", [])]
    return suite, results


# ------------------------------------------------------------------ comparison
@dataclass(frozen=True)
class ComparisonRow:
    """Median-time change of one benchmark between two runs."""

    name: str
    baseline_s: float
    current_s: float

    @property
    def percent_change(self) -> float:
        """Signed median-time change; negative means the benchmark got faster."""
        if not self.baseline_s:
            return float("nan")
        return (self.current_s - self.baseline_s) / self.baseline_s * 100.0

    @property
    def speedup(self) -> float:
        """Baseline over current median; >1 means faster now."""
        if not self.current_s:
            return float("nan")
        return self.baseline_s / self.current_s


def compare_results(
    baseline: list[BenchResult], current: list[BenchResult]
) -> list[ComparisonRow]:
    """Match benchmarks by name and compare their median wall times."""
    baseline_by_name = {result.name: result for result in baseline}
    rows = []
    for result in current:
        base = baseline_by_name.get(result.name)
        if base is None:
            continue
        rows.append(
            ComparisonRow(
                name=result.name,
                baseline_s=base.median_s,
                current_s=result.median_s,
            )
        )
    return rows


def gate_comparison(
    rows: list[ComparisonRow], fail_above_pct: float
) -> list[ComparisonRow]:
    """Return the rows regressing beyond ``fail_above_pct`` percent.

    The regression gate for CI: comparing a fresh run against the committed
    ``BENCH_*.json`` baselines, any benchmark whose median wall time grew by
    more than the threshold is a failure.  Negative changes (speedups) and
    benchmarks missing from the baseline never fail.
    """
    if fail_above_pct < 0:
        raise ValueError("fail_above_pct must be non-negative")
    return [
        row
        for row in rows
        if math.isfinite(row.percent_change) and row.percent_change > fail_above_pct
    ]


def format_comparison(rows: list[ComparisonRow], suite: str = "") -> str:
    """Render comparison rows as an aligned percent-change table."""
    if not rows:
        return "no overlapping benchmarks to compare"
    width = max(len(row.name) for row in rows)
    lines = []
    if suite:
        lines.append(f"suite {suite} vs baseline:")
    for row in rows:
        lines.append(
            f"  {row.name:<{width}s}  {row.baseline_s * 1000:10.3f} ms -> "
            f"{row.current_s * 1000:10.3f} ms  {row.percent_change:+7.1f}%  "
            f"({row.speedup:.2f}x)"
        )
    return "\n".join(lines)


def format_results(results: list[BenchResult]) -> str:
    """Render a suite's results as an aligned table for the CLI."""
    if not results:
        return "no benchmarks ran"
    width = max(len(result.name) for result in results)
    lines = []
    for result in results:
        lines.append(
            f"  {result.name:<{width}s}  median {result.median_s * 1000:10.3f} ms  "
            f"+/- {result.std_s * 1000:8.3f} ms  "
            f"{result.throughput_per_s:12.1f} {result.unit}/s  "
            f"(x{result.repeats})"
        )
    return "\n".join(lines)
